//! # bb-audit — runtime invariant checker and metamorphic-relation harness
//!
//! The studies promise a lot implicitly: realized paths respect Gao-Rexford
//! policy, no measured RTT beats the speed of light, CDFs are distribution
//! functions, figure weights conserve the workload's traffic, coverage
//! accounting adds up, churn intervals are well-formed, and the whole
//! pipeline is independent of the worker count. None of that is written
//! down as a check the `repro` binary can run against a *full-scale* build
//! — unit tests only ever see `Scale::Test` worlds. `repro audit` closes
//! that gap: it sweeps the three built scenarios and their study outputs
//! through a catalog of named invariant rules, then re-runs cheap
//! `Scale::Test` slices through four metamorphic relations (faults-off
//! equivalence, jobs independence, ablation directionality, shard
//! independence).
//!
//! Every rule is individually reportable; a violation names the rule, the
//! offending item, and exits the `repro audit` run with code 1 (the
//! runtime-failure code — the world failed its own contract).
//!
//! ## Self-test hook
//!
//! `BB_AUDIT_VIOLATE=<rule>` injects a deliberately-corrupt item into that
//! rule's input stream (the rule logic itself is untouched), proving the
//! rule actually fires. The CI audit job loops over every rule name and
//! asserts a non-zero exit — the same pattern as `BB_REPRO_POISON`.

use bb_core::study_anycast::AnycastStudy;
use bb_core::study_egress::EgressStudy;
use bb_core::study_tiers::TiersStudy;
use bb_core::{Scale, Scenario, ScenarioConfig};
use bb_measure::SprayConfig;
use bb_netsim::{FaultConfig, FaultLevel, FaultPlane, Outage, MAX_BASE_RTT_MS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Every rule the audit runs, in report order. `BB_AUDIT_VIOLATE` accepts
/// exactly these names.
pub const RULE_NAMES: &[&str] = &[
    "paths.valley_free",
    "paths.planet_valley_free",
    "rtt.lightspeed",
    "rtt.censoring",
    "cdf.monotone",
    "weights.conserved",
    "coverage.accounting",
    "churn.intervals",
    "sketch.quantile_error",
    "meta.faults_off",
    "meta.jobs_independent",
    "meta.ablation_direction",
    "meta.shard_independent",
    "meta.orchestrated_identity",
];

/// Audit configuration.
pub struct AuditOptions {
    pub seed: u64,
    pub scale: Scale,
    /// Human label for the fault level the audited run was built with
    /// (report header only).
    pub faults: &'static str,
    /// Rule whose input stream gets a deliberately-corrupt item
    /// (self-test; from `BB_AUDIT_VIOLATE`).
    pub violate: Option<String>,
}

/// Outcome of one rule.
pub struct RuleReport {
    pub name: &'static str,
    /// Items the rule examined.
    pub checked: u64,
    /// Items that violated the invariant.
    pub violations: u64,
    /// First few violation descriptions (bounded; deterministic order).
    pub details: Vec<String>,
}

impl RuleReport {
    pub fn passed(&self) -> bool {
        self.violations == 0
    }
}

/// Outcome of the full audit.
pub struct AuditReport {
    pub seed: u64,
    pub scale: Scale,
    pub faults: String,
    pub rules: Vec<RuleReport>,
}

impl AuditReport {
    pub fn passed(&self) -> bool {
        self.rules.iter().all(RuleReport::passed)
    }

    /// Render the per-rule table. Deterministic: byte-identical for every
    /// `--jobs` value (nothing here reads clocks or thread state).
    pub fn render(&self) -> String {
        let scale = match self.scale {
            Scale::Test => "test",
            Scale::Full => "full",
            Scale::Large => "large",
            Scale::Planet => "planet",
        };
        let mut out = format!(
            "=== AUDIT (seed {}, scale {scale}, faults {}) ===\n",
            self.seed, self.faults
        );
        let mut checks = 0u64;
        for r in &self.rules {
            checks += r.checked;
            if r.passed() {
                writeln!(out, "  {:<24} ok    {:>8} checked", r.name, r.checked).unwrap();
            } else {
                writeln!(
                    out,
                    "  {:<24} FAIL  {:>8} of {} violated",
                    r.name, r.violations, r.checked
                )
                .unwrap();
                for d in &r.details {
                    writeln!(out, "      {d}").unwrap();
                }
            }
        }
        let failed = self.rules.iter().filter(|r| !r.passed()).count();
        if failed == 0 {
            writeln!(
                out,
                "=== AUDIT PASSED: {}/{} rules, {checks} checks ===",
                self.rules.len(),
                self.rules.len()
            )
            .unwrap();
        } else {
            writeln!(
                out,
                "=== AUDIT FAILED: {failed}/{} rules violated ===",
                self.rules.len()
            )
            .unwrap();
        }
        out
    }
}

/// Accumulates one rule's checks; keeps the first few violation details.
struct Rule {
    report: RuleReport,
}

impl Rule {
    const MAX_DETAILS: usize = 4;

    fn new(name: &'static str) -> Self {
        Self {
            report: RuleReport {
                name,
                checked: 0,
                violations: 0,
                details: Vec::new(),
            },
        }
    }

    fn check(&mut self, ok: bool, detail: impl FnOnce() -> String) {
        self.report.checked += 1;
        if !ok {
            self.report.violations += 1;
            if self.report.details.len() < Self::MAX_DETAILS {
                self.report.details.push(detail());
            }
        }
    }

    fn finish(self) -> RuleReport {
        self.report
    }
}

/// Run the full audit over the three built scenarios and their studies.
///
/// The invariant rules examine the *actual* campaign outputs the figures
/// were computed from; the `meta.*` metamorphic relations build their own
/// `Scale::Test` slices so they stay cheap at any audited scale.
pub fn run_audit(
    facebook: &Scenario,
    egress: &EgressStudy,
    microsoft: &Scenario,
    anycast: &AnycastStudy,
    google: &Scenario,
    tiers: &TiersStudy,
    opts: &AuditOptions,
) -> AuditReport {
    let poison = |rule: &str| opts.violate.as_deref() == Some(rule);
    let rules = vec![
        valley_free_rule(facebook, egress, poison("paths.valley_free")),
        planet_valley_free_rule(opts.seed, opts.scale, poison("paths.planet_valley_free")),
        lightspeed_rule(
            facebook,
            egress,
            microsoft,
            anycast,
            google,
            tiers,
            poison("rtt.lightspeed"),
        ),
        censoring_rule(facebook, egress, poison("rtt.censoring")),
        cdf_monotone_rule(egress, anycast, poison("cdf.monotone")),
        weights_rule(egress, anycast, tiers, poison("weights.conserved")),
        coverage_rule(
            facebook,
            egress,
            microsoft,
            anycast,
            google,
            tiers,
            poison("coverage.accounting"),
        ),
        churn_rule(facebook, egress, opts.seed, poison("churn.intervals")),
        sketch_error_rule(egress, poison("sketch.quantile_error")),
        faults_off_relation(opts.seed, poison("meta.faults_off")),
        jobs_relation(opts.seed, poison("meta.jobs_independent")),
        ablation_relation(opts.seed, poison("meta.ablation_direction")),
        shard_relation(opts.seed, poison("meta.shard_independent")),
        orchestrated_identity_relation(opts.seed, poison("meta.orchestrated_identity")),
    ];
    AuditReport {
        seed: opts.seed,
        scale: opts.scale,
        faults: opts.faults.to_string(),
        rules,
    }
}

/// The tiny spray slice the metamorphic relations run (matches the study
/// unit tests' Test-scale configuration).
fn mr_spray_cfg() -> SprayConfig {
    SprayConfig {
        days: 1.0,
        window_stride: 8,
        sessions_per_window: 5,
        ..Default::default()
    }
}

// --- Invariant rules over the audited scenarios/studies. ---

/// `paths.valley_free`: every realized egress route's AS path must be
/// policy-consistent — each hop a real business edge, and the relationship
/// sequence valley-free (`up* peer? down*`).
fn valley_free_rule(scenario: &Scenario, egress: &EgressStudy, poison: bool) -> RuleReport {
    let mut rule = Rule::new("paths.valley_free");
    for t in &egress.dataset.targets {
        for (ri, r) in t.routes.iter().enumerate() {
            let ok = bb_bgp::propagation::valley_free(&scenario.topo, &r.path.as_path);
            rule.check(ok, || {
                format!(
                    "pop {} prefix {} route {ri}: AS path {:?} not valley-free",
                    t.pop.0, t.prefix.0, r.path.as_path
                )
            });
        }
    }
    if poison {
        // A self-loop is never a business edge: policy-inconsistent by
        // construction, exercising the missing-relationship branch.
        let a = egress.dataset.targets[0].client_as;
        let bad = [a, a];
        rule.check(
            bb_bgp::propagation::valley_free(&scenario.topo, &bad),
            || format!("injected self-loop path {bad:?} accepted"),
        );
    }
    rule.finish()
}

/// `paths.planet_valley_free`: the planet-tier propagation pipeline — the
/// interned-path arena plus the frontier worklist — must still produce
/// valley-free paths on a planet-*shaped* world (dense transit layer, many
/// eyeballs per country). The world is sized to the audited scale so the
/// rule stays cheap in unit tests and CI yet sweeps a true ≥50k-AS build
/// under `--scale planet`; full announcements from a deterministic origin
/// sample are checked end to end.
fn planet_valley_free_rule(seed: u64, scale: Scale, poison: bool) -> RuleReport {
    let mut rule = Rule::new("paths.planet_valley_free");
    let mut tcfg = ScenarioConfig::topology_for(Scale::Planet, seed ^ 0x_97a3);
    match scale {
        // Mini-planet: the Planet preset's shape at a few hundred ASes.
        Scale::Test => {
            tcfg.atlas.city_density = 0.5;
            tcfg.transits_per_region = 4;
            tcfg.eyeball_users_per_as_m = 8.0;
            tcfg.max_eyeballs_per_country = 12;
        }
        // Mid-size: a few thousand ASes, still seconds to propagate.
        Scale::Full | Scale::Large => {
            tcfg.atlas.city_density = 1.0;
            tcfg.transits_per_region = 8;
            tcfg.eyeball_users_per_as_m = 1.6;
            tcfg.max_eyeballs_per_country = 60;
        }
        Scale::Planet => {}
    }
    let topo = bb_topology::generate(&tcfg);
    let eyeballs: Vec<bb_topology::AsId> = topo
        .ases_of_class(bb_topology::AsClass::Eyeball)
        .map(|a| a.id)
        .collect();
    let n = eyeballs.len();
    let origins = [eyeballs[0], eyeballs[n / 3], eyeballs[2 * n / 3], eyeballs[n - 1]];
    // Bound the per-origin path checks so the planet sweep stays linear in
    // the AS count, not quadratic.
    let stride = (topo.as_count() / 4096).max(1);
    for origin in origins {
        let ann = bb_bgp::Announcement::full(&topo, origin);
        let table = bb_bgp::compute_routes(&topo, &ann);
        rule.check(table.reachable_count() == topo.as_count(), || {
            format!(
                "origin {origin}: only {} of {} ASes routed",
                table.reachable_count(),
                topo.as_count()
            )
        });
        for node in topo.ases().iter().step_by(stride) {
            match table.as_path(node.id) {
                Some(path) => rule.check(
                    bb_bgp::propagation::valley_free(&topo, &path),
                    || format!("origin {origin}: path {path:?} to {} has a valley", node.id),
                ),
                None => rule.check(false, || {
                    format!("origin {origin}: {} unreachable or via-cycle", node.id)
                }),
            }
        }
    }
    if poison {
        // A fabricated down-then-up walk over real business edges.
        let o = eyeballs[0];
        let prov = topo.providers_of(o)[0];
        let bad = [prov, o, prov];
        rule.check(
            bb_bgp::propagation::valley_free(&topo, &bad),
            || format!("injected valley path {bad:?} accepted"),
        );
    }
    rule.finish()
}

/// `rtt.lightspeed`: no finite measured RTT may beat the great-circle
/// speed-of-light round trip between its endpoints (path distance is at
/// least the great-circle distance by the triangle inequality; jitter,
/// congestion, and processing terms are non-negative).
fn lightspeed_rule(
    facebook: &Scenario,
    egress: &EgressStudy,
    microsoft: &Scenario,
    anycast: &AnycastStudy,
    google: &Scenario,
    tiers: &TiersStudy,
    poison: bool,
) -> RuleReport {
    let mut rule = Rule::new("rtt.lightspeed");
    let gc_bound = |topo: &bb_topology::Topology, a: bb_geo::CityId, b: bb_geo::CityId| {
        bb_geo::min_rtt_ms(
            topo.atlas
                .city(a)
                .location
                .distance_km(&topo.atlas.city(b).location),
        )
    };

    // Spray rows: per-route window medians against the PoP→client bound.
    let mut route_ends: BTreeMap<(u32, u32), Vec<f64>> = BTreeMap::new();
    for t in &egress.dataset.targets {
        route_ends.insert(
            (t.pop.0, t.prefix.0),
            t.routes
                .iter()
                .map(|r| gc_bound(&facebook.topo, t.pop, r.path.final_city()))
                .collect(),
        );
    }
    for row in &egress.dataset.rows {
        let bounds = &route_ends[&(row.pop.0, row.prefix.0)];
        for (ri, &m) in row.route_median_ms.iter().enumerate() {
            if !m.is_finite() {
                continue; // degraded windows are coverage.accounting's job
            }
            rule.check(m + 1e-6 >= bounds[ri], || {
                format!(
                    "spray pop {} prefix {} route {ri}: median {m:.3}ms < light bound {:.3}ms",
                    row.pop.0, row.prefix.0, bounds[ri]
                )
            });
        }
    }

    // Beacon measurements: anycast and every unicast RTT against the
    // client→front-end bounds.
    for m in &anycast.measurements {
        let client = microsoft.workload.prefix(m.prefix).city;
        if m.anycast_rtt_ms.is_finite() {
            let b = gc_bound(&microsoft.topo, client, m.anycast_front_end);
            rule.check(m.anycast_rtt_ms + 1e-6 >= b, || {
                format!(
                    "beacon prefix {}: anycast {:.3}ms < light bound {b:.3}ms",
                    m.prefix.0, m.anycast_rtt_ms
                )
            });
        }
        for &(site, r) in &m.unicast_rtt_ms {
            if r.is_finite() {
                let b = gc_bound(&microsoft.topo, client, site);
                rule.check(r + 1e-6 >= b, || {
                    format!(
                        "beacon prefix {} site {}: unicast {r:.3}ms < light bound {b:.3}ms",
                        m.prefix.0, site.0
                    )
                });
            }
        }
    }

    // Tier probes: VP→datacenter bound.
    for p in &tiers.probes {
        if !p.rtt_ms.is_finite() {
            continue;
        }
        let vp = &tiers.vantage_points[p.vp_index];
        let b = gc_bound(&google.topo, vp.city, tiers.datacenter);
        rule.check(p.rtt_ms + 1e-6 >= b, || {
            format!(
                "tier probe vp {}: rtt {:.3}ms < light bound {b:.3}ms",
                p.vp_index, p.rtt_ms
            )
        });
    }

    if poison {
        // A 10,000 km path answering in half a millisecond.
        let b = bb_geo::min_rtt_ms(10_000.0);
        rule.check(0.5 + 1e-6 >= b, || {
            format!("injected sub-lightspeed sample: 0.500ms < light bound {b:.3}ms")
        });
    }
    rule.finish()
}

/// `rtt.censoring`: measurement timeouts must sit above the worst
/// *uncongested* path RTT, so they censor congestion spikes, never
/// geography (a 300 ms heavy timeout silently ate legitimate ~250–350 ms
/// intercontinental paths until this was derived from the bound). Also
/// validates `MAX_BASE_RTT_MS` against the realized paths of this build.
fn censoring_rule(facebook: &Scenario, egress: &EgressStudy, poison: bool) -> RuleReport {
    let mut rule = Rule::new("rtt.censoring");
    let mut presets = vec![
        ("light preset", FaultConfig::light().timeout_ms),
        ("heavy preset", FaultConfig::heavy().timeout_ms),
    ];
    if let Some(fp) = facebook.fault_plane() {
        presets.push(("active plane", fp.config().timeout_ms));
    }
    if poison {
        presets.push(("injected config", 100.0));
    }
    for (label, timeout_ms) in presets {
        rule.check(timeout_ms > MAX_BASE_RTT_MS, || {
            format!(
                "{label}: timeout {timeout_ms}ms censors legitimate base RTTs \
                 (worst uncongested path {MAX_BASE_RTT_MS}ms)"
            )
        });
    }
    // The constant itself must dominate every realized base path RTT.
    let mut worst = 0.0_f64;
    for t in &egress.dataset.targets {
        for r in &t.routes {
            worst = worst.max(bb_netsim::path_base_rtt_ms(&facebook.topo, &r.path));
        }
    }
    rule.check(worst <= MAX_BASE_RTT_MS, || {
        format!("realized base RTT {worst:.1}ms exceeds MAX_BASE_RTT_MS {MAX_BASE_RTT_MS}ms")
    });
    rule.finish()
}

/// `cdf.monotone`: every figure CDF/CCDF is a distribution function —
/// strictly increasing values, non-decreasing fractions in [0, 1], last
/// fraction exactly 1 (so `fraction_gt ≥ 0` and `fraction_leq ≤ 1` hold
/// at every query point).
fn cdf_monotone_rule(egress: &EgressStudy, anycast: &AnycastStudy, poison: bool) -> RuleReport {
    let mut rule = Rule::new("cdf.monotone");
    let mut curves: Vec<(&str, Vec<(f64, f64)>)> = vec![
        ("fig1.diff", egress.fig1.diff.points().collect()),
        ("fig1.ci_lower", egress.fig1.ci_lower.points().collect()),
        ("fig1.ci_upper", egress.fig1.ci_upper.points().collect()),
        ("fig3.world", anycast.fig3.world.cdf().points().collect()),
        (
            "fig4.median",
            anycast.fig4.median_improvement.points().collect(),
        ),
        ("fig4.p75", anycast.fig4.p75_improvement.points().collect()),
    ];
    if let Some(c) = &egress.fig2.peer_vs_transit {
        curves.push(("fig2.peer_vs_transit", c.points().collect()));
    }
    if let Some(c) = &egress.fig2.private_vs_public {
        curves.push(("fig2.private_vs_public", c.points().collect()));
    }
    if let Some(c) = &anycast.fig3.europe {
        curves.push(("fig3.europe", c.cdf().points().collect()));
    }
    if let Some(c) = &anycast.fig3.united_states {
        curves.push(("fig3.united_states", c.cdf().points().collect()));
    }
    if poison {
        curves.push((
            "injected curve",
            vec![(0.0, 0.6), (1.0, 0.5), (2.0, 1.0)],
        ));
    }
    for (label, pts) in curves {
        let mut bad: Option<String> = None;
        let mut prev_v = f64::NEG_INFINITY;
        let mut prev_f = 0.0_f64;
        for (i, &(v, f)) in pts.iter().enumerate() {
            if !(0.0..=1.0).contains(&f) {
                bad = Some(format!("fraction {f} outside [0,1] at index {i}"));
                break;
            }
            if v <= prev_v || f < prev_f {
                bad = Some(format!(
                    "not monotone at index {i}: ({prev_v}, {prev_f}) -> ({v}, {f})"
                ));
                break;
            }
            (prev_v, prev_f) = (v, f);
        }
        if bad.is_none() && (prev_f - 1.0).abs() > 1e-12 {
            bad = Some(format!("last fraction {prev_f} != 1"));
        }
        rule.check(bad.is_none(), || format!("{label}: {}", bad.unwrap()));
    }
    rule.finish()
}

/// `weights.conserved`: figure-weighted traffic totals equal the workload
/// totals they were drawn from — no group silently dropped or counted
/// twice.
fn weights_rule(
    egress: &EgressStudy,
    anycast: &AnycastStudy,
    tiers: &TiersStudy,
    poison: bool,
) -> RuleReport {
    let mut rule = Rule::new("weights.conserved");
    let kept = |row: &bb_measure::WindowRow| {
        row.route_median_ms.len() >= 2
            && row.route_median_ms[0].is_finite()
            && bb_stats::min_finite(row.route_median_ms[1..].iter().copied()).is_finite()
    };

    // Spray: row-major volume total vs group-major (the accumulation order
    // the figures use). Any discrepancy means a group was lost on the way
    // into Fig 1's weighting.
    let row_major: f64 = egress.dataset.rows.iter().filter(|r| kept(r)).map(|r| r.volume).sum();
    let mut groups: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for row in egress.dataset.rows.iter().filter(|r| kept(r)) {
        *groups.entry((row.pop.0, row.prefix.0)).or_insert(0.0) += row.volume;
    }
    let mut group_major: f64 = groups.values().sum();
    if poison {
        group_major += 1.0; // a phantom group's worth of volume
    }
    rule.check(
        (row_major - group_major).abs() <= 1e-9 * row_major.max(1.0),
        || format!("spray volume: rows total {row_major} != groups total {group_major}"),
    );

    // Beacons: each measured prefix reports once per round with a constant
    // weight, so the campaign total is rounds × Σ per-prefix weight.
    let mut round_times: Vec<u64> = anycast
        .measurements
        .iter()
        .map(|m| m.time.minutes().to_bits())
        .collect();
    round_times.sort_unstable();
    round_times.dedup();
    let rounds = round_times.len() as f64;
    let mut per_prefix: BTreeMap<u32, (usize, f64)> = BTreeMap::new();
    for m in &anycast.measurements {
        let e = per_prefix.entry(m.prefix.0).or_insert((0, m.weight));
        e.0 += 1;
        rule.check(m.weight == e.1, || {
            format!("beacon prefix {}: weight drifted within the campaign", m.prefix.0)
        });
    }
    for (&prefix, &(count, _)) in &per_prefix {
        rule.check(count as f64 == rounds, || {
            format!("beacon prefix {prefix}: {count} measurements for {rounds} rounds")
        });
    }
    let total: f64 = anycast.measurements.iter().map(|m| m.weight).sum();
    let expect: f64 = rounds * per_prefix.values().map(|&(_, w)| w).sum::<f64>();
    rule.check((total - expect).abs() <= 1e-6 * expect.max(1.0), || {
        format!("beacon weight total {total} != rounds × prefix weights {expect}")
    });

    // Tiers: Fig 5's per-country VP counts partition the qualifying set.
    let row_vps: usize = tiers.fig5.rows.iter().map(|r| r.vantage_points).sum();
    rule.check(row_vps == tiers.fig5.qualifying_vps, || {
        format!(
            "fig5 rows count {row_vps} VPs but {} qualified",
            tiers.fig5.qualifying_vps
        )
    });
    rule.finish()
}

/// `coverage.accounting`: kept + dropped = attempted for every study, the
/// published coverage matches a recount, and fault-free runs keep
/// everything (NaN medians may only appear in degraded windows, which only
/// a fault plane produces).
fn coverage_rule(
    facebook: &Scenario,
    egress: &EgressStudy,
    microsoft: &Scenario,
    anycast: &AnycastStudy,
    google: &Scenario,
    tiers: &TiersStudy,
    poison: bool,
) -> RuleReport {
    let mut rule = Rule::new("coverage.accounting");

    // Egress: recount the windows analyze() saw.
    let mut total = 0u64;
    let mut kept = 0u64;
    for row in &egress.dataset.rows {
        if row.route_median_ms.len() < 2 {
            continue;
        }
        total += 1;
        let preferred = row.route_median_ms[0];
        let best_alt = bb_stats::min_finite(row.route_median_ms[1..].iter().copied());
        if preferred.is_finite() && best_alt.is_finite() {
            kept += 1;
        }
    }
    if poison {
        total += 1; // a window the recount "attempted" but nobody published
    }
    let cov = &egress.fig1.coverage;
    rule.check(cov.kept == kept && cov.total == total, || {
        format!(
            "egress coverage {}/{} but recount {kept}/{total}",
            cov.kept, cov.total
        )
    });
    rule.check(cov.kept <= cov.total, || {
        format!("egress coverage kept {} > total {}", cov.kept, cov.total)
    });
    if facebook.fault_plane().is_none() {
        let nan_rows = egress
            .dataset
            .rows
            .iter()
            .filter(|r| r.route_median_ms.iter().any(|m| m.is_nan()))
            .count();
        rule.check(nan_rows == 0, || {
            format!("fault-free spray produced {nan_rows} rows with NaN medians")
        });
    }

    // Anycast: complete vs attempted.
    let complete = anycast.measurements.iter().filter(|m| m.is_complete()).count() as u64;
    let attempted = anycast.measurements.len() as u64;
    let cov = &anycast.fig3.coverage;
    rule.check(cov.kept == complete && cov.total == attempted, || {
        format!(
            "anycast coverage {}/{} but recount {complete}/{attempted}",
            cov.kept, cov.total
        )
    });
    if microsoft.fault_plane().is_none() {
        rule.check(complete == attempted, || {
            format!("fault-free beacons left {} incomplete", attempted - complete)
        });
    }

    // Tiers: finite-RTT rounds vs probes fired.
    let fin = tiers.probes.iter().filter(|p| p.rtt_ms.is_finite()).count() as u64;
    let shot = tiers.probes.len() as u64;
    let cov = &tiers.fig5.coverage;
    rule.check(cov.kept == fin && cov.total == shot, || {
        format!("tiers coverage {}/{} but recount {fin}/{shot}", cov.kept, cov.total)
    });
    if google.fault_plane().is_none() {
        rule.check(fin == shot, || {
            format!("fault-free probes lost {} rounds", shot - fin)
        });
    }
    rule.finish()
}

/// `churn.intervals`: every route's withdrawal intervals are start-sorted,
/// disjoint, at least a minute long, and begin inside the horizon. Checked
/// against the run's own plane when faults are on, else against a
/// light-preset plane over the same route keys (the rule stays meaningful
/// in fault-free audits).
fn churn_rule(facebook: &Scenario, egress: &EgressStudy, seed: u64, poison: bool) -> RuleReport {
    let mut rule = Rule::new("churn.intervals");
    let fallback;
    let plane = match facebook.fault_plane() {
        Some(p) => p,
        None => {
            fallback = FaultPlane::new(seed ^ 0x_0bad, FaultConfig::light());
            &fallback
        }
    };
    let horizon = plane.config().horizon_min;
    let check_intervals = |rule: &mut Rule, label: &str, events: &[Outage]| {
        let mut bad: Option<String> = None;
        for w in events.windows(2) {
            if w[0].end_min > w[1].start_min {
                bad = Some(format!(
                    "overlap: [{:.1}, {:.1}] then [{:.1}, {:.1}]",
                    w[0].start_min, w[0].end_min, w[1].start_min, w[1].end_min
                ));
                break;
            }
        }
        for e in events {
            if bad.is_some() {
                break;
            }
            if e.end_min - e.start_min < 1.0 {
                bad = Some(format!("interval [{:.3}, {:.3}] under a minute", e.start_min, e.end_min));
            } else if e.start_min >= horizon {
                bad = Some(format!("interval starts at {:.1} past horizon {horizon:.1}", e.start_min));
            }
        }
        rule.check(bad.is_none(), || format!("{label}: {}", bad.unwrap()));
    };
    // The exact keys the spray campaign consumes, bounded for audit cost.
    let mut audited = 0usize;
    'targets: for t in &egress.dataset.targets {
        for ri in 0..t.routes.len() {
            let key = FaultPlane::stream_key(&[t.pop.0 as u64, t.prefix.0 as u64, ri as u64]);
            let events = plane.churn_events(key);
            check_intervals(&mut rule, &format!("route key {key:#x}"), &events);
            audited += 1;
            if audited >= 256 {
                break 'targets;
            }
        }
    }
    if poison {
        let bad = [
            Outage { start_min: 0.0, end_min: 10.0 },
            Outage { start_min: 5.0, end_min: 15.0 },
        ];
        check_intervals(&mut rule, "injected interval list", &bad);
    }
    rule.finish()
}

/// `sketch.quantile_error`: the streaming sketch's declared relative-error
/// guarantee, checked against *this build's* actual campaign data. The
/// rule streams the egress study's per-window preferred − best-alternate
/// diffs (the exact value stream `repro serve --epsilon` aggregates) into
/// a [`bb_stats::QuantileSketch`] in dataset order, and at every epoch
/// boundary compares sketch quantiles at q ∈ {0.25, 0.5, 0.75, 0.9}
/// against the true retained-sample quantiles (`weighted_quantile`'s
/// convention, which the sketch's contract names): a serve figure is only
/// trustworthy if `|est − truth| ≤ ε·|truth| + 1e-9` holds at every
/// boundary, not just at the end.
fn sketch_error_rule(egress: &EgressStudy, poison: bool) -> RuleReport {
    let mut rule = Rule::new("sketch.quantile_error");
    const EPS: f64 = 0.02;
    /// Kept values per simulated snapshot epoch.
    const EPOCH: usize = 512;
    let mut sk = bb_stats::QuantileSketch::new(EPS);
    let mut retained: Vec<(f64, f64)> = Vec::new();
    let check_boundary = |rule: &mut Rule,
                          sk: &bb_stats::QuantileSketch,
                          retained: &[(f64, f64)],
                          label: &str| {
        for q in [0.25, 0.5, 0.75, 0.9] {
            let truth = bb_stats::weighted_quantile(retained, q)
                .expect("boundary checks only run with retained data");
            let est = sk.quantile(q).expect("sketch saw the same stream");
            rule.check(
                (est - truth).abs() <= sk.eps() * truth.abs() + 1e-9,
                || {
                    format!(
                        "{label} q={q}: sketch {est:.6} vs truth {truth:.6} \
                         exceeds eps {} bound",
                        sk.eps()
                    )
                },
            );
        }
    };
    for row in &egress.dataset.rows {
        if row.route_median_ms.len() < 2 {
            continue;
        }
        let preferred = row.route_median_ms[0];
        let best_alt = bb_stats::min_finite(row.route_median_ms[1..].iter().copied());
        if !preferred.is_finite() || !best_alt.is_finite() {
            continue;
        }
        let diff = preferred - best_alt;
        sk.add(diff, 1.0);
        retained.push((diff, 1.0));
        if retained.len() % EPOCH == 0 {
            check_boundary(
                &mut rule,
                &sk,
                &retained,
                &format!("epoch boundary at {} values", retained.len()),
            );
        }
    }
    if poison {
        // A corrupt item in the sketch's input stream only: a heavy outlier
        // the retained truth never saw, dragging the upper quantiles far
        // past the ε bound.
        sk.add(1e6, retained.len() as f64 + 1.0);
    }
    if retained.is_empty() {
        // Nothing survived (conceivable under extreme fault storms): the
        // sketch must agree it saw nothing.
        rule.check(sk.count() == 0, || {
            format!("no windows retained but sketch folded {} values", sk.count())
        });
    } else {
        check_boundary(
            &mut rule,
            &sk,
            &retained,
            &format!("final boundary at {} values", retained.len()),
        );
    }
    rule.finish()
}

// --- Metamorphic relations on Scale::Test slices. ---

/// `meta.faults_off`: `--faults off` must be *the same program* as a build
/// without the fault plane — `FaultLevel::Off` maps to no config, and a
/// world built through that mapping sprays byte-identically to one that
/// never mentioned faults.
fn faults_off_relation(seed: u64, poison: bool) -> RuleReport {
    let mut rule = Rule::new("meta.faults_off");
    rule.check(FaultLevel::Off.config().is_none(), || {
        "FaultLevel::Off maps to a live FaultConfig".to_string()
    });
    let cfg_plain = ScenarioConfig::facebook(seed, Scale::Test);
    let mut cfg_off = ScenarioConfig::facebook(seed, Scale::Test);
    cfg_off.faults = FaultLevel::Off.config();
    let rows = |cfg: ScenarioConfig| {
        let s = Scenario::build(cfg);
        let ds = bb_measure::spray(
            &s.topo,
            &s.provider,
            &s.workload,
            &s.congestion,
            s.fault_plane(),
            &mr_spray_cfg(),
        );
        format!("{:?}", ds.rows)
    };
    let plain = rows(cfg_plain);
    let mut off = rows(cfg_off);
    if poison {
        off.push('x'); // pretend the off-path diverged by one byte
    }
    rule.check(plain == off, || {
        "spray rows differ between no-fault-plane and --faults off builds".to_string()
    });
    rule.finish()
}

/// `meta.jobs_independent`: audited aggregates must not depend on the
/// worker count — the same Test slice sprayed at jobs=1 and jobs=2 is
/// byte-identical.
fn jobs_relation(seed: u64, poison: bool) -> RuleReport {
    let mut rule = Rule::new("meta.jobs_independent");
    let s = Scenario::build(ScenarioConfig::facebook(seed ^ 0x_106c, Scale::Test));
    let saved = bb_exec::jobs();
    let rows = |jobs: usize| {
        bb_exec::set_jobs(jobs);
        let ds = bb_measure::spray(
            &s.topo,
            &s.provider,
            &s.workload,
            &s.congestion,
            None,
            &mr_spray_cfg(),
        );
        format!("{:?}", ds.rows)
    };
    let one = rows(1);
    let mut two = rows(2);
    bb_exec::set_jobs(saved);
    if poison {
        two.push('x');
    }
    rule.check(one == two, || {
        "spray rows differ between --jobs 1 and --jobs 2".to_string()
    });
    rule.finish()
}

/// `meta.ablation_direction`: decorrelating congestion (the early
/// literature's independent-paths world, §3.1.1 / X-ABLATE) must not
/// *decrease* window-level exploitability — with shared destination-side
/// congestion removed, a performance-aware controller finds at least as
/// many improvable windows.
fn ablation_relation(seed: u64, poison: bool) -> RuleReport {
    let mut rule = Rule::new("meta.ablation_direction");
    let improvable = |independent: bool| {
        let mut cfg = ScenarioConfig::facebook(seed, Scale::Test);
        if independent {
            // Mirror the xablate "independent" arm: no shared metro or
            // last-mile events, frequent long severe per-link episodes.
            cfg.congestion.metro_events_per_day = 0.0;
            cfg.congestion.lastmile_events_per_day = 0.0;
            cfg.congestion.link_events_per_day = 2.0;
            cfg.congestion.event_duration_mean_min = 90.0;
            cfg.congestion.event_severity = (0.35, 0.7);
        }
        let scenario = Scenario::build(cfg);
        bb_core::study_egress::run(&scenario, &mr_spray_cfg())
            .map(|study| study.episodes.frac_windows_improvable)
    };
    match (improvable(false), improvable(true)) {
        (Ok(correlated), Ok(independent)) => {
            let (correlated, independent) = if poison {
                (independent, correlated) // swap the comparison's sides
            } else {
                (correlated, independent)
            };
            rule.check(independent + 1e-12 >= correlated, || {
                format!(
                    "decorrelated congestion lowered windows-improvable: \
                     {independent:.4} < {correlated:.4}"
                )
            });
        }
        _ => rule.check(false, || "ablation slice failed to run".to_string()),
    }
    rule.finish()
}

/// `meta.shard_independent`: a campaign split across shard checkpoints and
/// stitched back through `merge_shards` must reproduce the unsharded
/// manifest byte-for-byte — the sharding plane may move work between
/// processes, never change bytes. The relation builds three units from a
/// real Test-scale spray, shards them with a deliberate overlap (so the
/// duplicate-agreement check is exercised, not just coverage), merges, and
/// compares encodings.
fn shard_relation(seed: u64, poison: bool) -> RuleReport {
    use bb_core::checkpoint::{merge_shards, CampaignKey, Checkpoint, UnitResult};
    let mut rule = Rule::new("meta.shard_independent");
    let s = Scenario::build(ScenarioConfig::facebook(seed ^ 0x_5a4d, Scale::Test));
    let ds = bb_measure::spray(
        &s.topo,
        &s.provider,
        &s.workload,
        &s.congestion,
        None,
        &mr_spray_cfg(),
    );
    let n = ds.rows.len();
    rule.check(n >= 3, || format!("spray slice too small to shard: {n} rows"));
    let unit = |lo: usize, hi: usize| UnitResult {
        stdout: format!("{:?}\n", &ds.rows[lo.min(n)..hi.min(n)]),
        files: vec![(format!("slice_{lo}.csv"), format!("{lo}..{hi}").into_bytes())],
    };
    let key = CampaignKey::new(seed, "test", "off", "u0,u1,u2", true);
    let mut full = Checkpoint::new(key.clone());
    full.record("u0", unit(0, n / 3));
    full.record("u1", unit(n / 3, 2 * n / 3));
    full.record("u2", unit(2 * n / 3, n));
    full.windows_done = 3;

    let mut a = Checkpoint::new(key.clone());
    a.record("u0", full.units["u0"].clone());
    a.record("u1", full.units["u1"].clone());
    a.windows_done = 2;
    let mut b = Checkpoint::new(key);
    // `u1` appears in both shards: the merge must verify the copies agree
    // byte-for-byte. The poison corrupts exactly this duplicated copy.
    let mut dup = full.units["u1"].clone();
    if poison {
        dup.stdout.push('x');
    }
    b.record("u1", dup);
    b.record("u2", full.units["u2"].clone());
    b.windows_done = 1;

    match merge_shards(&[a, b]) {
        Ok(merged) => rule.check(merged.encode() == full.encode(), || {
            "merged shard manifest differs from the unsharded manifest".to_string()
        }),
        Err(e) => rule.check(false, || format!("shard merge rejected: {e}")),
    }
    rule.finish()
}

/// `meta.orchestrated_identity`: the orchestrator's whole recovery ladder —
/// a shard manifest torn mid-write, salvaged to its valid prefix, the
/// dropped unit recomputed and re-recorded, shards merged — must reproduce
/// the unsharded manifest byte-for-byte. Crash recovery may re-do work,
/// never change bytes. Emulated in-process on a Test-scale spray with the
/// exact primitives the binary uses: the tear is the chaos injector's
/// (16 bytes off the tail), the recovery is `decode_salvaging`, and the
/// poison corrupts the *re-recorded* unit — a recovery that recomputed
/// different bytes.
fn orchestrated_identity_relation(seed: u64, poison: bool) -> RuleReport {
    use bb_core::checkpoint::{merge_shards, CampaignKey, Checkpoint, UnitResult};
    let mut rule = Rule::new("meta.orchestrated_identity");
    let s = Scenario::build(ScenarioConfig::facebook(seed ^ 0x_06c4, Scale::Test));
    let ds = bb_measure::spray(
        &s.topo,
        &s.provider,
        &s.workload,
        &s.congestion,
        None,
        &mr_spray_cfg(),
    );
    let n = ds.rows.len();
    rule.check(n >= 3, || format!("spray slice too small to shard: {n} rows"));
    let unit = |lo: usize, hi: usize| UnitResult {
        stdout: format!("{:?}\n", &ds.rows[lo.min(n)..hi.min(n)]),
        files: vec![(format!("slice_{lo}.csv"), format!("{lo}..{hi}").into_bytes())],
    };
    let key = CampaignKey::new(seed, "test", "off", "u0,u1,u2", true);
    // The unsharded reference manifest.
    let mut full = Checkpoint::new(key.clone());
    full.record("u0", unit(0, n / 3));
    full.record("u1", unit(n / 3, 2 * n / 3));
    full.record("u2", unit(2 * n / 3, n));
    full.windows_done = 3;

    // Shard A flushed u0 and u1, then its manifest was torn 16 bytes short
    // (the chaos injector's exact damage): u1's trailing record is cut.
    let mut a = Checkpoint::new(key.clone());
    a.record("u0", full.units["u0"].clone());
    a.record("u1", full.units["u1"].clone());
    a.windows_done = 2;
    let bytes = a.encode();
    let (mut recovered, salvage) = match Checkpoint::decode_salvaging(&bytes[..bytes.len() - 16]) {
        Ok(x) => x,
        Err(e) => {
            rule.check(false, || format!("salvage rejected the torn manifest: {e}"));
            return rule.finish();
        }
    };
    rule.check(salvage.is_some(), || {
        "a 16-byte tear decoded clean — salvage saw no damage".to_string()
    });
    rule.check(
        recovered.units.len() == 1 && recovered.units.contains_key("u0"),
        || format!("salvage kept {:?}, expected exactly [u0]", recovered.units.keys()),
    );
    // The restarted worker recomputes the dropped unit and records it again.
    let mut redone = full.units["u1"].clone();
    if poison {
        redone.stdout.push('x'); // recovery that recomputed different bytes
    }
    recovered.record("u1", redone);

    // Shard B was healthy all along.
    let mut b = Checkpoint::new(key);
    b.record("u2", full.units["u2"].clone());
    b.windows_done = 1;

    match merge_shards(&[recovered, b]) {
        Ok(merged) => rule.check(merged.encode() == full.encode(), || {
            "salvaged-and-recovered merge differs from the unsharded manifest".to_string()
        }),
        Err(e) => rule.check(false, || format!("recovered merge rejected: {e}")),
    }
    rule.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_unique_and_complete() {
        let mut names = RULE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RULE_NAMES.len());
        assert_eq!(RULE_NAMES.len(), 14);
    }

    #[test]
    fn rule_accumulator_bounds_details() {
        let mut r = Rule::new("paths.valley_free");
        for i in 0..10 {
            r.check(false, || format!("violation {i}"));
        }
        let report = r.finish();
        assert_eq!(report.checked, 10);
        assert_eq!(report.violations, 10);
        assert_eq!(report.details.len(), Rule::MAX_DETAILS);
        assert!(!report.passed());
    }

    #[test]
    fn report_renders_pass_and_fail() {
        let mut ok = Rule::new("cdf.monotone");
        ok.check(true, || unreachable!());
        let mut bad = Rule::new("rtt.lightspeed");
        bad.check(false, || "injected".to_string());
        let report = AuditReport {
            seed: 1,
            scale: Scale::Test,
            faults: "off".to_string(),
            rules: vec![ok.finish(), bad.finish()],
        };
        assert!(!report.passed());
        let txt = report.render();
        assert!(txt.contains("cdf.monotone"));
        assert!(txt.contains("FAIL"));
        assert!(txt.contains("injected"));
        assert!(txt.contains("AUDIT FAILED: 1/2"));
    }

    #[test]
    fn metamorphic_relations_hold_on_test_slice() {
        assert!(faults_off_relation(11, false).passed());
        assert!(jobs_relation(11, false).passed());
        assert!(shard_relation(11, false).passed());
        assert!(orchestrated_identity_relation(11, false).passed());
    }

    #[test]
    fn metamorphic_poison_fires() {
        assert!(!faults_off_relation(11, true).passed());
        assert!(!jobs_relation(11, true).passed());
        assert!(!shard_relation(11, true).passed());
        assert!(!orchestrated_identity_relation(11, true).passed());
    }

    #[test]
    fn full_audit_passes_and_each_poison_fires_its_rule() {
        // One Test-scale build of all three studies, audited clean and then
        // once per poisoned rule — the poisoned rule (and only it) flips.
        let fb = Scenario::build(ScenarioConfig::facebook(7, Scale::Test));
        let egress = bb_core::study_egress::run(&fb, &mr_spray_cfg()).unwrap();
        let ms = Scenario::build(ScenarioConfig::microsoft(7, Scale::Test));
        let anycast = bb_core::study_anycast::run(
            &ms,
            &bb_measure::BeaconConfig {
                rounds: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let gg = Scenario::build(ScenarioConfig::google(7, Scale::Test));
        let tiers = bb_core::study_tiers::run(
            &gg,
            &bb_measure::ProbeConfig {
                rounds: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let opts = |violate: Option<String>| AuditOptions {
            seed: 7,
            scale: Scale::Test,
            faults: "off",
            violate,
        };
        let clean = run_audit(&fb, &egress, &ms, &anycast, &gg, &tiers, &opts(None));
        assert!(clean.passed(), "clean audit failed:\n{}", clean.render());
        assert_eq!(clean.rules.len(), RULE_NAMES.len());
        for (r, &name) in clean.rules.iter().zip(RULE_NAMES) {
            assert_eq!(r.name, name);
            assert!(r.checked > 0, "{name} checked nothing");
        }

        // Poison each invariant rule directly against the shared studies
        // (the metamorphic rules re-run whole Test slices, so their poison
        // path is covered by `metamorphic_poison_fires` above; the binary-
        // level BB_AUDIT_VIOLATE loop in CI covers all fourteen end to end).
        let poisoned = [
            valley_free_rule(&fb, &egress, true),
            planet_valley_free_rule(7, Scale::Test, true),
            lightspeed_rule(&fb, &egress, &ms, &anycast, &gg, &tiers, true),
            censoring_rule(&fb, &egress, true),
            cdf_monotone_rule(&egress, &anycast, true),
            weights_rule(&egress, &anycast, &tiers, true),
            coverage_rule(&fb, &egress, &ms, &anycast, &gg, &tiers, true),
            churn_rule(&fb, &egress, 7, true),
        ];
        for r in poisoned {
            assert!(!r.passed(), "poisoned rule {} did not fire", r.name);
            assert_eq!(r.violations, 1, "{} fired {} times", r.name, r.violations);
        }
        // The sketch poison corrupts one stream item but every quantile it
        // drags past the bound counts, so it can fire more than once.
        let r = sketch_error_rule(&egress, true);
        assert!(!r.passed(), "poisoned sketch.quantile_error did not fire");
    }
}
