//! Ablation benches for the design choices DESIGN.md calls out: each
//! group runs the experiment with a modeling mechanism switched off (or a
//! sweep step applied) so the cost and the effect of the mechanism can be
//! compared. `cargo bench -p bb-bench --bench ablations`.
//!
//! The *quality* deltas of these ablations are printed by
//! `repro xablate`; here we pin down their runtime cost.

use bb_core::ext::{grooming, peering_reduction, site_count};
use bb_core::study_egress;
use bb_core::{Scale, Scenario, ScenarioConfig};
use bb_measure::SprayConfig;
use bb_netsim::CongestionConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn quick_spray() -> SprayConfig {
    SprayConfig {
        days: 0.5,
        window_stride: 8,
        sessions_per_window: 5,
        ..Default::default()
    }
}

/// Ablation 1 (correlated congestion): destination-side congestion keys
/// off — every route degrades independently, the pre-2010 literature's
/// implicit assumption.
fn bench_ablation_correlation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_correlation");
    g.sample_size(10);
    for (label, metro, lastmile) in [("correlated", 0.10, 0.35), ("independent", 0.0, 0.0)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = ScenarioConfig::facebook(11, Scale::Test);
                cfg.congestion = CongestionConfig {
                    metro_events_per_day: metro,
                    lastmile_events_per_day: lastmile,
                    // Shift the event mass onto links when destination keys
                    // are off, keeping total churn comparable.
                    link_events_per_day: if metro == 0.0 { 0.7 } else { 0.25 },
                    ..Default::default()
                };
                let scenario = Scenario::build(cfg);
                let study = study_egress::run(&scenario, &quick_spray()).unwrap();
                black_box(study.fig1.frac_improvable_5ms)
            })
        });
    }
    g.finish();
}

/// Ablation 2 (exit policy fidelity): perfectly geographic exits vs the
/// default sloppy ones.
fn bench_ablation_exit_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_exit_policy");
    g.sample_size(10);
    for (label, factor) in [("sloppy_default", 0.72), ("perfect_geo", 1.0)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = ScenarioConfig::microsoft(12, Scale::Test);
                cfg.exit_fidelity_factor = factor;
                let scenario = Scenario::build(cfg);
                let steps = site_count::run(&scenario, &[8]);
                black_box(steps[0].misdirected)
            })
        });
    }
    g.finish();
}

/// Ablation 3 (peering breadth): one step of the §3.1.3 sweep.
fn bench_ablation_peering(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_peering");
    g.sample_size(10);
    let base = ScenarioConfig::facebook(13, Scale::Test);
    for (label, th) in [("wide_pni", 0.1), ("no_pni", 1.1)] {
        let base = base.clone();
        g.bench_function(label, |b| {
            b.iter(|| {
                let steps = peering_reduction::run(&base, &[th]);
                black_box(steps[0].median_rtt_ms)
            })
        });
    }
    g.finish();
}

/// Ablation 4 (grooming effort): the operator loop at increasing budgets.
fn bench_ablation_grooming(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_grooming");
    g.sample_size(10);
    let scenario = Scenario::build(ScenarioConfig::microsoft(14, Scale::Test));
    for iters in [0usize, 4, 12] {
        g.bench_function(format!("iterations_{iters}"), |b| {
            b.iter(|| {
                let steps = grooming::run(&scenario, 42, iters);
                black_box(steps.last().unwrap().p90_penalty_ms)
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_ablation_correlation,
    bench_ablation_exit_policy,
    bench_ablation_peering,
    bench_ablation_grooming
);
criterion_main!(ablations);
