//! One benchmark group per paper figure: measures the cost of regenerating
//! each figure end-to-end (world build + measurement campaign + analysis)
//! at test scale. `cargo bench -p bb-bench --bench figures`.
//!
//! These are the benches DESIGN.md's per-experiment index points at:
//! FIG1/FIG2 (`fig1_egress`, `fig2_route_class`), FIG3 (`fig3_anycast`),
//! FIG4 (`fig4_dns`), FIG5 (`fig5_tiers`), S23x (`calibration`).

use bb_core::{calibration, study_anycast, study_egress, study_tiers};
use bb_core::{Scale, Scenario, ScenarioConfig};
use bb_measure::{spray, BeaconConfig, ProbeConfig, SprayConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn quick_spray_cfg() -> SprayConfig {
    SprayConfig {
        days: 0.5,
        window_stride: 8,
        sessions_per_window: 5,
        ..Default::default()
    }
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_egress");
    g.sample_size(10);
    // End-to-end: world + campaign + analysis.
    g.bench_function("end_to_end", |b| {
        b.iter(|| {
            let scenario = Scenario::build(ScenarioConfig::facebook(1, Scale::Test));
            let study = study_egress::run(&scenario, &quick_spray_cfg()).unwrap();
            black_box(study.fig1.frac_improvable_5ms)
        })
    });
    // Analysis only, on a pre-collected dataset.
    let scenario = Scenario::build(ScenarioConfig::facebook(1, Scale::Test));
    let dataset = spray(
        &scenario.topo,
        &scenario.provider,
        &scenario.workload,
        &scenario.congestion,
        None,
        &quick_spray_cfg(),
    );
    g.bench_function("analysis_only", |b| {
        b.iter(|| {
            let study =
                study_egress::analyze(&scenario, &quick_spray_cfg(), dataset.clone()).unwrap();
            black_box(study.fig1.groups)
        })
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    // Fig 2 shares the Fig 1 dataset; its marginal cost is the class
    // comparison inside `analyze`, benchmarked via the spray campaign.
    let scenario = Scenario::build(ScenarioConfig::facebook(2, Scale::Test));
    let mut g = c.benchmark_group("fig2_route_class");
    g.sample_size(10);
    g.bench_function("campaign", |b| {
        b.iter(|| {
            let ds = spray(
                &scenario.topo,
                &scenario.provider,
                &scenario.workload,
                &scenario.congestion,
                None,
                &quick_spray_cfg(),
            );
            black_box(ds.rows.len())
        })
    });
    g.finish();
}

fn bench_fig3_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_anycast");
    g.sample_size(10);
    g.bench_function("end_to_end", |b| {
        b.iter(|| {
            let scenario = Scenario::build(ScenarioConfig::microsoft(3, Scale::Test));
            let study = study_anycast::run(
                &scenario,
                &BeaconConfig {
                    rounds: 4,
                    ..Default::default()
                },
            )
            .unwrap();
            black_box(study.fig3.frac_within_10ms)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("fig4_dns");
    g.sample_size(10);
    let scenario = Scenario::build(ScenarioConfig::microsoft(3, Scale::Test));
    let study = study_anycast::run(
        &scenario,
        &BeaconConfig {
            rounds: 4,
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function("train_and_test", |b| {
        b.iter(|| {
            let s = study_anycast::analyze(&scenario, study.measurements.clone()).unwrap();
            black_box(s.fig4.frac_improved)
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_tiers");
    g.sample_size(10);
    g.bench_function("end_to_end", |b| {
        b.iter(|| {
            let scenario = Scenario::build(ScenarioConfig::google(4, Scale::Test));
            let study = study_tiers::run(
                &scenario,
                &ProbeConfig {
                    rounds: 3,
                    ..Default::default()
                },
            )
            .unwrap();
            black_box(study.fig5.qualifying_vps)
        })
    });
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let scenario = Scenario::build(ScenarioConfig::facebook(5, Scale::Test));
    let mut g = c.benchmark_group("calibration");
    g.sample_size(10);
    g.bench_function("s23x", |b| {
        b.iter(|| black_box(calibration::run(&scenario).traffic_within_500km))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig2,
    bench_fig3_fig4,
    bench_fig5,
    bench_calibration
);
criterion_main!(figures);
