//! Micro-benchmarks of the substrate crates: topology generation, BGP
//! propagation, RIB construction, path realization, RTT evaluation,
//! congestion queries, and the statistics kernels.
//! `cargo bench -p bb-bench --bench substrates`.

use bb_bgp::{compute_routes, provider_rib, Announcement};
use bb_cdn::{build_provider, ProviderConfig};
use bb_netsim::{
    path_rtt_ms, realize_path, CongestionConfig, CongestionKey, CongestionModel, RealizeSpec,
    SimTime,
};
use bb_stats::{bootstrap_median_ci, weighted_quantile, Cdf};
use bb_topology::{generate, AsClass, TopologyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology");
    g.bench_function("generate_small", |b| {
        b.iter(|| black_box(generate(&TopologyConfig::small(1)).as_count()))
    });
    g.sample_size(20);
    g.bench_function("generate_full", |b| {
        b.iter(|| {
            black_box(
                generate(&TopologyConfig {
                    seed: 1,
                    ..Default::default()
                })
                .as_count(),
            )
        })
    });
    g.finish();
}

fn bench_bgp(c: &mut Criterion) {
    let topo = generate(&TopologyConfig {
        seed: 2,
        ..Default::default()
    });
    let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
    let ann = Announcement::full(&topo, origin);

    let mut g = c.benchmark_group("bgp");
    g.bench_function("propagate_full_world", |b| {
        b.iter(|| black_box(compute_routes(&topo, &ann).reachable_count()))
    });

    let mut topo2 = generate(&TopologyConfig {
        seed: 2,
        ..Default::default()
    });
    let provider = build_provider(&mut topo2, &ProviderConfig::facebook_like(2));
    let origin2 = topo2.ases_of_class(AsClass::Eyeball).next().unwrap().id;
    let table = compute_routes(&topo2, &Announcement::full(&topo2, origin2));
    g.bench_function("provider_rib", |b| {
        b.iter(|| black_box(provider_rib(&topo2, provider.asn, &table).len()))
    });
    g.finish();
}

fn bench_netsim(c: &mut Criterion) {
    let topo = generate(&TopologyConfig {
        seed: 3,
        ..Default::default()
    });
    let eye = topo.ases_of_class(AsClass::Eyeball).next().unwrap();
    let origin = eye.id;
    let dst_city = eye.footprint[0];
    let table = compute_routes(&topo, &Announcement::full(&topo, origin));
    let src = topo
        .ases()
        .iter()
        .find(|a| table.as_path(a.id).is_some_and(|p| p.len() >= 4))
        .unwrap();
    let path = table.as_path(src.id).unwrap();
    let spec = RealizeSpec {
        as_path: &path,
        src_city: src.footprint[0],
        dst_city: Some(dst_city),
        first_link: None,
        final_entry_links: None,
    };
    let realized = realize_path(&topo, &spec);
    let model = CongestionModel::new(3, CongestionConfig::default());

    let mut g = c.benchmark_group("netsim");
    g.bench_function("realize_4hop_path", |b| {
        b.iter(|| black_box(realize_path(&topo, &spec).hop_count()))
    });
    g.bench_function("path_rtt_cold_key", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(path_rtt_ms(
                &topo,
                &model,
                &realized,
                Some(CongestionKey::LastMile(i)),
                SimTime::from_hours(12.0),
            ))
        })
    });
    g.bench_function("path_rtt_warm_key", |b| {
        b.iter(|| {
            black_box(path_rtt_ms(
                &topo,
                &model,
                &realized,
                Some(CongestionKey::LastMile(1)),
                SimTime::from_hours(12.0),
            ))
        })
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let data: Vec<(f64, f64)> = (0..10_000)
        .map(|i| (((i * 2654435761u64 as usize) % 100_000) as f64, 1.0 + (i % 7) as f64))
        .collect();
    let values: Vec<f64> = data.iter().map(|&(v, _)| v).take(240).collect();

    let mut g = c.benchmark_group("stats");
    g.bench_function("weighted_quantile_10k", |b| {
        b.iter(|| black_box(weighted_quantile(&data, 0.5)))
    });
    g.bench_function("cdf_build_10k", |b| {
        b.iter(|| black_box(Cdf::from_weighted(&data).unwrap().len()))
    });
    g.bench_function("bootstrap_ci_240x120", |b| {
        b.iter(|| black_box(bootstrap_median_ci(&values, 0.95, 120, 7)))
    });
    g.finish();
}

criterion_group!(substrates, bench_topology, bench_bgp, bench_netsim, bench_stats);
criterion_main!(substrates);
