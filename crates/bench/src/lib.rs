//! Performance telemetry for the `repro` driver.
//!
//! The Criterion benchmark targets live in `benches/`; this library holds
//! the structured perf report that `repro --timing-json PATH` emits after a
//! run. The report captures per-phase wall-clock, sample-throughput
//! counters, plan-compile vs query time, and cache statistics so perf
//! regressions show up as a diffable artifact (`BENCH_<scale>.json`)
//! instead of an anecdote.
//!
//! The JSON writer is hand-rolled: the workspace intentionally vendors no
//! JSON dependency, and the schema is flat enough that escaping strings and
//! formatting numbers is all that is needed.

/// Aggregated wall-clock for one timing label.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    pub label: String,
    pub total_s: f64,
    pub calls: usize,
}

/// One named event counter (e.g. `samples:spray`).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    pub label: String,
    pub count: u64,
}

/// Route-table cache statistics for the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub resident: u64,
}

impl RouteCacheStats {
    /// Hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Route-cache delta attributed to one experiment: lookups observed while
/// that experiment's closure was running. Exact at `--jobs 1`; with
/// concurrent experiments the process-wide counters interleave, so a
/// lookup lands on whichever closure was on the clock when it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentCacheStats {
    pub experiment: String,
    pub hits: u64,
    pub misses: u64,
}

impl ExperimentCacheStats {
    /// Hit rate in [0, 1]; 0 when the experiment did no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Fault-plane statistics for the run (all zero when `--faults off`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Probe samples lost to injected loss, timeouts, or route churn.
    pub samples_lost: u64,
    /// Of `samples_lost`, attempts censored by the measurement timeout —
    /// split out so a timeout preset quietly eating legitimate long-haul
    /// RTTs is visible in the report, not folded into generic loss.
    pub timeouts: u64,
    /// Retransmissions attempted after a lost sample.
    pub retries: u64,
    /// Measurement windows dropped for falling below the minimum-sample
    /// threshold.
    pub windows_dropped: u64,
    /// Experiment panics contained by the isolation wrapper
    /// (`--keep-going`).
    pub panics_isolated: u64,
}

/// Supervision telemetry for the run: how the campaign's retry policy
/// exercised (all zero for a clean run with no retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisionStats {
    /// Total experiment attempts run (≥ the experiment count when
    /// anything was retried).
    pub attempts: u64,
    /// Attempts beyond each experiment's first.
    pub retries: u64,
    /// Panics absorbed across all attempts.
    pub panics_absorbed: u64,
    /// Experiments that failed at least once, then succeeded on retry.
    pub recovered: u64,
    /// Experiments that exhausted their retries without succeeding.
    pub failed: u64,
    /// Experiments never started because the campaign drained early
    /// (SIGINT/SIGTERM or a unit limit).
    pub skipped: u64,
    /// True when a retry was denied because the campaign-wide retry
    /// budget ran out.
    pub budget_exhausted: bool,
}

/// Wall-clock and outcome of one orchestrated shard process, summed over
/// all of its launches.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardWall {
    /// Shard label, e.g. `shard 0/3`.
    pub label: String,
    /// Child launches performed (first launch + restarts).
    pub attempts: u64,
    /// Total wall-clock across all launches, seconds.
    pub wall_s: f64,
    /// Final outcome label: completed | failed | fatal | cancelled.
    pub outcome: String,
}

/// Orchestration telemetry for `repro orchestrate`: how the process-level
/// supervisor exercised. Emitted only by orchestrated runs — the key is
/// absent from ordinary reports, keeping `bb-perf-report/v1` additive.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OrchestrationStats {
    /// Shard processes in the campaign.
    pub shards: u64,
    /// Total child launches across all shards.
    pub attempts: u64,
    /// Launches beyond each shard's first (crash/hang recoveries).
    pub restarts: u64,
    /// Nonzero child exits, signal deaths, and spawn errors observed.
    pub crashes_detected: u64,
    /// Stale-heartbeat kills.
    pub hangs_detected: u64,
    /// Torn shard manifests recovered by prefix salvage before resume.
    pub salvages: u64,
    /// True when a restart was denied because the campaign budget ran out.
    pub budget_exhausted: bool,
    /// Per-shard wall-clock and outcome, in shard order.
    pub per_shard: Vec<ShardWall>,
}

/// Streaming-daemon telemetry for `repro serve`: progress, sketch memory,
/// and degraded-mode activity. Emitted only by serve runs — the key is
/// absent from ordinary reports, keeping `bb-perf-report/v1` additive.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeStats {
    /// Aggregation mode: `exact` or `sketch`.
    pub mode: String,
    /// Declared sketch ε (`0` in exact mode).
    pub epsilon: f64,
    /// ε in force at the end of the run (grows with coarsening).
    pub epsilon_in_force: f64,
    /// Measurement windows fully ingested.
    pub windows_done: u64,
    /// Snapshot epochs flushed.
    pub epochs_flushed: u64,
    /// Resident state bytes at the end of the run (counter-based
    /// accounting, see `ServeState::resident_bytes`).
    pub resident_bytes: u64,
    /// High-water resident state bytes across all epoch boundaries.
    pub peak_resident_bytes: u64,
    /// Governor coarsening rounds applied across the run's lifetime
    /// (resumed runs carry the count forward from the snapshot).
    pub governor_coarsenings: u64,
    /// Epoch deadline misses observed by the watchdog (telemetry only).
    pub deadline_misses: u64,
    /// True when this run resumed from an existing snapshot.
    pub resumed: bool,
}

/// RIB-memory and propagation-work telemetry, rolled up from the `rib:*`
/// counters the route cache publishes on every miss. Emitted only when the
/// run computed at least one routing table — the key is absent otherwise,
/// keeping `bb-perf-report/v1` additive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RibStats {
    /// Routing tables computed (cache misses).
    pub tables: u64,
    /// Bytes held by the shared-suffix interned-path arenas.
    pub interned_bytes: u64,
    /// Bytes the same tables would spend on naive per-AS `Vec<AsId>` paths.
    pub naive_bytes: u64,
    /// Bytes held by the announcement entry-link pools.
    pub entry_pool_bytes: u64,
    /// Candidate routes offered to the decision process.
    pub candidates_considered: u64,
    /// Candidates that won and were installed.
    pub candidates_installed: u64,
}

impl RibStats {
    /// Interned-arena bytes as a fraction of the naive layout; 0 when no
    /// tables were computed.
    pub fn interned_ratio(&self) -> f64 {
        if self.naive_bytes == 0 {
            0.0
        } else {
            self.interned_bytes as f64 / self.naive_bytes as f64
        }
    }
}

/// Schema tag embedded in every report so downstream tooling can detect
/// layout changes.
pub const PERF_SCHEMA: &str = "bb-perf-report/v1";

/// Structured perf report for one `repro` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    pub experiment: String,
    pub scale: String,
    pub seed: u64,
    pub jobs: usize,
    /// End-to-end wall-clock of the run, seconds.
    pub wall_s: f64,
    /// Per-label aggregated timings, sorted by label.
    pub phases: Vec<PhaseTiming>,
    /// Event counters (sample counts etc.), sorted by label.
    pub counters: Vec<CounterSample>,
    /// Total RTT samples drawn (sum of `samples:*` counters).
    pub total_samples: u64,
    /// `total_samples / wall_s`; headline throughput number.
    pub samples_per_sec: f64,
    /// Time spent compiling congestion/path plans (sum of `*:plan` labels).
    pub plan_compile_s: f64,
    /// Time spent querying compiled plans in measurement hot loops
    /// (sum of `*:windows` labels).
    pub plan_query_s: f64,
    pub route_cache: RouteCacheStats,
    /// Per-experiment route-cache deltas, in campaign output order. An
    /// additive section: consumers of `bb-perf-report/v1` that ignore
    /// unknown keys keep parsing.
    pub route_cache_by_experiment: Vec<ExperimentCacheStats>,
    /// Fault-injection telemetry (`--faults light|heavy`, `--keep-going`).
    pub faults: FaultStats,
    /// Supervised-retry telemetry (attempts, recoveries, drain skips).
    pub supervision: SupervisionStats,
    /// Process-level orchestration telemetry (`repro orchestrate`). `None`
    /// for ordinary runs; the JSON key is emitted only when present, so
    /// existing report consumers and diffs are untouched.
    pub orchestration: Option<OrchestrationStats>,
    /// Streaming-daemon telemetry (`repro serve`). Same additive contract
    /// as `orchestration`: the key exists only when the run was a serve.
    pub serve: Option<ServeStats>,
    /// RIB-memory telemetry, derived by [`PerfReport::finalize`] from the
    /// `rib:*` counters. Same additive contract: the key exists only when
    /// the run computed routing tables.
    pub rib: Option<RibStats>,
    /// Congestion-process double-materializations avoided by the
    /// write-lock double-check (nonzero only under `--jobs > 1`).
    pub congestion_races_closed: u64,
}

impl PerfReport {
    /// Derive the roll-up fields (`total_samples`, `samples_per_sec`,
    /// `plan_compile_s`, `plan_query_s`) from `phases` and `counters`.
    pub fn finalize(mut self) -> Self {
        self.total_samples = self
            .counters
            .iter()
            .filter(|c| c.label.starts_with("samples:"))
            .map(|c| c.count)
            .sum();
        self.samples_per_sec = if self.wall_s > 0.0 {
            self.total_samples as f64 / self.wall_s
        } else {
            0.0
        };
        self.plan_compile_s = self
            .phases
            .iter()
            .filter(|p| p.label.ends_with(":plan"))
            .map(|p| p.total_s)
            .sum();
        self.plan_query_s = self
            .phases
            .iter()
            .filter(|p| p.label.ends_with(":windows"))
            .map(|p| p.total_s)
            .sum();
        let rib_counter = |label: &str| {
            self.counters
                .iter()
                .find(|c| c.label == label)
                .map_or(0, |c| c.count)
        };
        if self.counters.iter().any(|c| c.label.starts_with("rib:")) {
            self.rib = Some(RibStats {
                tables: rib_counter("rib:tables"),
                interned_bytes: rib_counter("rib:interned_bytes"),
                naive_bytes: rib_counter("rib:naive_bytes"),
                entry_pool_bytes: rib_counter("rib:entry_pool_bytes"),
                candidates_considered: rib_counter("rib:candidates_considered"),
                candidates_installed: rib_counter("rib:candidates_installed"),
            });
        }
        self
    }

    /// Render as pretty-printed JSON (two-space indent, stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        json_kv_str(&mut out, "schema", PERF_SCHEMA, true);
        json_kv_str(&mut out, "experiment", &self.experiment, true);
        json_kv_str(&mut out, "scale", &self.scale, true);
        json_kv_raw(&mut out, "seed", &self.seed.to_string(), true);
        json_kv_raw(&mut out, "jobs", &self.jobs.to_string(), true);
        json_kv_raw(&mut out, "wall_s", &json_f64(self.wall_s), true);
        json_kv_raw(&mut out, "total_samples", &self.total_samples.to_string(), true);
        json_kv_raw(&mut out, "samples_per_sec", &json_f64(self.samples_per_sec), true);
        json_kv_raw(&mut out, "plan_compile_s", &json_f64(self.plan_compile_s), true);
        json_kv_raw(&mut out, "plan_query_s", &json_f64(self.plan_query_s), true);

        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": {}, \"total_s\": {}, \"calls\": {}}}",
                json_str(&p.label),
                json_f64(p.total_s),
                p.calls
            ));
            if i + 1 < self.phases.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");

        out.push_str("  \"counters\": [\n");
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": {}, \"count\": {}}}",
                json_str(&c.label),
                c.count
            ));
            if i + 1 < self.counters.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");

        out.push_str(&format!(
            "  \"route_cache\": {{\"hits\": {}, \"misses\": {}, \"resident\": {}, \"hit_rate\": {}}},\n",
            self.route_cache.hits,
            self.route_cache.misses,
            self.route_cache.resident,
            json_f64(self.route_cache.hit_rate())
        ));

        out.push_str("  \"route_cache_by_experiment\": [\n");
        for (i, e) in self.route_cache_by_experiment.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"experiment\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {}}}",
                json_str(&e.experiment),
                e.hits,
                e.misses,
                json_f64(e.hit_rate())
            ));
            if i + 1 < self.route_cache_by_experiment.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");

        out.push_str(&format!(
            "  \"faults\": {{\"samples_lost\": {}, \"timeouts\": {}, \"retries\": {}, \"windows_dropped\": {}, \"panics_isolated\": {}}},\n",
            self.faults.samples_lost,
            self.faults.timeouts,
            self.faults.retries,
            self.faults.windows_dropped,
            self.faults.panics_isolated
        ));

        out.push_str(&format!(
            "  \"supervision\": {{\"attempts\": {}, \"retries\": {}, \"panics_absorbed\": {}, \
             \"recovered\": {}, \"failed\": {}, \"skipped\": {}, \"budget_exhausted\": {}}},\n",
            self.supervision.attempts,
            self.supervision.retries,
            self.supervision.panics_absorbed,
            self.supervision.recovered,
            self.supervision.failed,
            self.supervision.skipped,
            self.supervision.budget_exhausted
        ));

        if let Some(orch) = &self.orchestration {
            out.push_str(&format!(
                "  \"orchestration\": {{\"shards\": {}, \"attempts\": {}, \"restarts\": {}, \
                 \"crashes_detected\": {}, \"hangs_detected\": {}, \"salvages\": {}, \
                 \"budget_exhausted\": {}, \"per_shard\": [",
                orch.shards,
                orch.attempts,
                orch.restarts,
                orch.crashes_detected,
                orch.hangs_detected,
                orch.salvages,
                orch.budget_exhausted
            ));
            for (i, s) in orch.per_shard.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"label\": {}, \"attempts\": {}, \"wall_s\": {}, \"outcome\": {}}}",
                    json_str(&s.label),
                    s.attempts,
                    json_f64(s.wall_s),
                    json_str(&s.outcome)
                ));
            }
            out.push_str("]},\n");
        }

        if let Some(s) = &self.serve {
            out.push_str(&format!(
                "  \"serve\": {{\"mode\": {}, \"epsilon\": {}, \"epsilon_in_force\": {}, \
                 \"windows_done\": {}, \"epochs_flushed\": {}, \"resident_bytes\": {}, \
                 \"peak_resident_bytes\": {}, \"governor_coarsenings\": {}, \
                 \"deadline_misses\": {}, \"resumed\": {}}},\n",
                json_str(&s.mode),
                json_f64(s.epsilon),
                json_f64(s.epsilon_in_force),
                s.windows_done,
                s.epochs_flushed,
                s.resident_bytes,
                s.peak_resident_bytes,
                s.governor_coarsenings,
                s.deadline_misses,
                s.resumed
            ));
        }

        if let Some(r) = &self.rib {
            out.push_str(&format!(
                "  \"rib\": {{\"tables\": {}, \"interned_bytes\": {}, \"naive_bytes\": {}, \
                 \"entry_pool_bytes\": {}, \"interned_ratio\": {}, \
                 \"candidates_considered\": {}, \"candidates_installed\": {}}},\n",
                r.tables,
                r.interned_bytes,
                r.naive_bytes,
                r.entry_pool_bytes,
                json_f64(r.interned_ratio()),
                r.candidates_considered,
                r.candidates_installed
            ));
        }

        json_kv_raw(
            &mut out,
            "congestion_races_closed",
            &self.congestion_races_closed.to_string(),
            false,
        );
        out.push_str("}\n");
        out
    }
}

/// Format an f64 as a JSON number. NaN/inf have no JSON representation;
/// they become null (they only arise from a zero-duration run).
fn json_f64(x: f64) -> String {
    // An empty `Iterator::sum::<f64>()` is -0.0; render it as plain 0.
    let x = if x == 0.0 { 0.0 } else { x };
    if x.is_finite() {
        // Enough digits to round-trip timings; trailing zeros trimmed for
        // stable, readable diffs.
        let s = format!("{x:.6}");
        let s = s.trim_end_matches('0');
        let s = s.strip_suffix('.').unwrap_or(s);
        s.to_string()
    } else {
        "null".to_string()
    }
}

/// Escape a string per JSON (RFC 8259 §7).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_kv_str(out: &mut String, key: &str, val: &str, comma: bool) {
    json_kv_raw(out, key, &json_str(val), comma);
}

fn json_kv_raw(out: &mut String, key: &str, val: &str, comma: bool) {
    out.push_str(&format!("  \"{key}\": {val}"));
    if comma {
        out.push(',');
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        PerfReport {
            experiment: "all".into(),
            scale: "test".into(),
            seed: 42,
            jobs: 1,
            wall_s: 2.0,
            phases: vec![
                PhaseTiming {
                    label: "spray:plan".into(),
                    total_s: 0.002,
                    calls: 3,
                },
                PhaseTiming {
                    label: "spray:windows".into(),
                    total_s: 1.25,
                    calls: 3,
                },
            ],
            counters: vec![
                CounterSample {
                    label: "samples:spray".into(),
                    count: 1_000_000,
                },
                CounterSample {
                    label: "samples:probe".into(),
                    count: 500_000,
                },
            ],
            total_samples: 0,
            samples_per_sec: 0.0,
            plan_compile_s: 0.0,
            plan_query_s: 0.0,
            route_cache: RouteCacheStats {
                hits: 10,
                misses: 30,
                resident: 30,
            },
            route_cache_by_experiment: vec![
                ExperimentCacheStats {
                    experiment: "fig1".into(),
                    hits: 10,
                    misses: 20,
                },
                ExperimentCacheStats {
                    experiment: "fig2".into(),
                    hits: 0,
                    misses: 10,
                },
            ],
            faults: FaultStats {
                samples_lost: 7,
                timeouts: 2,
                retries: 3,
                windows_dropped: 1,
                panics_isolated: 0,
            },
            supervision: SupervisionStats {
                attempts: 19,
                retries: 2,
                panics_absorbed: 2,
                recovered: 1,
                failed: 1,
                skipped: 0,
                budget_exhausted: false,
            },
            orchestration: None,
            serve: None,
            rib: None,
            congestion_races_closed: 0,
        }
        .finalize()
    }

    #[test]
    fn finalize_rolls_up_derived_fields() {
        let r = sample_report();
        assert_eq!(r.total_samples, 1_500_000);
        assert_eq!(r.samples_per_sec, 750_000.0);
        assert_eq!(r.plan_compile_s, 0.002);
        assert_eq!(r.plan_query_s, 1.25);
    }

    #[test]
    fn json_contains_schema_and_keys() {
        let j = sample_report().to_json();
        for key in [
            "\"schema\": \"bb-perf-report/v1\"",
            "\"experiment\": \"all\"",
            "\"scale\": \"test\"",
            "\"seed\": 42",
            "\"jobs\": 1",
            "\"wall_s\": 2",
            "\"total_samples\": 1500000",
            "\"samples_per_sec\": 750000",
            "\"plan_compile_s\": 0.002",
            "\"plan_query_s\": 1.25",
            "\"phases\": [",
            "\"counters\": [",
            "\"route_cache\": {",
            "\"hit_rate\": 0.25",
            "\"route_cache_by_experiment\": [",
            "{\"experiment\": \"fig1\", \"hits\": 10, \"misses\": 20, \"hit_rate\": 0.333333}",
            "\"faults\": {",
            "\"samples_lost\": 7",
            "\"timeouts\": 2",
            "\"retries\": 3",
            "\"windows_dropped\": 1",
            "\"panics_isolated\": 0",
            "\"supervision\": {",
            "\"attempts\": 19",
            "\"recovered\": 1",
            "\"budget_exhausted\": false",
            "\"congestion_races_closed\": 0",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
        // Crude but effective structural checks for hand-rolled JSON.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n}"), "trailing comma before object close");
        assert!(!j.contains(",\n  ]"), "trailing comma before array close");
    }

    #[test]
    fn orchestration_section_is_emitted_only_when_present() {
        // Ordinary runs: no key at all, so existing report diffs are stable.
        let j = sample_report().to_json();
        assert!(!j.contains("\"orchestration\""), "{j}");

        let mut r = sample_report();
        r.orchestration = Some(OrchestrationStats {
            shards: 3,
            attempts: 5,
            restarts: 2,
            crashes_detected: 1,
            hangs_detected: 1,
            salvages: 1,
            budget_exhausted: false,
            per_shard: vec![
                ShardWall {
                    label: "shard 0/3".into(),
                    attempts: 1,
                    wall_s: 1.25,
                    outcome: "completed".into(),
                },
                ShardWall {
                    label: "shard 1/3".into(),
                    attempts: 2,
                    wall_s: 2.5,
                    outcome: "completed".into(),
                },
            ],
        });
        let j = r.to_json();
        for key in [
            "\"orchestration\": {\"shards\": 3",
            "\"restarts\": 2",
            "\"crashes_detected\": 1",
            "\"hangs_detected\": 1",
            "\"salvages\": 1",
            "\"per_shard\": [",
            "{\"label\": \"shard 0/3\", \"attempts\": 1, \"wall_s\": 1.25, \"outcome\": \"completed\"}",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n}"), "trailing comma before object close");
    }

    #[test]
    fn serve_section_is_emitted_only_when_present() {
        let j = sample_report().to_json();
        assert!(!j.contains("\"serve\""), "{j}");

        let mut r = sample_report();
        r.serve = Some(ServeStats {
            mode: "sketch".into(),
            epsilon: 0.02,
            epsilon_in_force: 0.04,
            windows_done: 200,
            epochs_flushed: 8,
            resident_bytes: 65536,
            peak_resident_bytes: 131072,
            governor_coarsenings: 1,
            deadline_misses: 0,
            resumed: true,
        });
        let j = r.to_json();
        for key in [
            "\"serve\": {\"mode\": \"sketch\"",
            "\"epsilon\": 0.02",
            "\"epsilon_in_force\": 0.04",
            "\"windows_done\": 200",
            "\"epochs_flushed\": 8",
            "\"resident_bytes\": 65536",
            "\"peak_resident_bytes\": 131072",
            "\"governor_coarsenings\": 1",
            "\"deadline_misses\": 0",
            "\"resumed\": true",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n}"), "trailing comma before object close");
    }

    #[test]
    fn rib_section_rolls_up_from_counters() {
        // No rib:* counters -> no key: pre-existing reports diff clean.
        let j = sample_report().to_json();
        assert!(!j.contains("\"rib\""), "{j}");

        let mut r = sample_report();
        r.counters.extend([
            CounterSample {
                label: "rib:tables".into(),
                count: 3,
            },
            CounterSample {
                label: "rib:interned_bytes".into(),
                count: 2_000,
            },
            CounterSample {
                label: "rib:naive_bytes".into(),
                count: 16_000,
            },
            CounterSample {
                label: "rib:entry_pool_bytes".into(),
                count: 256,
            },
            CounterSample {
                label: "rib:candidates_considered".into(),
                count: 900,
            },
            CounterSample {
                label: "rib:candidates_installed".into(),
                count: 300,
            },
        ]);
        let r = r.finalize();
        let rib = r.rib.expect("rib counters present");
        assert_eq!(rib.tables, 3);
        assert_eq!(rib.interned_ratio(), 0.125);
        let j = r.to_json();
        for key in [
            "\"rib\": {\"tables\": 3",
            "\"interned_bytes\": 2000",
            "\"naive_bytes\": 16000",
            "\"entry_pool_bytes\": 256",
            "\"interned_ratio\": 0.125",
            "\"candidates_considered\": 900",
            "\"candidates_installed\": 300",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",\n}"), "trailing comma before object close");
        assert_eq!(RibStats::default().interned_ratio(), 0.0);
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_f64_trims_and_handles_nonfinite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(0.000001), "0.000001");
        assert_eq!(json_f64(-0.0), "0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn hit_rate_handles_empty_cache() {
        assert_eq!(RouteCacheStats::default().hit_rate(), 0.0);
    }
}
