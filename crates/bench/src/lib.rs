//! Benchmark-only crate. The Criterion benchmark targets live in
//! `benches/`; this library is intentionally empty.
