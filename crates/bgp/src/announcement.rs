//! Announcement control: which interconnects a prefix is announced over,
//! with optional AS-path prepending — the "grooming" levers of §3.2.2.
//!
//! Plain BGP announces everywhere with no prepending
//! ([`Announcement::full`]). Grooming withholds the announcement at chosen
//! interconnects/cities, prepends there, or attaches a NO_EXPORT community
//! ("adding a BGP community to control propagation", §3.2.2) so the
//! neighbor keeps the route to itself — all of which shift neighbors' path
//! choices and therefore anycast catchments.

use bb_topology::{AsId, InterconnectId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An announcement that does not belong to the topology it is being
/// propagated over — built against a different world (easy once CAIDA
/// snapshots load at runtime) or against a since-mutated one. Surfaced as
/// a usage error instead of a panic so a planet-scale campaign fails
/// closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnouncementError {
    /// The origin AS id is out of range for this topology.
    UnknownOrigin { origin: AsId, as_count: usize },
    /// An offered interconnect id is out of range for this topology.
    UnknownLink {
        origin: AsId,
        link: InterconnectId,
        link_count: usize,
    },
    /// An offered interconnect exists but does not touch the origin.
    ForeignLink {
        origin: AsId,
        link: InterconnectId,
        a: AsId,
        b: AsId,
    },
    /// An offered link implies no business relationship in this topology.
    MissingRelationship { origin: AsId, neighbor: AsId },
}

impl std::fmt::Display for AnnouncementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnouncementError::UnknownOrigin { origin, as_count } => write!(
                f,
                "announcement origin {origin} is not in this topology ({as_count} ASes) — \
                 was it built against a different world?"
            ),
            AnnouncementError::UnknownLink {
                origin,
                link,
                link_count,
            } => write!(
                f,
                "announcement from {origin} offers {link:?} but this topology has only \
                 {link_count} interconnects — was it built against a different world?"
            ),
            AnnouncementError::ForeignLink { origin, link, a, b } => write!(
                f,
                "announcement from {origin} offers {link:?}, which connects {a}–{b}, \
                 not the origin — it cannot announce over another AS's interconnect"
            ),
            AnnouncementError::MissingRelationship { origin, neighbor } => write!(
                f,
                "announcement from {origin} offers a link to {neighbor} but the topology \
                 records no business relationship between them"
            ),
        }
    }
}

impl std::error::Error for AnnouncementError {}

/// Propagation scope attached to one offer (the community, in BGP terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// Normal propagation: the neighbor re-exports per Gao-Rexford rules.
    Global,
    /// NO_EXPORT: the neighbor installs the route but must not re-export
    /// it — the announcement's reach ends one AS away. Used to scope an
    /// anycast site to its directly-connected networks.
    NoExport,
}

/// One announced interconnect: prepend count plus community scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Offer {
    pub prepend: u32,
    pub scope: Scope,
}

impl Offer {
    fn plain() -> Offer {
        Offer {
            prepend: 0,
            scope: Scope::Global,
        }
    }
}

/// An origin AS's announcement configuration for one prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Announcement {
    pub origin: AsId,
    /// Announced interconnects → offer. Interconnects of the origin absent
    /// from this map are withheld.
    offers: BTreeMap<InterconnectId, Offer>,
}

impl Announcement {
    /// Announce on every interconnect of `origin`, no prepending.
    pub fn full(topo: &Topology, origin: AsId) -> Announcement {
        let offers = topo
            .adjacency(origin)
            .iter()
            .map(|&(_, link)| (link, Offer::plain()))
            .collect();
        Announcement { origin, offers }
    }

    /// Announce nowhere (useful as a base for selective announcement).
    pub fn empty(origin: AsId) -> Announcement {
        Announcement {
            origin,
            offers: BTreeMap::new(),
        }
    }

    /// Add or update a single interconnect offer (global scope).
    pub fn offer(&mut self, link: InterconnectId, prepend: u32) -> &mut Self {
        self.offers.insert(
            link,
            Offer {
                prepend,
                scope: Scope::Global,
            },
        );
        self
    }

    /// Add or update an offer with an explicit community scope.
    pub fn offer_scoped(&mut self, link: InterconnectId, prepend: u32, scope: Scope) -> &mut Self {
        self.offers.insert(link, Offer { prepend, scope });
        self
    }

    /// Attach NO_EXPORT to every offer in `city` (scope the site's
    /// announcement to directly-connected networks).
    pub fn no_export_city(&mut self, topo: &Topology, city: bb_geo::CityId) -> &mut Self {
        for (&l, offer) in self.offers.iter_mut() {
            if topo.link(l).city == city {
                offer.scope = Scope::NoExport;
            }
        }
        self
    }

    /// Withdraw the announcement on one interconnect.
    pub fn withhold_link(&mut self, link: InterconnectId) -> &mut Self {
        self.offers.remove(&link);
        self
    }

    /// Withdraw the announcement on every interconnect in `city`.
    pub fn withhold_city(&mut self, topo: &Topology, city: bb_geo::CityId) -> &mut Self {
        self.offers.retain(|&l, _| topo.link(l).city != city);
        self
    }

    /// Prepend `n` at every interconnect in `city`.
    pub fn prepend_city(&mut self, topo: &Topology, city: bb_geo::CityId, n: u32) -> &mut Self {
        for (&l, offer) in self.offers.iter_mut() {
            if topo.link(l).city == city {
                offer.prepend = n;
            }
        }
        self
    }

    /// Prepend `n` on a single interconnect.
    pub fn prepend_link(&mut self, link: InterconnectId, n: u32) -> &mut Self {
        if let Some(offer) = self.offers.get_mut(&link) {
            offer.prepend = n;
        }
        self
    }

    /// All offers as (link, prepend) pairs.
    pub fn offers(&self) -> impl Iterator<Item = (InterconnectId, u32)> + '_ {
        self.offers.iter().map(|(&l, &o)| (l, o.prepend))
    }

    /// All offers with their full (prepend, scope) detail.
    pub fn offers_detailed(&self) -> impl Iterator<Item = (InterconnectId, Offer)> + '_ {
        self.offers.iter().map(|(&l, &o)| (l, o))
    }

    /// Offers grouped by the neighbor AS on the other side, with the
    /// effective (minimum) prepend and the tied-best entry links.
    ///
    /// The effective scope is `Global` if *any* tied-best link is global
    /// (the neighbor is free to re-export the untagged copy).
    pub fn offers_by_neighbor(&self, topo: &Topology) -> Vec<NeighborOffer> {
        let mut by_nb: BTreeMap<AsId, (u32, Vec<InterconnectId>, Scope)> = BTreeMap::new();
        for (link, offer) in self.offers_detailed() {
            let nb = topo.link(link).other(self.origin);
            let entry = by_nb.entry(nb).or_insert((u32::MAX, Vec::new(), Scope::NoExport));
            match offer.prepend.cmp(&entry.0) {
                std::cmp::Ordering::Less => {
                    *entry = (offer.prepend, vec![link], offer.scope)
                }
                std::cmp::Ordering::Equal => {
                    entry.1.push(link);
                    if offer.scope == Scope::Global {
                        entry.2 = Scope::Global;
                    }
                }
                std::cmp::Ordering::Greater => {}
            }
        }
        by_nb
            .into_iter()
            .map(|(neighbor, (prepend, entry_links, scope))| NeighborOffer {
                neighbor,
                prepend,
                entry_links,
                scope,
            })
            .collect()
    }

    /// Check that this announcement belongs to `topo`: the origin exists,
    /// every offered link exists, touches the origin, and implies a
    /// relationship. Propagation calls this before seeding so mismatched
    /// announcements fail closed rather than panicking mid-campaign.
    pub fn validate(&self, topo: &Topology) -> Result<(), AnnouncementError> {
        if self.origin.index() >= topo.as_count() {
            return Err(AnnouncementError::UnknownOrigin {
                origin: self.origin,
                as_count: topo.as_count(),
            });
        }
        for &link in self.offers.keys() {
            if link.index() >= topo.link_count() {
                return Err(AnnouncementError::UnknownLink {
                    origin: self.origin,
                    link,
                    link_count: topo.link_count(),
                });
            }
            let l = topo.link(link);
            if l.a != self.origin && l.b != self.origin {
                return Err(AnnouncementError::ForeignLink {
                    origin: self.origin,
                    link,
                    a: l.a,
                    b: l.b,
                });
            }
            let neighbor = l.other(self.origin);
            if topo.relationship(self.origin, neighbor).is_none() {
                return Err(AnnouncementError::MissingRelationship {
                    origin: self.origin,
                    neighbor,
                });
            }
        }
        Ok(())
    }

    /// Number of announced interconnects.
    pub fn len(&self) -> usize {
        self.offers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.offers.is_empty()
    }
}

/// The effective announcement one neighbor AS hears.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborOffer {
    pub neighbor: AsId,
    /// Minimum prepend across that neighbor's announced interconnects.
    pub prepend: u32,
    /// The interconnects achieving that minimum (BGP-tied; geography picks).
    pub entry_links: Vec<InterconnectId>,
    /// Effective community scope of the best offer.
    pub scope: Scope,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_topology::{generate, TopologyConfig};

    fn topo() -> Topology {
        generate(&TopologyConfig::small(11))
    }

    fn some_multi_link_origin(topo: &Topology) -> AsId {
        topo.ases()
            .iter()
            .find(|a| topo.adjacency(a.id).len() >= 3)
            .unwrap()
            .id
    }

    #[test]
    fn full_covers_all_interconnects() {
        let t = topo();
        let o = some_multi_link_origin(&t);
        let ann = Announcement::full(&t, o);
        assert_eq!(ann.len(), t.adjacency(o).len());
    }

    #[test]
    fn withhold_link_removes_offer() {
        let t = topo();
        let o = some_multi_link_origin(&t);
        let mut ann = Announcement::full(&t, o);
        let first = t.adjacency(o)[0].1;
        ann.withhold_link(first);
        assert_eq!(ann.len(), t.adjacency(o).len() - 1);
        assert!(ann.offers().all(|(l, _)| l != first));
    }

    #[test]
    fn withhold_city_removes_all_offers_there() {
        let t = topo();
        let o = some_multi_link_origin(&t);
        let mut ann = Announcement::full(&t, o);
        let city = t.link(t.adjacency(o)[0].1).city;
        ann.withhold_city(&t, city);
        assert!(ann.offers().all(|(l, _)| t.link(l).city != city));
    }

    #[test]
    fn prepend_changes_effective_offer() {
        let t = topo();
        let o = some_multi_link_origin(&t);
        let mut ann = Announcement::full(&t, o);
        // Prepend on all but one of a neighbor's links: the neighbor's
        // effective prepend stays 0 and the entry set shrinks.
        let nb = t.adjacency(o)[0].0;
        let links: Vec<InterconnectId> =
            ann.offers().map(|(l, _)| l).filter(|&l| t.link(l).other(o) == nb).collect();
        for &l in &links[1..] {
            ann.prepend_link(l, 3);
        }
        let offers = ann.offers_by_neighbor(&t);
        let off = offers.iter().find(|x| x.neighbor == nb).unwrap();
        assert_eq!(off.prepend, 0);
        assert_eq!(off.entry_links, vec![links[0]]);
    }

    #[test]
    fn empty_announcement_has_no_neighbors() {
        let t = topo();
        let o = some_multi_link_origin(&t);
        let ann = Announcement::empty(o);
        assert!(ann.is_empty());
        assert!(ann.offers_by_neighbor(&t).is_empty());
    }
}
