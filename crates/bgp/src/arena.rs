//! Shared-suffix AS-path interning and entry-link pooling.
//!
//! At planet scale (≥50k ASes) a routing table that stores one owned
//! `Vec<AsId>` path per AS costs `Σ (24 + 4·len)` bytes and thrashes the
//! allocator. But Gao-Rexford best routes form a forest: every AS's path is
//! `[asn] ++ path(via)`, so all paths through a common next hop share their
//! entire suffix. The [`PathArena`] stores that forest directly — one
//! 8-byte node `(head, parent)` per routed AS — and a route carries a
//! 4-byte [`PathHandle`] instead of an owned vector. Paths are
//! materialized on demand by walking parent links.
//!
//! [`EntryPool`] plays the same trick for the tied-best entry links that
//! first-hop neighbors of the origin carry: one shared `Vec` of link ids
//! plus `(offset, len)` spans, addressed by a 4-byte [`EntryHandle`].

use bb_topology::{AsId, InterconnectId};
use serde::{Deserialize, Serialize};

/// Handle into a [`PathArena`]. Only meaningful together with the arena
/// (i.e. the `RoutingTable`) it was issued by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathHandle(pub(crate) u32);

impl PathHandle {
    /// No interned path (unrouted, or not yet finalized).
    pub const NONE: PathHandle = PathHandle(u32::MAX);
    /// The via-chain below this AS contains a cycle; no path exists.
    pub const CYCLE: PathHandle = PathHandle(u32::MAX - 1);

    pub fn is_none(self) -> bool {
        self == Self::NONE
    }

    pub fn is_cycle(self) -> bool {
        self == Self::CYCLE
    }

    fn is_real(self) -> bool {
        self.0 < u32::MAX - 1
    }
}

/// Handle into an [`EntryPool`] span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EntryHandle(pub(crate) u32);

impl EntryHandle {
    /// Empty entry-link set (every route that is not a first hop).
    pub const NONE: EntryHandle = EntryHandle(u32::MAX);

    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

/// One parent-chain node: `head` prepended onto the path at `parent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PathNode {
    head: AsId,
    parent: PathHandle,
}

/// The shared-suffix path forest. `PathHandle::NONE` as a parent marks a
/// path root (the origin's own one-element path).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathArena {
    nodes: Vec<PathNode>,
}

impl PathArena {
    pub fn with_capacity(n: usize) -> PathArena {
        PathArena {
            nodes: Vec::with_capacity(n),
        }
    }

    /// Intern the path `[head] ++ materialize(parent)`.
    pub fn intern(&mut self, head: AsId, parent: PathHandle) -> PathHandle {
        debug_assert!(parent.is_none() || parent.0 < self.nodes.len() as u32);
        let h = PathHandle(self.nodes.len() as u32);
        assert!(h.is_real(), "path arena overflow");
        self.nodes.push(PathNode { head, parent });
        h
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Bytes held by the arena's node storage.
    pub fn bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<PathNode>()
    }

    /// Number of ASes on the path at `h` (0 for `NONE`/`CYCLE`).
    pub fn path_len(&self, mut h: PathHandle) -> usize {
        let mut n = 0;
        while h.is_real() {
            n += 1;
            h = self.nodes[h.0 as usize].parent;
        }
        n
    }

    /// The full path at `h`, head first (source → … → origin). `None` for
    /// the `NONE`/`CYCLE` sentinels.
    pub fn materialize(&self, h: PathHandle) -> Option<Vec<AsId>> {
        if !h.is_real() {
            return None;
        }
        let mut path = Vec::with_capacity(self.path_len(h));
        let mut cur = h;
        while cur.is_real() {
            let node = self.nodes[cur.0 as usize];
            path.push(node.head);
            cur = node.parent;
        }
        Some(path)
    }
}

/// Pooled entry-link spans.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryPool {
    spans: Vec<(u32, u32)>,
    pool: Vec<InterconnectId>,
}

impl EntryPool {
    /// Intern a span; empty slices collapse to `EntryHandle::NONE`.
    pub fn intern(&mut self, links: &[InterconnectId]) -> EntryHandle {
        if links.is_empty() {
            return EntryHandle::NONE;
        }
        let h = EntryHandle(self.spans.len() as u32);
        assert!(!h.is_none(), "entry pool overflow");
        self.spans.push((self.pool.len() as u32, links.len() as u32));
        self.pool.extend_from_slice(links);
        h
    }

    pub fn get(&self, h: EntryHandle) -> &[InterconnectId] {
        if h.is_none() {
            return &[];
        }
        let (off, len) = self.spans[h.0 as usize];
        &self.pool[off as usize..(off + len) as usize]
    }

    /// Bytes held by the pool (span table + link storage).
    pub fn bytes(&self) -> usize {
        self.spans.len() * std::mem::size_of::<(u32, u32)>()
            + self.pool.len() * std::mem::size_of::<InterconnectId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_materialize_share_suffixes() {
        let mut a = PathArena::with_capacity(4);
        let origin = a.intern(AsId(7), PathHandle::NONE);
        let one = a.intern(AsId(3), origin);
        let two = a.intern(AsId(9), one);
        let sibling = a.intern(AsId(4), one);
        assert_eq!(a.materialize(origin).unwrap(), vec![AsId(7)]);
        assert_eq!(a.materialize(two).unwrap(), vec![AsId(9), AsId(3), AsId(7)]);
        assert_eq!(a.materialize(sibling).unwrap(), vec![AsId(4), AsId(3), AsId(7)]);
        // Four paths with 9 total hops stored as 4 nodes.
        assert_eq!(a.node_count(), 4);
        assert_eq!(a.bytes(), 4 * 8);
        assert_eq!(a.path_len(two), 3);
    }

    #[test]
    fn sentinels_do_not_materialize() {
        let a = PathArena::default();
        assert!(a.materialize(PathHandle::NONE).is_none());
        assert!(a.materialize(PathHandle::CYCLE).is_none());
        assert_eq!(a.path_len(PathHandle::NONE), 0);
        assert!(PathHandle::NONE.is_none());
        assert!(PathHandle::CYCLE.is_cycle());
        assert!(!PathHandle::CYCLE.is_none());
    }

    #[test]
    fn entry_pool_round_trips() {
        let mut p = EntryPool::default();
        let empty = p.intern(&[]);
        assert!(empty.is_none());
        assert!(p.get(empty).is_empty());
        let a = p.intern(&[InterconnectId(5), InterconnectId(9)]);
        let b = p.intern(&[InterconnectId(1)]);
        assert_eq!(p.get(a), &[InterconnectId(5), InterconnectId(9)]);
        assert_eq!(p.get(b), &[InterconnectId(1)]);
        assert_eq!(p.bytes(), 2 * 8 + 3 * 4);
    }
}
