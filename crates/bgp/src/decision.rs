//! The BGP decision process (the AS-level part of it).
//!
//! "None of the criteria BGP uses for selecting among paths (e.g., prefer
//! peering over transit, prefer paths with fewer AS-level hops, do hot
//! potato routing, etc.) directly correlate with performance" (§1). This
//! module implements exactly those performance-oblivious criteria:
//!
//! 1. **Local preference** by business class: customer > peer > provider
//!    (route through whoever pays you, else settlement-free, else whoever
//!    you pay).
//! 2. **Shorter AS path** (including prepending).
//! 3. Deterministic tie-break on the next-hop AS id (standing in for
//!    router-id tie-breaking).
//!
//! Hot-potato tie-breaking among equal interconnects is geographic and is
//! applied during path realization in `bb-netsim`.

use bb_topology::{AsId, BusinessRel};
use serde::{Deserialize, Serialize};

/// How a route was learned, in local-preference order (lower = preferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RouteClass {
    /// Learned from a customer (or self-originated).
    Customer = 0,
    /// Learned from a settlement-free peer.
    Peer = 1,
    /// Learned from a transit provider.
    Provider = 2,
}

impl RouteClass {
    /// The class a route has at an AS that learned it from `neighbor_rel`,
    /// where `neighbor_rel` is the *neighbor's* relationship towards the
    /// deciding AS.
    pub fn from_neighbor_rel(neighbor_rel: BusinessRel) -> RouteClass {
        match neighbor_rel {
            // Neighbor is our customer.
            BusinessRel::CustomerOf => RouteClass::Customer,
            BusinessRel::Peer => RouteClass::Peer,
            // Neighbor is our provider.
            BusinessRel::ProviderOf => RouteClass::Provider,
        }
    }

    /// Gao-Rexford export rule: may an AS holding a route of this class
    /// advertise it to a neighbor of the given relationship?
    /// (`to_rel` is the deciding AS's relationship towards the neighbor.)
    pub fn exportable_to(self, to_rel: BusinessRel) -> bool {
        match to_rel {
            // We always export to our customers.
            BusinessRel::ProviderOf => true,
            // To peers and providers: only customer routes (and our own
            // prefixes, which have class Customer here).
            BusinessRel::Peer | BusinessRel::CustomerOf => self == RouteClass::Customer,
        }
    }
}

/// Compare two candidate routes `(class, path_len, via)`; returns `true`
/// if the first strictly wins the decision process.
pub fn better(a: (RouteClass, u32, AsId), b: (RouteClass, u32, AsId)) -> bool {
    (a.0, a.1, a.2) < (b.0, b.1, b.2)
}

/// Deterministic stand-in for BGP's arbitrary final tie-breaking
/// (oldest-route / router-id): a hash of (deciding AS, next hop). Using a
/// hash instead of the raw AS id avoids a global bias toward low-numbered
/// neighbors — in reality, which of two equally-good upstreams a network
/// prefers is essentially idiosyncratic per network.
pub fn tie_break(decider: AsId, via: AsId) -> u32 {
    let mut z = ((decider.0 as u64) << 32) ^ via.0 as u64;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32
}

/// Full decision comparison at a specific AS, applying the hashed
/// tie-break. Returns `true` if candidate `a` strictly beats `b`.
pub fn better_at(decider: AsId, a: (RouteClass, u32, AsId), b: (RouteClass, u32, AsId)) -> bool {
    let ka = (a.0, a.1, tie_break(decider, a.2), a.2);
    let kb = (b.0, b.1, tie_break(decider, b.2), b.2);
    ka < kb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering_is_localpref() {
        assert!(RouteClass::Customer < RouteClass::Peer);
        assert!(RouteClass::Peer < RouteClass::Provider);
    }

    #[test]
    fn class_from_neighbor_relationship() {
        assert_eq!(
            RouteClass::from_neighbor_rel(BusinessRel::CustomerOf),
            RouteClass::Customer
        );
        assert_eq!(RouteClass::from_neighbor_rel(BusinessRel::Peer), RouteClass::Peer);
        assert_eq!(
            RouteClass::from_neighbor_rel(BusinessRel::ProviderOf),
            RouteClass::Provider
        );
    }

    #[test]
    fn export_rules_are_gao_rexford() {
        // Customer routes go everywhere.
        assert!(RouteClass::Customer.exportable_to(BusinessRel::ProviderOf));
        assert!(RouteClass::Customer.exportable_to(BusinessRel::Peer));
        assert!(RouteClass::Customer.exportable_to(BusinessRel::CustomerOf));
        // Peer/provider routes go only to customers.
        for class in [RouteClass::Peer, RouteClass::Provider] {
            assert!(class.exportable_to(BusinessRel::ProviderOf));
            assert!(!class.exportable_to(BusinessRel::Peer));
            assert!(!class.exportable_to(BusinessRel::CustomerOf));
        }
    }

    #[test]
    fn decision_prefers_class_then_length_then_id() {
        let c = RouteClass::Customer;
        let p = RouteClass::Peer;
        // Class dominates length.
        assert!(better((c, 9, AsId(5)), (p, 1, AsId(1))));
        // Length decides within class.
        assert!(better((p, 1, AsId(9)), (p, 2, AsId(1))));
        // Id breaks full ties.
        assert!(better((p, 2, AsId(1)), (p, 2, AsId(9))));
        // Irreflexive.
        assert!(!better((p, 2, AsId(1)), (p, 2, AsId(1))));
    }

    #[test]
    fn hashed_tiebreak_is_antisymmetric_and_varies_by_decider() {
        let p = RouteClass::Peer;
        let (a, b) = ((p, 2, AsId(3)), (p, 2, AsId(9)));
        for decider in [AsId(0), AsId(1), AsId(2), AsId(100)] {
            // Exactly one of the two wins.
            assert_ne!(better_at(decider, a, b), better_at(decider, b, a));
            // Irreflexive.
            assert!(!better_at(decider, a, a));
        }
        // Different deciders disagree for some pair (no global bias): scan a
        // few deciders until both orders have been seen.
        let mut saw_a = false;
        let mut saw_b = false;
        for d in 0..64 {
            if better_at(AsId(d), a, b) {
                saw_a = true;
            } else {
                saw_b = true;
            }
        }
        assert!(saw_a && saw_b, "tie-break must not be globally biased");
    }

    #[test]
    fn hashed_tiebreak_never_overrides_class_or_length() {
        let c = RouteClass::Customer;
        let p = RouteClass::Peer;
        for d in 0..32 {
            assert!(better_at(AsId(d), (c, 9, AsId(7)), (p, 1, AsId(1))));
            assert!(better_at(AsId(d), (p, 1, AsId(7)), (p, 2, AsId(1))));
        }
    }
}
