//! # bb-bgp — BGP route computation over the AS topology
//!
//! Implements the inter-domain routing model the paper's analysis is framed
//! against:
//!
//! * **Gao-Rexford propagation** ([`propagation`]): routes flow customer →
//!   provider, across one peer edge, then provider → customer; export rules
//!   are enforced (peer/provider-learned routes are only exported to
//!   customers). The resulting paths are valley-free by construction, a
//!   property the test-suite checks exhaustively and property-based tests
//!   re-check on random topologies.
//! * **The BGP decision process** ([`decision`]): prefer customer routes over
//!   peer routes over provider routes (local-pref), then shorter AS paths,
//!   with deterministic tie-breaking. Geographic (hot-potato) tie-breaking
//!   happens at path *realization* time in `bb-netsim`, where city
//!   coordinates are known.
//! * **Announcement control** ([`announcement`]): per-interconnect
//!   announcement with AS-path prepending and withholding — the "grooming"
//!   primitives §3.2.2 describes operators using to fix poor anycast routes.
//! * **The provider's Adj-RIB-in** ([`rib`]): for each provider PoP, the
//!   ranked set of routes toward a client prefix, ordered by the
//!   Facebook-style policy of §3.1 (private peers, then public peers, then
//!   transit; shorter paths first). Figure 1/2's "most preferred, second,
//!   third" routes come straight from this ranking.

pub mod announcement;
pub mod arena;
pub mod decision;
pub mod propagation;
pub mod rib;
pub mod route;

pub use announcement::{Announcement, AnnouncementError, Offer, Scope};
pub use arena::{EntryHandle, EntryPool, PathArena, PathHandle};
pub use decision::{better, RouteClass};
pub use propagation::{
    compute_routes, compute_routes_reference, try_compute_routes, valley_free, PathError,
    RoutingTable,
};
pub use rib::{provider_rib, CandidateRoute, PopRib, ProviderRouteClass};
pub use route::BestRoute;
