//! Gao-Rexford route propagation.
//!
//! Computes, for one origin announcement, the best route every AS in the
//! topology holds toward the origin. Propagation happens in the classic
//! three phases (customer routes bubble up, customer routes cross one peer
//! edge, then everything flows down to customers), each phase running a
//! Dijkstra-style relaxation on AS-path length so prepending is honored.
//!
//! The result is valley-free by construction: an AS-level traffic path
//! climbs customer→provider edges, crosses at most one peer edge, and then
//! descends provider→customer edges. `valley_free` checks that property and
//! the test-suite applies it to every path.
//!
//! # Planet-scale storage and the frontier worklist
//!
//! Routes live in a flat `Vec<Option<BestRoute>>` of `Copy` records; AS
//! paths are interned post-fixpoint into a shared-suffix [`PathArena`]
//! (§DESIGN 5g) and entry links into an [`EntryPool`], so table memory is
//! O(routed ASes), not O(Σ path lengths). The export rounds between phases
//! walk only the frontier of ASes that actually hold a route (installation
//! order is tracked in a worklist) instead of sweeping and cloning all
//! `0..n` slots. Because `consider` installs by a strict total order, the
//! fixpoint is independent of candidate arrival order, and the worklist
//! version is route-for-route identical to the legacy whole-table sweep —
//! kept as [`compute_routes_reference`] and checked by a differential
//! proptest.

use crate::announcement::{Announcement, AnnouncementError, Scope};
use crate::arena::{EntryHandle, EntryPool, PathArena, PathHandle};
use crate::decision::RouteClass;
use crate::route::BestRoute;
use bb_topology::{AsId, BusinessRel, InterconnectId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Why a path could not be produced for an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// The AS holds no route toward the origin.
    Unrouted(AsId),
    /// The via chain runs into a cycle at the named AS. Cannot happen for
    /// tables produced by `compute_routes` (phases only ever shorten or
    /// re-class routes along acyclic relationships); it guards corrupted
    /// or hand-patched tables without panicking a planet-scale campaign.
    ViaCycle(AsId),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Unrouted(asn) => write!(f, "{asn} holds no route toward the origin"),
            PathError::ViaCycle(asn) => write!(f, "via-chain cycle at {asn}"),
        }
    }
}

impl std::error::Error for PathError {}

/// Best route per AS toward one origin announcement.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    pub origin: AsId,
    best: Vec<Option<BestRoute>>,
    paths: PathArena,
    entries: EntryPool,
    /// First AS found on a via cycle during finalize, if any.
    cycle: Option<AsId>,
    /// Work done reaching the fixpoint: (candidates considered, installed).
    work: (u64, u64),
}

impl RoutingTable {
    /// Best route at `asn`, if it has one.
    pub fn route(&self, asn: AsId) -> Option<&BestRoute> {
        self.best[asn.index()].as_ref()
    }

    /// Tied-best interconnects into the origin for a first-hop AS (empty
    /// for everyone else, including unrouted ASes).
    pub fn entry_links(&self, asn: AsId) -> &[InterconnectId] {
        match &self.best[asn.index()] {
            Some(r) => self.entries.get(r.entry),
            None => &[],
        }
    }

    /// The AS-level path from `asn` to the origin, inclusive on both ends
    /// (ignoring prepending repetitions). `None` if `asn` is unrouted or
    /// its via chain is poisoned by a cycle (see [`Self::as_path_checked`]).
    pub fn as_path(&self, asn: AsId) -> Option<Vec<AsId>> {
        self.as_path_checked(asn).ok()
    }

    /// Like [`Self::as_path`], but distinguishes "unrouted" from "the via
    /// chain cycles", naming the AS where the cycle was detected.
    pub fn as_path_checked(&self, asn: AsId) -> Result<Vec<AsId>, PathError> {
        let route = self
            .route(asn)
            .ok_or(PathError::Unrouted(asn))?;
        if route.path.is_cycle() {
            return Err(PathError::ViaCycle(self.cycle.unwrap_or(asn)));
        }
        self.paths
            .materialize(route.path)
            .ok_or(PathError::Unrouted(asn))
    }

    /// The AS at which a via cycle was detected, if the table is poisoned.
    pub fn via_cycle(&self) -> Option<AsId> {
        self.cycle
    }

    /// Number of ASes holding a route.
    pub fn reachable_count(&self) -> usize {
        self.best.iter().filter(|r| r.is_some()).count()
    }

    /// Iterate over (AsId, BestRoute).
    pub fn routes(&self) -> impl Iterator<Item = (AsId, &BestRoute)> {
        self.best
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (AsId(i as u32), r)))
    }

    /// Bytes spent on interned path storage (the shared-suffix arena).
    pub fn interned_path_bytes(&self) -> usize {
        self.paths.bytes()
    }

    /// Bytes spent on the pooled entry-link spans (reported separately:
    /// the naive layout stored these as per-route `Vec`s too, but the
    /// RIB-memory ceiling is defined over path storage).
    pub fn entry_pool_bytes(&self) -> usize {
        self.entries.bytes()
    }

    /// Bytes the same paths would cost as one owned `Vec<AsId>` per routed
    /// AS (24-byte vec header + 4 bytes per hop) — the pre-interning
    /// layout, used for the `rib:*` memory counters.
    pub fn naive_path_bytes(&self) -> usize {
        self.best
            .iter()
            .filter_map(|r| r.as_ref())
            .map(|r| 24 + 4 * self.paths.path_len(r.path))
            .sum()
    }

    /// (candidates considered, candidates installed) while reaching the
    /// fixpoint — the propagation work counters surfaced in perf reports.
    pub fn work(&self) -> (u64, u64) {
        self.work
    }
}

/// Per-relationship CSR adjacency, built once per `compute_routes` call so
/// the hot relaxation loops index flat arrays instead of allocating a
/// filtered `Vec` per visited AS (`Topology::providers_of` et al.).
struct RelCsr {
    providers: Csr,
    peers: Csr,
    customers: Csr,
}

struct Csr {
    off: Vec<u32>,
    dat: Vec<u32>,
}

impl Csr {
    fn row(&self, asn: AsId) -> &[u32] {
        &self.dat[self.off[asn.index()] as usize..self.off[asn.index() + 1] as usize]
    }
}

impl RelCsr {
    fn build(topo: &Topology) -> RelCsr {
        let n = topo.as_count();
        // Count per (asn, kind), then prefix-sum and fill. Parallel links
        // between the same pair repeat the neighbor; that is harmless for
        // the fixpoint (duplicate candidates never win the strict order)
        // so rows are not deduplicated.
        let mut cnt = vec![[0u32; 3]; n];
        for i in 0..n {
            let asn = AsId(i as u32);
            for &(nb, _) in topo.adjacency(asn) {
                match topo.relationship(asn, nb) {
                    Some(BusinessRel::CustomerOf) => cnt[i][0] += 1,
                    Some(BusinessRel::Peer) => cnt[i][1] += 1,
                    Some(BusinessRel::ProviderOf) => cnt[i][2] += 1,
                    None => {}
                }
            }
        }
        let csr = |k: usize| {
            let mut off = Vec::with_capacity(n + 1);
            let mut total = 0u32;
            off.push(0);
            for row in cnt.iter() {
                total += row[k];
                off.push(total);
            }
            Csr {
                dat: vec![0; total as usize],
                off,
            }
        };
        let (mut providers, mut peers, mut customers) = (csr(0), csr(1), csr(2));
        let mut cursor = vec![[0u32; 3]; n];
        for i in 0..n {
            let asn = AsId(i as u32);
            for &(nb, _) in topo.adjacency(asn) {
                let (csr, k) = match topo.relationship(asn, nb) {
                    Some(BusinessRel::CustomerOf) => (&mut providers, 0),
                    Some(BusinessRel::Peer) => (&mut peers, 1),
                    Some(BusinessRel::ProviderOf) => (&mut customers, 2),
                    None => continue,
                };
                csr.dat[(csr.off[i] + cursor[i][k]) as usize] = nb.0;
                cursor[i][k] += 1;
            }
        }
        RelCsr {
            providers,
            peers,
            customers,
        }
    }
}

/// Fixpoint state: flat route slots plus the worklist of routed ASes in
/// installation order (the frontier the export rounds walk).
struct Builder {
    origin: AsId,
    best: Vec<Option<BestRoute>>,
    routed: Vec<AsId>,
    entries: EntryPool,
    considered: u64,
    installed: u64,
}

impl Builder {
    fn new(n: usize, origin: AsId) -> Builder {
        let mut b = Builder {
            origin,
            best: vec![None; n],
            routed: Vec::new(),
            entries: EntryPool::default(),
            considered: 0,
            installed: 0,
        };
        b.best[origin.index()] = Some(BestRoute::origin());
        b.routed.push(origin);
        b
    }

    /// Install `cand` at `asn` if it beats the incumbent under the decision
    /// process (with the per-AS hashed tie-break). Returns whether it was
    /// installed. The order is strict and total over distinct candidates,
    /// so the fixpoint does not depend on arrival order.
    fn consider(&mut self, asn: AsId, cand: BestRoute) -> bool {
        self.considered += 1;
        match &self.best[asn.index()] {
            None => {
                self.best[asn.index()] = Some(cand);
                self.routed.push(asn);
                self.installed += 1;
                true
            }
            Some(inc) => {
                let inc_key = (inc.class, inc.path_len, inc.via.unwrap_or(AsId(u32::MAX)));
                let cand_key = (cand.class, cand.path_len, cand.via.unwrap_or(AsId(u32::MAX)));
                if crate::decision::better_at(asn, cand_key, inc_key) {
                    self.best[asn.index()] = Some(cand);
                    self.installed += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Dijkstra-style relaxation of one phase: starting from `seeds`,
    /// routes of `class` spread along the CSR edges.
    fn relax_phase(&mut self, edges: &Csr, seeds: Vec<(AsId, BestRoute)>, class: RouteClass) {
        let mut heap: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new();
        for (asn, route) in seeds {
            let key = (route.path_len, route.via.map_or(u32::MAX, |v| v.0), asn.0);
            if self.consider(asn, route) {
                heap.push(Reverse(key));
            }
        }
        while let Some(Reverse((len, via, asn))) = heap.pop() {
            let asn = AsId(asn);
            // Skip stale heap entries, and never expand NO_EXPORT routes.
            let Some(cur) = self.best[asn.index()] else { continue };
            if cur.class != class
                || cur.path_len != len
                || cur.via.map_or(u32::MAX, |v| v.0) != via
            {
                continue;
            }
            if cur.no_export {
                continue;
            }
            for i in 0..edges.row(asn).len() {
                let nxt = AsId(edges.row(asn)[i]);
                let cand = BestRoute {
                    class,
                    path_len: len + 1,
                    via: Some(asn),
                    path: PathHandle::NONE,
                    entry: EntryHandle::NONE,
                    no_export: false,
                };
                let key = (cand.path_len, asn.0, nxt.0);
                if self.consider(nxt, cand) {
                    heap.push(Reverse(key));
                }
            }
        }
    }

    /// Intern every routed AS's via chain into the shared-suffix arena.
    /// Runs post-fixpoint so the arena reflects final routes only; a via
    /// cycle (impossible from propagation, possible from corruption)
    /// poisons the affected chains instead of diverging.
    fn finalize(mut self) -> RoutingTable {
        let n = self.best.len();
        let mut paths = PathArena::with_capacity(self.routed.len());
        // 0 = unvisited, 1 = on the current walk, 2 = resolved.
        let mut state = vec![0u8; n];
        let mut handle = vec![PathHandle::NONE; n];
        let mut cycle = None;
        let mut stack: Vec<u32> = Vec::new();
        for start in 0..n {
            if self.best[start].is_none() || state[start] == 2 {
                continue;
            }
            let mut cur = start;
            let mut parent = loop {
                match state[cur] {
                    2 => break handle[cur],
                    1 => {
                        // The walk bit its own tail: poison the chain.
                        if cycle.is_none() {
                            cycle = Some(AsId(cur as u32));
                        }
                        break PathHandle::CYCLE;
                    }
                    _ => {}
                }
                state[cur] = 1;
                stack.push(cur as u32);
                match self.best[cur].and_then(|r| r.via) {
                    None => break PathHandle::NONE,
                    Some(v) if self.best[v.index()].is_none() => {
                        // Dangling via — treat like a poisoned chain.
                        if cycle.is_none() {
                            cycle = Some(AsId(cur as u32));
                        }
                        break PathHandle::CYCLE;
                    }
                    Some(v) => cur = v.index(),
                }
            };
            // Unwind deepest-first, attaching each AS to its via's path.
            while let Some(node) = stack.pop() {
                let h = if parent.is_cycle() {
                    PathHandle::CYCLE
                } else {
                    paths.intern(AsId(node), parent)
                };
                handle[node as usize] = h;
                state[node as usize] = 2;
                parent = h;
            }
        }
        for i in 0..n {
            if let Some(r) = &mut self.best[i] {
                r.path = handle[i];
            }
        }
        RoutingTable {
            origin: self.origin,
            best: self.best,
            paths,
            entries: self.entries,
            cycle,
            work: (self.considered, self.installed),
        }
    }
}

/// Compute routes for `announcement` over `topo`.
///
/// Panics if the announcement does not belong to `topo` (unknown origin,
/// foreign links); use [`try_compute_routes`] to surface that as an error.
///
/// ```
/// use bb_bgp::{compute_routes, Announcement};
/// use bb_topology::{generate, AsClass, TopologyConfig};
///
/// let topo = generate(&TopologyConfig::small(1));
/// let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
/// let table = compute_routes(&topo, &Announcement::full(&topo, origin));
/// // A fully-announced prefix reaches the whole Internet…
/// assert_eq!(table.reachable_count(), topo.as_count());
/// // …and every AS's path ends at the origin.
/// let some_as = topo.ases()[0].id;
/// assert_eq!(*table.as_path(some_as).unwrap().last().unwrap(), origin);
/// ```
pub fn compute_routes(topo: &Topology, announcement: &Announcement) -> RoutingTable {
    try_compute_routes(topo, announcement).unwrap_or_else(|e| panic!("{e}"))
}

/// [`compute_routes`], failing closed when the announcement was built
/// against a different (or since-mutated) topology instead of panicking —
/// the caller maps this to a usage error.
pub fn try_compute_routes(
    topo: &Topology,
    announcement: &Announcement,
) -> Result<RoutingTable, AnnouncementError> {
    run(topo, announcement, true)
}

/// The legacy three-phase implementation whose export rounds sweep all
/// `0..n` route slots. Kept as the oracle for the differential proptest
/// that pins the frontier worklist to be route-for-route identical.
pub fn compute_routes_reference(topo: &Topology, announcement: &Announcement) -> RoutingTable {
    run(topo, announcement, false).unwrap_or_else(|e| panic!("{e}"))
}

fn run(
    topo: &Topology,
    announcement: &Announcement,
    frontier: bool,
) -> Result<RoutingTable, AnnouncementError> {
    announcement.validate(topo)?;
    let n = topo.as_count();
    let origin = announcement.origin;
    let csr = RelCsr::build(topo);
    let mut b = Builder::new(n, origin);

    // --- Seed first hops from the announcement. ---
    // The class at a first-hop neighbor is determined by how it relates to
    // the origin: the origin's providers hear a customer route, etc.
    // `validate` above guarantees every offered link exists, touches the
    // origin, and implies a relationship.
    let mut customer_seeds = Vec::new();
    let mut peer_seeds = Vec::new();
    let mut provider_seeds = Vec::new();
    for offer in announcement.offers_by_neighbor(topo) {
        let nb = offer.neighbor;
        let rel_origin_to_nb = topo
            .relationship(origin, nb)
            .expect("validated announcement implies relationship");
        let class = RouteClass::from_neighbor_rel(rel_origin_to_nb);
        let route = BestRoute {
            class,
            path_len: 1 + offer.prepend,
            via: Some(origin),
            path: PathHandle::NONE,
            entry: b.entries.intern(&offer.entry_links),
            no_export: offer.scope == Scope::NoExport,
        };
        match class {
            RouteClass::Customer => customer_seeds.push((nb, route)),
            RouteClass::Peer => peer_seeds.push((nb, route)),
            RouteClass::Provider => provider_seeds.push((nb, route)),
        }
    }

    // --- Phase 1: customer routes climb provider edges. ---
    b.relax_phase(&csr.providers, customer_seeds, RouteClass::Customer);

    // --- Phase 2: customer routes cross one peer edge. ---
    // Candidates: every AS holding a customer route (incl. the origin via
    // the announcement seeds above, which already carry entry links)
    // exports to its peers. Peer routes do not propagate further among
    // peers, so this is a single relaxation round, not a search.
    let phase1_frontier = b.routed.len();
    let mut peer_candidates: Vec<(AsId, BestRoute)> = peer_seeds;
    let export_across = |b: &Builder,
                             edges: &Csr,
                             class: RouteClass,
                             customer_only: bool,
                             frontier_len: usize,
                             out: &mut Vec<(AsId, BestRoute)>| {
        let mut push = |asn: AsId, route: &BestRoute| {
            if route.is_origin() || route.no_export {
                return; // origin's exports are governed by the announcement;
                        // NO_EXPORT routes stop here
            }
            if customer_only && route.class != RouteClass::Customer {
                return;
            }
            for &nxt in edges.row(asn) {
                out.push((
                    AsId(nxt),
                    BestRoute {
                        class,
                        path_len: route.path_len + 1,
                        via: Some(asn),
                        path: PathHandle::NONE,
                        entry: EntryHandle::NONE,
                        no_export: false,
                    },
                ));
            }
        };
        if frontier {
            // Walk only ASes that actually hold a route.
            for i in 0..frontier_len {
                let asn = b.routed[i];
                push(asn, b.best[asn.index()].as_ref().unwrap());
            }
        } else {
            // Legacy: sweep every slot in ascending AS order.
            for i in 0..b.best.len() {
                if let Some(route) = &b.best[i] {
                    push(AsId(i as u32), route);
                }
            }
        }
    };
    export_across(
        &b,
        &csr.peers,
        RouteClass::Peer,
        true,
        phase1_frontier,
        &mut peer_candidates,
    );
    for (asn, cand) in peer_candidates {
        b.consider(asn, cand);
    }

    // --- Phase 3: everything descends customer edges. ---
    // Every routed AS exports to its customers; provider routes cascade.
    let phase2_frontier = b.routed.len();
    let mut provider_cands: Vec<(AsId, BestRoute)> = provider_seeds;
    export_across(
        &b,
        &csr.customers,
        RouteClass::Provider,
        false,
        phase2_frontier,
        &mut provider_cands,
    );
    b.relax_phase(&csr.customers, provider_cands, RouteClass::Provider);

    Ok(b.finalize())
}

/// Check the valley-free property of a traffic path `p = [src, ..., origin]`:
/// the sequence of relationships must match `up* peer? down*`, where "up"
/// means the current AS is a customer of the next and "down" means it is a
/// provider of the next.
pub fn valley_free(topo: &Topology, path: &[AsId]) -> bool {
    #[derive(PartialEq, PartialOrd)]
    enum Stage {
        Up,
        Peer,
        Down,
    }
    let mut stage = Stage::Up;
    for w in path.windows(2) {
        let rel = match topo.relationship(w[0], w[1]) {
            Some(r) => r,
            None => return false,
        };
        match rel {
            BusinessRel::CustomerOf => {
                if stage != Stage::Up {
                    return false;
                }
            }
            BusinessRel::Peer => {
                if stage != Stage::Up {
                    return false;
                }
                stage = Stage::Peer;
            }
            BusinessRel::ProviderOf => {
                stage = Stage::Down;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_topology::{generate, AsClass, TopologyConfig};

    fn topo() -> Topology {
        generate(&TopologyConfig::small(21))
    }

    fn eyeball(topo: &Topology) -> AsId {
        topo.ases_of_class(AsClass::Eyeball).next().unwrap().id
    }

    #[test]
    fn full_announcement_reaches_everyone() {
        let t = topo();
        let o = eyeball(&t);
        let table = compute_routes(&t, &Announcement::full(&t, o));
        assert_eq!(table.reachable_count(), t.as_count());
    }

    #[test]
    fn all_paths_valley_free() {
        let t = topo();
        for origin in t.ases_of_class(AsClass::Eyeball).take(10) {
            let table = compute_routes(&t, &Announcement::full(&t, origin.id));
            for node in t.ases() {
                let path = table.as_path(node.id).expect("reachable");
                assert!(
                    valley_free(&t, &path),
                    "path {:?} from {} to {} not valley-free",
                    path,
                    node.name,
                    origin.name
                );
            }
        }
    }

    #[test]
    fn origin_route_is_trivial() {
        let t = topo();
        let o = eyeball(&t);
        let table = compute_routes(&t, &Announcement::full(&t, o));
        let r = table.route(o).unwrap();
        assert!(r.is_origin());
        assert_eq!(table.as_path(o).unwrap(), vec![o]);
    }

    #[test]
    fn paths_end_at_origin_and_start_at_source() {
        let t = topo();
        let o = eyeball(&t);
        let table = compute_routes(&t, &Announcement::full(&t, o));
        for node in t.ases().iter().take(30) {
            let path = table.as_path(node.id).unwrap();
            assert_eq!(path[0], node.id);
            assert_eq!(*path.last().unwrap(), o);
        }
    }

    #[test]
    fn direct_neighbors_have_entry_links() {
        let t = topo();
        let o = eyeball(&t);
        let table = compute_routes(&t, &Announcement::full(&t, o));
        for nb in t.neighbors(o) {
            let r = table.route(nb).unwrap();
            assert_eq!(r.via, Some(o));
            assert!(
                !table.entry_links(nb).is_empty(),
                "{nb} should record entry links"
            );
        }
    }

    #[test]
    fn customer_route_preferred_over_shorter_peer_route() {
        // Build by hand: origin O customer of T; T customer of P; P peers
        // with O directly. P must pick the longer customer route via T.
        use bb_geo::atlas::AtlasConfig;
        use bb_geo::Atlas;
        use bb_topology::{AsClass, BusinessRel, ExitPolicy, LinkKind, Topology};
        let atlas = Atlas::generate(&AtlasConfig {
            seed: 2,
            city_density: 0.3,
        });
        let c0 = atlas.cities[0].id;
        let mut t = Topology::new(atlas);
        let p = t.add_as(AsClass::Tier1, "P", vec![c0], ExitPolicy::EarlyExit, 1.1, None, 0.0);
        let tr = t.add_as(AsClass::Transit, "T", vec![c0], ExitPolicy::EarlyExit, 1.2, None, 0.0);
        let o = t.add_as(AsClass::Eyeball, "O", vec![c0], ExitPolicy::EarlyExit, 1.4, Some(0), 1.0);
        t.add_interconnect(o, tr, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
        t.add_interconnect(tr, p, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
        t.add_interconnect(o, p, BusinessRel::Peer, LinkKind::PublicPeering, c0, 10.0);

        let table = compute_routes(&t, &Announcement::full(&t, o));
        let r = table.route(p).unwrap();
        assert_eq!(r.class, RouteClass::Customer);
        assert_eq!(r.path_len, 2);
        assert_eq!(r.via, Some(tr));
    }

    #[test]
    fn withholding_shrinks_reachability_or_lengthens_paths() {
        let t = topo();
        let o = eyeball(&t);
        let full = compute_routes(&t, &Announcement::full(&t, o));

        // Withhold all but one neighbor: paths can only get worse.
        let mut ann = Announcement::full(&t, o);
        let keep = t.adjacency(o)[0].1;
        for &(_, l) in &t.adjacency(o)[1..] {
            if l != keep {
                ann.withhold_link(l);
            }
        }
        let partial = compute_routes(&t, &ann);
        assert!(partial.reachable_count() <= full.reachable_count());
        for (asn, r) in partial.routes() {
            let fr = full.route(asn).unwrap();
            assert!(
                r.path_len >= fr.path_len || r.class >= fr.class,
                "withholding must not improve routes at {asn}"
            );
        }
    }

    #[test]
    fn prepending_diverts_route_choice() {
        // Find an AS with ≥2 neighbors; prepend heavily toward the one its
        // providers prefer and check some AS changes its via.
        let t = topo();
        let o = eyeball(&t);
        let full = compute_routes(&t, &Announcement::full(&t, o));

        let mut ann = Announcement::full(&t, o);
        // Heavily prepend toward the first neighbor.
        let nb0 = t.adjacency(o)[0].0;
        for &(nb, l) in t.adjacency(o) {
            if nb == nb0 {
                ann.prepend_link(l, 10);
            }
        }
        let groomed = compute_routes(&t, &ann);
        let r_full = full.route(nb0).unwrap();
        let r_groomed = groomed.route(nb0).unwrap();
        // The neighbor still has a route (maybe via another AS now), but the
        // direct offer got longer.
        assert!(r_groomed.path_len >= r_full.path_len);
    }

    #[test]
    fn deterministic() {
        let t = topo();
        let o = eyeball(&t);
        let a = compute_routes(&t, &Announcement::full(&t, o));
        let b = compute_routes(&t, &Announcement::full(&t, o));
        for node in t.ases() {
            assert_eq!(a.route(node.id), b.route(node.id));
        }
    }

    #[test]
    fn frontier_matches_reference_sweep() {
        let t = topo();
        for origin in t.ases_of_class(AsClass::Eyeball).take(5) {
            let ann = Announcement::full(&t, origin.id);
            let fast = compute_routes(&t, &ann);
            let slow = compute_routes_reference(&t, &ann);
            for node in t.ases() {
                assert_eq!(fast.route(node.id), slow.route(node.id));
                assert_eq!(fast.as_path(node.id), slow.as_path(node.id));
                assert_eq!(fast.entry_links(node.id), slow.entry_links(node.id));
            }
        }
    }

    #[test]
    fn interned_storage_beats_naive_vectors() {
        let t = topo();
        let o = eyeball(&t);
        let table = compute_routes(&t, &Announcement::full(&t, o));
        let (considered, installed) = table.work();
        assert!(considered >= installed);
        assert!(installed as usize >= table.reachable_count());
        assert!(
            table.interned_path_bytes() * 4 <= table.naive_path_bytes(),
            "arena ({}) must be ≤ 25% of naive vec storage ({})",
            table.interned_path_bytes(),
            table.naive_path_bytes()
        );
    }

    #[test]
    fn via_cycle_reports_instead_of_panicking() {
        // Corrupt a finished table into a 2-cycle and re-finalize: as_path
        // must degrade to a structured error naming a cycle member, not
        // panic (the release-mode failure the old bare assert! allowed).
        let t = topo();
        let o = eyeball(&t);
        let table = compute_routes(&t, &Announcement::full(&t, o));
        let (a, b) = {
            let mut it = t.ases().iter().map(|a| a.id).filter(|&x| x != o);
            (it.next().unwrap(), it.next().unwrap())
        };
        let mut builder = Builder::new(t.as_count(), o);
        for (asn, r) in table.routes() {
            builder.best[asn.index()] = Some(*r);
            if asn != o {
                builder.routed.push(asn);
            }
        }
        builder.best[a.index()].as_mut().unwrap().via = Some(b);
        builder.best[b.index()].as_mut().unwrap().via = Some(a);
        let poisoned = builder.finalize();
        let err = poisoned.as_path_checked(a).unwrap_err();
        assert!(matches!(err, PathError::ViaCycle(at) if at == a || at == b));
        assert_eq!(poisoned.as_path(a), None);
        assert_eq!(poisoned.as_path(b), None);
        assert!(poisoned.via_cycle().is_some());
        // Chains not touching the cycle still materialize.
        assert_eq!(poisoned.as_path(o).unwrap(), vec![o]);
    }

    #[test]
    fn mismatched_announcement_fails_closed() {
        use bb_topology::InterconnectId;
        let t = topo();
        // An announcement built against a different (bigger) topology must
        // surface structured errors, not panic deep in seeding.
        let ghost = AsId(t.as_count() as u32);
        let err = try_compute_routes(&t, &Announcement::empty(ghost)).unwrap_err();
        assert!(matches!(err, AnnouncementError::UnknownOrigin { origin, .. } if origin == ghost));

        let o = topo().ases()[0].id;
        let mut ann = Announcement::empty(o);
        ann.offer(InterconnectId(t.link_count() as u32), 0);
        let err = try_compute_routes(&t, &ann).unwrap_err();
        assert!(matches!(err, AnnouncementError::UnknownLink { .. }), "{err}");

        // A link that exists but does not touch the origin: find one.
        let foreign = (0..t.link_count() as u32)
            .map(InterconnectId)
            .find(|&l| {
                let link = t.link(l);
                link.a != o && link.b != o
            })
            .expect("some link avoids AS 0");
        let mut ann = Announcement::empty(o);
        ann.offer(foreign, 0);
        let err = try_compute_routes(&t, &ann).unwrap_err();
        assert!(matches!(err, AnnouncementError::ForeignLink { .. }), "{err}");
        // Errors render with enough context to act on.
        assert!(err.to_string().contains("announce"), "{err}");
    }

    #[test]
    fn valley_free_rejects_bad_paths() {
        let t = topo();
        // A fabricated path that goes down then up must be rejected if the
        // relationships exist that way; use origin's provider chain.
        let o = eyeball(&t);
        let prov = t.providers_of(o)[0];
        // down (prov -> o is ProviderOf) then up (o -> prov is CustomerOf):
        let path = vec![prov, o, prov];
        assert!(!valley_free(&t, &path));
    }

    #[test]
    fn snapshot_backed_world_propagates_valley_free() {
        // The CAIDA ingestion backend feeds the same propagation pipeline:
        // a full announcement from a snapshot eyeball reaches the whole
        // hierarchy with valley-free paths, and the frontier worklist stays
        // byte-identical to the reference sweep.
        let snapshot = "\
1|2|-1\n1|3|-1\n2|3|0\n2|4|-1\n3|5|-1\n4|5|0\n3|6|-1\n4|6|0\n";
        let cfg = bb_topology::SnapshotConfig {
            seed: 9,
            atlas: bb_geo::atlas::AtlasConfig {
                seed: 9,
                city_density: 0.3,
            },
            max_ases: None,
        };
        let t = bb_topology::build_from_snapshot(snapshot, &cfg).unwrap();
        let origin = t
            .ases_of_class(AsClass::Eyeball)
            .next()
            .expect("snapshot has eyeballs")
            .id;
        let ann = Announcement::full(&t, origin);
        let table = compute_routes(&t, &ann);
        let reference = compute_routes_reference(&t, &ann);
        assert_eq!(table.reachable_count(), t.as_count());
        for node in t.ases() {
            let path = table.as_path(node.id).expect("reachable");
            assert!(valley_free(&t, &path), "path {path:?} has a valley");
            assert_eq!(reference.as_path(node.id).as_deref(), Some(&path[..]));
        }
    }
}

#[cfg(test)]
mod no_export_tests {
    use super::*;
    use crate::announcement::Scope;
    use bb_topology::{generate, AsClass, TopologyConfig};

    #[test]
    fn no_export_stops_one_as_away() {
        let t = generate(&TopologyConfig::small(33));
        let o = t.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let mut ann = Announcement::empty(o);
        for &(_, l) in t.adjacency(o) {
            ann.offer_scoped(l, 0, Scope::NoExport);
        }
        let table = compute_routes(&t, &ann);
        // Exactly the origin plus its direct neighbors have routes.
        let expected = 1 + t.neighbors(o).len();
        assert_eq!(table.reachable_count(), expected);
        for (asn, r) in table.routes() {
            if asn != o {
                assert_eq!(r.via, Some(o), "{asn} must hold only the direct route");
                assert!(r.no_export);
            }
        }
    }

    #[test]
    fn mixed_scope_keeps_global_reachability() {
        let t = generate(&TopologyConfig::small(33));
        let o = t.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let mut ann = Announcement::full(&t, o);
        // Tag half the links NO_EXPORT; the rest stay global.
        for (i, &(_, l)) in t.adjacency(o).iter().enumerate() {
            if i % 2 == 0 {
                ann.offer_scoped(l, 0, Scope::NoExport);
            }
        }
        let table = compute_routes(&t, &ann);
        assert_eq!(table.reachable_count(), t.as_count());
    }

    #[test]
    fn no_export_neighbor_can_still_route_via_others() {
        // A neighbor that hears only a NO_EXPORT copy still uses it (it's
        // the shortest), but the rest of the world routes around it.
        let t = generate(&TopologyConfig::small(35));
        let o = t.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let neighbors = t.neighbors(o);
        if neighbors.len() < 2 {
            return;
        }
        let scoped = neighbors[0];
        let mut ann = Announcement::full(&t, o);
        for &(nb, l) in t.adjacency(o) {
            if nb == scoped {
                ann.offer_scoped(l, 0, Scope::NoExport);
            }
        }
        let table = compute_routes(&t, &ann);
        assert_eq!(table.reachable_count(), t.as_count());
        let r = table.route(scoped).unwrap();
        assert_eq!(r.via, Some(o));
        assert!(r.no_export);
        // No other AS routes *through* the scoped neighbor's direct route.
        for (asn, route) in table.routes() {
            if route.via == Some(scoped) {
                // Such a route must have come from a non-direct path the
                // scoped AS would export — impossible here since its best
                // is the NO_EXPORT direct route.
                panic!("{asn} routes via the NO_EXPORT holder");
            }
        }
    }
}
