//! Gao-Rexford route propagation.
//!
//! Computes, for one origin announcement, the best route every AS in the
//! topology holds toward the origin. Propagation happens in the classic
//! three phases (customer routes bubble up, customer routes cross one peer
//! edge, then everything flows down to customers), each phase running a
//! Dijkstra-style relaxation on AS-path length so prepending is honored.
//!
//! The result is valley-free by construction: an AS-level traffic path
//! climbs customer→provider edges, crosses at most one peer edge, and then
//! descends provider→customer edges. `valley_free` checks that property and
//! the test-suite applies it to every path.

use crate::announcement::{Announcement, Scope};
use crate::decision::RouteClass;
use crate::route::BestRoute;
use bb_topology::{AsId, BusinessRel, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Best route per AS toward one origin announcement.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    pub origin: AsId,
    best: Vec<Option<BestRoute>>,
}

impl RoutingTable {
    /// Best route at `asn`, if it has one.
    pub fn route(&self, asn: AsId) -> Option<&BestRoute> {
        self.best[asn.index()].as_ref()
    }

    /// The AS-level path from `asn` to the origin, inclusive on both ends
    /// (ignoring prepending repetitions).
    pub fn as_path(&self, asn: AsId) -> Option<Vec<AsId>> {
        self.route(asn)?;
        let mut path = vec![asn];
        let mut cur = asn;
        while let Some(route) = self.route(cur) {
            match route.via {
                None => return Some(path),
                Some(next) => {
                    assert!(
                        path.len() <= self.best.len(),
                        "via-chain cycle at {cur}"
                    );
                    path.push(next);
                    cur = next;
                }
            }
        }
        None
    }

    /// Number of ASes holding a route.
    pub fn reachable_count(&self) -> usize {
        self.best.iter().filter(|r| r.is_some()).count()
    }

    /// Iterate over (AsId, BestRoute).
    pub fn routes(&self) -> impl Iterator<Item = (AsId, &BestRoute)> {
        self.best
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (AsId(i as u32), r)))
    }
}

/// Compute routes for `announcement` over `topo`.
///
/// ```
/// use bb_bgp::{compute_routes, Announcement};
/// use bb_topology::{generate, AsClass, TopologyConfig};
///
/// let topo = generate(&TopologyConfig::small(1));
/// let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
/// let table = compute_routes(&topo, &Announcement::full(&topo, origin));
/// // A fully-announced prefix reaches the whole Internet…
/// assert_eq!(table.reachable_count(), topo.as_count());
/// // …and every AS's path ends at the origin.
/// let some_as = topo.ases()[0].id;
/// assert_eq!(*table.as_path(some_as).unwrap().last().unwrap(), origin);
/// ```
pub fn compute_routes(topo: &Topology, announcement: &Announcement) -> RoutingTable {
    let n = topo.as_count();
    let origin = announcement.origin;
    let mut best: Vec<Option<BestRoute>> = vec![None; n];
    best[origin.index()] = Some(BestRoute::origin());

    // --- Seed first hops from the announcement. ---
    // The class at a first-hop neighbor is determined by how it relates to
    // the origin: the origin's providers hear a customer route, etc.
    let mut customer_seeds = Vec::new();
    let mut peer_seeds = Vec::new();
    let mut provider_seeds = Vec::new();
    for offer in announcement.offers_by_neighbor(topo) {
        let nb = offer.neighbor;
        let rel_origin_to_nb = topo
            .relationship(origin, nb)
            .expect("offered link implies relationship");
        let class = RouteClass::from_neighbor_rel(rel_origin_to_nb);
        let route = BestRoute {
            class,
            path_len: 1 + offer.prepend,
            via: Some(origin),
            entry_links: offer.entry_links,
            no_export: offer.scope == Scope::NoExport,
        };
        match class {
            RouteClass::Customer => customer_seeds.push((nb, route)),
            RouteClass::Peer => peer_seeds.push((nb, route)),
            RouteClass::Provider => provider_seeds.push((nb, route)),
        }
    }

    // --- Phase 1: customer routes climb provider edges. ---
    relax_phase(
        topo,
        &mut best,
        customer_seeds,
        RouteClass::Customer,
        |topo, asn| topo.providers_of(asn),
    );

    // --- Phase 2: customer routes cross one peer edge. ---
    // Candidates: every AS holding a customer route (incl. the origin via
    // the announcement seeds above, which already carry entry links)
    // exports to its peers. Peer routes do not propagate further among
    // peers, so this is a single relaxation round, not a search.
    let mut peer_candidates: Vec<(AsId, BestRoute)> = peer_seeds;
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let asn = AsId(i as u32);
        let Some(route) = best[i].clone() else { continue };
        if route.class != RouteClass::Customer || route.is_origin() || route.no_export {
            continue; // origin's exports are governed by the announcement;
                      // NO_EXPORT routes stop here
        }
        for peer in topo.peers_of(asn) {
            peer_candidates.push((
                peer,
                BestRoute {
                    class: RouteClass::Peer,
                    path_len: route.path_len + 1,
                    via: Some(asn),
                    entry_links: Vec::new(),
                    no_export: false,
                },
            ));
        }
    }
    for (asn, cand) in peer_candidates {
        consider(&mut best, asn, cand);
    }

    // --- Phase 3: everything descends customer edges. ---
    // Every routed AS exports to its customers; provider routes cascade.
    let mut provider_cands: Vec<(AsId, BestRoute)> = provider_seeds;
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let asn = AsId(i as u32);
        let Some(route) = best[i].clone() else { continue };
        if route.is_origin() || route.no_export {
            continue;
        }
        for cust in topo.customers_of(asn) {
            provider_cands.push((
                cust,
                BestRoute {
                    class: RouteClass::Provider,
                    path_len: route.path_len + 1,
                    via: Some(asn),
                    entry_links: Vec::new(),
                    no_export: false,
                },
            ));
        }
    }
    relax_phase(
        topo,
        &mut best,
        provider_cands,
        RouteClass::Provider,
        |topo, asn| topo.customers_of(asn),
    );

    RoutingTable { origin, best }
}

/// Install `cand` at `asn` if it beats the incumbent under the decision
/// process (with the per-AS hashed tie-break). Returns whether it was
/// installed.
fn consider(best: &mut [Option<BestRoute>], asn: AsId, cand: BestRoute) -> bool {
    match &best[asn.index()] {
        None => {
            best[asn.index()] = Some(cand);
            true
        }
        Some(inc) => {
            let inc_key = (inc.class, inc.path_len, inc.via.unwrap_or(AsId(u32::MAX)));
            let cand_key = (cand.class, cand.path_len, cand.via.unwrap_or(AsId(u32::MAX)));
            if crate::decision::better_at(asn, cand_key, inc_key) {
                best[asn.index()] = Some(cand);
                true
            } else {
                false
            }
        }
    }
}

/// Dijkstra-style relaxation of one phase: starting from `seeds`, routes of
/// `class` spread along the edges produced by `next_hops` (applied to the
/// AS currently holding the route).
fn relax_phase(
    topo: &Topology,
    best: &mut [Option<BestRoute>],
    seeds: Vec<(AsId, BestRoute)>,
    class: RouteClass,
    next_hops: impl Fn(&Topology, AsId) -> Vec<AsId>,
) {
    let mut heap: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new();
    for (asn, route) in seeds {
        let key = (route.path_len, route.via.map_or(u32::MAX, |v| v.0), asn.0);
        if consider(best, asn, route) {
            heap.push(Reverse(key));
        }
    }
    while let Some(Reverse((len, via, asn))) = heap.pop() {
        let asn = AsId(asn);
        // Skip stale heap entries, and never expand NO_EXPORT routes.
        let Some(cur) = &best[asn.index()] else { continue };
        if cur.class != class || cur.path_len != len || cur.via.map_or(u32::MAX, |v| v.0) != via {
            continue;
        }
        if cur.no_export {
            continue;
        }
        for nxt in next_hops(topo, asn) {
            let cand = BestRoute {
                class,
                path_len: len + 1,
                via: Some(asn),
                entry_links: Vec::new(),
                no_export: false,
            };
            let key = (cand.path_len, asn.0, nxt.0);
            if consider(best, nxt, cand) {
                heap.push(Reverse(key));
            }
        }
    }
}

/// Check the valley-free property of a traffic path `p = [src, ..., origin]`:
/// the sequence of relationships must match `up* peer? down*`, where "up"
/// means the current AS is a customer of the next and "down" means it is a
/// provider of the next.
pub fn valley_free(topo: &Topology, path: &[AsId]) -> bool {
    #[derive(PartialEq, PartialOrd)]
    enum Stage {
        Up,
        Peer,
        Down,
    }
    let mut stage = Stage::Up;
    for w in path.windows(2) {
        let rel = match topo.relationship(w[0], w[1]) {
            Some(r) => r,
            None => return false,
        };
        match rel {
            BusinessRel::CustomerOf => {
                if stage != Stage::Up {
                    return false;
                }
            }
            BusinessRel::Peer => {
                if stage != Stage::Up {
                    return false;
                }
                stage = Stage::Peer;
            }
            BusinessRel::ProviderOf => {
                stage = Stage::Down;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_topology::{generate, AsClass, TopologyConfig};

    fn topo() -> Topology {
        generate(&TopologyConfig::small(21))
    }

    fn eyeball(topo: &Topology) -> AsId {
        topo.ases_of_class(AsClass::Eyeball).next().unwrap().id
    }

    #[test]
    fn full_announcement_reaches_everyone() {
        let t = topo();
        let o = eyeball(&t);
        let table = compute_routes(&t, &Announcement::full(&t, o));
        assert_eq!(table.reachable_count(), t.as_count());
    }

    #[test]
    fn all_paths_valley_free() {
        let t = topo();
        for origin in t.ases_of_class(AsClass::Eyeball).take(10) {
            let table = compute_routes(&t, &Announcement::full(&t, origin.id));
            for node in t.ases() {
                let path = table.as_path(node.id).expect("reachable");
                assert!(
                    valley_free(&t, &path),
                    "path {:?} from {} to {} not valley-free",
                    path,
                    node.name,
                    origin.name
                );
            }
        }
    }

    #[test]
    fn origin_route_is_trivial() {
        let t = topo();
        let o = eyeball(&t);
        let table = compute_routes(&t, &Announcement::full(&t, o));
        let r = table.route(o).unwrap();
        assert!(r.is_origin());
        assert_eq!(table.as_path(o).unwrap(), vec![o]);
    }

    #[test]
    fn paths_end_at_origin_and_start_at_source() {
        let t = topo();
        let o = eyeball(&t);
        let table = compute_routes(&t, &Announcement::full(&t, o));
        for node in t.ases().iter().take(30) {
            let path = table.as_path(node.id).unwrap();
            assert_eq!(path[0], node.id);
            assert_eq!(*path.last().unwrap(), o);
        }
    }

    #[test]
    fn direct_neighbors_have_entry_links() {
        let t = topo();
        let o = eyeball(&t);
        let table = compute_routes(&t, &Announcement::full(&t, o));
        for nb in t.neighbors(o) {
            let r = table.route(nb).unwrap();
            assert_eq!(r.via, Some(o));
            assert!(!r.entry_links.is_empty(), "{nb} should record entry links");
        }
    }

    #[test]
    fn customer_route_preferred_over_shorter_peer_route() {
        // Build by hand: origin O customer of T; T customer of P; P peers
        // with O directly. P must pick the longer customer route via T.
        use bb_geo::atlas::AtlasConfig;
        use bb_geo::Atlas;
        use bb_topology::{AsClass, BusinessRel, ExitPolicy, LinkKind, Topology};
        let atlas = Atlas::generate(&AtlasConfig {
            seed: 2,
            city_density: 0.3,
        });
        let c0 = atlas.cities[0].id;
        let mut t = Topology::new(atlas);
        let p = t.add_as(AsClass::Tier1, "P", vec![c0], ExitPolicy::EarlyExit, 1.1, None, 0.0);
        let tr = t.add_as(AsClass::Transit, "T", vec![c0], ExitPolicy::EarlyExit, 1.2, None, 0.0);
        let o = t.add_as(AsClass::Eyeball, "O", vec![c0], ExitPolicy::EarlyExit, 1.4, Some(0), 1.0);
        t.add_interconnect(o, tr, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
        t.add_interconnect(tr, p, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
        t.add_interconnect(o, p, BusinessRel::Peer, LinkKind::PublicPeering, c0, 10.0);

        let table = compute_routes(&t, &Announcement::full(&t, o));
        let r = table.route(p).unwrap();
        assert_eq!(r.class, RouteClass::Customer);
        assert_eq!(r.path_len, 2);
        assert_eq!(r.via, Some(tr));
    }

    #[test]
    fn withholding_shrinks_reachability_or_lengthens_paths() {
        let t = topo();
        let o = eyeball(&t);
        let full = compute_routes(&t, &Announcement::full(&t, o));

        // Withhold all but one neighbor: paths can only get worse.
        let mut ann = Announcement::full(&t, o);
        let keep = t.adjacency(o)[0].1;
        for &(_, l) in &t.adjacency(o)[1..] {
            if l != keep {
                ann.withhold_link(l);
            }
        }
        let partial = compute_routes(&t, &ann);
        assert!(partial.reachable_count() <= full.reachable_count());
        for (asn, r) in partial.routes() {
            let fr = full.route(asn).unwrap();
            assert!(
                r.path_len >= fr.path_len || r.class >= fr.class,
                "withholding must not improve routes at {asn}"
            );
        }
    }

    #[test]
    fn prepending_diverts_route_choice() {
        // Find an AS with ≥2 neighbors; prepend heavily toward the one its
        // providers prefer and check some AS changes its via.
        let t = topo();
        let o = eyeball(&t);
        let full = compute_routes(&t, &Announcement::full(&t, o));

        let mut ann = Announcement::full(&t, o);
        // Heavily prepend toward the first neighbor.
        let nb0 = t.adjacency(o)[0].0;
        for &(nb, l) in t.adjacency(o) {
            if nb == nb0 {
                ann.prepend_link(l, 10);
            }
        }
        let groomed = compute_routes(&t, &ann);
        let r_full = full.route(nb0).unwrap();
        let r_groomed = groomed.route(nb0).unwrap();
        // The neighbor still has a route (maybe via another AS now), but the
        // direct offer got longer.
        assert!(r_groomed.path_len >= r_full.path_len);
    }

    #[test]
    fn deterministic() {
        let t = topo();
        let o = eyeball(&t);
        let a = compute_routes(&t, &Announcement::full(&t, o));
        let b = compute_routes(&t, &Announcement::full(&t, o));
        for node in t.ases() {
            assert_eq!(a.route(node.id), b.route(node.id));
        }
    }

    #[test]
    fn valley_free_rejects_bad_paths() {
        let t = topo();
        // A fabricated path that goes down then up must be rejected if the
        // relationships exist that way; use origin's provider chain.
        let o = eyeball(&t);
        let prov = t.providers_of(o)[0];
        // down (prov -> o is ProviderOf) then up (o -> prov is CustomerOf):
        let path = vec![prov, o, prov];
        assert!(!valley_free(&t, &path));
    }
}

#[cfg(test)]
mod no_export_tests {
    use super::*;
    use crate::announcement::Scope;
    use bb_topology::{generate, AsClass, TopologyConfig};

    #[test]
    fn no_export_stops_one_as_away() {
        let t = generate(&TopologyConfig::small(33));
        let o = t.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let mut ann = Announcement::empty(o);
        for &(_, l) in t.adjacency(o) {
            ann.offer_scoped(l, 0, Scope::NoExport);
        }
        let table = compute_routes(&t, &ann);
        // Exactly the origin plus its direct neighbors have routes.
        let expected = 1 + t.neighbors(o).len();
        assert_eq!(table.reachable_count(), expected);
        for (asn, r) in table.routes() {
            if asn != o {
                assert_eq!(r.via, Some(o), "{asn} must hold only the direct route");
                assert!(r.no_export);
            }
        }
    }

    #[test]
    fn mixed_scope_keeps_global_reachability() {
        let t = generate(&TopologyConfig::small(33));
        let o = t.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let mut ann = Announcement::full(&t, o);
        // Tag half the links NO_EXPORT; the rest stay global.
        for (i, &(_, l)) in t.adjacency(o).iter().enumerate() {
            if i % 2 == 0 {
                ann.offer_scoped(l, 0, Scope::NoExport);
            }
        }
        let table = compute_routes(&t, &ann);
        assert_eq!(table.reachable_count(), t.as_count());
    }

    #[test]
    fn no_export_neighbor_can_still_route_via_others() {
        // A neighbor that hears only a NO_EXPORT copy still uses it (it's
        // the shortest), but the rest of the world routes around it.
        let t = generate(&TopologyConfig::small(35));
        let o = t.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let neighbors = t.neighbors(o);
        if neighbors.len() < 2 {
            return;
        }
        let scoped = neighbors[0];
        let mut ann = Announcement::full(&t, o);
        for &(nb, l) in t.adjacency(o) {
            if nb == scoped {
                ann.offer_scoped(l, 0, Scope::NoExport);
            }
        }
        let table = compute_routes(&t, &ann);
        assert_eq!(table.reachable_count(), t.as_count());
        let r = table.route(scoped).unwrap();
        assert_eq!(r.via, Some(o));
        assert!(r.no_export);
        // No other AS routes *through* the scoped neighbor's direct route.
        for (asn, route) in table.routes() {
            if route.via == Some(scoped) {
                // Such a route must have come from a non-direct path the
                // scoped AS would export — impossible here since its best
                // is the NO_EXPORT direct route.
                panic!("{asn} routes via the NO_EXPORT holder");
            }
        }
    }
}
