//! The content provider's Adj-RIB-in, grouped by PoP.
//!
//! §2.3.1: "For most clients, the PoP serving the client has at least three
//! routes to the client's prefix: routes announced by one or more peers, and
//! routes announced by two or more transit providers." This module
//! reconstructs that RIB from the routing table of a client-prefix
//! announcement and ranks it by the Facebook-style policy of §3.1: "prefers
//! private peers with dedicated capacity first, then public peers, and
//! finally transit providers; and chooses shorter paths over longer ones."

use crate::decision::RouteClass;
use crate::propagation::RoutingTable;
use bb_geo::CityId;
use bb_topology::{AsId, BusinessRel, InterconnectId, LinkKind, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Route class from the provider's egress-policy perspective
/// (lower = more preferred under the standard policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProviderRouteClass {
    /// Private network interconnect with a (settlement-free) peer.
    PrivatePeer = 0,
    /// Peering across a public exchange.
    PublicPeer = 1,
    /// Route via a paid transit provider.
    Transit = 2,
}

impl ProviderRouteClass {
    pub fn name(&self) -> &'static str {
        match self {
            ProviderRouteClass::PrivatePeer => "private-peer",
            ProviderRouteClass::PublicPeer => "public-peer",
            ProviderRouteClass::Transit => "transit",
        }
    }
}

/// One route available at a provider PoP toward the client prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateRoute {
    /// The provider-side interconnect the route egresses over.
    pub link: InterconnectId,
    /// City of that interconnect (identifies the PoP).
    pub pop_city: CityId,
    /// Next-hop AS.
    pub neighbor: AsId,
    /// Policy class at the provider.
    pub class: ProviderRouteClass,
    /// Total AS-path length (neighbor's path + 1).
    pub total_len: u32,
    /// How the neighbor itself learned the route.
    pub neighbor_class: RouteClass,
}

/// Ranked routes at one PoP toward one client prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopRib {
    pub pop_city: CityId,
    /// Routes in policy order: index 0 is BGP's most preferred.
    pub routes: Vec<CandidateRoute>,
}

impl PopRib {
    /// BGP's preferred route at this PoP.
    pub fn preferred(&self) -> &CandidateRoute {
        &self.routes[0]
    }

    /// The top `k` routes (preferred + alternates), fewer if unavailable.
    pub fn top_k(&self, k: usize) -> &[CandidateRoute] {
        &self.routes[..self.routes.len().min(k)]
    }
}

/// Build the provider's per-PoP RIB toward `table.origin` (a client
/// prefix's AS). Returns one entry per PoP city where at least one route is
/// available, sorted by city id.
pub fn provider_rib(topo: &Topology, provider: AsId, table: &RoutingTable) -> Vec<PopRib> {
    let mut per_pop: BTreeMap<CityId, Vec<CandidateRoute>> = BTreeMap::new();

    for &(neighbor, link_id) in topo.adjacency(provider) {
        let link = topo.link(link_id);
        // What the neighbor would export to the provider.
        let (neighbor_len, neighbor_class) = if neighbor == table.origin {
            (0, RouteClass::Customer) // its own prefix
        } else {
            match table.route(neighbor) {
                None => continue,
                Some(r) => {
                    // Never hand traffic back through the provider itself.
                    if r.via == Some(provider) {
                        continue;
                    }
                    let rel_nb_to_provider = topo
                        .relationship(neighbor, provider)
                        .expect("link implies relationship");
                    if !r.class.exportable_to(rel_nb_to_provider) {
                        continue;
                    }
                    (r.path_len, r.class)
                }
            }
        };

        let class = classify(topo, provider, neighbor, link.kind);
        per_pop.entry(link.city).or_default().push(CandidateRoute {
            link: link_id,
            pop_city: link.city,
            neighbor,
            class,
            total_len: neighbor_len + 1,
            neighbor_class,
        });
    }

    per_pop
        .into_iter()
        .map(|(pop_city, mut routes)| {
            routes.sort_by_key(|r| (r.class, r.total_len, r.neighbor, r.link));
            PopRib { pop_city, routes }
        })
        .collect()
}

/// Provider policy class of a route via `neighbor` over a link of `kind`.
fn classify(
    topo: &Topology,
    provider: AsId,
    neighbor: AsId,
    kind: LinkKind,
) -> ProviderRouteClass {
    match topo.relationship(provider, neighbor) {
        Some(BusinessRel::CustomerOf) => ProviderRouteClass::Transit,
        _ => match kind {
            LinkKind::PrivatePeering => ProviderRouteClass::PrivatePeer,
            LinkKind::PublicPeering => ProviderRouteClass::PublicPeer,
            // A transit-kind link where the provider is not the customer
            // (i.e., the neighbor pays us) still egresses like a private
            // interconnect.
            LinkKind::Transit => ProviderRouteClass::PrivatePeer,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::announcement::Announcement;
    use crate::propagation::compute_routes;
    use bb_geo::atlas::AtlasConfig;
    use bb_geo::Atlas;
    use bb_topology::{AsClass, ExitPolicy, Topology};

    /// Hand-built scenario: provider P with one PoP city, connected to
    /// eyeball E by PNI, to transit T by public peering, and buying transit
    /// from tier-1 G. E is customer of T; T customer of G.
    fn scenario() -> (Topology, AsId, AsId) {
        let atlas = Atlas::generate(&AtlasConfig {
            seed: 3,
            city_density: 0.3,
        });
        let c0 = atlas.cities[0].id;
        let mut t = Topology::new(atlas);
        let g = t.add_as(AsClass::Tier1, "G", vec![c0], ExitPolicy::EarlyExit, 1.1, None, 0.0);
        let tr = t.add_as(AsClass::Transit, "T", vec![c0], ExitPolicy::EarlyExit, 1.2, None, 0.0);
        let e = t.add_as(AsClass::Eyeball, "E", vec![c0], ExitPolicy::EarlyExit, 1.4, Some(0), 1.0);
        let p = t.add_as(AsClass::Content, "P", vec![c0], ExitPolicy::LateExit, 1.1, None, 0.0);
        t.add_interconnect(tr, g, BusinessRel::CustomerOf, LinkKind::Transit, c0, 1000.0);
        t.add_interconnect(e, tr, BusinessRel::CustomerOf, LinkKind::Transit, c0, 100.0);
        t.add_interconnect(p, e, BusinessRel::Peer, LinkKind::PrivatePeering, c0, 100.0);
        t.add_interconnect(p, tr, BusinessRel::Peer, LinkKind::PublicPeering, c0, 100.0);
        t.add_interconnect(p, g, BusinessRel::CustomerOf, LinkKind::Transit, c0, 1000.0);
        (t, p, e)
    }

    #[test]
    fn rib_has_three_route_classes_ranked() {
        let (t, p, e) = scenario();
        let table = compute_routes(&t, &Announcement::full(&t, e));
        let ribs = provider_rib(&t, p, &table);
        assert_eq!(ribs.len(), 1, "single PoP city");
        let rib = &ribs[0];
        assert_eq!(rib.routes.len(), 3);
        assert_eq!(rib.routes[0].class, ProviderRouteClass::PrivatePeer);
        assert_eq!(rib.routes[0].neighbor, e);
        assert_eq!(rib.routes[0].total_len, 1);
        assert_eq!(rib.routes[1].class, ProviderRouteClass::PublicPeer);
        assert_eq!(rib.routes[1].total_len, 2);
        assert_eq!(rib.routes[2].class, ProviderRouteClass::Transit);
        assert_eq!(rib.routes[2].total_len, 3);
    }

    #[test]
    fn top_k_truncates() {
        let (t, p, e) = scenario();
        let table = compute_routes(&t, &Announcement::full(&t, e));
        let ribs = provider_rib(&t, p, &table);
        assert_eq!(ribs[0].top_k(2).len(), 2);
        assert_eq!(ribs[0].top_k(10).len(), 3);
        assert_eq!(ribs[0].preferred().neighbor, e);
    }

    #[test]
    fn peer_does_not_export_peer_routes() {
        // If we cut E–T (so T's route to E is via its *peer* — impossible
        // here; instead make T a peer of E): T would then refuse to export
        // E's prefix to P.
        let atlas = Atlas::generate(&AtlasConfig {
            seed: 4,
            city_density: 0.3,
        });
        let c0 = atlas.cities[0].id;
        let mut t = Topology::new(atlas);
        let tr = t.add_as(AsClass::Transit, "T", vec![c0], ExitPolicy::EarlyExit, 1.2, None, 0.0);
        let e = t.add_as(AsClass::Eyeball, "E", vec![c0], ExitPolicy::EarlyExit, 1.4, Some(0), 1.0);
        let p = t.add_as(AsClass::Content, "P", vec![c0], ExitPolicy::LateExit, 1.1, None, 0.0);
        // E peers with T; P peers with T. T must not re-export E's routes.
        t.add_interconnect(e, tr, BusinessRel::Peer, LinkKind::PublicPeering, c0, 100.0);
        t.add_interconnect(p, tr, BusinessRel::Peer, LinkKind::PublicPeering, c0, 100.0);

        let table = compute_routes(&t, &Announcement::full(&t, e));
        let ribs = provider_rib(&t, p, &table);
        assert!(
            ribs.is_empty(),
            "P must have no route: T cannot export a peer route to a peer"
        );
    }

    #[test]
    fn transit_neighbor_exports_everything() {
        let (t, p, e) = scenario();
        let table = compute_routes(&t, &Announcement::full(&t, e));
        let ribs = provider_rib(&t, p, &table);
        // G (P's transit) learned E's route via its customer T and exports
        // it to P; class at P is Transit.
        assert!(ribs[0]
            .routes
            .iter()
            .any(|r| r.class == ProviderRouteClass::Transit));
    }

    #[test]
    fn generated_topology_pops_have_route_diversity() {
        use bb_topology::{generate, TopologyConfig};
        // Attach a provider to a generated topology by hand.
        let mut topo = generate(&TopologyConfig::small(31));
        let hubs: Vec<CityId> = topo.atlas.colo_hubs().map(|c| c.id).collect();
        let p = topo.add_as(
            AsClass::Content,
            "provider",
            hubs.clone(),
            ExitPolicy::LateExit,
            1.1,
            None,
            0.0,
        );
        // Peer with transits at hubs; buy from two tier-1s.
        let transits: Vec<AsId> = topo.ases_of_class(AsClass::Transit).map(|a| a.id).collect();
        for tr in transits {
            let shared: Vec<CityId> = topo
                .asys(tr)
                .footprint
                .iter()
                .copied()
                .filter(|c| hubs.contains(c))
                .collect();
            if let Some(&city) = shared.first() {
                topo.add_interconnect(p, tr, BusinessRel::Peer, LinkKind::PublicPeering, city, 200.0);
            }
        }
        let tier1s: Vec<AsId> = topo.ases_of_class(AsClass::Tier1).map(|a| a.id).collect();
        for &t1 in tier1s.iter().take(2) {
            for &city in hubs.iter().take(4) {
                if topo.asys(t1).present_in(city) {
                    topo.add_interconnect(p, t1, BusinessRel::CustomerOf, LinkKind::Transit, city, 2000.0);
                }
            }
        }

        let eye = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let table = compute_routes(&topo, &Announcement::full(&topo, eye));
        let ribs = provider_rib(&topo, p, &table);
        assert!(!ribs.is_empty());
        // Every ranked list must be sorted by (class, len).
        for rib in &ribs {
            for w in rib.routes.windows(2) {
                assert!(
                    (w[0].class, w[0].total_len) <= (w[1].class, w[1].total_len),
                    "RIB must be policy-sorted"
                );
            }
        }
    }
}
