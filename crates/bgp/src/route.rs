//! Route records stored per AS by propagation.

use crate::arena::{EntryHandle, PathHandle};
use crate::decision::RouteClass;
use bb_topology::AsId;
use serde::{Deserialize, Serialize};

/// The best route an AS holds toward the origin of one routing computation.
///
/// `Copy`, 24 bytes: the AS path and the entry-link set live in the owning
/// `RoutingTable`'s arena/pool and are referenced by 4-byte handles, so a
/// planet-scale table is one flat `Vec` plus two shared side arrays instead
/// of ~10⁵ owned vectors. Resolve the handles through the table
/// (`RoutingTable::as_path`, `RoutingTable::entry_links`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BestRoute {
    /// How this AS learned the route (drives local-pref and export rules).
    pub class: RouteClass,
    /// AS-path length including prepending (origin's own route has length 0).
    pub path_len: u32,
    /// Next hop toward the origin; `None` at the origin itself.
    pub via: Option<AsId>,
    /// Interned AS path back to the origin, filled in when the routing
    /// table is finalized. `PathHandle::CYCLE` marks a poisoned via chain.
    pub path: PathHandle,
    /// For ASes adjacent to the origin: the interconnects into the origin
    /// that are tied-best under BGP (same effective path length). The
    /// realization layer picks one by exit policy; this is where anycast
    /// catchment geography comes from. `EntryHandle::NONE` elsewhere.
    pub entry: EntryHandle,
    /// The route carries NO_EXPORT: its holder must not re-advertise it.
    pub no_export: bool,
}

impl BestRoute {
    /// The origin's trivial route to itself.
    pub fn origin() -> Self {
        BestRoute {
            class: RouteClass::Customer,
            path_len: 0,
            via: None,
            path: PathHandle::NONE,
            entry: EntryHandle::NONE,
            no_export: false,
        }
    }

    /// Whether this is the origin's own route.
    pub fn is_origin(&self) -> bool {
        self.via.is_none() && self.path_len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_route_shape() {
        let r = BestRoute::origin();
        assert!(r.is_origin());
        assert_eq!(r.path_len, 0);
        assert!(r.entry.is_none());
    }

    #[test]
    fn non_origin_route() {
        let r = BestRoute {
            class: RouteClass::Peer,
            path_len: 2,
            via: Some(AsId(5)),
            path: PathHandle::NONE,
            entry: EntryHandle::NONE,
            no_export: false,
        };
        assert!(!r.is_origin());
    }

    #[test]
    fn best_route_is_small() {
        // The whole point of interning: a route record is flat and small.
        assert!(std::mem::size_of::<BestRoute>() <= 24);
        assert!(std::mem::size_of::<Option<BestRoute>>() <= 28);
    }
}
