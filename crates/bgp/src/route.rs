//! Route records stored per AS by propagation.

use crate::decision::RouteClass;
use bb_topology::{AsId, InterconnectId};
use serde::{Deserialize, Serialize};

/// The best route an AS holds toward the origin of one routing computation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BestRoute {
    /// How this AS learned the route (drives local-pref and export rules).
    pub class: RouteClass,
    /// AS-path length including prepending (origin's own route has length 0).
    pub path_len: u32,
    /// Next hop toward the origin; `None` at the origin itself.
    pub via: Option<AsId>,
    /// For ASes adjacent to the origin: the interconnects into the origin
    /// that are tied-best under BGP (same effective path length). The
    /// realization layer picks one by exit policy; this is where anycast
    /// catchment geography comes from.
    pub entry_links: Vec<InterconnectId>,
    /// The route carries NO_EXPORT: its holder must not re-advertise it.
    pub no_export: bool,
}

impl BestRoute {
    /// The origin's trivial route to itself.
    pub fn origin() -> Self {
        BestRoute {
            class: RouteClass::Customer,
            path_len: 0,
            via: None,
            entry_links: Vec::new(),
            no_export: false,
        }
    }

    /// Whether this is the origin's own route.
    pub fn is_origin(&self) -> bool {
        self.via.is_none() && self.path_len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_route_shape() {
        let r = BestRoute::origin();
        assert!(r.is_origin());
        assert_eq!(r.path_len, 0);
        assert!(r.entry_links.is_empty());
    }

    #[test]
    fn non_origin_route() {
        let r = BestRoute {
            class: RouteClass::Peer,
            path_len: 2,
            via: Some(AsId(5)),
            entry_links: vec![],
            no_export: false,
        };
        assert!(!r.is_origin());
    }
}
