//! Property tests of announcement algebra (the grooming levers).

use bb_bgp::{compute_routes, Announcement, Scope};
use bb_topology::{generate, AsClass, TopologyConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Withhold-then-offer round-trips to the full announcement.
    #[test]
    fn withhold_offer_roundtrip(seed in 0u64..50_000, pick in 0usize..64) {
        let topo = generate(&TopologyConfig::small(seed));
        let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let adj = topo.adjacency(origin);
        let link = adj[pick % adj.len()].1;

        let full = Announcement::full(&topo, origin);
        let mut ann = Announcement::full(&topo, origin);
        ann.withhold_link(link);
        prop_assert_eq!(ann.len(), full.len() - 1);
        ann.offer(link, 0);
        prop_assert_eq!(ann.len(), full.len());

        // Routing outcome identical to full.
        let a = compute_routes(&topo, &ann);
        let b = compute_routes(&topo, &full);
        for node in topo.ases() {
            prop_assert_eq!(a.route(node.id), b.route(node.id));
        }
    }

    /// Prepending is idempotent per link: applying the same prepend twice
    /// equals applying it once.
    #[test]
    fn prepend_idempotent(seed in 0u64..50_000, n in 1u32..6) {
        let topo = generate(&TopologyConfig::small(seed));
        let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let mut once = Announcement::full(&topo, origin);
        let mut twice = Announcement::full(&topo, origin);
        for &(_, l) in topo.adjacency(origin) {
            once.prepend_link(l, n);
            twice.prepend_link(l, n);
            twice.prepend_link(l, n);
        }
        let a = compute_routes(&topo, &once);
        let b = compute_routes(&topo, &twice);
        for node in topo.ases() {
            prop_assert_eq!(a.route(node.id), b.route(node.id));
        }
    }

    /// Scoping every offer NO_EXPORT bounds reachability by the neighbor
    /// count, for any origin.
    #[test]
    fn no_export_bounds_reach(seed in 0u64..50_000, origin_pick in 0usize..32) {
        let topo = generate(&TopologyConfig::small(seed));
        let eyeballs: Vec<_> = topo.ases_of_class(AsClass::Eyeball).collect();
        let origin = eyeballs[origin_pick % eyeballs.len()].id;
        let mut ann = Announcement::empty(origin);
        for &(_, l) in topo.adjacency(origin) {
            ann.offer_scoped(l, 0, Scope::NoExport);
        }
        let table = compute_routes(&topo, &ann);
        prop_assert!(table.reachable_count() <= 1 + topo.neighbors(origin).len());
        prop_assert!(table.reachable_count() >= 2, "at least one neighbor hears it");
    }

    /// Mixed scopes: as long as every neighbor keeps at least one Global
    /// copy at the same effective prepend, tagging its *other* links
    /// NO_EXPORT changes nothing — the neighbor is free to re-export the
    /// untagged copy.
    #[test]
    fn no_export_on_redundant_links_is_invisible(seed in 0u64..50_000) {
        let topo = generate(&TopologyConfig::small(seed));
        let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let full = compute_routes(&topo, &Announcement::full(&topo, origin));
        let mut ann = Announcement::full(&topo, origin);
        // For each neighbor with ≥2 links, tag exactly one of them.
        let mut seen: std::collections::HashMap<_, usize> = Default::default();
        let mut tag: Vec<_> = Vec::new();
        for &(nb, l) in topo.adjacency(origin) {
            *seen.entry(nb).or_insert(0) += 1;
            if seen[&nb] == 2 {
                tag.push(l); // the second link of this neighbor
            }
        }
        for l in tag {
            ann.offer_scoped(l, 0, Scope::NoExport);
        }
        let mixed = compute_routes(&topo, &ann);
        prop_assert_eq!(mixed.reachable_count(), full.reachable_count());
        for node in topo.ases() {
            let (a, b) = (mixed.route(node.id), full.route(node.id));
            match (a, b) {
                (Some(x), Some(y)) => {
                    prop_assert_eq!(x.class, y.class);
                    prop_assert_eq!(x.path_len, y.path_len);
                }
                (None, None) => {}
                _ => prop_assert!(false, "reachability mismatch at {}", node.id),
            }
        }
    }
}
