//! Anycast serving: one prefix announced from many front-end sites, BGP
//! picks the site (§2.3.2).
//!
//! The serving front-end for a client is determined by where the client's
//! BGP path *enters* the provider: the entry interconnect is chosen by the
//! last AS before the provider (hot-potato among the tied-best announced
//! links), and the request is then served by the announcing site closest to
//! that ingress over the WAN. "BGP steers a client request to a particular
//! front-end location … it is known to not always pick nearby servers."

use crate::provider::Provider;
use bb_bgp::{Announcement, RoutingTable};
use bb_geo::CityId;
use bb_netsim::{realize_path, RealizeSpec, RealizedPath};
use bb_topology::{AsId, Topology};
use std::sync::Arc;

/// An anycast (or unicast) deployment: announcing sites plus the resulting
/// routing state.
#[derive(Debug, Clone)]
pub struct AnycastDeployment {
    pub provider: AsId,
    /// Front-end cities announcing the prefix.
    pub sites: Vec<CityId>,
    pub announcement: Announcement,
    /// Shared through the process-wide route cache: deployments with the
    /// same announcement on the same topology hand out the same table.
    pub table: Arc<RoutingTable>,
}

/// How one client reaches the deployment.
#[derive(Debug, Clone)]
pub struct ClientService {
    /// Realized client→provider path (public Internet part).
    pub path: RealizedPath,
    /// City where traffic enters the provider.
    pub entry_city: CityId,
    /// Serving front-end site.
    pub front_end: CityId,
    /// Extra one-way WAN carriage from ingress to the front-end, ms.
    pub wan_extra_ms: f64,
}

impl AnycastDeployment {
    /// Announce from every provider interconnect located at one of `sites`.
    pub fn deploy(topo: &Topology, provider: &Provider, sites: &[CityId]) -> AnycastDeployment {
        let mut ann = Announcement::empty(provider.asn);
        for &(_, link) in topo.adjacency(provider.asn) {
            if sites.contains(&topo.link(link).city) {
                ann.offer(link, 0);
            }
        }
        Self::deploy_with(topo, provider, sites, ann)
    }

    /// Deploy with a custom (possibly groomed) announcement.
    pub fn deploy_with(
        topo: &Topology,
        provider: &Provider,
        sites: &[CityId],
        announcement: Announcement,
    ) -> AnycastDeployment {
        assert!(!sites.is_empty(), "need at least one site");
        assert!(
            sites.iter().all(|s| provider.has_pop(*s)),
            "sites must be provider PoPs"
        );
        let table = bb_exec::cached_routes(topo, &announcement);
        AnycastDeployment {
            provider: provider.asn,
            sites: sites.to_vec(),
            announcement,
            table,
        }
    }

    /// A single-site unicast deployment.
    ///
    /// Satellite front-ends without local interconnects announce their
    /// unicast prefix at the nearest (by WAN) PoP that has interconnects;
    /// traffic then rides the WAN from that ingress to the site.
    pub fn unicast(topo: &Topology, provider: &Provider, site: CityId) -> AnycastDeployment {
        let mut ann = Announcement::empty(provider.asn);
        let announce_at = |ann: &mut Announcement, city: CityId| {
            let mut any = false;
            for &(_, link) in topo.adjacency(provider.asn) {
                if topo.link(link).city == city {
                    ann.offer(link, 0);
                    any = true;
                }
            }
            any
        };
        if !announce_at(&mut ann, site) {
            // Nearest connected PoP by WAN distance.
            let connected: Vec<CityId> = {
                let mut v: Vec<CityId> = topo
                    .adjacency(provider.asn)
                    .iter()
                    .map(|&(_, l)| topo.link(l).city)
                    .collect();
                v.sort();
                v.dedup();
                v
            };
            if let Some(fallback) = connected
                .into_iter()
                .filter_map(|c| provider.wan.path_ms(site, c).map(|ms| (c, ms)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(c, _)| c)
            {
                announce_at(&mut ann, fallback);
            }
        }
        Self::deploy_with(topo, provider, &[site], ann)
    }

    /// Serve a client: realize its path into the provider and pick the
    /// front-end. `None` if the client AS has no route (fully withheld
    /// announcement).
    pub fn serve(
        &self,
        topo: &Topology,
        provider: &Provider,
        client_as: AsId,
        client_city: CityId,
    ) -> Option<ClientService> {
        let (path, entry_city) =
            route_into_provider(topo, &self.table, self.provider, client_as, client_city)?;

        // Serving site: nearest announcing site from the ingress over the
        // WAN (the ingress router routes the anycast address internally).
        let (front_end, wan_extra_ms) = self
            .sites
            .iter()
            .filter_map(|&s| provider.wan.path_ms(entry_city, s).map(|ms| (s, ms)))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;

        Some(ClientService {
            path,
            entry_city,
            front_end,
            wan_extra_ms,
        })
    }
}

/// Realize a client's BGP path into the provider: walk the via-chain,
/// realize city-level with the final hop restricted to the announced entry
/// links. Returns the realized path and the ingress city.
pub fn route_into_provider(
    topo: &Topology,
    table: &RoutingTable,
    provider: AsId,
    client_as: AsId,
    client_city: CityId,
) -> Option<(RealizedPath, CityId)> {
    if client_as == provider {
        return None;
    }
    let chain = table.as_path(client_as)?;
    debug_assert_eq!(*chain.last().unwrap(), provider);
    // entry_links live on the provider's direct neighbor in the chain.
    let neighbor = chain[chain.len() - 2];
    table.route(neighbor)?;
    let entry_links = table.entry_links(neighbor);
    debug_assert!(!entry_links.is_empty(), "first-hop AS must carry entry links");

    let spec = RealizeSpec {
        as_path: &chain,
        src_city: client_city,
        dst_city: None,
        first_link: None,
        final_entry_links: Some(entry_links),
    };
    let path = realize_path(topo, &spec);
    let entry_city = topo.link(path.entry_link.expect("entered provider")).city;
    Some((path, entry_city))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{build_provider, ProviderConfig};
    use bb_topology::{generate, AsClass, TopologyConfig};

    fn world() -> (Topology, Provider) {
        let mut topo = generate(&TopologyConfig::small(51));
        let p = build_provider(&mut topo, &ProviderConfig::microsoft_like(5));
        (topo, p)
    }

    #[test]
    fn full_deployment_serves_every_eyeball() {
        let (topo, p) = world();
        let dep = AnycastDeployment::deploy(&topo, &p, &p.pops.clone());
        for eye in topo.ases_of_class(AsClass::Eyeball) {
            let city = eye.footprint[0];
            let svc = dep
                .serve(&topo, &p, eye.id, city)
                .unwrap_or_else(|| panic!("{} unserved", eye.name));
            assert!(dep.sites.contains(&svc.front_end));
            assert!(p.has_pop(svc.entry_city));
        }
    }

    #[test]
    fn front_end_at_ingress_when_ingress_is_a_site() {
        let (topo, p) = world();
        let dep = AnycastDeployment::deploy(&topo, &p, &p.pops.clone());
        for eye in topo.ases_of_class(AsClass::Eyeball).take(10) {
            let svc = dep.serve(&topo, &p, eye.id, eye.footprint[0]).unwrap();
            // Every PoP is a site, so the ingress itself serves.
            assert_eq!(svc.front_end, svc.entry_city);
            assert_eq!(svc.wan_extra_ms, 0.0);
        }
    }

    #[test]
    fn single_site_unicast_serves_from_that_site() {
        let (topo, p) = world();
        let site = p.pops[0];
        let dep = AnycastDeployment::unicast(&topo, &p, site);
        let eye = topo.ases_of_class(AsClass::Eyeball).last().unwrap();
        let svc = dep.serve(&topo, &p, eye.id, eye.footprint[0]).unwrap();
        assert_eq!(svc.front_end, site);
        // Ingress must be at the announcing city (the only announced links).
        assert_eq!(svc.entry_city, site);
    }

    #[test]
    fn anycast_catchment_is_usually_nearby() {
        // With all PoPs announcing, most clients should be served within
        // their own region (the §3.2.1 common case).
        let (topo, p) = world();
        let dep = AnycastDeployment::deploy(&topo, &p, &p.pops.clone());
        let mut same_region = 0;
        let mut total = 0;
        for eye in topo.ases_of_class(AsClass::Eyeball) {
            let city = eye.footprint[0];
            let svc = dep.serve(&topo, &p, eye.id, city).unwrap();
            total += 1;
            if topo.atlas.city(svc.front_end).region == topo.atlas.city(city).region {
                same_region += 1;
            }
        }
        assert!(
            same_region * 10 >= total * 6,
            "only {same_region}/{total} served in-region"
        );
    }

    #[test]
    fn withheld_everything_serves_no_one() {
        let (topo, p) = world();
        let ann = Announcement::empty(p.asn);
        let dep = AnycastDeployment::deploy_with(&topo, &p, &[p.pops[0]], ann);
        let eye = topo.ases_of_class(AsClass::Eyeball).next().unwrap();
        assert!(dep.serve(&topo, &p, eye.id, eye.footprint[0]).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_sites_panics() {
        let (topo, p) = world();
        AnycastDeployment::deploy(&topo, &p, &[]);
    }
}
