//! DNS-based redirection at LDNS granularity (§2.3.2, §3.2.1).
//!
//! The redirector is trained from client-side measurements ("spraying
//! background requests", §2.2) but can only key its decisions on the
//! **resolver** that asks, not the client: "DNS redirection systems cannot
//! see the IP address of the requesting client, only of client's local
//! resolver (LDNS), limiting decisions to a per-LDNS granularity." Public
//! resolvers that send EDNS Client Subnet get per-prefix decisions instead.
//!
//! This aggregation is the mechanism behind Figure 4's both-sided CDF: a
//! resolver whose clients sit in different metros gets one answer that is
//! right for some of them and wrong for others.

use bb_geo::CityId;
use bb_workload::{LdnsId, PrefixId, Workload};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// What the redirector returns for a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SiteChoice {
    /// Hand out the anycast address (let BGP pick).
    Anycast,
    /// Hand out the unicast address of a specific front-end.
    Unicast(CityId),
}

/// One training observation: a client prefix's measured medians to the
/// anycast address and to candidate unicast front-ends.
#[derive(Debug, Clone)]
pub struct TrainingSample {
    pub prefix: PrefixId,
    /// Traffic weight of the prefix (drives the per-LDNS aggregate).
    pub weight: f64,
    pub anycast_rtt_ms: f64,
    pub unicast_rtt_ms: Vec<(CityId, f64)>,
}

/// The trained redirector.
#[derive(Debug, Clone, Default)]
pub struct DnsRedirector {
    per_ldns: HashMap<LdnsId, SiteChoice>,
    /// Per-prefix decisions for ECS-capable resolvers.
    per_prefix: HashMap<PrefixId, SiteChoice>,
}

impl DnsRedirector {
    /// Train from samples: each resolver gets the option (anycast or one
    /// unicast site) minimizing the *weighted mean* RTT over its client
    /// prefixes — "mapped each LDNS to either the best performing unicast
    /// front-end or anycast, whichever earlier measurements predict is
    /// better for clients of the LDNS".
    pub fn train(workload: &Workload, samples: &[TrainingSample]) -> DnsRedirector {
        let by_prefix: HashMap<PrefixId, &TrainingSample> =
            samples.iter().map(|s| (s.prefix, s)).collect();

        let mut per_ldns = HashMap::new();
        for ldns in &workload.ldns {
            let clients = workload.clients_of_ldns(ldns.id);
            if clients.is_empty() {
                continue;
            }
            // Accumulate weighted RTT per option across this resolver's
            // clients. Only options measured for every client count
            // (anycast always is; unicast sites vary per client — missing
            // measurements are treated as the client's anycast RTT, i.e.
            // "we wouldn't redirect that client there").
            let mut anycast_acc = 0.0;
            let mut w_acc = 0.0;
            // BTreeMap: deterministic iteration so exact-tie choices don't
            // depend on hasher state.
            let mut site_acc: BTreeMap<CityId, f64> = BTreeMap::new();
            for &(pid, w) in &clients {
                let Some(s) = by_prefix.get(&pid) else { continue };
                anycast_acc += w * s.anycast_rtt_ms;
                w_acc += w;
                for &(site, _) in &s.unicast_rtt_ms {
                    site_acc.entry(site).or_insert(0.0);
                }
            }
            if w_acc == 0.0 {
                continue;
            }
            for (&site, acc) in site_acc.iter_mut() {
                for &(pid, w) in &clients {
                    let Some(s) = by_prefix.get(&pid) else { continue };
                    let rtt = s
                        .unicast_rtt_ms
                        .iter()
                        .find(|&&(c, _)| c == site)
                        .map(|&(_, r)| r)
                        .unwrap_or(s.anycast_rtt_ms);
                    *acc += w * rtt;
                }
            }
            let mut best = (SiteChoice::Anycast, anycast_acc / w_acc);
            for (&site, &acc) in &site_acc {
                let mean = acc / w_acc;
                if mean < best.1 {
                    best = (SiteChoice::Unicast(site), mean);
                }
            }
            per_ldns.insert(ldns.id, best.0);
        }

        // ECS-capable resolvers decide per client prefix.
        let mut per_prefix = HashMap::new();
        for s in samples {
            let mut best = (SiteChoice::Anycast, s.anycast_rtt_ms);
            for &(site, rtt) in &s.unicast_rtt_ms {
                if rtt < best.1 {
                    best = (SiteChoice::Unicast(site), rtt);
                }
            }
            per_prefix.insert(s.prefix, best.0);
        }

        DnsRedirector {
            per_ldns,
            per_prefix,
        }
    }

    /// The redirector's answer for a lookup from `ldns` on behalf of
    /// `prefix` (per-prefix if the resolver sends ECS).
    pub fn resolve(&self, workload: &Workload, ldns: LdnsId, prefix: PrefixId) -> SiteChoice {
        let resolver = &workload.ldns[ldns.index()];
        if resolver.sends_ecs {
            if let Some(&c) = self.per_prefix.get(&prefix) {
                return c;
            }
        }
        self.per_ldns.get(&ldns).copied().unwrap_or(SiteChoice::Anycast)
    }

    /// The mix of choices a prefix's clients experience (across its
    /// resolvers, weighted by the client fraction using each).
    pub fn choices_for(&self, workload: &Workload, prefix: PrefixId) -> Vec<(SiteChoice, f64)> {
        workload
            .resolvers_of(prefix)
            .iter()
            .map(|&(ldns, frac)| (self.resolve(workload, ldns, prefix), frac))
            .collect()
    }

    /// Number of resolvers mapped away from anycast.
    pub fn redirected_ldns_count(&self) -> usize {
        self.per_ldns
            .values()
            .filter(|c| !matches!(c, SiteChoice::Anycast))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_topology::{generate, TopologyConfig};
    use bb_workload::{generate_workload, WorkloadConfig};

    fn setup() -> (Workload, Vec<TrainingSample>) {
        let topo = generate(&TopologyConfig::small(61));
        let w = generate_workload(&topo, &WorkloadConfig::default());
        let site_a = CityId(0);
        let site_b = CityId(1);
        // Synthetic truth: even prefixes are far from anycast (unicast A
        // much better), odd prefixes are best on anycast.
        let samples: Vec<TrainingSample> = w
            .prefixes
            .iter()
            .map(|p| {
                let even = p.id.0 % 2 == 0;
                TrainingSample {
                    prefix: p.id,
                    weight: p.weight,
                    anycast_rtt_ms: if even { 120.0 } else { 20.0 },
                    unicast_rtt_ms: vec![
                        (site_a, if even { 30.0 } else { 40.0 }),
                        (site_b, 90.0),
                    ],
                }
            })
            .collect();
        (w, samples)
    }

    #[test]
    fn ecs_resolver_gets_per_prefix_answers() {
        let (w, samples) = setup();
        let r = DnsRedirector::train(&w, &samples);
        let public = w.ldns.iter().find(|l| l.is_public()).unwrap().id;
        // Per-prefix: even → unicast A, odd → anycast.
        let even_p = w.prefixes.iter().find(|p| p.id.0 % 2 == 0).unwrap().id;
        let odd_p = w.prefixes.iter().find(|p| p.id.0 % 2 == 1).unwrap().id;
        assert_eq!(r.resolve(&w, public, even_p), SiteChoice::Unicast(CityId(0)));
        assert_eq!(r.resolve(&w, public, odd_p), SiteChoice::Anycast);
    }

    #[test]
    fn isp_resolver_aggregates_over_clients() {
        let (w, samples) = setup();
        let r = DnsRedirector::train(&w, &samples);
        // An ISP resolver serving both even and odd prefixes gives ONE
        // answer for all of them.
        let isp = w
            .ldns
            .iter()
            .find(|l| !l.is_public() && {
                let clients = w.clients_of_ldns(l.id);
                let has_even = clients.iter().any(|&(p, _)| p.0 % 2 == 0);
                let has_odd = clients.iter().any(|&(p, _)| p.0 % 2 == 1);
                has_even && has_odd
            })
            .expect("some resolver with mixed clients");
        let clients = w.clients_of_ldns(isp.id);
        let choices: std::collections::HashSet<_> = clients
            .iter()
            .map(|&(p, _)| format!("{:?}", r.resolve(&w, isp.id, p)))
            .collect();
        assert_eq!(choices.len(), 1, "one answer per ISP resolver");
    }

    #[test]
    fn choices_for_mixes_resolvers() {
        let (w, samples) = setup();
        let r = DnsRedirector::train(&w, &samples);
        let p = w.prefixes[0].id;
        let mix = r.choices_for(&w, p);
        let total: f64 = mix.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(mix.len(), w.resolvers_of(p).len());
    }

    #[test]
    fn untrained_redirector_defaults_to_anycast() {
        let (w, _) = setup();
        let r = DnsRedirector::default();
        let p = w.prefixes[0].id;
        let ldns = w.resolvers_of(p)[0].0;
        assert_eq!(r.resolve(&w, ldns, p), SiteChoice::Anycast);
    }

    #[test]
    fn all_anycast_better_trains_to_anycast() {
        let (w, _) = setup();
        let samples: Vec<TrainingSample> = w
            .prefixes
            .iter()
            .map(|p| TrainingSample {
                prefix: p.id,
                weight: p.weight,
                anycast_rtt_ms: 10.0,
                unicast_rtt_ms: vec![(CityId(0), 50.0), (CityId(1), 60.0)],
            })
            .collect();
        let r = DnsRedirector::train(&w, &samples);
        assert_eq!(r.redirected_ldns_count(), 0);
    }
}
