//! Edge-Fabric-style egress control at a PoP (§2.3.1).
//!
//! Every window, for each ⟨PoP, prefix⟩, the controller looks at the
//! measured performance of BGP's top-k routes and at the egress links'
//! utilization, and decides which route carries the traffic: BGP's
//! preferred route by default, an alternate when the preferred egress is
//! overloaded (the original Edge Fabric motivation) or when an alternate is
//! measurably faster (performance-aware mode).

use serde::{Deserialize, Serialize};

/// Per-route observations for one ⟨PoP, prefix⟩ in one window.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RouteWindowStats {
    /// Median TCP MinRTT measured over this route in the window, ms.
    pub median_minrtt_ms: f64,
    /// Utilization of the route's egress interconnect.
    pub egress_utilization: f64,
}

/// Why the controller moved off BGP's preferred route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetourReason {
    /// Preferred egress interconnect near saturation.
    Overload,
    /// An alternate route measured faster by at least the threshold.
    Performance,
}

/// The controller's decision for one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EgressDecision {
    /// Keep BGP's preferred route (index 0).
    KeepBgp,
    /// Shift traffic to `route` (index into the policy-ranked RIB).
    Detour { route: usize, reason: DetourReason },
}

impl EgressDecision {
    /// Index of the route that carries traffic under this decision.
    pub fn route_index(&self) -> usize {
        match self {
            EgressDecision::KeepBgp => 0,
            EgressDecision::Detour { route, .. } => *route,
        }
    }
}

/// The controller configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EgressController {
    /// An alternate must beat the preferred route's median by this much to
    /// justify a performance detour, ms.
    pub min_improvement_ms: f64,
    /// Egress utilization above which the preferred route is considered
    /// overloaded.
    pub overload_threshold: f64,
    /// Whether performance detours are enabled (capacity-only mode is the
    /// baseline Edge Fabric deployment).
    pub performance_aware: bool,
}

impl Default for EgressController {
    fn default() -> Self {
        Self {
            min_improvement_ms: 3.0,
            overload_threshold: 0.92,
            performance_aware: true,
        }
    }
}

impl EgressController {
    /// Decide for one ⟨PoP, prefix⟩ window. `routes[0]` is BGP's preferred.
    pub fn decide(&self, routes: &[RouteWindowStats]) -> EgressDecision {
        assert!(!routes.is_empty());
        let preferred = routes[0];

        // 1. Overload protection: shift to the first non-overloaded route
        //    in policy order.
        if preferred.egress_utilization >= self.overload_threshold {
            if let Some((i, _)) = routes
                .iter()
                .enumerate()
                .skip(1)
                .find(|(_, r)| r.egress_utilization < self.overload_threshold)
            {
                return EgressDecision::Detour {
                    route: i,
                    reason: DetourReason::Overload,
                };
            }
        }

        // 2. Performance override: the fastest alternate, if it clears the
        //    threshold.
        if self.performance_aware {
            let best_alt = routes
                .iter()
                .enumerate()
                .skip(1)
                .min_by(|a, b| a.1.median_minrtt_ms.total_cmp(&b.1.median_minrtt_ms));
            if let Some((i, alt)) = best_alt {
                if alt.median_minrtt_ms + self.min_improvement_ms <= preferred.median_minrtt_ms
                    && alt.egress_utilization < self.overload_threshold
                {
                    return EgressDecision::Detour {
                        route: i,
                        reason: DetourReason::Performance,
                    };
                }
            }
        }

        EgressDecision::KeepBgp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rtt: f64, util: f64) -> RouteWindowStats {
        RouteWindowStats {
            median_minrtt_ms: rtt,
            egress_utilization: util,
        }
    }

    #[test]
    fn keeps_bgp_when_fine() {
        let c = EgressController::default();
        let d = c.decide(&[stats(20.0, 0.5), stats(21.0, 0.3), stats(25.0, 0.3)]);
        assert_eq!(d, EgressDecision::KeepBgp);
        assert_eq!(d.route_index(), 0);
    }

    #[test]
    fn detours_on_overload() {
        let c = EgressController::default();
        let d = c.decide(&[stats(20.0, 0.95), stats(22.0, 0.4)]);
        assert_eq!(
            d,
            EgressDecision::Detour {
                route: 1,
                reason: DetourReason::Overload
            }
        );
    }

    #[test]
    fn overload_with_no_spare_capacity_keeps_bgp() {
        let c = EgressController {
            performance_aware: false,
            ..Default::default()
        };
        let d = c.decide(&[stats(20.0, 0.95), stats(22.0, 0.96)]);
        assert_eq!(d, EgressDecision::KeepBgp);
    }

    #[test]
    fn detours_on_clear_performance_win() {
        let c = EgressController::default();
        let d = c.decide(&[stats(30.0, 0.5), stats(24.0, 0.4), stats(26.0, 0.2)]);
        assert_eq!(
            d,
            EgressDecision::Detour {
                route: 1,
                reason: DetourReason::Performance
            }
        );
    }

    #[test]
    fn small_improvement_below_threshold_ignored() {
        let c = EgressController::default();
        let d = c.decide(&[stats(25.0, 0.5), stats(23.5, 0.4)]);
        assert_eq!(d, EgressDecision::KeepBgp);
    }

    #[test]
    fn capacity_only_mode_never_performance_detours() {
        let c = EgressController {
            performance_aware: false,
            ..Default::default()
        };
        let d = c.decide(&[stats(50.0, 0.5), stats(10.0, 0.1)]);
        assert_eq!(d, EgressDecision::KeepBgp);
    }

    #[test]
    fn performance_detour_avoids_overloaded_alternate() {
        let c = EgressController::default();
        // Fastest alternate is itself overloaded → keep BGP.
        let d = c.decide(&[stats(30.0, 0.5), stats(10.0, 0.98)]);
        assert_eq!(d, EgressDecision::KeepBgp);
    }

    #[test]
    #[should_panic]
    fn empty_routes_panics() {
        EgressController::default().decide(&[]);
    }
}
