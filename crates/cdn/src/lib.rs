//! # bb-cdn — the content/cloud provider substrate
//!
//! Models the infrastructure the paper's three studies run on, as one
//! provider abstraction parameterized per study:
//!
//! * [`provider`] attaches a content AS to the topology: PoP placement,
//!   PNIs into eyeball networks, public peering with transits, tier-1
//!   transit at every PoP — the §2 infrastructure build-out,
//! * [`wan`] is the provider's private backbone between PoPs with explicit
//!   link geography (the WAN Figure 5's Premium tier rides; its cable
//!   layout — e.g. South Asia connecting eastwards via Singapore — encodes
//!   the §3.3.2 India case study),
//! * [`anycast`] computes anycast catchments and per-site unicast routing
//!   for the Microsoft-style study (§2.3.2),
//! * [`dns`] is the LDNS-granularity redirection system §3.2.1 evaluates,
//! * [`egress`] is the Edge-Fabric-style per-PoP egress controller (§2.3.1),
//! * [`tiers`] implements Premium (private WAN) vs Standard (public
//!   Internet) delivery for the Google-style study (§2.3.3).

pub mod anycast;
pub mod dns;
pub mod egress;
pub mod provider;
pub mod tiers;
pub mod wan;

pub use anycast::AnycastDeployment;
pub use dns::{DnsRedirector, SiteChoice};
pub use egress::{EgressController, EgressDecision};
pub use provider::{build_provider, Provider, ProviderConfig};
pub use tiers::{Tier, TierDeployment};
pub use wan::Wan;
