//! Provider construction: PoPs and peering fabric.
//!
//! §2: providers "host servers at locations worldwide", "build out their own
//! private WANs", and "at each location, they interconnect with many
//! networks". §3.1.2: they "peer widely with ASes hosting many of their
//! clients, allowing them to route much of their traffic over private
//! network interconnects (PNIs) with dedicated capacity directly into these
//! 'eyeball' ASes".

use crate::wan::Wan;
use bb_geo::CityId;
use bb_topology::{AsClass, AsId, BusinessRel, ExitPolicy, LinkKind, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Provider build-out knobs.
#[derive(Debug, Clone, Serialize)]
pub struct ProviderConfig {
    pub seed: u64,
    pub name: String,
    /// Minimum country user count (millions) for the provider to place a
    /// PoP at the country's main metro (colo hubs always get one).
    pub pop_country_min_users_m: f64,
    /// Cap on total PoPs (largest markets first).
    pub max_pops: usize,
    /// Eyeballs with national user share ≥ this get a PNI.
    pub pni_min_share: f64,
    /// Eyeballs with share ≥ this (but < PNI threshold) peer publicly.
    pub public_peer_min_share: f64,
    /// Number of tier-1 transits bought at each PoP.
    pub transit_tier1s: usize,
    /// PNI capacity is provisioned at this multiple of the expected demand
    /// proxy (eyeball users). <1.0 under-provisions, creating the congested
    /// PNIs Edge Fabric exists to detour around.
    pub pni_capacity_factor: f64,
    /// Probability a transit AS meets the provider at only its single
    /// biggest shared metro rather than several spread-out ones ("remote
    /// peering"). For multi-region carriers this single point can be on
    /// another continent — a real source of anycast misdirection and the
    /// Fig 3 tail.
    pub remote_peering_prob: f64,
}

impl ProviderConfig {
    /// Facebook-like: dozens of PoPs, very wide PNI deployment (§2.3.1).
    pub fn facebook_like(seed: u64) -> Self {
        Self {
            seed,
            name: "cp-facebook-like".into(),
            pop_country_min_users_m: 40.0,
            max_pops: 28,
            pni_min_share: 0.12,
            public_peer_min_share: 0.03,
            transit_tier1s: 2,
            pni_capacity_factor: 1.0,
            remote_peering_prob: 0.3,
        }
    }

    /// Microsoft-2015-like: a few dozen front-end locations, and a far
    /// thinner direct-peering fabric than the 2019-era Facebook build-out —
    /// most client traffic reaches the CDN via transit, which is where
    /// anycast misdirection (the Fig 3 tail) comes from.
    pub fn microsoft_like(seed: u64) -> Self {
        Self {
            seed,
            name: "cp-microsoft-like".into(),
            pop_country_min_users_m: 50.0,
            max_pops: 36,
            pni_min_share: 2.0, // no PNIs: 2015-era edge, not a hypergiant's
            public_peer_min_share: 0.45,
            transit_tier1s: 2,
            pni_capacity_factor: 1.2,
            remote_peering_prob: 0.5,
        }
    }

    /// Google-like: very wide edge for the cloud-tiers study (§2.3.3).
    pub fn google_like(seed: u64) -> Self {
        Self {
            seed,
            name: "cp-google-like".into(),
            pop_country_min_users_m: 8.0,
            max_pops: 48,
            pni_min_share: 0.10,
            public_peer_min_share: 0.02,
            transit_tier1s: 3,
            pni_capacity_factor: 1.2,
            remote_peering_prob: 0.25,
        }
    }
}

/// The built provider: its AS, PoP cities, and WAN.
#[derive(Debug, Clone)]
pub struct Provider {
    pub asn: AsId,
    pub name: String,
    /// PoP cities, sorted.
    pub pops: Vec<CityId>,
    pub wan: Wan,
}

impl Provider {
    pub fn has_pop(&self, city: CityId) -> bool {
        self.pops.binary_search(&city).is_ok()
    }

    /// The PoP nearest to a city (great-circle).
    pub fn nearest_pop(&self, topo: &Topology, city: CityId) -> CityId {
        let loc = topo.atlas.city(city).location;
        *self
            .pops
            .iter()
            .min_by(|&&a, &&b| {
                let da = topo.atlas.city(a).location.distance_km(&loc);
                let db = topo.atlas.city(b).location.distance_km(&loc);
                da.total_cmp(&db)
            })
            .expect("provider has PoPs")
    }

    /// PoPs sorted by distance from a city.
    pub fn pops_by_distance(&self, topo: &Topology, city: CityId) -> Vec<(CityId, f64)> {
        let loc = topo.atlas.city(city).location;
        let mut v: Vec<(CityId, f64)> = self
            .pops
            .iter()
            .map(|&p| (p, topo.atlas.city(p).location.distance_km(&loc)))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    }
}

/// Attach a provider to the topology.
pub fn build_provider(topo: &mut Topology, cfg: &ProviderConfig) -> Provider {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- PoP placement: colo hubs first, then metros by covered users;
    // large countries get several PoPs (real CDNs run many front-ends in
    // the US alone — the §2.3.2 study's front-end spacing implies it). ---
    let mut pops: Vec<(CityId, f64)> = Vec::new();
    for ci in 0..topo.atlas.countries.len() {
        let country = &topo.atlas.countries[ci];
        if !topo.atlas.main_metro(ci).colo_hub && country.users_m < cfg.pop_country_min_users_m {
            continue;
        }
        let per_country = 1
            + usize::from(country.users_m >= 25.0)
            + usize::from(country.users_m >= 60.0)
            + usize::from(country.users_m >= 150.0);
        let cities = topo.atlas.cities_of(ci);
        for city in cities.iter().take(per_country) {
            let covered = country.users_m * city.user_share;
            let hub_bonus = if city.colo_hub { 1e6 } else { 0.0 };
            pops.push((city.id, covered + hub_bonus));
        }
    }
    pops.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    pops.truncate(cfg.max_pops);
    let mut pop_cities: Vec<CityId> = pops.into_iter().map(|(c, _)| c).collect();
    pop_cities.sort();

    let asn = topo.add_as(
        AsClass::Content,
        cfg.name.clone(),
        pop_cities.clone(),
        ExitPolicy::LateExit,
        1.12,
        None,
        0.0,
    );

    // --- Tier-1 transit at every PoP. ---
    let tier1s: Vec<AsId> = topo.ases_of_class(AsClass::Tier1).map(|a| a.id).collect();
    for &t1 in tier1s.iter().take(cfg.transit_tier1s) {
        for &city in &pop_cities {
            if topo.asys(t1).present_in(city) {
                topo.add_interconnect(asn, t1, BusinessRel::CustomerOf, LinkKind::Transit, city, 4000.0);
            }
        }
    }

    // --- Public peering with transit ASes at shared PoPs. ---
    let transits: Vec<AsId> = topo.ases_of_class(AsClass::Transit).map(|a| a.id).collect();
    for tr in transits {
        let shared: Vec<CityId> = shared_cities(topo, tr, &pop_cities);
        // Remote peering: meet at the single biggest shared metro only —
        // which for a multi-region carrier may be far from many of its
        // customers. Multi-region wholesale carriers interconnect that way
        // structurally (they haul to a handful of exchange points); regional
        // transits only with some probability.
        let regions: std::collections::HashSet<_> = topo
            .asys(tr)
            .footprint
            .iter()
            .map(|&c| topo.atlas.city(c).region)
            .collect();
        let take = if regions.len() > 1 || rng.gen_bool(cfg.remote_peering_prob) {
            1
        } else {
            2
        };
        for &city in shared.iter().take(take) {
            topo.add_interconnect(asn, tr, BusinessRel::Peer, LinkKind::PublicPeering, city, 400.0);
        }
    }

    // --- Eyeball peering: PNIs for the big ones, IXP for the middle. ---
    let eyeballs: Vec<(AsId, f64, f64)> = topo
        .ases_of_class(AsClass::Eyeball)
        .map(|a| {
            let users = a
                .home_country
                .map(|c| topo.atlas.countries[c].users_m * a.user_share)
                .unwrap_or(0.0);
            (a.id, a.user_share, users)
        })
        .collect();
    for (eye, share, users_m) in eyeballs {
        let shared = shared_cities(topo, eye, &pop_cities);
        if shared.is_empty() {
            continue;
        }
        if share >= cfg.pni_min_share {
            let capacity = (users_m * 8.0 * cfg.pni_capacity_factor).max(40.0);
            for &city in shared.iter().take(3) {
                topo.add_interconnect(asn, eye, BusinessRel::Peer, LinkKind::PrivatePeering, city, capacity);
            }
        } else if share >= cfg.public_peer_min_share {
            // Middle-size eyeballs meet the provider at the biggest shared
            // exchange only.
            let city = shared[0];
            topo.add_interconnect(asn, eye, BusinessRel::Peer, LinkKind::PublicPeering, city, 80.0);
        }
    }

    let wan = Wan::generate(topo, &pop_cities, cfg.seed ^ 0x_3a3a);
    Provider {
        asn,
        name: cfg.name.clone(),
        pops: pop_cities,
        wan,
    }
}

fn shared_cities(topo: &Topology, asn: AsId, pops: &[CityId]) -> Vec<CityId> {
    let mut v: Vec<CityId> = topo
        .asys(asn)
        .footprint
        .iter()
        .copied()
        .filter(|c| pops.contains(c))
        .collect();
    // Biggest metros first (more users → more valuable interconnect).
    v.sort_by(|&a, &b| {
        topo.atlas
            .city_users_m(b)
            .total_cmp(&topo.atlas.city_users_m(a))
            .then(a.cmp(&b))
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_topology::{generate, TopologyConfig};

    fn built() -> (Topology, Provider) {
        let mut topo = generate(&TopologyConfig::small(41));
        let p = build_provider(&mut topo, &ProviderConfig::facebook_like(1));
        (topo, p)
    }

    #[test]
    fn provider_has_pops_and_validates() {
        let (topo, p) = built();
        assert!(p.pops.len() >= 10, "got {}", p.pops.len());
        assert!(p.pops.len() <= 28);
        bb_topology::validate::validate(&topo).expect("topology still valid");
        assert_eq!(topo.asys(p.asn).class, AsClass::Content);
    }

    #[test]
    fn provider_buys_transit_at_pops() {
        let (topo, p) = built();
        let providers = topo.providers_of(p.asn);
        assert!(!providers.is_empty());
        for up in providers {
            assert_eq!(topo.asys(up).class, AsClass::Tier1);
        }
    }

    #[test]
    fn big_eyeballs_get_pnis() {
        let (topo, p) = built();
        let pni_count = topo
            .links()
            .iter()
            .filter(|l| {
                (l.a == p.asn || l.b == p.asn) && l.kind == LinkKind::PrivatePeering
            })
            .count();
        assert!(pni_count >= 10, "got {pni_count} PNIs");
    }

    #[test]
    fn peering_diversity_at_major_pops() {
        // §2.3.1: most PoPs should see ≥3 distinct neighbors.
        let (topo, p) = built();
        use std::collections::HashMap;
        let mut per_pop: HashMap<CityId, usize> = HashMap::new();
        for &(_, l) in topo.adjacency(p.asn) {
            *per_pop.entry(topo.link(l).city).or_insert(0) += 1;
        }
        let rich = per_pop.values().filter(|&&n| n >= 3).count();
        assert!(
            rich * 2 >= per_pop.len(),
            "at least half the PoPs need ≥3 interconnects ({rich}/{})",
            per_pop.len()
        );
    }

    #[test]
    fn nearest_pop_is_nearest() {
        let (topo, p) = built();
        let city = topo.atlas.cities.last().unwrap().id;
        let np = p.nearest_pop(&topo, city);
        let d_np = topo
            .atlas
            .city(np)
            .location
            .distance_km(&topo.atlas.city(city).location);
        for &pop in &p.pops {
            let d = topo
                .atlas
                .city(pop)
                .location
                .distance_km(&topo.atlas.city(city).location);
            assert!(d >= d_np - 1e-9);
        }
        let by_dist = p.pops_by_distance(&topo, city);
        assert_eq!(by_dist[0].0, np);
    }

    #[test]
    fn google_like_has_wider_edge_than_microsoft_like() {
        let mut t1 = generate(&TopologyConfig::small(41));
        let g = build_provider(&mut t1, &ProviderConfig::google_like(1));
        let mut t2 = generate(&TopologyConfig::small(41));
        let m = build_provider(&mut t2, &ProviderConfig::microsoft_like(1));
        assert!(g.pops.len() > m.pops.len());
    }

    #[test]
    fn wan_spans_all_pops() {
        let (_, p) = built();
        for &a in &p.pops {
            for &b in &p.pops {
                assert!(
                    p.wan.path_ms(a, b).is_some(),
                    "WAN must connect {a} to {b}"
                );
            }
        }
    }
}
