//! Premium vs Standard networking tiers (§2.3.3).
//!
//! "Premium Tier, in which [the provider] uses its WAN to ingress/egress
//! traffic near to the client, and Standard Tier, in which it forces
//! traffic to ingress/egress near the cloud data center and use the public
//! Internet the rest of the way."
//!
//! Implementation: both tiers are just announcement policies. Premium
//! announces the VM prefix at *every* provider interconnect (traffic enters
//! at the edge PoP near the client and rides the WAN to the data center);
//! Standard announces only at interconnects in the data-center city
//! (traffic rides the public Internet all the way there).

use crate::anycast::route_into_provider;
use crate::provider::Provider;
use bb_bgp::{Announcement, RoutingTable};
use bb_geo::CityId;
use bb_netsim::RealizedPath;
use bb_topology::{AsId, Topology};
use serde::{Deserialize, Serialize};

/// The two cloud networking tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Private WAN from an edge PoP near the client.
    Premium,
    /// Public Internet to an ingress near the data center.
    Standard,
}

impl Tier {
    pub fn name(&self) -> &'static str {
        match self {
            Tier::Premium => "premium",
            Tier::Standard => "standard",
        }
    }
}

/// A VM prefix deployed on one tier from one data center.
#[derive(Debug, Clone)]
pub struct TierDeployment {
    pub tier: Tier,
    pub datacenter: CityId,
    pub announcement: Announcement,
    /// Shared through the process-wide route cache.
    pub table: std::sync::Arc<RoutingTable>,
}

/// How a vantage point reaches the VM over a tier.
#[derive(Debug, Clone)]
pub struct TierPath {
    /// Public-Internet part (client → provider ingress).
    pub path: RealizedPath,
    pub entry_city: CityId,
    /// One-way WAN carriage from ingress to the data center, ms.
    pub wan_ms: f64,
    /// Number of ASes between the client AS and the provider (0 = direct).
    pub intermediate_ases: usize,
}

impl TierDeployment {
    /// Deploy a VM prefix on `tier` from `datacenter` (must be a PoP).
    pub fn deploy(
        topo: &Topology,
        provider: &Provider,
        datacenter: CityId,
        tier: Tier,
    ) -> TierDeployment {
        assert!(provider.has_pop(datacenter), "datacenter must be a PoP");
        let announcement = match tier {
            Tier::Premium => Announcement::full(topo, provider.asn),
            Tier::Standard => {
                let mut ann = Announcement::empty(provider.asn);
                for &(_, link) in topo.adjacency(provider.asn) {
                    if topo.link(link).city == datacenter {
                        ann.offer(link, 0);
                    }
                }
                ann
            }
        };
        let table = bb_exec::cached_routes(topo, &announcement);
        TierDeployment {
            tier,
            datacenter,
            announcement,
            table,
        }
    }

    /// Path from a vantage point to the VM. `None` if the VP has no route
    /// on this tier.
    pub fn reach(
        &self,
        topo: &Topology,
        provider: &Provider,
        client_as: AsId,
        client_city: CityId,
    ) -> Option<TierPath> {
        let (path, entry_city) =
            route_into_provider(topo, &self.table, provider.asn, client_as, client_city)?;
        let wan_ms = provider.wan.path_ms(entry_city, self.datacenter)?;
        let intermediate_ases = path.as_path.len().saturating_sub(2);
        Some(TierPath {
            path,
            entry_city,
            wan_ms,
            intermediate_ases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{build_provider, ProviderConfig};
    use bb_topology::{generate, AsClass, TopologyConfig};

    fn world() -> (Topology, Provider, CityId) {
        let mut topo = generate(&TopologyConfig::small(71));
        let p = build_provider(&mut topo, &ProviderConfig::google_like(3));
        // Use the US main metro as "US-Central" if it is a PoP, else the
        // first PoP.
        let (us, _) = bb_geo::country::by_code("US").unwrap();
        let us_metro = topo.atlas.main_metro(us).id;
        let dc = if p.has_pop(us_metro) { us_metro } else { p.pops[0] };
        (topo, p, dc)
    }

    #[test]
    fn standard_ingresses_at_datacenter() {
        let (topo, p, dc) = world();
        let std_dep = TierDeployment::deploy(&topo, &p, dc, Tier::Standard);
        for eye in topo.ases_of_class(AsClass::Eyeball).take(20) {
            if let Some(tp) = std_dep.reach(&topo, &p, eye.id, eye.footprint[0]) {
                assert_eq!(tp.entry_city, dc, "standard must enter at the DC");
                assert_eq!(tp.wan_ms, 0.0);
            }
        }
    }

    #[test]
    fn premium_ingresses_near_client() {
        let (topo, p, dc) = world();
        let prem = TierDeployment::deploy(&topo, &p, dc, Tier::Premium);
        let mut nearer = 0;
        let mut total = 0;
        for eye in topo.ases_of_class(AsClass::Eyeball) {
            let city = eye.footprint[0];
            let Some(tp) = prem.reach(&topo, &p, eye.id, city) else { continue };
            let d_entry = topo
                .atlas
                .city(tp.entry_city)
                .location
                .distance_km(&topo.atlas.city(city).location);
            let d_dc = topo
                .atlas
                .city(dc)
                .location
                .distance_km(&topo.atlas.city(city).location);
            total += 1;
            if d_entry <= d_dc + 1.0 {
                nearer += 1;
            }
        }
        assert!(
            nearer * 10 >= total * 7,
            "premium ingress near client for most VPs: {nearer}/{total}"
        );
    }

    #[test]
    fn premium_path_shorter_as_level() {
        let (topo, p, dc) = world();
        let prem = TierDeployment::deploy(&topo, &p, dc, Tier::Premium);
        let std_dep = TierDeployment::deploy(&topo, &p, dc, Tier::Standard);
        let mut checked = 0;
        for eye in topo.ases_of_class(AsClass::Eyeball) {
            let city = eye.footprint[0];
            let (Some(tp), Some(ts)) = (
                prem.reach(&topo, &p, eye.id, city),
                std_dep.reach(&topo, &p, eye.id, city),
            ) else {
                continue;
            };
            assert!(tp.intermediate_ases <= ts.intermediate_ases);
            checked += 1;
        }
        assert!(checked > 10);
    }

    #[test]
    fn paper_vp_criteria_is_expressible() {
        // §3.3: VPs whose Standard route has ≥1 intermediate AS but whose
        // Premium route is direct.
        let (topo, p, dc) = world();
        let prem = TierDeployment::deploy(&topo, &p, dc, Tier::Premium);
        let std_dep = TierDeployment::deploy(&topo, &p, dc, Tier::Standard);
        let qualifying = topo
            .ases_of_class(AsClass::Eyeball)
            .filter(|eye| {
                let city = eye.footprint[0];
                match (
                    prem.reach(&topo, &p, eye.id, city),
                    std_dep.reach(&topo, &p, eye.id, city),
                ) {
                    (Some(tp), Some(ts)) => {
                        tp.intermediate_ases == 0 && ts.intermediate_ases >= 1
                    }
                    _ => false,
                }
            })
            .count();
        assert!(qualifying > 0, "some VPs must satisfy the paper's filter");
    }

    #[test]
    fn tier_names() {
        assert_eq!(Tier::Premium.name(), "premium");
        assert_eq!(Tier::Standard.name(), "standard");
    }

    #[test]
    #[should_panic(expected = "datacenter must be a PoP")]
    fn non_pop_datacenter_rejected() {
        let (topo, p, _) = world();
        let non_pop = topo
            .atlas
            .cities
            .iter()
            .map(|c| c.id)
            .find(|c| !p.pops.contains(c))
            .unwrap();
        TierDeployment::deploy(&topo, &p, non_pop, Tier::Premium);
    }
}
