//! The provider's private WAN.
//!
//! An explicit link graph over the PoP cities, not a distance oracle: WAN
//! routes follow the cable build-out, which is exactly why §3.3.2's India
//! finding happens — "Google's WAN carries traffic from India east across
//! the Pacific Ocean to reach North America", while the public path rides
//! one Tier-1 west via Europe. We therefore wire South Asia to the WAN via
//! Singapore only (as the real build-out of the time did), and leave the
//! Europe↔South-Asia segment to the public Internet.

use bb_geo::CityId;
use bb_topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// WAN fiber path inflation over great circle (well-engineered backbone).
pub const WAN_INFLATION: f64 = 1.08;

/// Inter-region backbone segments, by country code pairs. Both endpoints
/// must be PoPs for a segment to materialize. Note the deliberate absence
/// of any Europe/Middle-East ↔ South-Asia segment (see module docs).
const BACKBONE: &[(&str, &str)] = &[
    ("US", "GB"), // transatlantic
    ("US", "JP"), // transpacific north
    ("US", "BR"), // Americas
    ("US", "AU"), // transpacific south
    ("GB", "FR"),
    ("GB", "DE"),
    ("FR", "ZA"), // west-Africa cable
    ("ES", "MA"), // Gibraltar crossing
    ("IT", "EG"), // Mediterranean cable
    ("DE", "TR"), // Europe–Anatolia terrestrial
    ("DE", "AE"), // Europe–Gulf
    ("US", "MX"),
    ("US", "CO"), // Caribbean cables
    ("SG", "IN"), // South Asia hangs off Singapore
    ("SG", "JP"),
    ("SG", "AU"),
    ("SG", "HK"),
    ("HK", "JP"),
    ("AE", "SG"), // Gulf eastwards
];

/// One WAN link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WanLink {
    pub a: CityId,
    pub b: CityId,
    pub km: f64,
}

/// The WAN graph with Dijkstra routing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wan {
    nodes: Vec<CityId>,
    links: Vec<WanLink>,
    /// node index → (neighbor index, link index)
    adj: Vec<Vec<(usize, usize)>>,
}

impl Wan {
    /// Build the WAN over `pops`: intra-region nearest-neighbor links plus
    /// the fixed inter-region backbone, patched to connectivity.
    pub fn generate(topo: &Topology, pops: &[CityId], _seed: u64) -> Wan {
        let nodes: Vec<CityId> = pops.to_vec();
        let index: HashMap<CityId, usize> = nodes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut links: Vec<WanLink> = Vec::new();
        let mut have: std::collections::HashSet<(usize, usize)> = Default::default();

        let add = |links: &mut Vec<WanLink>,
                       have: &mut std::collections::HashSet<(usize, usize)>,
                       i: usize,
                       j: usize| {
            if i == j {
                return;
            }
            let key = (i.min(j), i.max(j));
            if !have.insert(key) {
                return;
            }
            let km = topo
                .atlas
                .city(nodes[i])
                .location
                .distance_km(&topo.atlas.city(nodes[j]).location);
            links.push(WanLink {
                a: nodes[key.0],
                b: nodes[key.1],
                km,
            });
        };

        // Intra-region: connect each PoP to its 2 nearest same-region PoPs.
        for (i, &ci) in nodes.iter().enumerate() {
            let region = topo.atlas.city(ci).region;
            let mut same: Vec<(usize, f64)> = nodes
                .iter()
                .enumerate()
                .filter(|&(j, &cj)| j != i && topo.atlas.city(cj).region == region)
                .map(|(j, &cj)| {
                    (
                        j,
                        topo.atlas
                            .city(ci)
                            .location
                            .distance_km(&topo.atlas.city(cj).location),
                    )
                })
                .collect();
            same.sort_by(|a, b| a.1.total_cmp(&b.1));
            for &(j, _) in same.iter().take(2) {
                add(&mut links, &mut have, i, j);
            }
        }

        // Inter-region backbone.
        for &(ca, cb) in BACKBONE {
            let pa = bb_geo::country::by_code(ca)
                .map(|(ci, _)| topo.atlas.main_metro(ci).id)
                .filter(|c| index.contains_key(c));
            let pb = bb_geo::country::by_code(cb)
                .map(|(ci, _)| topo.atlas.main_metro(ci).id)
                .filter(|c| index.contains_key(c));
            if let (Some(a), Some(b)) = (pa, pb) {
                add(&mut links, &mut have, index[&a], index[&b]);
            }
        }

        let mut wan = Wan::from_parts(nodes, links);
        wan.patch_connectivity(topo);
        wan
    }

    fn from_parts(nodes: Vec<CityId>, links: Vec<WanLink>) -> Wan {
        let index: HashMap<CityId, usize> = nodes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut adj = vec![Vec::new(); nodes.len()];
        for (li, l) in links.iter().enumerate() {
            let (i, j) = (index[&l.a], index[&l.b]);
            adj[i].push((j, li));
            adj[j].push((i, li));
        }
        Wan { nodes, links, adj }
    }

    /// Join disconnected components with the shortest cross-component link.
    fn patch_connectivity(&mut self, topo: &Topology) {
        loop {
            let comp = self.components();
            let n_comp = *comp.iter().max().unwrap_or(&0) + 1;
            if n_comp <= 1 {
                return;
            }
            // Find the closest pair across component 0 and any other.
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..self.nodes.len() {
                for j in 0..self.nodes.len() {
                    if comp[i] == 0 && comp[j] != 0 {
                        let km = topo
                            .atlas
                            .city(self.nodes[i])
                            .location
                            .distance_km(&topo.atlas.city(self.nodes[j]).location);
                        if best.is_none_or(|(_, _, b)| km < b) {
                            best = Some((i, j, km));
                        }
                    }
                }
            }
            let (i, j, km) = best.expect("multiple components imply a cross pair");
            let li = self.links.len();
            self.links.push(WanLink {
                a: self.nodes[i],
                b: self.nodes[j],
                km,
            });
            self.adj[i].push((j, li));
            self.adj[j].push((i, li));
        }
    }

    fn components(&self) -> Vec<usize> {
        let mut comp = vec![usize::MAX; self.nodes.len()];
        let mut next = 0;
        for start in 0..self.nodes.len() {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = next;
            while let Some(u) = stack.pop() {
                for &(v, _) in &self.adj[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    pub fn nodes(&self) -> &[CityId] {
        &self.nodes
    }

    pub fn links(&self) -> &[WanLink] {
        &self.links
    }

    fn node_index(&self, c: CityId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == c)
    }

    /// One-way WAN latency between two PoPs, ms (Dijkstra over link
    /// latencies). `None` if either city is not a PoP.
    pub fn path_ms(&self, from: CityId, to: CityId) -> Option<f64> {
        let (path, ms) = self.dijkstra(from, to)?;
        let _ = path;
        Some(ms)
    }

    /// The city waypoints of the best WAN path.
    pub fn path(&self, from: CityId, to: CityId) -> Option<Vec<CityId>> {
        self.dijkstra(from, to).map(|(p, _)| p)
    }

    /// Total WAN path distance, km.
    pub fn path_km(&self, from: CityId, to: CityId) -> Option<f64> {
        let (path, _) = self.dijkstra(from, to)?;
        Some(
            path.windows(2)
                .map(|w| {
                    let li = self.link_between(w[0], w[1]).expect("consecutive waypoints linked");
                    self.links[li].km
                })
                .sum(),
        )
    }

    fn link_between(&self, a: CityId, b: CityId) -> Option<usize> {
        let i = self.node_index(a)?;
        self.adj[i]
            .iter()
            .find(|&&(j, _)| self.nodes[j] == b)
            .map(|&(_, li)| li)
    }

    fn dijkstra(&self, from: CityId, to: CityId) -> Option<(Vec<CityId>, f64)> {
        let src = self.node_index(from)?;
        let dst = self.node_index(to)?;
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        dist[src] = 0.0;
        // Max-heap on Reverse-ordered (dist, node) via ordered float bits.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0, src)));
        while let Some(std::cmp::Reverse((dbits, u))) = heap.pop() {
            let d = f64::from_bits(dbits);
            if d > dist[u] {
                continue;
            }
            if u == dst {
                break;
            }
            for &(v, li) in &self.adj[u] {
                let w = bb_geo::propagation_delay_ms(self.links[li].km, WAN_INFLATION);
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push(std::cmp::Reverse((nd.to_bits(), v)));
                }
            }
        }
        if dist[dst].is_infinite() {
            return None;
        }
        let mut path = vec![self.nodes[dst]];
        let mut cur = dst;
        while cur != src {
            cur = prev[cur];
            path.push(self.nodes[cur]);
        }
        path.reverse();
        Some((path, dist[dst]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{build_provider, ProviderConfig};
    use bb_topology::{generate, TopologyConfig};

    fn world() -> (Topology, crate::provider::Provider) {
        let mut topo = generate(&TopologyConfig::small(43));
        let p = build_provider(&mut topo, &ProviderConfig::google_like(2));
        (topo, p)
    }

    #[test]
    fn wan_is_connected() {
        let (_, p) = world();
        let pops = p.pops.clone();
        for &a in &pops {
            assert!(p.wan.path_ms(pops[0], a).is_some());
        }
    }

    #[test]
    fn zero_length_path_to_self() {
        let (_, p) = world();
        let a = p.pops[0];
        assert_eq!(p.wan.path_ms(a, a), Some(0.0));
        assert_eq!(p.wan.path(a, a).unwrap(), vec![a]);
    }

    #[test]
    fn non_pop_city_has_no_wan_path() {
        let (topo, p) = world();
        let non_pop = topo
            .atlas
            .cities
            .iter()
            .map(|c| c.id)
            .find(|c| !p.pops.contains(c))
            .unwrap();
        assert!(p.wan.path_ms(non_pop, p.pops[0]).is_none());
    }

    #[test]
    fn wan_latency_at_least_great_circle() {
        let (topo, p) = world();
        for &a in p.pops.iter().take(8) {
            for &b in p.pops.iter().take(8) {
                if a == b {
                    continue;
                }
                let wan_ms = p.wan.path_ms(a, b).unwrap();
                let gc = topo
                    .atlas
                    .city(a)
                    .location
                    .distance_km(&topo.atlas.city(b).location);
                let floor = bb_geo::propagation_delay_ms(gc, 1.0);
                assert!(
                    wan_ms >= floor - 1e-9,
                    "WAN {wan_ms} ms < great-circle floor {floor} ms"
                );
            }
        }
    }

    #[test]
    fn triangle_inequality_via_intermediate() {
        let (_, p) = world();
        let pops = &p.pops;
        let (a, b, c) = (pops[0], pops[1], pops[2]);
        let ab = p.wan.path_ms(a, b).unwrap();
        let bc = p.wan.path_ms(b, c).unwrap();
        let ac = p.wan.path_ms(a, c).unwrap();
        assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn india_routes_east_when_pops_exist() {
        // With the full atlas (not the small test one), India's WAN path to
        // the US must run via Singapore, not Europe.
        let mut topo = generate(&TopologyConfig {
            seed: 7,
            ..Default::default()
        });
        let p = build_provider(&mut topo, &ProviderConfig::google_like(7));
        let (in_idx, _) = bb_geo::country::by_code("IN").unwrap();
        let (us_idx, _) = bb_geo::country::by_code("US").unwrap();
        let (sg_idx, _) = bb_geo::country::by_code("SG").unwrap();
        let inn = topo.atlas.main_metro(in_idx).id;
        let us = topo.atlas.main_metro(us_idx).id;
        let sg = topo.atlas.main_metro(sg_idx).id;
        if p.has_pop(inn) && p.has_pop(us) && p.has_pop(sg) {
            let path = p.wan.path(inn, us).unwrap();
            assert!(
                path.contains(&sg),
                "India→US WAN path should transit Singapore: {path:?}"
            );
            // And it must be substantially longer than great-circle.
            let km = p.wan.path_km(inn, us).unwrap();
            let gc = topo
                .atlas
                .city(inn)
                .location
                .distance_km(&topo.atlas.city(us).location);
            assert!(km > gc * 1.3, "detour {km} km vs gc {gc} km");
        } else {
            panic!("google-like provider must have PoPs in IN, US, SG");
        }
    }
}

#[cfg(test)]
mod optimality_tests {
    use super::*;
    use crate::provider::{build_provider, ProviderConfig};
    use bb_topology::{generate, TopologyConfig};

    /// Dijkstra results must match a Floyd-Warshall reference on the same
    /// graph.
    #[test]
    fn dijkstra_matches_floyd_warshall() {
        let mut topo = generate(&TopologyConfig::small(47));
        let p = build_provider(&mut topo, &ProviderConfig::google_like(4));
        let nodes = p.wan.nodes().to_vec();
        let n = nodes.len();
        let idx = |c: CityId| nodes.iter().position(|&x| x == c).unwrap();

        let mut dist = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for l in p.wan.links() {
            let w = bb_geo::propagation_delay_ms(l.km, WAN_INFLATION);
            let (i, j) = (idx(l.a), idx(l.b));
            if w < dist[i][j] {
                dist[i][j] = w;
                dist[j][i] = w;
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = dist[i][k] + dist[k][j];
                    if via < dist[i][j] {
                        dist[i][j] = via;
                    }
                }
            }
        }
        for (i, &a) in nodes.iter().enumerate() {
            for (j, &b) in nodes.iter().enumerate() {
                let d = p.wan.path_ms(a, b).unwrap();
                assert!(
                    (d - dist[i][j]).abs() < 1e-6,
                    "{a}->{b}: dijkstra {d} vs fw {}",
                    dist[i][j]
                );
            }
        }
    }

    /// At full scale every backbone pair whose endpoints are PoPs must
    /// materialize as a WAN link.
    #[test]
    fn backbone_pairs_materialize_at_full_scale() {
        let mut topo = generate(&TopologyConfig {
            seed: 9,
            ..Default::default()
        });
        let p = build_provider(&mut topo, &ProviderConfig::google_like(9));
        let mut materialized = 0;
        for &(ca, cb) in BACKBONE {
            let a = bb_geo::country::by_code(ca).map(|(ci, _)| topo.atlas.main_metro(ci).id);
            let b = bb_geo::country::by_code(cb).map(|(ci, _)| topo.atlas.main_metro(ci).id);
            if let (Some(a), Some(b)) = (a, b) {
                if p.has_pop(a) && p.has_pop(b) {
                    let linked = p
                        .wan
                        .links()
                        .iter()
                        .any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a));
                    assert!(linked, "backbone {ca}-{cb} missing");
                    materialized += 1;
                }
            }
        }
        assert!(materialized >= 10, "only {materialized} backbone links");
    }

    /// The deliberate absence: no direct WAN link from Europe/Middle East
    /// into South Asia (the §3.3.2 India mechanism).
    #[test]
    fn no_europe_to_south_asia_wan_link() {
        let mut topo = generate(&TopologyConfig {
            seed: 9,
            ..Default::default()
        });
        let p = build_provider(&mut topo, &ProviderConfig::google_like(9));
        use bb_geo::Region;
        for l in p.wan.links() {
            let (ra, rb) = (topo.atlas.city(l.a).region, topo.atlas.city(l.b).region);
            let west = |r: Region| matches!(r, Region::Europe | Region::MiddleEast);
            let south_asia = |r: Region| r == Region::SouthAsia;
            assert!(
                !(west(ra) && south_asia(rb) || west(rb) && south_asia(ra)),
                "unexpected WAN link {} - {}",
                topo.atlas.city(l.a).name,
                topo.atlas.city(l.b).name
            );
        }
    }
}
