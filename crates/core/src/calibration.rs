//! Calibration checks (S23x): the in-text distance statistics the paper
//! uses to characterize its settings.
//!
//! * §2.3.1: "half of all traffic is to clients within 500km of the serving
//!   PoP … and 90% is to clients within 2500km and on the same continent";
//! * §2.3.2: "the median distance of the nearest front-end is 280 km, of
//!   the second nearest is 700 km, and of fourth nearest is 1300 km".
//!
//! These anchor the synthetic world to the paper's setting; EXPERIMENTS.md
//! records how closely we land.

use crate::world::Scenario;
use bb_measure::spray::build_targets;
use bb_stats::weighted_quantile;
use serde::Serialize;

/// The calibration report.
#[derive(Debug, Clone, Serialize)]
pub struct Calibration {
    /// Traffic fraction served from a PoP within 500 km (paper: 0.5).
    pub traffic_within_500km: f64,
    /// Traffic fraction within 2500 km (paper: 0.9).
    pub traffic_within_2500km: f64,
    /// Traffic fraction served from the same region.
    pub traffic_same_region: f64,
    /// Weighted median distance to the k-th nearest front-end, km, for
    /// k = 1, 2, 4 (paper: 280 / 700 / 1300).
    pub median_nearest_km: f64,
    pub median_second_km: f64,
    pub median_fourth_km: f64,
}

impl Calibration {
    pub fn render(&self) -> String {
        format!(
            "Calibration (paper targets in parentheses):\n  \
             traffic within 500km of serving PoP:  {:.0}%  (50%)\n  \
             traffic within 2500km:                {:.0}%  (90%)\n  \
             traffic served in-region:             {:.0}%  (~90%)\n  \
             median distance to nearest front-end: {:.0} km  (280 km)\n  \
             median distance to 2nd nearest:       {:.0} km  (700 km)\n  \
             median distance to 4th nearest:       {:.0} km  (1300 km)\n",
            self.traffic_within_500km * 100.0,
            self.traffic_within_2500km * 100.0,
            self.traffic_same_region * 100.0,
            self.median_nearest_km,
            self.median_second_km,
            self.median_fourth_km
        )
    }
}

/// Compute the calibration stats for a scenario.
pub fn run(scenario: &Scenario) -> Calibration {
    let topo = &scenario.topo;
    let provider = &scenario.provider;
    let workload = &scenario.workload;

    // Serving-PoP distances use the same serving assignment as Study A.
    let targets = build_targets(topo, provider, workload, 1);
    let mut within_500 = 0.0;
    let mut within_2500 = 0.0;
    let mut same_region = 0.0;
    let mut total = 0.0;
    for t in &targets {
        let p = workload.prefix(t.prefix);
        let d = topo
            .atlas
            .city(t.pop)
            .location
            .distance_km(&topo.atlas.city(p.city).location);
        total += p.weight;
        if d <= 500.0 {
            within_500 += p.weight;
        }
        if d <= 2500.0 {
            within_2500 += p.weight;
        }
        if topo.atlas.city(t.pop).region == topo.atlas.city(p.city).region {
            same_region += p.weight;
        }
    }

    // k-th nearest front-end distances, weighted by prefix traffic.
    let kth = |k: usize| -> f64 {
        let pts: Vec<(f64, f64)> = workload
            .prefixes
            .iter()
            .filter_map(|p| {
                let by_dist = provider.pops_by_distance(topo, p.city);
                by_dist.get(k).map(|&(_, d)| (d, p.weight))
            })
            .collect();
        weighted_quantile(&pts, 0.5).unwrap_or(f64::NAN)
    };

    Calibration {
        traffic_within_500km: within_500 / total.max(1e-12),
        traffic_within_2500km: within_2500 / total.max(1e-12),
        traffic_same_region: same_region / total.max(1e-12),
        median_nearest_km: kth(0),
        median_second_km: kth(1),
        median_fourth_km: kth(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    #[test]
    fn calibration_is_in_the_papers_ballpark() {
        let scenario = Scenario::build(ScenarioConfig::facebook(2, Scale::Test));
        let c = run(&scenario);
        // Loose bounds: the small test world is coarser than Full scale.
        assert!(c.traffic_within_2500km > 0.5, "{c:?}");
        assert!(c.traffic_same_region > 0.5, "{c:?}");
        assert!(c.median_nearest_km < 2000.0, "{c:?}");
        assert!(c.median_nearest_km <= c.median_second_km);
        assert!(c.median_second_km <= c.median_fourth_km);
    }

    #[test]
    fn render_shows_targets() {
        let scenario = Scenario::build(ScenarioConfig::facebook(2, Scale::Test));
        let c = run(&scenario);
        let s = c.render();
        assert!(s.contains("280 km"));
        assert!(s.contains("(90%)"));
    }
}
