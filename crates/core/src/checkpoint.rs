//! Campaign checkpoint manifests: crash-safe save, validated resume.
//!
//! A long campaign (`repro all`) is a sequence of *units* — one per
//! experiment — each producing a stdout block and optionally rendered CSV
//! files. After every completed unit the harness serializes all completed
//! results into a `checkpoint.bbck` manifest in the checkpoint directory,
//! written with the same atomic temp-file+rename writer as the CSV exports
//! ([`crate::export::write_atomic_bytes`]), so a crash mid-flush never
//! leaves a torn manifest.
//!
//! **Keying rule.** A manifest is only valid for the exact campaign that
//! wrote it. The [`CampaignKey`] captures everything that feeds unit
//! output: seed, scale, fault profile, the selected experiment set, whether
//! CSV was captured, and [`CODE_SCHEMA`] — a version bumped whenever *any*
//! experiment's output format changes, so results cached by an older build
//! are never replayed by a newer one. A mismatch on any field makes
//! [`Checkpoint::validate`] fail with the field spelled out; a stale
//! checkpoint is rejected, never silently reused. Worker count (`--jobs`)
//! is deliberately *not* in the key: output is byte-identical across job
//! counts, so resuming with a different `--jobs` is sound.
//!
//! (The ISSUE sketch keyed on "topology uid", but `Topology::uid` is a
//! process-local counter, not a content hash — useless across processes.
//! The topology is a pure function of `(scale, seed)`, which the key
//! already pins; see DESIGN.md §5b.)
//!
//! **Format.** `bbck/v1` is a line-oriented header with length-prefixed raw
//! blobs, so stdout and CSV bytes round-trip exactly (no escaping, no
//! encoding). Every blob carries an FNV-1a 64 checksum verified on load:
//!
//! ```text
//! bbck/v1
//! seed 42
//! scale full
//! faults off
//! experiments calib,fig1,...
//! csv 1
//! code_schema 3
//! windows_done 1234
//! unit fig1 1 812 c0ffee...        ← name, file count, stdout len, fnv64
//! <812 raw stdout bytes>\n
//! file fig1.csv 4096 deadbeef...   ← name, len, fnv64
//! <4096 raw bytes>\n
//! end
//! ```
//!
//! **Durability.** [`write_atomic_bytes`] gives the manifest the full
//! crash-safety ladder: the bytes are written to a same-directory temp
//! file, fsynced, renamed over the target, and then the *containing
//! directory* is fsynced too — without that last step a power loss right
//! after the rename can forget the directory entry and the manifest
//! vanishes even though its blocks were on disk. Once `save` returns, the
//! manifest survives a crash at any instant.
//!
//! **Salvage.** A manifest can still arrive torn when the filesystem
//! itself tears it (power loss on a non-journaling filesystem, a partial
//! copy between machines). Because units are appended in sorted order and
//! every record is length-prefixed, such damage is always a *truncated
//! tail*: [`Checkpoint::load_salvaging`] parses the valid prefix of unit
//! records and reports the dropped trailing record as a [`Salvage`]
//! instead of rejecting the whole manifest. Mid-record corruption (a
//! checksum mismatch with the bytes fully present) is still rejected —
//! that is damage, not truncation, and replaying it would violate the
//! byte-identity contract.
//!
//! **Heartbeats.** Orchestrated shard runs (`repro orchestrate`) also
//! keep a tiny `heartbeat.bbhb` record next to the manifest: progress
//! counters plus a wall timestamp, rewritten atomically every few
//! thousand measurement windows. The supervisor treats a heartbeat whose
//! *content* stops changing as a hung shard; the file is advisory
//! telemetry, never part of the campaign output.

use crate::error::{BbError, BbResult};
use crate::export::write_atomic_bytes;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Manifest file name inside a checkpoint directory.
pub const MANIFEST_NAME: &str = "checkpoint.bbck";

/// On-disk format version (parser compatibility).
pub const FORMAT: &str = "bbck/v1";

/// Output-schema version of the *code*. Bump whenever any experiment's
/// stdout or CSV format changes, so checkpoints written by older builds are
/// rejected instead of replaying stale bytes.
pub const CODE_SCHEMA: u32 = 1;

/// Heartbeat file name inside a checkpoint directory (liveness telemetry
/// for `repro orchestrate`, never part of the campaign output).
pub const HEARTBEAT_NAME: &str = "heartbeat.bbhb";

/// On-disk format version of the heartbeat record.
pub const HEARTBEAT_FORMAT: &str = "bbhb/v1";

/// FNV-1a 64-bit hash — the checksum guarding every blob in the manifest.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identity of one campaign: a checkpoint is valid only for an exact match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignKey {
    pub seed: u64,
    /// Scale label (`test`/`full`/`large`).
    pub scale: String,
    /// Fault profile label (`off`/`light`/`heavy`).
    pub faults: String,
    /// Comma-joined names of the selected experiments, in run order.
    pub experiments: String,
    /// Whether unit results carry rendered CSV bytes.
    pub csv: bool,
    /// [`CODE_SCHEMA`] of the build that wrote the manifest.
    pub code_schema: u32,
}

impl CampaignKey {
    pub fn new(
        seed: u64,
        scale: impl Into<String>,
        faults: impl Into<String>,
        experiments: impl Into<String>,
        csv: bool,
    ) -> Self {
        Self {
            seed,
            scale: scale.into(),
            faults: faults.into(),
            experiments: experiments.into(),
            csv,
            code_schema: CODE_SCHEMA,
        }
    }
}

/// Result of one completed unit: its stdout block and any files it rendered
/// (name → raw bytes), exactly as a fresh run would produce them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnitResult {
    pub stdout: String,
    pub files: Vec<(String, Vec<u8>)>,
}

/// A campaign checkpoint: the key plus every completed unit so far.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pub key: CampaignKey,
    /// Completed units by experiment name. `BTreeMap` so the manifest is
    /// byte-identical regardless of completion order.
    pub units: BTreeMap<String, UnitResult>,
    /// Measurement windows completed across the campaign (progress
    /// telemetry from the window-granular hooks, not part of the key).
    pub windows_done: u64,
}

impl Checkpoint {
    pub fn new(key: CampaignKey) -> Self {
        Self {
            key,
            units: BTreeMap::new(),
            windows_done: 0,
        }
    }

    /// Record a completed unit (overwrites a same-name entry).
    pub fn record(&mut self, name: impl Into<String>, unit: UnitResult) {
        self.units.insert(name.into(), unit);
    }

    /// The cached result for `name`, if that unit completed.
    pub fn get(&self, name: &str) -> Option<&UnitResult> {
        self.units.get(name)
    }

    /// Reject the manifest unless its key matches `expect` exactly, naming
    /// the first mismatching field.
    pub fn validate(&self, expect: &CampaignKey) -> BbResult<()> {
        let k = &self.key;
        let mismatch = |field: &str, have: &str, want: &str| {
            Err(BbError::checkpoint(format!(
                "{field} mismatch: checkpoint has {have}, this run wants {want} \
                 (refusing to reuse a stale checkpoint)"
            )))
        };
        if k.code_schema != expect.code_schema {
            return mismatch(
                "code_schema",
                &k.code_schema.to_string(),
                &expect.code_schema.to_string(),
            );
        }
        if k.seed != expect.seed {
            return mismatch("seed", &k.seed.to_string(), &expect.seed.to_string());
        }
        if k.scale != expect.scale {
            return mismatch("scale", &k.scale, &expect.scale);
        }
        if k.faults != expect.faults {
            return mismatch("faults", &k.faults, &expect.faults);
        }
        if k.experiments != expect.experiments {
            return mismatch("experiments", &k.experiments, &expect.experiments);
        }
        if k.csv != expect.csv {
            return mismatch("csv", bool_str(k.csv), bool_str(expect.csv));
        }
        Ok(())
    }

    /// Serialize to `bbck/v1` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let k = &self.key;
        let mut head = String::new();
        let _ = writeln!(head, "{FORMAT}");
        let _ = writeln!(head, "seed {}", k.seed);
        let _ = writeln!(head, "scale {}", k.scale);
        let _ = writeln!(head, "faults {}", k.faults);
        let _ = writeln!(head, "experiments {}", k.experiments);
        let _ = writeln!(head, "csv {}", bool_str(k.csv));
        let _ = writeln!(head, "code_schema {}", k.code_schema);
        let _ = writeln!(head, "windows_done {}", self.windows_done);
        let mut out = head.into_bytes();
        for (name, unit) in &self.units {
            let stdout = unit.stdout.as_bytes();
            let _ = writeln!(
                str_sink(&mut out),
                "unit {name} {} {} {:016x}",
                unit.files.len(),
                stdout.len(),
                fnv1a(stdout)
            );
            out.extend_from_slice(stdout);
            out.push(b'\n');
            for (fname, bytes) in &unit.files {
                let _ = writeln!(
                    str_sink(&mut out),
                    "file {fname} {} {:016x}",
                    bytes.len(),
                    fnv1a(bytes)
                );
                out.extend_from_slice(bytes);
                out.push(b'\n');
            }
        }
        out.extend_from_slice(b"end\n");
        out
    }

    /// Atomically write the manifest into `dir`.
    pub fn save(&self, dir: &Path) -> BbResult<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| BbError::io(format!("create checkpoint dir {}", dir.display()), e))?;
        write_atomic_bytes(&dir.join(MANIFEST_NAME), &self.encode())
    }

    /// Load and parse the manifest from `dir`. Parse/checksum failures are
    /// [`BbError::Checkpoint`]; a missing file is [`BbError::Io`].
    pub fn load(dir: &Path) -> BbResult<Checkpoint> {
        let path = dir.join(MANIFEST_NAME);
        let bytes = std::fs::read(&path)
            .map_err(|e| BbError::io(format!("read {}", path.display()), e))?;
        Self::decode(&bytes)
    }

    /// Like [`Checkpoint::load`], but a manifest whose trailing record is
    /// cut off at EOF loads the valid prefix instead of failing (see
    /// [`Checkpoint::decode_salvaging`]).
    pub fn load_salvaging(dir: &Path) -> BbResult<(Checkpoint, Option<Salvage>)> {
        let path = dir.join(MANIFEST_NAME);
        let bytes = std::fs::read(&path)
            .map_err(|e| BbError::io(format!("read {}", path.display()), e))?;
        Self::decode_salvaging(&bytes)
    }

    /// Parse `bbck/v1` bytes. Any damage — truncation included — is an
    /// error; use [`Checkpoint::decode_salvaging`] to recover the valid
    /// prefix of a torn manifest.
    pub fn decode(bytes: &[u8]) -> BbResult<Checkpoint> {
        let mut p = Parser { bytes, pos: 0 };
        let (key, windows_done) = parse_header(&mut p)?;
        let mut units = BTreeMap::new();
        loop {
            match parse_unit(&mut p)? {
                UnitParse::End => break,
                UnitParse::Unit(name, unit) => {
                    units.insert(name, unit);
                }
                UnitParse::Torn(what) => {
                    return Err(BbError::checkpoint(format!("truncated manifest ({what})")));
                }
            }
        }
        Ok(Checkpoint {
            key,
            units,
            windows_done,
        })
    }

    /// Parse `bbck/v1` bytes, salvaging a torn tail.
    ///
    /// Truncation at EOF is the one kind of damage the format can prove
    /// harmless to recover from: records are appended in sorted order and
    /// every blob is length-prefixed, so a cut manifest is a valid prefix
    /// followed by one incomplete trailing record. That record is dropped
    /// and described in the returned [`Salvage`]; the kept units all passed
    /// their checksums. Damage *within* the data — a checksum mismatch, a
    /// malformed line with its bytes fully present, a torn header — is
    /// still an error: replaying corrupt bytes would break byte-identity.
    pub fn decode_salvaging(bytes: &[u8]) -> BbResult<(Checkpoint, Option<Salvage>)> {
        let mut p = Parser { bytes, pos: 0 };
        let (key, windows_done) = parse_header(&mut p)?;
        let mut units = BTreeMap::new();
        let salvage = loop {
            let record_start = p.pos;
            match parse_unit(&mut p)? {
                UnitParse::End => break None,
                UnitParse::Unit(name, unit) => {
                    units.insert(name, unit);
                }
                UnitParse::Torn(dropped) => {
                    break Some(Salvage {
                        dropped,
                        kept_units: units.len(),
                        bytes_dropped: bytes.len() - record_start,
                    });
                }
            }
        };
        Ok((
            Checkpoint {
                key,
                units,
                windows_done,
            },
            salvage,
        ))
    }
}

/// What [`Checkpoint::decode_salvaging`] recovered from a torn manifest:
/// the valid prefix was kept, one incomplete trailing record was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Salvage {
    /// Human-readable description of the torn trailing record.
    pub dropped: String,
    /// Units that survived in the valid prefix (all checksums verified).
    pub kept_units: usize,
    /// Bytes discarded from the tail of the manifest.
    pub bytes_dropped: usize,
}

impl std::fmt::Display for Salvage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kept {} unit(s), dropped torn trailing record ({}; {} bytes discarded)",
            self.kept_units, self.dropped, self.bytes_dropped
        )
    }
}

/// Parse the `bbck/v1` header lines. A torn header is never salvageable —
/// without the full [`CampaignKey`] the prefix cannot be validated.
fn parse_header(p: &mut Parser<'_>) -> BbResult<(CampaignKey, u64)> {
    // A zero-length manifest is its own diagnosis (an atomic writer can
    // never produce one — it means the file was created by something else
    // or zeroed by filesystem damage), not a generic truncation.
    if p.bytes.is_empty() {
        return Err(BbError::checkpoint(
            "manifest is empty (0 bytes at byte offset 0) — not a torn \
             write; refusing to salvage",
        ));
    }
    let version = p.line()?;
    if version != FORMAT {
        return Err(BbError::checkpoint(format!(
            "unsupported format {version:?}, this build reads {FORMAT}"
        )));
    }
    let seed: u64 = p.field("seed")?;
    let scale = p.field_str("scale")?;
    let faults = p.field_str("faults")?;
    let experiments = p.field_str("experiments")?;
    let csv = match p.field_str("csv")?.as_str() {
        "1" => true,
        "0" => false,
        other => {
            return Err(BbError::checkpoint(format!("bad csv flag {other:?}")));
        }
    };
    let code_schema: u32 = p.field("code_schema")?;
    let windows_done: u64 = p.field("windows_done")?;
    Ok((
        CampaignKey {
            seed,
            scale,
            faults,
            experiments,
            csv,
            code_schema,
        },
        windows_done,
    ))
}

/// One record from the unit section of a manifest.
enum UnitParse {
    Unit(String, UnitResult),
    End,
    /// The trailing record runs past EOF — truncation, the only damage
    /// [`Checkpoint::decode_salvaging`] recovers from. Carries a
    /// description of what was cut. Corruption with the bytes fully
    /// present (checksum mismatch, malformed line) is an `Err` instead.
    Torn(String),
}

fn parse_unit(p: &mut Parser<'_>) -> BbResult<UnitParse> {
    let line = match p.line_opt()? {
        Some(line) => line,
        None => return Ok(UnitParse::Torn("record header cut at EOF".to_string())),
    };
    if line == "end" {
        return Ok(UnitParse::End);
    }
    let mut tok = line.split(' ');
    if tok.next() != Some("unit") {
        return Err(BbError::checkpoint(format!(
            "expected `unit` or `end`, got {line:?}"
        )));
    }
    let name = tok
        .next()
        .ok_or_else(|| BbError::checkpoint("unit line missing name"))?
        .to_string();
    let n_files: usize = parse_tok(tok.next(), "unit file count")?;
    let stdout_len: usize = parse_tok(tok.next(), "unit stdout length")?;
    let sum: u64 = parse_hex(tok.next(), "unit stdout checksum")?;
    let blob_at = p.pos;
    let stdout_bytes = match p.blob_opt(stdout_len, &name)? {
        Some(blob) => blob,
        None => {
            return Ok(UnitParse::Torn(format!(
                "stdout blob of unit {name} cut at EOF"
            )));
        }
    };
    if fnv1a(stdout_bytes) != sum {
        return Err(BbError::checkpoint(format!(
            "checksum mismatch in stdout of unit {name} \
             (blob at byte offset {blob_at}, mid-file corruption — not a \
             torn tail, refusing to salvage)"
        )));
    }
    let stdout = String::from_utf8(stdout_bytes.to_vec())
        .map_err(|_| BbError::checkpoint(format!("unit {name} stdout is not UTF-8")))?;
    let mut files = Vec::with_capacity(n_files);
    for _ in 0..n_files {
        let fline = match p.line_opt()? {
            Some(line) => line,
            None => {
                return Ok(UnitParse::Torn(format!(
                    "file record of unit {name} cut at EOF"
                )));
            }
        };
        let mut ftok = fline.split(' ');
        if ftok.next() != Some("file") {
            return Err(BbError::checkpoint(format!(
                "expected `file` in unit {name}, got {fline:?}"
            )));
        }
        let fname = ftok
            .next()
            .ok_or_else(|| BbError::checkpoint("file line missing name"))?
            .to_string();
        let len: usize = parse_tok(ftok.next(), "file length")?;
        let fsum: u64 = parse_hex(ftok.next(), "file checksum")?;
        let fblob_at = p.pos;
        let blob = match p.blob_opt(len, &fname)? {
            Some(blob) => blob,
            None => {
                return Ok(UnitParse::Torn(format!(
                    "blob of file {fname} in unit {name} cut at EOF"
                )));
            }
        };
        if fnv1a(blob) != fsum {
            return Err(BbError::checkpoint(format!(
                "checksum mismatch in file {fname} of unit {name} \
                 (blob at byte offset {fblob_at}, mid-file corruption — \
                 not a torn tail, refusing to salvage)"
            )));
        }
        files.push((fname, blob.to_vec()));
    }
    Ok(UnitParse::Unit(name, UnitResult { stdout, files }))
}

/// Per-shard liveness record for orchestrated runs: progress counters plus
/// a wall timestamp, rewritten next to the manifest every few thousand
/// measurement windows. Advisory telemetry only — the orchestrator detects
/// a hung shard by watching the *content* stop changing against its own
/// monotonic clock, so the timestamp never needs clock agreement between
/// writer and watcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Heartbeat {
    /// Measurement windows completed so far in this shard process.
    pub windows_done: u64,
    /// Units (experiments) finalized so far in this shard process.
    pub units_done: u64,
    /// Wall clock at write time, milliseconds since the Unix epoch.
    pub stamp_ms: u64,
}

impl Heartbeat {
    /// A heartbeat stamped with the current wall clock.
    pub fn now(windows_done: u64, units_done: u64) -> Self {
        let stamp_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Self {
            windows_done,
            units_done,
            stamp_ms,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        format!(
            "{HEARTBEAT_FORMAT}\nwindows {}\nunits {}\nstamp_ms {}\n",
            self.windows_done, self.units_done, self.stamp_ms
        )
        .into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> BbResult<Heartbeat> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| BbError::checkpoint("heartbeat is not UTF-8"))?;
        let mut lines = text.lines();
        match lines.next() {
            Some(v) if v == HEARTBEAT_FORMAT => {}
            other => {
                return Err(BbError::checkpoint(format!(
                    "bad heartbeat header {other:?}, this build reads {HEARTBEAT_FORMAT}"
                )));
            }
        }
        let windows_done = heartbeat_field(lines.next(), "windows")?;
        let units_done = heartbeat_field(lines.next(), "units")?;
        let stamp_ms = heartbeat_field(lines.next(), "stamp_ms")?;
        Ok(Heartbeat {
            windows_done,
            units_done,
            stamp_ms,
        })
    }

    /// Atomically replace the heartbeat in `dir` (temp file + rename, so a
    /// reader never sees a half-written record). Deliberately *not* fsynced:
    /// a heartbeat is a liveness signal consumed by a live watcher on the
    /// same system, where rename alone guarantees readers see whole records
    /// — durability after power loss buys nothing, and paying the manifest
    /// writer's sync cost every beat would make heartbeats expensive enough
    /// to throttle.
    pub fn save(&self, dir: &Path) -> BbResult<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| BbError::io(format!("create checkpoint dir {}", dir.display()), e))?;
        let path = dir.join(HEARTBEAT_NAME);
        // Heartbeats skip the fsync ladder but are still atomic writers:
        // they share the disk-full injection point with
        // `write_atomic_bytes`, so `BB_REPRO_ENOSPC` can prove this path
        // fails closed too (prior heartbeat intact, no torn rename).
        if let Some(e) = crate::export::injected_enospc(&path) {
            return Err(e);
        }
        let tmp = dir.join(format!("{HEARTBEAT_NAME}.tmp"));
        std::fs::write(&tmp, self.encode())
            .map_err(|e| BbError::io(format!("write {}", tmp.display()), e))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| BbError::io(format!("rename {} -> {}", tmp.display(), path.display()), e))
    }

    /// Load the heartbeat from `dir`. Missing file is [`BbError::Io`].
    pub fn load(dir: &Path) -> BbResult<Heartbeat> {
        let path = dir.join(HEARTBEAT_NAME);
        let bytes = std::fs::read(&path)
            .map_err(|e| BbError::io(format!("read {}", path.display()), e))?;
        Self::decode(&bytes)
    }
}

fn heartbeat_field(line: Option<&str>, name: &str) -> BbResult<u64> {
    let line = line
        .ok_or_else(|| BbError::checkpoint(format!("heartbeat missing {name} line")))?;
    let (key, value) = line
        .split_once(' ')
        .ok_or_else(|| BbError::checkpoint(format!("malformed heartbeat {name} line {line:?}")))?;
    if key != name {
        return Err(BbError::checkpoint(format!(
            "expected heartbeat {name} line, got {line:?}"
        )));
    }
    value
        .parse()
        .map_err(|_| BbError::checkpoint(format!("bad heartbeat {name} value")))
}

/// Stitch shard checkpoints back into one campaign checkpoint.
///
/// Every shard of a `repro all --shard i/N` run writes a standard `bbck/v1`
/// manifest whose key names the **full** selected experiment list (not the
/// shard's slice), so shards of the same campaign carry identical keys and
/// a shard of a *different* campaign can never slip in. The merge enforces:
///
/// * all shard keys identical (first mismatching field named),
/// * units present in more than one shard byte-identical across them,
/// * together the shards cover every experiment in the key.
///
/// The result is exactly the checkpoint a single unsharded `--checkpoint`
/// run would have written: same key, same units, `windows_done` summed.
pub fn merge_shards(shards: &[Checkpoint]) -> BbResult<Checkpoint> {
    let first = shards
        .first()
        .ok_or_else(|| BbError::checkpoint("no shard manifests to merge"))?;
    for s in &shards[1..] {
        s.validate(&first.key)?;
    }
    let mut merged = Checkpoint::new(first.key.clone());
    for s in shards {
        merged.windows_done += s.windows_done;
        for (name, unit) in &s.units {
            match merged.units.get(name) {
                Some(have) if have != unit => {
                    return Err(BbError::checkpoint(format!(
                        "unit {name} differs between shards (same key, different \
                         bytes — corrupt shard or non-deterministic build)"
                    )));
                }
                Some(_) => {}
                None => {
                    merged.units.insert(name.clone(), unit.clone());
                }
            }
        }
    }
    let missing: Vec<&str> = first
        .key
        .experiments
        .split(',')
        .filter(|e| !e.is_empty() && !merged.units.contains_key(*e))
        .collect();
    if !missing.is_empty() {
        return Err(BbError::checkpoint(format!(
            "shards do not cover the campaign: missing {}",
            missing.join(",")
        )));
    }
    Ok(merged)
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "1"
    } else {
        "0"
    }
}

/// `std::fmt::Write` adapter over a byte buffer (header lines are ASCII).
fn str_sink(buf: &mut Vec<u8>) -> StrSink<'_> {
    StrSink(buf)
}

struct StrSink<'a>(&'a mut Vec<u8>);

impl std::fmt::Write for StrSink<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

pub(crate) struct Parser<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Parser<'a> {
    /// Next `\n`-terminated header line as UTF-8 (without the newline).
    pub(crate) fn line(&mut self) -> BbResult<String> {
        let at = self.pos;
        self.line_opt()?.ok_or_else(|| {
            BbError::checkpoint(format!(
                "truncated manifest (missing newline at byte offset {at})"
            ))
        })
    }

    /// Like [`Parser::line`], but truncation (no newline before EOF) is
    /// `Ok(None)` so callers can tell a torn tail from corrupt data. A
    /// complete line that is not UTF-8 is still an error.
    pub(crate) fn line_opt(&mut self) -> BbResult<Option<String>> {
        let rest = &self.bytes[self.pos..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            return Ok(None);
        };
        let line = &rest[..nl];
        self.pos += nl + 1;
        String::from_utf8(line.to_vec())
            .map(Some)
            .map_err(|_| BbError::checkpoint("non-UTF-8 header line"))
    }

    /// Header line `"{name} {value}"`, value parsed.
    pub(crate) fn field<T: std::str::FromStr>(&mut self, name: &str) -> BbResult<T> {
        self.field_str(name)?
            .parse()
            .map_err(|_| BbError::checkpoint(format!("bad {name} value")))
    }

    /// Header line `"{name} {value}"`, value as string.
    pub(crate) fn field_str(&mut self, name: &str) -> BbResult<String> {
        let line = self.line()?;
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| BbError::checkpoint(format!("malformed {name} line {line:?}")))?;
        if key != name {
            return Err(BbError::checkpoint(format!(
                "expected {name} line, got {line:?}"
            )));
        }
        Ok(value.to_string())
    }

    /// `len` raw bytes followed by a `\n` separator. A blob running past
    /// EOF (truncation) is `Ok(None)` so callers can tell a torn tail from
    /// corrupt data; a wrong terminator byte with the data fully present
    /// means a bad length prefix — corruption, an error.
    pub(crate) fn blob_opt(&mut self, len: usize, what: &str) -> BbResult<Option<&'a [u8]>> {
        if self.pos + len + 1 > self.bytes.len() {
            return Ok(None);
        }
        let blob = &self.bytes[self.pos..self.pos + len];
        if self.bytes[self.pos + len] != b'\n' {
            return Err(BbError::checkpoint(format!(
                "blob for {what} not newline-terminated (bad length?)"
            )));
        }
        self.pos += len + 1;
        Ok(Some(blob))
    }
}

fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> BbResult<T> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| BbError::checkpoint(format!("bad {what}")))
}

fn parse_hex(tok: Option<&str>, what: &str) -> BbResult<u64> {
    tok.and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or_else(|| BbError::checkpoint(format!("bad {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> CampaignKey {
        CampaignKey::new(42, "full", "off", "calib,fig1,fig2", true)
    }

    fn sample() -> Checkpoint {
        let mut ck = Checkpoint::new(key());
        ck.windows_done = 1234;
        ck.record(
            "fig1",
            UnitResult {
                stdout: "Figure 1\nline two\n".to_string(),
                files: vec![
                    ("fig1.csv".to_string(), b"series,x,y\npoint,1,0.5\n".to_vec()),
                    // Binary-ish payload: newlines, NULs, non-UTF-8.
                    ("blob.bin".to_string(), vec![0, 10, 255, 10, 10, 0]),
                ],
            },
        );
        ck.record(
            "calib",
            UnitResult {
                stdout: String::new(),
                files: vec![],
            },
        );
        ck
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ck = sample();
        let decoded = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(decoded.key, ck.key);
        assert_eq!(decoded.windows_done, 1234);
        assert_eq!(decoded.units, ck.units);
    }

    #[test]
    fn encoding_is_deterministic_regardless_of_insertion_order() {
        let a = sample();
        let mut b = Checkpoint::new(key());
        b.windows_done = 1234;
        // Insert in the opposite order.
        for name in ["calib", "fig1"] {
            b.record(name, a.units[name].clone());
        }
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn save_load_via_atomic_writer() {
        let dir = std::env::temp_dir().join(format!("bb_ckpt_test_{}", std::process::id()));
        let ck = sample();
        ck.save(&dir).unwrap();
        assert!(!dir.join(format!("{MANIFEST_NAME}.tmp")).exists());
        let loaded = Checkpoint::load(&dir).unwrap();
        assert_eq!(loaded.units, ck.units);
        loaded.validate(&key()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_names_the_mismatching_field() {
        let ck = sample();
        let mut want = key();
        want.seed = 7;
        let err = ck.validate(&want).unwrap_err().to_string();
        assert!(err.contains("seed mismatch"), "{err}");
        assert!(err.contains("42") && err.contains('7'), "{err}");

        let mut want = key();
        want.scale = "test".into();
        let err = ck.validate(&want).unwrap_err().to_string();
        assert!(err.contains("scale mismatch"), "{err}");

        let mut want = key();
        want.code_schema += 1;
        let err = ck.validate(&want).unwrap_err().to_string();
        assert!(err.contains("code_schema mismatch"), "{err}");

        let mut want = key();
        want.faults = "heavy".into();
        assert!(ck.validate(&want).is_err());

        ck.validate(&key()).unwrap();
    }

    #[test]
    fn corrupted_blob_is_rejected_by_checksum() {
        let ck = sample();
        let mut bytes = ck.encode();
        // Flip a byte inside the fig1.csv payload.
        let needle = b"point,1,0.5";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap();
        bytes[at] ^= 0x20;
        let err = Checkpoint::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncated_manifest_is_rejected() {
        let bytes = sample().encode();
        for cut in [bytes.len() - 5, bytes.len() / 2, 3] {
            assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must not parse"
            );
        }
    }

    #[test]
    fn torn_trailing_record_is_salvaged() {
        let ck = sample();
        let bytes = ck.encode();

        // Intact manifest: no salvage, everything kept.
        let (full, salvage) = Checkpoint::decode_salvaging(&bytes).unwrap();
        assert!(salvage.is_none());
        assert_eq!(full.units, ck.units);

        // Cut inside the trailing unit's last blob: the valid prefix
        // (calib — units are sorted, fig1 is trailing) survives.
        let (pre, salvage) = Checkpoint::decode_salvaging(&bytes[..bytes.len() - 5]).unwrap();
        let salvage = salvage.expect("torn tail must be reported");
        assert_eq!(salvage.kept_units, 1);
        assert!(pre.units.contains_key("calib"));
        assert!(!pre.units.contains_key("fig1"));
        assert_eq!(pre.key, ck.key);
        assert!(salvage.bytes_dropped > 0);

        // Cut exactly before the `end` marker: all units survive, only the
        // terminator record is reported dropped.
        let (all, salvage) = Checkpoint::decode_salvaging(&bytes[..bytes.len() - 4]).unwrap();
        assert_eq!(all.units, ck.units);
        let salvage = salvage.expect("missing end marker is a torn tail");
        assert_eq!(salvage.kept_units, 2);
        assert!(salvage.dropped.contains("cut at EOF"), "{}", salvage.dropped);

        // Every cut point after the header yields a valid (possibly empty)
        // prefix, never an error.
        let header_len = bytes
            .windows(5)
            .position(|w| w == b"unit ")
            .unwrap();
        for cut in header_len..bytes.len() {
            let (pre, _) = Checkpoint::decode_salvaging(&bytes[..cut])
                .unwrap_or_else(|e| panic!("cut at {cut} must salvage, got {e}"));
            assert!(pre.units.len() <= 2);
        }

        // A torn *header* is not salvageable: without the full key the
        // prefix cannot be validated against the campaign.
        assert!(Checkpoint::decode_salvaging(&bytes[..3]).is_err());
        assert!(Checkpoint::decode_salvaging(b"bbck/v1\nseed 42\n").is_err());
    }

    #[test]
    fn zero_length_manifest_is_rejected_with_diagnosis() {
        for decode in [
            Checkpoint::decode(b"").map(|_| ()),
            Checkpoint::decode_salvaging(b"").map(|_| ()),
        ] {
            let err = decode.unwrap_err().to_string();
            assert!(err.contains("empty"), "{err}");
            assert!(err.contains("0 bytes"), "{err}");
            assert!(err.contains("byte offset 0"), "{err}");
        }
    }

    #[test]
    fn truncated_header_names_the_byte_offset() {
        let bytes = sample().encode();
        // Cut mid-header (inside the `seed` line): truncation offset is
        // where the parser stood when it ran out of newline.
        let err = Checkpoint::decode(&bytes[..10]).unwrap_err().to_string();
        assert!(err.contains("byte offset 8"), "{err}");
        let err = Checkpoint::decode_salvaging(&bytes[..10])
            .unwrap_err()
            .to_string();
        assert!(err.contains("byte offset 8"), "{err}");
    }

    #[test]
    fn checksum_mismatch_names_the_byte_offset() {
        let ck = sample();
        let bytes = ck.encode();
        // Corrupt the *first* byte of each blob, so the last preceding
        // newline is the record-header line's terminator and the expected
        // blob offset can be computed independently of the parser.
        for (needle, expect_unit) in [
            (b"series,x,y".as_slice(), "file fig1.csv"),
            (b"Figure 1".as_slice(), "stdout of unit fig1"),
        ] {
            let mut corrupt = bytes.clone();
            let at = corrupt
                .windows(needle.len())
                .position(|w| w == needle)
                .unwrap();
            corrupt[at] ^= 0x20;
            // The corrupted byte sits inside the blob, so the reported
            // blob offset must be at or before it.
            let blob_start = corrupt[..at].iter().rposition(|&b| b == b'\n').unwrap() + 1;
            for decode in [
                Checkpoint::decode(&corrupt).map(|_| ()),
                Checkpoint::decode_salvaging(&corrupt).map(|_| ()),
            ] {
                let err = decode.unwrap_err().to_string();
                assert!(err.contains(expect_unit), "{err}");
                assert!(
                    err.contains(&format!("byte offset {blob_start}")),
                    "expected offset {blob_start} in: {err}"
                );
                assert!(err.contains("mid-file corruption"), "{err}");
            }
        }
    }

    #[test]
    fn corruption_is_not_salvaged() {
        let ck = sample();
        let mut bytes = ck.encode();
        // Checksum mismatch with the bytes fully present: damage, not
        // truncation — salvaging decode must reject it like strict decode.
        let needle = b"point,1,0.5";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap();
        bytes[at] ^= 0x20;
        let err = Checkpoint::decode_salvaging(&bytes).unwrap_err().to_string();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn heartbeat_roundtrip_and_atomic_save() {
        let hb = Heartbeat {
            windows_done: 123_456,
            units_done: 7,
            stamp_ms: 1_700_000_000_000,
        };
        assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);

        let dir = std::env::temp_dir().join(format!("bb_hb_test_{}", std::process::id()));
        hb.save(&dir).unwrap();
        assert!(!dir.join(format!("{HEARTBEAT_NAME}.tmp")).exists());
        assert_eq!(Heartbeat::load(&dir).unwrap(), hb);
        // Overwrite in place — the watcher always reads a whole record.
        let hb2 = Heartbeat {
            windows_done: 200_000,
            ..hb
        };
        hb2.save(&dir).unwrap();
        assert_eq!(Heartbeat::load(&dir).unwrap(), hb2);
        std::fs::remove_dir_all(&dir).ok();

        assert!(Heartbeat::decode(b"bbhb/v99\nwindows 1\n").is_err());
        assert!(Heartbeat::decode(b"bbhb/v1\nwindows x\n").is_err());
        assert!(Heartbeat::load(Path::new("/nonexistent_bb_hb")).is_err());
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let err = Checkpoint::decode(b"bbck/v99\n").unwrap_err().to_string();
        assert!(err.contains("unsupported format"), "{err}");
    }

    #[test]
    fn merge_shards_reassembles_the_campaign() {
        let full = sample(); // key covers calib,fig1,fig2 — add fig2 first
        let mut full = full;
        full.record(
            "fig2",
            UnitResult {
                stdout: "Figure 2\n".to_string(),
                files: vec![],
            },
        );
        let mut a = Checkpoint::new(key());
        a.windows_done = 100;
        a.record("calib", full.units["calib"].clone());
        a.record("fig1", full.units["fig1"].clone());
        let mut b = Checkpoint::new(key());
        b.windows_done = 34;
        b.record("fig2", full.units["fig2"].clone());

        let merged = merge_shards(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(merged.units, full.units);
        assert_eq!(merged.windows_done, 134);
        // Order-independent (byte-identical manifest either way).
        let again = merge_shards(&[b.clone(), a.clone()]).unwrap();
        assert_eq!(again.encode(), merged.encode());
        // Duplicate shards are tolerated when their units agree byte-for-byte
        // (windows_done, an advisory progress counter, double-counts).
        let dup = merge_shards(&[b, a.clone(), a]).unwrap();
        assert_eq!(dup.units, merged.units);
    }

    #[test]
    fn merge_rejects_mismatched_keys_and_gaps() {
        let mut a = Checkpoint::new(key());
        a.record("calib", UnitResult::default());
        // Key mismatch.
        let mut other = key();
        other.seed = 7;
        let b = Checkpoint::new(other);
        let err = merge_shards(&[a.clone(), b]).unwrap_err().to_string();
        assert!(err.contains("seed mismatch"), "{err}");
        // Coverage gap: fig1/fig2 missing.
        let err = merge_shards(&[a.clone()]).unwrap_err().to_string();
        assert!(err.contains("missing fig1,fig2"), "{err}");
        // Conflicting duplicate unit.
        let mut c = Checkpoint::new(key());
        c.record(
            "calib",
            UnitResult {
                stdout: "different bytes".into(),
                files: vec![],
            },
        );
        let err = merge_shards(&[a, c]).unwrap_err().to_string();
        assert!(err.contains("differs between shards"), "{err}");
    }

    #[test]
    fn missing_manifest_is_io_not_checkpoint() {
        let err = Checkpoint::load(Path::new("/nonexistent_bb_ckpt")).unwrap_err();
        assert!(matches!(err, BbError::Io { .. }), "{err:?}");
    }
}
