//! Structured errors for study and figure construction.
//!
//! Degraded inputs (fault-injected campaigns, unwritable export paths) are
//! expected operating conditions, not programming errors, so the studies
//! return [`BbError`] instead of panicking. `BbError` is `Clone` because
//! the harness memoizes studies in `OnceLock<BbResult<..>>` cells and must
//! hand the same error to every experiment that shares the study.

/// A study- or export-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BbError {
    /// An I/O operation failed. The message is captured as a string (not
    /// an `io::Error`) so the error stays `Clone`-able across memoized
    /// study cells.
    Io {
        /// What was being done, e.g. `"write fig1.csv"`.
        context: String,
        /// The underlying `io::Error`'s rendering.
        message: String,
    },
    /// A study's inputs degraded below the minimum it can analyze — e.g. a
    /// fault-injected campaign lost every window of a required figure.
    InsufficientData {
        /// Which figure/statistic could not be built.
        what: String,
        /// Usable inputs that survived.
        kept: usize,
        /// Minimum the analysis needs.
        needed: usize,
    },
    /// A checkpoint manifest could not be used: stale key, corrupt blob,
    /// unsupported format version. Stale checkpoints are *rejected*, never
    /// silently reused, so the reason spells out which field mismatched.
    Checkpoint {
        /// Why the manifest was rejected.
        reason: String,
    },
    /// The caller asked for something the inputs cannot satisfy — an
    /// unreadable/malformed topology snapshot, an announcement built
    /// against a different world. Maps to exit code 2 in `repro`.
    Usage {
        /// What was wrong with the request.
        message: String,
    },
}

impl BbError {
    /// Wrap an `io::Error` with its operation context.
    pub fn io(context: impl Into<String>, err: std::io::Error) -> Self {
        BbError::Io {
            context: context.into(),
            message: err.to_string(),
        }
    }

    pub fn insufficient(what: impl Into<String>, kept: usize, needed: usize) -> Self {
        BbError::InsufficientData {
            what: what.into(),
            kept,
            needed,
        }
    }

    pub fn checkpoint(reason: impl Into<String>) -> Self {
        BbError::Checkpoint {
            reason: reason.into(),
        }
    }

    pub fn usage(message: impl Into<String>) -> Self {
        BbError::Usage {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BbError::Io { context, message } => write!(f, "{context}: {message}"),
            BbError::InsufficientData { what, kept, needed } => write!(
                f,
                "insufficient data for {what}: {kept} usable inputs, need at least {needed}"
            ),
            BbError::Checkpoint { reason } => write!(f, "checkpoint rejected: {reason}"),
            BbError::Usage { message } => write!(f, "invalid usage: {message}"),
        }
    }
}

impl std::error::Error for BbError {}

pub type BbResult<T> = Result<T, BbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line() {
        let e = BbError::io(
            "write fig1.csv",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        let s = e.to_string();
        assert!(s.contains("write fig1.csv"), "{s}");
        assert!(!s.contains('\n'));

        let e = BbError::insufficient("fig3 CDF", 0, 1);
        assert_eq!(
            e.to_string(),
            "insufficient data for fig3 CDF: 0 usable inputs, need at least 1"
        );
    }

    #[test]
    fn errors_clone_for_memoized_cells() {
        let e = BbError::insufficient("fig1", 2, 10);
        assert_eq!(e.clone(), e);
    }
}
