//! CSV export of figure data.
//!
//! Every figure can be dumped as plain CSV so the ASCII charts can be
//! re-plotted with real tooling (`repro --csv DIR` writes one file per
//! figure). No external dependencies — the data is simple enough that a
//! minimal writer with proper quoting suffices.
//!
//! Writes are crash-safe: each file is written to a `.tmp` sibling and
//! atomically renamed into place, so a run killed mid-export never leaves a
//! truncated CSV behind. I/O failures surface as [`BbError::Io`] with the
//! file being written as context.

use crate::error::{BbError, BbResult};
use crate::figures::{Coverage, Fig1, Fig2, Fig3, Fig4, Fig5};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process-wide count of atomic-writer invocations. Every writer that must
/// never tear a file — CSV exports, checkpoint manifests, serve snapshots,
/// heartbeats — bumps this exactly once per attempt, which is what makes
/// the `BB_REPRO_ENOSPC` injection below deterministic at `--jobs 1`.
static ATOMIC_WRITES: AtomicU64 = AtomicU64::new(0);

/// `BB_REPRO_ENOSPC=<n>`: the n-th atomic write of the process (1-based)
/// fails with an injected "No space left on device" before anything
/// touches the filesystem. Parsed once; a malformed value is a usage
/// error (exit 2) like the other `BB_REPRO_*` test hooks.
fn enospc_trip() -> Option<u64> {
    static TRIP: OnceLock<Option<u64>> = OnceLock::new();
    *TRIP.get_or_init(|| match std::env::var("BB_REPRO_ENOSPC") {
        Err(_) => None,
        Ok(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("BB_REPRO_ENOSPC: bad write count {s:?}");
                std::process::exit(2);
            }
        },
    })
}

/// Eagerly parse the `BB_REPRO_ENOSPC` hook so a malformed value is a
/// usage error (exit 2) at startup, not only when the first atomic write
/// happens to run — a run with no atomic writes must not silently accept
/// garbage. Called once from binary startup; harmless to call again.
pub fn validate_injection_env() {
    let _ = enospc_trip();
}

/// Deterministic disk-full injection point, consulted by every atomic
/// writer before it creates its temp file. Failing *before* the first
/// filesystem touch is the strictest fail-closed shape: the prior artifact
/// at `path` is untouched, no `.tmp` sibling is left behind, and no rename
/// can tear. Returns the injected error on the trip count, `None` otherwise.
pub(crate) fn injected_enospc(path: &Path) -> Option<BbError> {
    let n = ATOMIC_WRITES.fetch_add(1, Ordering::SeqCst) + 1;
    match enospc_trip() {
        Some(trip) if n == trip => Some(BbError::io(
            format!("write {}", path.display()),
            std::io::Error::other("No space left on device (injected by BB_REPRO_ENOSPC)"),
        )),
        _ => None,
    }
}

/// Escape one CSV field (RFC 4180 quoting).
pub fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Write pre-rendered `bytes` into `path` via a temp file + atomic rename.
///
/// The temp file lives in the same directory as `path` (renames across
/// filesystems are not atomic), named after the target with a `.tmp`
/// suffix so concurrent exports to different files never collide. Shared
/// by the CSV exporters, the checkpoint manifest writer, and the harness's
/// replay path — everything that must never leave a torn file behind.
///
/// Durability ladder: the temp file is fsynced before the rename (so the
/// new name can never point at unwritten blocks), and the containing
/// directory is fsynced after it — the rename itself lives in the
/// directory's metadata, and without that second sync a power loss right
/// after this function returns can roll the directory entry back, making
/// the file vanish even though its data blocks reached disk.
pub fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> BbResult<()> {
    if let Some(e) = injected_enospc(path) {
        return Err(e);
    }
    let label = path.display().to_string();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp)
        .map_err(|e| BbError::io(format!("create {}", tmp.display()), e))?;
    f.write_all(bytes)
        .map_err(|e| BbError::io(format!("write {}", tmp.display()), e))?;
    f.sync_all()
        .map_err(|e| BbError::io(format!("sync {}", tmp.display()), e))?;
    drop(f);
    std::fs::rename(&tmp, path)
        .map_err(|e| BbError::io(format!("rename {} -> {label}", tmp.display()), e))?;
    #[cfg(unix)]
    {
        // Persist the rename: fsync the directory holding the new entry.
        // Unix-only — opening a directory for sync is not portable, and the
        // rename's atomicity (the visible guarantee) holds regardless.
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = dir {
            std::fs::File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(|e| BbError::io(format!("sync dir {}", dir.display()), e))?;
        }
    }
    Ok(())
}

/// Coverage disclosure as a leading `#` comment line, so CSV consumers can
/// tell a degraded run from a full one without reading the rendered figure.
/// Full-coverage exports stay byte-identical to before the fault plane.
fn coverage_comment(f: &mut Vec<u8>, coverage: &Coverage) {
    if coverage.is_partial() {
        let _ = writeln!(
            f,
            "# partial data: {}/{} inputs kept ({:.1}% coverage)",
            coverage.kept,
            coverage.total,
            100.0 * coverage.fraction()
        );
    }
}

/// Render rows of (x, y) series points with a header. Writing into a `Vec`
/// is infallible, so this returns the bytes directly.
fn render_series(coverage: &Coverage, header: &str, series: &[(&str, Vec<(f64, f64)>)]) -> Vec<u8> {
    let mut f = Vec::new();
    coverage_comment(&mut f, coverage);
    let _ = writeln!(f, "{header}");
    for (label, pts) in series {
        for &(x, y) in pts {
            let _ = writeln!(f, "{},{x},{y}", csv_field(label));
        }
    }
    f
}

/// Render Figure 1 (point estimate + CI bound CDFs) as CSV bytes.
pub fn fig1_csv_bytes(fig: &Fig1) -> Vec<u8> {
    render_series(
        &fig.coverage,
        "series,diff_ms,cum_fraction_of_traffic",
        &[
            ("point", fig.diff.points().collect()),
            ("ci_lower", fig.ci_lower.points().collect()),
            ("ci_upper", fig.ci_upper.points().collect()),
        ],
    )
}

/// Export Figure 1.
pub fn fig1_csv(fig: &Fig1, dir: &Path) -> BbResult<()> {
    write_atomic_bytes(&dir.join("fig1.csv"), &fig1_csv_bytes(fig))
}

/// Render Figure 2 as CSV bytes.
pub fn fig2_csv_bytes(fig: &Fig2) -> Vec<u8> {
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    if let Some(c) = &fig.peer_vs_transit {
        series.push(("peer_vs_transit", c.points().collect()));
    }
    if let Some(c) = &fig.private_vs_public {
        series.push(("private_vs_public", c.points().collect()));
    }
    render_series(
        &fig.coverage,
        "series,diff_ms,cum_fraction_of_traffic",
        &series,
    )
}

/// Export Figure 2.
pub fn fig2_csv(fig: &Fig2, dir: &Path) -> BbResult<()> {
    write_atomic_bytes(&dir.join("fig2.csv"), &fig2_csv_bytes(fig))
}

/// Render Figure 3 (CCDFs) as CSV bytes.
pub fn fig3_csv_bytes(fig: &Fig3) -> Vec<u8> {
    let mut series: Vec<(&str, Vec<(f64, f64)>)> =
        vec![("world", fig.world.points().collect())];
    if let Some(c) = &fig.europe {
        series.push(("europe", c.points().collect()));
    }
    if let Some(c) = &fig.united_states {
        series.push(("united_states", c.points().collect()));
    }
    render_series(
        &fig.coverage,
        "series,penalty_ms,ccdf_fraction_of_requests",
        &series,
    )
}

/// Export Figure 3.
pub fn fig3_csv(fig: &Fig3, dir: &Path) -> BbResult<()> {
    write_atomic_bytes(&dir.join("fig3.csv"), &fig3_csv_bytes(fig))
}

/// Render Figure 4 as CSV bytes.
pub fn fig4_csv_bytes(fig: &Fig4) -> Vec<u8> {
    render_series(
        &fig.coverage,
        "series,improvement_ms,cum_fraction_of_weighted_prefixes",
        &[
            ("median", fig.median_improvement.points().collect()),
            ("p75", fig.p75_improvement.points().collect()),
        ],
    )
}

/// Export Figure 4.
pub fn fig4_csv(fig: &Fig4, dir: &Path) -> BbResult<()> {
    write_atomic_bytes(&dir.join("fig4.csv"), &fig4_csv_bytes(fig))
}

/// Render Figure 5 (per-country table) as CSV bytes.
pub fn fig5_csv_bytes(fig: &Fig5) -> Vec<u8> {
    let mut f = Vec::new();
    coverage_comment(&mut f, &fig.coverage);
    let _ = writeln!(
        f,
        "country_code,country,region,median_diff_ms,vantage_points,users_m"
    );
    for r in &fig.rows {
        let _ = writeln!(
            f,
            "{},{},{},{},{},{}",
            r.code,
            csv_field(r.name),
            csv_field(r.region.name()),
            r.median_diff_ms,
            r.vantage_points,
            r.users_m
        );
    }
    f
}

/// Export Figure 5.
pub fn fig5_csv(fig: &Fig5, dir: &Path) -> BbResult<()> {
    write_atomic_bytes(&dir.join("fig5.csv"), &fig5_csv_bytes(fig))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Coverage;
    use bb_stats::{Ccdf, Cdf};

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bb_export_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fig1_roundtrip() {
        let cdf = Cdf::from_values(&[1.0, 2.0, 3.0]).unwrap();
        let fig = Fig1 {
            diff: cdf.clone(),
            ci_lower: cdf.clone(),
            ci_upper: cdf,
            frac_improvable_5ms: 0.02,
            frac_bgp_good: 0.95,
            groups: 3,
            coverage: Coverage::default(),
        };
        let dir = tmpdir();
        fig1_csv(&fig, &dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig1.csv")).unwrap();
        assert!(content.starts_with("series,diff_ms"));
        // 3 series × 3 points + header.
        assert_eq!(content.lines().count(), 10);
        assert!(content.contains("point,1,"));
        // The temp file must not survive a successful export.
        assert!(!dir.join("fig1.csv.tmp").exists());
    }

    #[test]
    fn fig3_includes_all_series() {
        let ccdf = Ccdf::from_values(&[0.0, 10.0, 100.0]).unwrap();
        let fig = Fig3 {
            world: ccdf.clone(),
            europe: Some(ccdf.clone()),
            united_states: None,
            frac_within_10ms: 0.8,
            frac_gt_100ms: 0.05,
            coverage: Coverage::default(),
        };
        let dir = tmpdir();
        fig3_csv(&fig, &dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig3.csv")).unwrap();
        assert!(content.contains("world,"));
        assert!(content.contains("europe,"));
        assert!(!content.contains("united_states,"));
    }

    #[test]
    fn fig5_table_shape() {
        let fig = Fig5 {
            rows: vec![crate::figures::CountryDiff {
                code: "IN",
                name: "India",
                region: bb_geo::Region::SouthAsia,
                median_diff_ms: -51.8,
                vantage_points: 12,
                users_m: 600.0,
            }],
            premium_ingress_within_400km: 0.7,
            standard_ingress_within_400km: 0.05,
            qualifying_vps: 12,
            coverage: Coverage::default(),
        };
        let dir = tmpdir();
        fig5_csv(&fig, &dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig5.csv")).unwrap();
        assert!(content.contains("IN,India,South Asia,-51.8,12,600"));
    }

    #[test]
    fn partial_coverage_is_disclosed_as_comment_line() {
        let cdf = Cdf::from_values(&[1.0, 2.0, 3.0]).unwrap();
        let fig = Fig1 {
            diff: cdf.clone(),
            ci_lower: cdf.clone(),
            ci_upper: cdf,
            frac_improvable_5ms: 0.02,
            frac_bgp_good: 0.95,
            groups: 3,
            coverage: Coverage::new(37, 48),
        };
        let bytes = fig1_csv_bytes(&fig);
        let content = String::from_utf8(bytes).unwrap();
        assert!(
            content.starts_with("# partial data: 37/48 inputs kept (77.1% coverage)\n"),
            "{content}"
        );
        // The header is still the first non-comment line.
        assert_eq!(content.lines().nth(1).unwrap(), "series,diff_ms,cum_fraction_of_traffic");
    }

    #[test]
    fn unwritable_dir_yields_io_error() {
        let fig = Fig4 {
            median_improvement: Cdf::from_values(&[1.0]).unwrap(),
            p75_improvement: Cdf::from_values(&[2.0]).unwrap(),
            frac_improved: 0.27,
            frac_worse: 0.17,
            coverage: Coverage::default(),
        };
        let err = fig4_csv(&fig, Path::new("/nonexistent_bb_dir")).unwrap_err();
        match err {
            BbError::Io { context, .. } => assert!(context.contains("fig4.csv"), "{context}"),
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
