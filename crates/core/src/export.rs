//! CSV export of figure data.
//!
//! Every figure can be dumped as plain CSV so the ASCII charts can be
//! re-plotted with real tooling (`repro --csv DIR` writes one file per
//! figure). No external dependencies — the data is simple enough that a
//! minimal writer with proper quoting suffices.

use crate::figures::{Fig1, Fig2, Fig3, Fig4, Fig5};
use std::io::Write;
use std::path::Path;

/// Escape one CSV field (RFC 4180 quoting).
pub fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Write rows of (x, y) series points with a header.
fn write_series(
    path: &Path,
    header: &str,
    series: &[(&str, Vec<(f64, f64)>)],
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for (label, pts) in series {
        for &(x, y) in pts {
            writeln!(f, "{},{x},{y}", csv_field(label))?;
        }
    }
    Ok(())
}

/// Export Figure 1 (point estimate + CI bound CDFs).
pub fn fig1_csv(fig: &Fig1, dir: &Path) -> std::io::Result<()> {
    write_series(
        &dir.join("fig1.csv"),
        "series,diff_ms,cum_fraction_of_traffic",
        &[
            ("point", fig.diff.points().collect()),
            ("ci_lower", fig.ci_lower.points().collect()),
            ("ci_upper", fig.ci_upper.points().collect()),
        ],
    )
}

/// Export Figure 2.
pub fn fig2_csv(fig: &Fig2, dir: &Path) -> std::io::Result<()> {
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    if let Some(c) = &fig.peer_vs_transit {
        series.push(("peer_vs_transit", c.points().collect()));
    }
    if let Some(c) = &fig.private_vs_public {
        series.push(("private_vs_public", c.points().collect()));
    }
    write_series(
        &dir.join("fig2.csv"),
        "series,diff_ms,cum_fraction_of_traffic",
        &series,
    )
}

/// Export Figure 3 (CCDFs).
pub fn fig3_csv(fig: &Fig3, dir: &Path) -> std::io::Result<()> {
    let mut series: Vec<(&str, Vec<(f64, f64)>)> =
        vec![("world", fig.world.points().collect())];
    if let Some(c) = &fig.europe {
        series.push(("europe", c.points().collect()));
    }
    if let Some(c) = &fig.united_states {
        series.push(("united_states", c.points().collect()));
    }
    write_series(
        &dir.join("fig3.csv"),
        "series,penalty_ms,ccdf_fraction_of_requests",
        &series,
    )
}

/// Export Figure 4.
pub fn fig4_csv(fig: &Fig4, dir: &Path) -> std::io::Result<()> {
    write_series(
        &dir.join("fig4.csv"),
        "series,improvement_ms,cum_fraction_of_weighted_prefixes",
        &[
            ("median", fig.median_improvement.points().collect()),
            ("p75", fig.p75_improvement.points().collect()),
        ],
    )
}

/// Export Figure 5 (per-country table).
pub fn fig5_csv(fig: &Fig5, dir: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(dir.join("fig5.csv"))?;
    writeln!(
        f,
        "country_code,country,region,median_diff_ms,vantage_points,users_m"
    )?;
    for r in &fig.rows {
        writeln!(
            f,
            "{},{},{},{},{},{}",
            r.code,
            csv_field(r.name),
            csv_field(r.region.name()),
            r.median_diff_ms,
            r.vantage_points,
            r.users_m
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_stats::{Ccdf, Cdf};

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bb_export_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fig1_roundtrip() {
        let cdf = Cdf::from_values(&[1.0, 2.0, 3.0]).unwrap();
        let fig = Fig1 {
            diff: cdf.clone(),
            ci_lower: cdf.clone(),
            ci_upper: cdf,
            frac_improvable_5ms: 0.02,
            frac_bgp_good: 0.95,
            groups: 3,
        };
        let dir = tmpdir();
        fig1_csv(&fig, &dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig1.csv")).unwrap();
        assert!(content.starts_with("series,diff_ms"));
        // 3 series × 3 points + header.
        assert_eq!(content.lines().count(), 10);
        assert!(content.contains("point,1,"));
    }

    #[test]
    fn fig3_includes_all_series() {
        let ccdf = Ccdf::from_values(&[0.0, 10.0, 100.0]).unwrap();
        let fig = Fig3 {
            world: ccdf.clone(),
            europe: Some(ccdf.clone()),
            united_states: None,
            frac_within_10ms: 0.8,
            frac_gt_100ms: 0.05,
        };
        let dir = tmpdir();
        fig3_csv(&fig, &dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig3.csv")).unwrap();
        assert!(content.contains("world,"));
        assert!(content.contains("europe,"));
        assert!(!content.contains("united_states,"));
    }

    #[test]
    fn fig5_table_shape() {
        let fig = Fig5 {
            rows: vec![crate::figures::CountryDiff {
                code: "IN",
                name: "India",
                region: bb_geo::Region::SouthAsia,
                median_diff_ms: -51.8,
                vantage_points: 12,
                users_m: 600.0,
            }],
            premium_ingress_within_400km: 0.7,
            standard_ingress_within_400km: 0.05,
            qualifying_vps: 12,
        };
        let dir = tmpdir();
        fig5_csv(&fig, &dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig5.csv")).unwrap();
        assert!(content.contains("IN,India,South Asia,-51.8,12,600"));
    }
}
