//! §4 — availability, "the primary concern of content and cloud
//! providers".
//!
//! Three of the paper's availability claims, made quantitative:
//!
//! 1. "Anycast provides resilience against site outages": when a site
//!    fails, BGP withdraws its announcements and clients re-converge onto
//!    the next site within routing-convergence time.
//! 2. "… and avoids availability problems that can be induced by DNS
//!    caching": a client pinned by DNS to a failed unicast front-end stays
//!    black-holed until health-checking notices and the cached answer's
//!    TTL expires.
//! 3. Route diversity at the egress (§3.1.3/§4): traffic whose serving
//!    PoP holds ≥2 routes rides out single-link failures at BGP failover
//!    speed; single-routed traffic waits for repair. Small peering links
//!    fail more often, concentrating this risk.

use crate::world::Scenario;
use bb_cdn::AnycastDeployment;
use bb_measure::spray::build_targets;
use bb_netsim::{FailureConfig, FailureKey, FailureModel};
use serde::Serialize;

/// Recovery-time parameters.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryConfig {
    /// BGP withdrawal + reconvergence after a site/link failure, seconds.
    pub bgp_convergence_s: f64,
    /// Health-check detection delay for DNS-based redirection, seconds.
    pub dns_detection_s: f64,
    /// DNS answer TTL, seconds (cached answers keep sending clients to the
    /// dead front-end until expiry).
    pub dns_ttl_s: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            bgp_convergence_s: 45.0,
            dns_detection_s: 120.0,
            dns_ttl_s: 300.0,
        }
    }
}

/// Study output: expected downtime per client per year, traffic-weighted.
#[derive(Debug, Clone, Serialize)]
pub struct AvailabilityResult {
    /// Site outages simulated across the horizon.
    pub site_outages: usize,
    /// Expected client downtime under anycast, minutes/client/year.
    pub anycast_downtime_min_y: f64,
    /// Same under DNS-pinned unicast serving.
    pub dns_downtime_min_y: f64,
    /// Fraction of traffic whose serving PoP has ≥2 routes (protected from
    /// single-link failures at failover speed).
    pub diversity_protected: f64,
    /// Counterfactual: downtime if egress-link outages had to be waited
    /// out (no alternate route), minutes/client/year.
    pub without_diversity_downtime_min_y: f64,
    /// Actual downtime with route diversity (failover time per event for
    /// diverse traffic, full outages for the single-routed rest),
    /// minutes/client/year.
    pub with_diversity_downtime_min_y: f64,
}

impl AvailabilityResult {
    pub fn render(&self) -> String {
        format!(
            "X-AVAIL (§4): availability under failures ({} site outages/yr simulated)\n  \
             site outages  — anycast: {:.2} min/client/yr   DNS-pinned unicast: {:.2} min/client/yr ({:.0}x worse)\n  \
             egress links  — with diversity ({:.0}% diverse): {:.2} min/client/yr   without: {:.2} min/client/yr\n",
            self.site_outages,
            self.anycast_downtime_min_y,
            self.dns_downtime_min_y,
            self.dns_downtime_min_y / self.anycast_downtime_min_y.max(1e-9),
            self.diversity_protected * 100.0,
            self.with_diversity_downtime_min_y,
            self.without_diversity_downtime_min_y
        )
    }
}

/// Run the availability study on a scenario.
pub fn run(scenario: &Scenario, seed: u64, recovery: &RecoveryConfig) -> AvailabilityResult {
    let topo = &scenario.topo;
    let provider = &scenario.provider;
    let failures = FailureModel::new(seed, FailureConfig::default());
    let horizon_years =
        failures.config().horizon_min / (365.0 * 24.0 * 60.0);

    // --- Site outages: who is affected, for how long, per scheme. ---
    // Catchment weight per site under the full anycast deployment.
    let dep = AnycastDeployment::deploy(topo, provider, &provider.pops.clone());
    let mut site_weight: std::collections::BTreeMap<bb_geo::CityId, f64> = Default::default();
    let mut total_weight = 0.0;
    for p in &scenario.workload.prefixes {
        if let Some(svc) = dep.serve(topo, provider, p.asn, p.city) {
            *site_weight.entry(svc.front_end).or_insert(0.0) += p.weight;
            total_weight += p.weight;
        }
    }

    let mut site_outages = 0;
    let mut anycast_down_weighted_min = 0.0;
    let mut dns_down_weighted_min = 0.0;
    for (&site, &w) in &site_weight {
        let frac = w / total_weight.max(1e-12);
        for outage in failures.outages(FailureKey::Site(site), 0.0).iter() {
            site_outages += 1;
            // Anycast: affected clients lose service for the convergence
            // time (or the whole outage if it is shorter).
            let any_down = (recovery.bgp_convergence_s / 60.0).min(outage.duration_min());
            anycast_down_weighted_min += frac * any_down;
            // DNS-pinned unicast: detection + TTL drain, capped by the
            // outage itself (if the site comes back first, the stale
            // answer becomes valid again).
            let dns_down = ((recovery.dns_detection_s + recovery.dns_ttl_s) / 60.0)
                .min(outage.duration_min());
            dns_down_weighted_min += frac * dns_down;
        }
    }

    // --- Egress-link failures vs route diversity (Study A serving model). ---
    let targets = build_targets(topo, provider, &scenario.workload, 3);
    let mut protected_w = 0.0;
    let mut target_total = 0.0;
    let mut actual_down_min = 0.0;
    let mut counterfactual_down_min = 0.0;
    for t in &targets {
        let w = scenario.workload.prefix(t.prefix).weight;
        target_total += w;
        let preferred = &t.routes[0];
        let link = topo.link(preferred.egress_link);
        let outages = failures.outages(FailureKey::Link(preferred.egress_link), link.capacity_gbps);
        let outage_min: f64 = outages.iter().map(|o| o.duration_min()).sum();
        // Counterfactual: every outage must be waited out.
        counterfactual_down_min += w * outage_min;
        if t.routes.len() >= 2 {
            protected_w += w;
            // Failover at BGP speed per outage event (capped by the outage
            // itself for very short blips).
            let failover: f64 = outages
                .iter()
                .map(|o| (recovery.bgp_convergence_s / 60.0).min(o.duration_min()))
                .sum();
            actual_down_min += w * failover;
        } else {
            actual_down_min += w * outage_min;
        }
    }

    AvailabilityResult {
        site_outages: (site_outages as f64 / horizon_years).round() as usize,
        anycast_downtime_min_y: anycast_down_weighted_min / horizon_years,
        dns_downtime_min_y: dns_down_weighted_min / horizon_years,
        diversity_protected: protected_w / target_total.max(1e-12),
        without_diversity_downtime_min_y: counterfactual_down_min
            / (target_total.max(1e-12) * horizon_years),
        with_diversity_downtime_min_y: actual_down_min
            / (target_total.max(1e-12) * horizon_years),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    fn result() -> AvailabilityResult {
        let s = Scenario::build(ScenarioConfig::microsoft(23, Scale::Test));
        run(&s, 7, &RecoveryConfig::default())
    }

    #[test]
    fn anycast_recovers_faster_than_dns() {
        let r = result();
        assert!(
            r.dns_downtime_min_y > r.anycast_downtime_min_y,
            "DNS caching must cost availability: {} vs {}",
            r.dns_downtime_min_y,
            r.anycast_downtime_min_y
        );
        // The ratio should be roughly (detection+TTL)/convergence, capped
        // by short outages: somewhere between 2x and 10x.
        let ratio = r.dns_downtime_min_y / r.anycast_downtime_min_y;
        assert!((2.0..=10.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn route_diversity_protects() {
        let r = result();
        assert!(r.diversity_protected > 0.5, "{}", r.diversity_protected);
        assert!(
            r.without_diversity_downtime_min_y > r.with_diversity_downtime_min_y * 2.0,
            "diversity must cut downtime substantially: {} vs {}",
            r.without_diversity_downtime_min_y,
            r.with_diversity_downtime_min_y
        );
    }

    #[test]
    fn outage_counts_are_plausible() {
        let r = result();
        // A few dozen sites at 60-day MTBF → hundreds of outages per year.
        assert!(r.site_outages > 20, "{}", r.site_outages);
        assert!(r.site_outages < 5000);
    }

    #[test]
    fn render_contains_headline() {
        let r = result();
        let s = r.render();
        assert!(s.contains("X-AVAIL"));
        assert!(s.contains("min/client/yr"));
    }

    #[test]
    fn deterministic() {
        let s = Scenario::build(ScenarioConfig::microsoft(23, Scale::Test));
        let a = run(&s, 7, &RecoveryConfig::default());
        let b = run(&s, 7, &RecoveryConfig::default());
        assert_eq!(a.anycast_downtime_min_y, b.anycast_downtime_min_y);
        assert_eq!(a.dns_downtime_min_y, b.dns_downtime_min_y);
    }
}
