//! §3.2.1 — what would EDNS Client Subnet adoption buy?
//!
//! "EDNS Client Subnet was designed to overcome this limitation, but its
//! adoption by ISPs is virtually non-existent (< 0.1% of ASes) outside of
//! public resolvers." This sweep raises ISP-resolver ECS adoption from
//! today's ~0 to 100 % and re-runs the Fig 4 protocol at each level: with
//! ECS the redirector decides per client prefix instead of per resolver,
//! trading the aggregation *bias* for per-prefix estimation *variance*:
//! the improved fraction should grow toward the oracle, while the "worse"
//! tail changes little (it loses the aggregation-error cases but gains
//! overfitting-to-noise cases — per-prefix training data is thinner).

use crate::error::BbResult;
use crate::study_anycast;
use crate::world::Scenario;
use bb_cdn::AnycastDeployment;
use bb_measure::beacon::build_unicast_deployments;
use bb_measure::{run_beacons, BeaconConfig};
use bb_workload::generate_workload;
use serde::Serialize;

/// One adoption level's Fig-4 statistics.
#[derive(Debug, Clone, Serialize)]
pub struct EcsPoint {
    /// ISP-resolver ECS adoption fraction.
    pub adoption: f64,
    /// Fraction of (weighted) queries improved at the median.
    pub improved: f64,
    /// Fraction made worse.
    pub worse: f64,
    /// Weighted median improvement, ms.
    pub median_gain_ms: f64,
}

impl EcsPoint {
    pub fn render_row(&self) -> String {
        format!(
            "  ecs={:>5.1}%  improved={:>5.1}%  worse={:>5.1}%  median gain={:>5.2} ms",
            self.adoption * 100.0,
            self.improved * 100.0,
            self.worse * 100.0,
            self.median_gain_ms
        )
    }
}

/// Sweep ECS adoption. The beacon campaign is collected once (it does not
/// depend on resolvers); only the workload's resolver flags and the
/// redirector retraining vary per step.
pub fn run(
    scenario: &Scenario,
    beacon_cfg: &BeaconConfig,
    adoptions: &[f64],
) -> BbResult<Vec<EcsPoint>> {
    let sites = scenario.provider.pops.clone();
    let anycast = AnycastDeployment::deploy(&scenario.topo, &scenario.provider, &sites);
    let unicast = build_unicast_deployments(&scenario.topo, &scenario.provider, &sites);
    let measurements = run_beacons(
        &scenario.topo,
        &scenario.provider,
        &anycast,
        &unicast,
        &scenario.workload,
        &scenario.congestion,
        scenario.fault_plane(),
        beacon_cfg,
    );

    adoptions
        .iter()
        .map(|&adoption| {
            // Rebuild only the workload with the new adoption level; the
            // prefix set and weights are identical by construction (ECS
            // flags come from a dedicated RNG stream).
            let mut wl_cfg = scenario.config.workload.clone();
            wl_cfg.isp_ecs_fraction = adoption;
            let workload = generate_workload(&scenario.topo, &wl_cfg);
            debug_assert_eq!(workload.prefixes.len(), scenario.workload.prefixes.len());

            // Re-run the Fig 4 analysis against the modified workload.
            let shadow = Scenario {
                config: scenario.config.clone(),
                topo: scenario.topo.clone(),
                provider: scenario.provider.clone(),
                workload,
                congestion: bb_netsim::CongestionModel::new(
                    scenario.config.seed ^ 0x_c01d,
                    scenario.config.congestion.clone(),
                ),
                // The measurements already carry any fault effects; the
                // re-analysis itself draws nothing new.
                faults: None,
            };
            let study = study_anycast::analyze(&shadow, measurements.clone())?;
            Ok(EcsPoint {
                adoption,
                improved: study.fig4.frac_improved,
                worse: study.fig4.frac_worse,
                median_gain_ms: study.fig4.median_improvement.median(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    #[test]
    fn full_ecs_does_not_hurt_more_than_no_ecs() {
        let s = Scenario::build(ScenarioConfig::microsoft(37, Scale::Test));
        let pts = run(
            &s,
            &BeaconConfig {
                // Enough rounds that per-prefix training noise (the
                // variance half of the bias-for-variance trade) does not
                // dominate the comparison at Scale::Test.
                rounds: 10,
                ..Default::default()
            },
            &[0.0, 1.0],
        )
        .expect("fault-free sweep succeeds");
        assert_eq!(pts.len(), 2);
        // Bias-for-variance trade: the worse tail must not blow up…
        assert!(
            pts[1].worse <= pts[0].worse + 0.05,
            "ECS exploded the worse tail: {} -> {}",
            pts[0].worse,
            pts[1].worse
        );
        // …and improvements must not shrink materially.
        assert!(
            pts[1].improved >= pts[0].improved - 0.02,
            "ECS should keep or grow improvements: {} -> {}",
            pts[0].improved,
            pts[1].improved
        );
        // The net median gain must not regress.
        assert!(pts[1].median_gain_ms >= pts[0].median_gain_ms - 0.1);
    }

    #[test]
    fn sweep_is_monotone_in_worse_tail() {
        let s = Scenario::build(ScenarioConfig::microsoft(37, Scale::Test));
        let pts = run(
            &s,
            &BeaconConfig {
                rounds: 4,
                ..Default::default()
            },
            &[0.0, 0.5, 1.0],
        )
        .expect("fault-free sweep succeeds");
        for w in pts.windows(2) {
            assert!(
                w[1].worse <= w[0].worse + 0.05,
                "worse tail should stay roughly stable with adoption: {:?}",
                pts
            );
        }
    }

    #[test]
    fn render_row() {
        let p = EcsPoint {
            adoption: 0.5,
            improved: 0.3,
            worse: 0.1,
            median_gain_ms: 1.5,
        };
        assert!(p.render_row().contains("ecs= 50.0%"));
    }
}
