//! What can a *realizable* controller actually claim of Figure 1's
//! opportunity?
//!
//! Figure 1 compares BGP to an **omniscient** controller. §4 then asks the
//! business question: "whether this benefit is worth the cost of building
//! and maintaining a performance-aware system". This study quantifies the
//! middle ground: an Edge-Fabric-style controller that reacts to the
//! previous window's measurements (no oracle), with a detour threshold and
//! an overload guard — how much of the omniscient gain does it capture,
//! and how often does a stale decision *hurt*?

use crate::world::Scenario;
use bb_cdn::egress::RouteWindowStats;
use bb_cdn::EgressController;
use bb_measure::{spray, SprayConfig, SprayDataset};
use bb_stats::weighted_quantile;
use serde::Serialize;
use std::collections::BTreeMap;

/// Study output.
#[derive(Debug, Clone, Serialize)]
pub struct FabricResult {
    /// Traffic-weighted mean MinRTT under plain BGP, ms.
    pub bgp_mean_ms: f64,
    /// Under the reactive controller (decides from the previous window).
    pub fabric_mean_ms: f64,
    /// Under the omniscient controller (per-window best route).
    pub oracle_mean_ms: f64,
    /// Share of the omniscient improvement the reactive controller
    /// captured (0..1; can go negative if staleness hurts).
    pub captured_fraction: f64,
    /// Fraction of windows where the controller detoured.
    pub detour_rate: f64,
    /// Fraction of detoured windows where the detour was *worse* than BGP
    /// would have been (stale decision).
    pub regret_rate: f64,
    /// Weighted median per-window gain of fabric over BGP, ms.
    pub median_gain_ms: f64,
}

impl FabricResult {
    pub fn render(&self) -> String {
        format!(
            "X-FABRIC: reactive egress controller vs BGP vs oracle\n  \
             mean MinRTT — bgp {:.2} ms, fabric {:.2} ms, oracle {:.2} ms\n  \
             captured {:.0}% of the omniscient gain; detoured in {:.1}% of windows, \
             {:.0}% of detours regretted\n",
            self.bgp_mean_ms,
            self.fabric_mean_ms,
            self.oracle_mean_ms,
            self.captured_fraction * 100.0,
            self.detour_rate * 100.0,
            self.regret_rate * 100.0
        )
    }
}

/// Run on a fresh spray campaign.
pub fn run(scenario: &Scenario, spray_cfg: &SprayConfig, controller: &EgressController) -> FabricResult {
    let spray_cfg = SprayConfig {
        targets_memo: Some(scenario.config.world_key()),
        ..spray_cfg.clone()
    };
    let dataset = spray(
        &scenario.topo,
        &scenario.provider,
        &scenario.workload,
        &scenario.congestion,
        scenario.fault_plane(),
        &spray_cfg,
    );
    evaluate(&dataset, controller)
}

/// Evaluate the controller over an existing dataset.
pub fn evaluate(dataset: &SprayDataset, controller: &EgressController) -> FabricResult {
    // Group rows per target in window order. BTreeMap: iteration feeds the
    // float accumulators, so order must not depend on hash state.
    let mut per_target: BTreeMap<(bb_geo::CityId, bb_workload::PrefixId), Vec<&bb_measure::spray::WindowRow>> =
        BTreeMap::new();
    for row in &dataset.rows {
        per_target.entry((row.pop, row.prefix)).or_default().push(row);
    }

    let mut bgp_acc = 0.0;
    let mut fabric_acc = 0.0;
    let mut oracle_acc = 0.0;
    let mut w_acc = 0.0;
    let mut windows = 0usize;
    let mut detours = 0usize;
    let mut regrets = 0usize;
    let mut gains: Vec<(f64, f64)> = Vec::new();

    for rows in per_target.values_mut() {
        rows.sort_by_key(|r| r.window);
        // The controller decides window t from window t−1's stats; the
        // first window runs on BGP.
        let mut current_route = 0usize;
        for (i, row) in rows.iter().enumerate() {
            if row.route_median_ms.len() < 2 {
                continue;
            }
            // Fault-injected campaigns mark lost windows with NaN medians:
            // a window whose BGP route was not measured cannot be scored,
            // and a detour onto an unmeasured route falls back to BGP (a
            // real controller cannot act on a route it has no data for).
            let bgp = row.route_median_ms[0];
            if !bgp.is_finite() {
                continue;
            }
            windows += 1;
            let oracle = row
                .route_median_ms
                .iter()
                .copied()
                .filter(|m| m.is_finite())
                .fold(f64::INFINITY, f64::min);
            let raw = row.route_median_ms[current_route.min(row.route_median_ms.len() - 1)];
            let fabric = if raw.is_finite() { raw } else { bgp };

            bgp_acc += bgp * row.volume;
            fabric_acc += fabric * row.volume;
            oracle_acc += oracle * row.volume;
            w_acc += row.volume;
            gains.push((bgp - fabric, row.volume));
            if current_route != 0 {
                detours += 1;
                if fabric > bgp + 1e-9 {
                    regrets += 1;
                }
            }

            // Decide for the next window from this one's stats.
            let stats: Vec<RouteWindowStats> = row
                .route_median_ms
                .iter()
                .zip(&row.route_util)
                .map(|(&m, &u)| RouteWindowStats {
                    // Unmeasured routes look infinitely slow to the
                    // controller, so it never detours onto one blindly.
                    median_minrtt_ms: if m.is_finite() { m } else { f64::INFINITY },
                    egress_utilization: u,
                })
                .collect();
            current_route = controller.decide(&stats).route_index();
            let _ = i;
        }
    }

    let bgp_mean = bgp_acc / w_acc.max(1e-12);
    let fabric_mean = fabric_acc / w_acc.max(1e-12);
    let oracle_mean = oracle_acc / w_acc.max(1e-12);
    let captured = if bgp_mean - oracle_mean > 1e-12 {
        (bgp_mean - fabric_mean) / (bgp_mean - oracle_mean)
    } else {
        0.0
    };

    FabricResult {
        bgp_mean_ms: bgp_mean,
        fabric_mean_ms: fabric_mean,
        oracle_mean_ms: oracle_mean,
        captured_fraction: captured,
        detour_rate: detours as f64 / windows.max(1) as f64,
        regret_rate: if detours > 0 {
            regrets as f64 / detours as f64
        } else {
            0.0
        },
        median_gain_ms: weighted_quantile(&gains, 0.5).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    fn result() -> FabricResult {
        let s = Scenario::build(ScenarioConfig::facebook(31, Scale::Test));
        run(
            &s,
            &SprayConfig {
                days: 1.0,
                window_stride: 2,
                ..Default::default()
            },
            &EgressController::default(),
        )
    }

    #[test]
    fn ordering_bgp_fabric_oracle() {
        let r = result();
        assert!(r.oracle_mean_ms <= r.fabric_mean_ms + 1e-9);
        // A sane reactive controller should not do *worse* than BGP overall.
        assert!(
            r.fabric_mean_ms <= r.bgp_mean_ms + 0.5,
            "fabric {} vs bgp {}",
            r.fabric_mean_ms,
            r.bgp_mean_ms
        );
    }

    #[test]
    fn gain_is_small_in_absolute_terms() {
        // The paper's thesis: even the oracle's gain is small.
        let r = result();
        assert!(
            r.bgp_mean_ms - r.oracle_mean_ms < 5.0,
            "oracle gain {:.2}ms suspiciously large",
            r.bgp_mean_ms - r.oracle_mean_ms
        );
        assert!(r.median_gain_ms.abs() < 1.0, "median gain {:.2}", r.median_gain_ms);
    }

    #[test]
    fn detours_are_rare_and_mostly_justified() {
        let r = result();
        assert!(r.detour_rate < 0.3, "detour rate {:.2}", r.detour_rate);
        assert!(r.regret_rate < 0.6, "regret rate {:.2}", r.regret_rate);
    }

    #[test]
    fn capacity_only_controller_captures_less() {
        let s = Scenario::build(ScenarioConfig::facebook(31, Scale::Test));
        let cfg = SprayConfig {
            days: 1.0,
            window_stride: 2,
            ..Default::default()
        };
        let perf = run(&s, &cfg, &EgressController::default());
        let cap_only = run(
            &s,
            &cfg,
            &EgressController {
                performance_aware: false,
                ..Default::default()
            },
        );
        assert!(cap_only.captured_fraction <= perf.captured_fraction + 1e-9);
    }

    #[test]
    fn render_works() {
        assert!(result().render().contains("X-FABRIC"));
    }
}
