//! §3.2.2 — "Nature vs. nurture": does anycast perform well because of the
//! infrastructure, or because operators groom routes over time?
//!
//! "CDN operators can manually 'groom' their anycast routing by tweaking
//! their BGP announcements (e.g., prepending to a particular peer at a
//! particular location …). What is the performance of an ungroomed prefix
//! versus a groomed one?"
//!
//! We deploy an *ungroomed* prefix (sloppy initial config: stray prepends
//! and withheld announcements at random sites), then run the operator loop
//! the paper describes: find the clients suffering the worst catchment,
//! clean up the announcement at the site that should serve them, keep the
//! change if measurements improve and revert it otherwise. The output is
//! the penalty-vs-iteration curve — grooming at human timescales.

use crate::world::Scenario;
use bb_bgp::Announcement;
use bb_cdn::AnycastDeployment;
use bb_geo::CityId;
use bb_netsim::path_base_rtt_ms;
use bb_stats::weighted_quantile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashSet;

/// One grooming iteration's (kept) state.
#[derive(Debug, Clone, Serialize)]
pub struct GroomingStep {
    pub iteration: usize,
    /// Weighted median catchment penalty (anycast RTT − ideal), ms.
    pub median_penalty_ms: f64,
    /// Weighted 90th percentile penalty.
    pub p90_penalty_ms: f64,
    /// Fraction of traffic with penalty ≥ 25 ms.
    pub frac_bad: f64,
    /// Site whose announcement was repaired in this iteration (kept
    /// repairs only; `None` for the initial measurement and for iterations
    /// whose trial was reverted).
    pub repaired_site: Option<u32>,
}

impl GroomingStep {
    pub fn render_row(&self) -> String {
        format!(
            "  iter={:<2} median={:>6.1}ms p90={:>7.1}ms bad={:>4.1}% {}",
            self.iteration,
            self.median_penalty_ms,
            self.p90_penalty_ms,
            self.frac_bad * 100.0,
            match self.repaired_site {
                Some(s) => format!("repaired site city#{s}"),
                None => "-".to_string(),
            }
        )
    }
}

/// Aggregate penalty evaluation of one announcement config.
struct Eval {
    mean: f64,
    median: f64,
    p90: f64,
    frac_bad: f64,
    /// Per-site weighted suffering of clients whose desired site this is.
    suffering: Vec<(CityId, f64)>,
}

/// Build a deliberately sloppy announcement: random prepends on some
/// sites' offers, some sites withheld entirely.
pub fn ungroomed_announcement(scenario: &Scenario, seed: u64) -> Announcement {
    let topo = &scenario.topo;
    let provider = &scenario.provider;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ann = Announcement::full(topo, provider.asn);
    for &pop in &provider.pops {
        if rng.gen_bool(0.4) {
            ann.prepend_city(topo, pop, rng.gen_range(2..=4));
        } else if rng.gen_bool(0.25) {
            ann.withhold_city(topo, pop);
        }
    }
    ann
}

/// Run the grooming loop for up to `iterations` trial rounds.
pub fn run(scenario: &Scenario, seed: u64, iterations: usize) -> Vec<GroomingStep> {
    let plan = GroomingPlan::compile(scenario);
    let mut ann = ungroomed_announcement(scenario, seed);
    let mut eval = evaluate_with(scenario, &ann, &plan);
    let mut steps = vec![step_from(0, &eval, None)];
    let mut blacklist: HashSet<CityId> = HashSet::new();

    for iteration in 1..=iterations {
        // Operator picks the site whose would-be clients suffer most.
        let Some(&(site, _)) = eval
            .suffering
            .iter()
            .filter(|(s, suffering)| !blacklist.contains(s) && *suffering > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            break; // nothing left to fix
        };

        // Trial: clean announcement at that site.
        let mut trial = ann.clone();
        for &(_, link) in scenario.topo.adjacency(scenario.provider.asn) {
            if scenario.topo.link(link).city == site {
                trial.offer(link, 0);
            }
        }
        let trial_eval = evaluate_with(scenario, &trial, &plan);
        // Keep only if measurements improve across the board: better mean
        // without regressing the tail. A mean-only criterion can trade a
        // worse p90/bad-fraction for a better average, which is not a
        // repair an operator grooming for tail latency would keep.
        let improves = trial_eval.mean < eval.mean - 1e-9
            && trial_eval.p90 <= eval.p90 + 1e-9
            && trial_eval.frac_bad <= eval.frac_bad + 1e-9;
        if improves {
            ann = trial;
            eval = trial_eval;
            steps.push(step_from(iteration, &eval, Some(site.0)));
        } else {
            // Change didn't help: revert and stop touching this site.
            blacklist.insert(site);
            steps.push(step_from(iteration, &eval, None));
        }
    }
    steps
}

/// Penalty of the plain full announcement (no prepends, nothing
/// withheld), for comparison. Note this is a *baseline*, not an optimum:
/// §3.2.2's point is precisely that operators can groom announcements to
/// beat the plain config, and occasionally a "sloppy" config accidentally
/// outperforms the plain one the same way a deliberate grooming would.
pub fn groomed_baseline(scenario: &Scenario) -> GroomingStep {
    let ann = Announcement::full(&scenario.topo, scenario.provider.asn);
    let eval = evaluate(scenario, &ann);
    step_from(0, &eval, None)
}

fn step_from(iteration: usize, eval: &Eval, repaired_site: Option<u32>) -> GroomingStep {
    GroomingStep {
        iteration,
        median_penalty_ms: eval.median,
        p90_penalty_ms: eval.p90,
        frac_bad: eval.frac_bad,
        repaired_site,
    }
}

/// Announcement-invariant per-prefix context: the desired (nearest) site
/// and the ideal RTT to it depend only on geography, yet the trial loop
/// re-evaluates announcements a dozen times per run. Compile them once.
struct GroomingPlan {
    /// `(desired site, ideal RTT)` per workload prefix, index-aligned.
    per_prefix: Vec<(CityId, f64)>,
}

impl GroomingPlan {
    fn compile(scenario: &Scenario) -> Self {
        let topo = &scenario.topo;
        let provider = &scenario.provider;
        let per_prefix = bb_exec::par_map(&scenario.workload.prefixes, |_, p| {
            let desired = provider.nearest_pop(topo, p.city);
            let ideal = bb_geo::min_rtt_ms(
                topo.atlas
                    .city(desired)
                    .location
                    .distance_km(&topo.atlas.city(p.city).location),
            ) + bb_netsim::rtt::ACCESS_BASE_MS;
            (desired, ideal)
        });
        Self { per_prefix }
    }
}

fn evaluate(scenario: &Scenario, ann: &Announcement) -> Eval {
    evaluate_with(scenario, ann, &GroomingPlan::compile(scenario))
}

fn evaluate_with(scenario: &Scenario, ann: &Announcement, plan: &GroomingPlan) -> Eval {
    let topo = &scenario.topo;
    let provider = &scenario.provider;
    let sites = provider.pops.clone();
    let dep = AnycastDeployment::deploy_with(topo, provider, &sites, ann.clone());

    // Serve every prefix in parallel (in-order results), then aggregate
    // sequentially in prefix order so sums and tie-breaks are stable.
    let penalties: Vec<f64> = bb_exec::par_map(&scenario.workload.prefixes, |pi, p| {
        let (_, ideal) = plan.per_prefix[pi];
        match dep.serve(topo, provider, p.asn, p.city) {
            Some(svc) => {
                let rtt = path_base_rtt_ms(topo, &svc.path) + 2.0 * svc.wan_extra_ms;
                (rtt - ideal).max(0.0)
            }
            // Unserved under a withheld config: maximal penalty.
            None => 200.0,
        }
    });

    let mut points: Vec<(f64, f64)> = Vec::new();
    // BTreeMap: deterministic order so the operator's pick is stable when
    // two sites tie on suffering.
    let mut suffering: std::collections::BTreeMap<CityId, f64> = Default::default();
    for (pi, p) in scenario.workload.prefixes.iter().enumerate() {
        let (desired, _) = plan.per_prefix[pi];
        let pen = penalties[pi];
        points.push((pen, p.weight));
        if pen >= 5.0 {
            *suffering.entry(desired).or_insert(0.0) += pen * p.weight;
        }
    }

    let total: f64 = points.iter().map(|&(_, w)| w).sum();
    let mean = points.iter().map(|&(v, w)| v * w).sum::<f64>() / total.max(1e-12);
    let bad: f64 = points
        .iter()
        .filter(|&&(v, _)| v >= 25.0)
        .map(|&(_, w)| w)
        .sum();
    Eval {
        mean,
        median: weighted_quantile(&points, 0.5).unwrap_or(0.0),
        p90: weighted_quantile(&points, 0.9).unwrap_or(0.0),
        frac_bad: bad / total.max(1e-12),
        suffering: suffering.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig::microsoft(13, Scale::Test))
    }

    #[test]
    fn grooming_reduces_penalty_monotonically() {
        let s = scenario();
        let steps = run(&s, 42, 10);
        assert!(steps.len() >= 2, "loop must run");
        for w in steps.windows(2) {
            assert!(
                w[1].p90_penalty_ms <= w[0].p90_penalty_ms + 1e-9
                    || w[1].repaired_site.is_none(),
                "kept repairs must not regress p90"
            );
        }
        let first = &steps[0];
        let last = steps.last().unwrap();
        assert!(last.p90_penalty_ms <= first.p90_penalty_ms + 1e-9);
        assert!(last.frac_bad <= first.frac_bad + 1e-9);
    }

    #[test]
    fn some_repair_is_kept_on_a_sloppy_config() {
        let s = scenario();
        // Seed chosen so the initial sloppiness is actually repairable (a
        // sloppy config can happen to be harmless, in which case the
        // operator loop correctly keeps nothing).
        let steps = run(&s, 42, 10);
        assert!(
            steps.iter().any(|st| st.repaired_site.is_some()),
            "grooming must find at least one useful repair"
        );
    }

    #[test]
    fn plain_baseline_beats_a_clearly_sloppy_start() {
        let s = scenario();
        // Seed 42's sloppy config withholds/prepends harmfully.
        let ungroomed = &run(&s, 42, 0)[0];
        let plain = groomed_baseline(&s);
        assert!(
            plain.median_penalty_ms <= ungroomed.median_penalty_ms + 1e-9,
            "plain {} vs ungroomed {}",
            plain.median_penalty_ms,
            ungroomed.median_penalty_ms
        );
        assert!(plain.p90_penalty_ms <= ungroomed.p90_penalty_ms + 1e-9);
    }

    #[test]
    fn announcement_tweaks_move_catchments_and_repair_is_exact() {
        // Directed nurture experiment: prepend heavily at the busiest site
        // and observe that catchments (and the penalty metric) actually
        // move — in either direction: a prepend can *help* by steering
        // clients to better sites, which is exactly the §3.2.2 grooming
        // lever. Undoing the tweak must restore plain-announcement quality
        // bit-for-bit (the model has no hysteresis).
        let s = scenario();
        let plain = groomed_baseline(&s);
        let mut per_city: std::collections::BTreeMap<CityId, usize> = Default::default();
        for &(_, l) in s.topo.adjacency(s.provider.asn) {
            *per_city.entry(s.topo.link(l).city).or_insert(0) += 1;
        }
        let (&busy, _) = per_city.iter().max_by_key(|&(_, &n)| n).unwrap();

        let mut ann = Announcement::full(&s.topo, s.provider.asn);
        ann.prepend_city(&s.topo, busy, 6);
        let poisoned = evaluate(&s, &ann);
        assert!(
            (poisoned.mean - plain.median_penalty_ms).abs() > 1e-12
                || poisoned.p90 != plain.p90_penalty_ms,
            "a heavy prepend at the busiest site must change catchments"
        );

        let mut repaired = ann.clone();
        for &(_, l) in s.topo.adjacency(s.provider.asn) {
            if s.topo.link(l).city == busy {
                repaired.offer(l, 0);
            }
        }
        let fixed = evaluate(&s, &repaired);
        assert!(
            (fixed.p90 - plain.p90_penalty_ms).abs() < 1e-9,
            "full repair restores plain quality: {} vs {}",
            fixed.p90,
            plain.p90_penalty_ms
        );
        assert!((fixed.median - plain.median_penalty_ms).abs() < 1e-9);
    }

    #[test]
    fn ungroomed_announcement_is_actually_sloppy() {
        let s = scenario();
        let full = Announcement::full(&s.topo, s.provider.asn);
        let sloppy = ungroomed_announcement(&s, 99);
        let sloppy_plain = sloppy.offers().filter(|&(_, p)| p == 0).count();
        assert!(
            sloppy.len() < full.len() || sloppy_plain < full.len(),
            "sloppy config must withhold or prepend somewhere"
        );
    }

    #[test]
    fn render_rows() {
        let s = scenario();
        let steps = run(&s, 99, 2);
        assert!(steps[0].render_row().contains("iter=0"));
    }
}
