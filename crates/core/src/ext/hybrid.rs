//! §4 — "Performance-aware routing or hybrid approaches may be necessary
//! to claim this 'lost' performance … understanding how best to design
//! hybrid approaches with the benefits of both anycast and DNS
//! redirection" (§4, citing the anycast-CDN study's own hybrid proposal).
//!
//! Four serving schemes, evaluated on the same held-out beacon rounds:
//!
//! * **anycast** — hand every client the anycast address;
//! * **dns** — hand every client its LDNS-predicted best (Fig 4's scheme);
//! * **hybrid** — redirect a client to unicast only when its predicted
//!   gain clears a confidence margin; otherwise anycast (gated per prefix,
//!   i.e. an ECS-style hybrid — per-resolver gating would inherit Fig 4's
//!   aggregation error). Anycast's resilience is kept for everyone the
//!   prediction can't clearly help;
//! * **oracle** — per-measurement best option (the Fig 3 upper bound).

use crate::study_anycast;
use crate::world::Scenario;
use bb_measure::{run_beacons, BeaconConfig};
use bb_measure::beacon::build_unicast_deployments;
use bb_cdn::dns::TrainingSample;
use bb_cdn::{AnycastDeployment, DnsRedirector, SiteChoice};
use bb_stats::weighted_quantile;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// Per-scheme latency summary over the evaluation rounds.
#[derive(Debug, Clone, Serialize)]
pub struct SchemeStats {
    pub name: &'static str,
    /// Weighted median RTT, ms.
    pub median_ms: f64,
    /// Weighted 95th percentile RTT, ms.
    pub p95_ms: f64,
    /// Fraction of clients steered off anycast.
    pub redirected: f64,
}

impl SchemeStats {
    pub fn render_row(&self) -> String {
        format!(
            "  {:<8} median={:>6.1}ms p95={:>7.1}ms redirected={:>5.1}%",
            self.name,
            self.median_ms,
            self.p95_ms,
            self.redirected * 100.0
        )
    }
}

/// Run the comparison. `margin_ms` is the hybrid's confidence threshold.
pub fn run(scenario: &Scenario, beacon_cfg: &BeaconConfig, margin_ms: f64) -> Vec<SchemeStats> {
    let sites = scenario.provider.pops.clone();
    let anycast = AnycastDeployment::deploy(&scenario.topo, &scenario.provider, &sites);
    let unicast = build_unicast_deployments(&scenario.topo, &scenario.provider, &sites);
    let measurements = run_beacons(
        &scenario.topo,
        &scenario.provider,
        &anycast,
        &unicast,
        &scenario.workload,
        &scenario.congestion,
        scenario.fault_plane(),
        beacon_cfg,
    );
    // Fault-injected campaigns mark lost probes with NaN; only complete
    // measurements can train or score a scheme.
    let measurements: Vec<_> = measurements
        .into_iter()
        .filter(|m| m.is_complete())
        .collect();

    // Same train/test split as the Fig 4 analysis (even/odd rounds).
    let mut round_times: Vec<u64> = measurements
        .iter()
        .map(|m| m.time.minutes().to_bits())
        .collect();
    round_times.sort_unstable();
    round_times.dedup();
    let round_of = |m: &bb_measure::BeaconMeasurement| {
        round_times.binary_search(&m.time.minutes().to_bits()).unwrap()
    };
    let (train, test): (Vec<_>, Vec<_>) = measurements.iter().partition(|m| round_of(m) % 2 == 0);

    // Train per-prefix medians. BTreeMaps keep sample order hash-free.
    let mut per_prefix: BTreeMap<bb_workload::PrefixId, Vec<&bb_measure::BeaconMeasurement>> =
        BTreeMap::new();
    for m in &train {
        per_prefix.entry(m.prefix).or_default().push(m);
    }
    let samples: Vec<TrainingSample> = per_prefix
        .iter()
        .map(|(&prefix, ms)| {
            let med = |mut v: Vec<f64>| bb_stats::quantile_select(&mut v, 0.5);
            let mut per_site: BTreeMap<bb_geo::CityId, Vec<f64>> = BTreeMap::new();
            for m in ms {
                for &(s, r) in &m.unicast_rtt_ms {
                    // A complete measurement can still have individual
                    // unicast probes lost to the fault plane (NaN).
                    if r.is_finite() {
                        per_site.entry(s).or_default().push(r);
                    }
                }
            }
            TrainingSample {
                prefix,
                weight: ms[0].weight,
                anycast_rtt_ms: med(ms.iter().map(|m| m.anycast_rtt_ms).collect()),
                unicast_rtt_ms: per_site.into_iter().map(|(s, v)| (s, med(v))).collect(),
            }
        })
        .collect();
    let redirector = DnsRedirector::train(&scenario.workload, &samples);

    // The hybrid uses the same training data but only redirects a resolver
    // when the predicted gain clears the margin. Implemented by
    // re-deriving per-prefix predicted gains from the training samples.
    let predicted_gain: HashMap<bb_workload::PrefixId, (SiteChoice, f64)> = samples
        .iter()
        .map(|s| {
            let mut best = (SiteChoice::Anycast, s.anycast_rtt_ms);
            for &(site, rtt) in &s.unicast_rtt_ms {
                if rtt < best.1 {
                    best = (SiteChoice::Unicast(site), rtt);
                }
            }
            (s.prefix, (best.0, s.anycast_rtt_ms - best.1))
        })
        .collect();

    // Evaluate all schemes per test measurement.
    let mut points: HashMap<&'static str, Vec<(f64, f64)>> = HashMap::new();
    let mut redirected: HashMap<&'static str, f64> = HashMap::new();
    let mut total_w = 0.0;

    for m in &test {
        let w = m.weight;
        total_w += w;
        let rtt_of = |choice: SiteChoice| -> f64 {
            match choice {
                SiteChoice::Anycast => m.anycast_rtt_ms,
                SiteChoice::Unicast(site) => m
                    .unicast_rtt_ms
                    .iter()
                    .find(|&&(s, r)| s == site && r.is_finite())
                    .map(|&(_, r)| r)
                    .unwrap_or_else(|| {
                        let client_city = scenario.workload.prefix(m.prefix).city;
                        m.anycast_rtt_ms
                            + bb_geo::min_rtt_ms(
                                scenario
                                    .topo
                                    .atlas
                                    .city(site)
                                    .location
                                    .distance_km(&scenario.topo.atlas.city(client_city).location),
                            )
                    }),
            }
        };

        // anycast
        points.entry("anycast").or_default().push((m.anycast_rtt_ms, w));

        // dns: resolver-mix expectation (Fig 4 semantics)
        let mut dns_rtt = 0.0;
        let mut dns_redir = 0.0;
        for &(choice, frac) in &redirector.choices_for(&scenario.workload, m.prefix) {
            dns_rtt += frac * rtt_of(choice);
            if !matches!(choice, SiteChoice::Anycast) {
                dns_redir += frac;
            }
        }
        points.entry("dns").or_default().push((dns_rtt, w));
        *redirected.entry("dns").or_insert(0.0) += w * dns_redir;

        // hybrid: redirect only with a clear predicted margin
        let (choice, gain) = predicted_gain
            .get(&m.prefix)
            .copied()
            .unwrap_or((SiteChoice::Anycast, 0.0));
        let hybrid_choice = if gain >= margin_ms { choice } else { SiteChoice::Anycast };
        points
            .entry("hybrid")
            .or_default()
            .push((rtt_of(hybrid_choice), w));
        if !matches!(hybrid_choice, SiteChoice::Anycast) {
            *redirected.entry("hybrid").or_insert(0.0) += w;
        }

        // oracle: per-measurement best
        let oracle = m.anycast_rtt_ms.min(m.best_unicast_ms());
        points.entry("oracle").or_default().push((oracle, w));
        if m.best_unicast_ms() < m.anycast_rtt_ms {
            *redirected.entry("oracle").or_insert(0.0) += w;
        }
    }

    ["anycast", "dns", "hybrid", "oracle"]
        .iter()
        .map(|&name| {
            let pts = &points[name];
            SchemeStats {
                name,
                median_ms: weighted_quantile(pts, 0.5).unwrap(),
                p95_ms: weighted_quantile(pts, 0.95).unwrap(),
                redirected: redirected.get(name).copied().unwrap_or(0.0) / total_w.max(1e-12),
            }
        })
        .collect()
}

/// Convenience: run with the Fig 4 analysis reused (for tests comparing
/// against the study's own numbers).
pub fn run_default(scenario: &Scenario) -> Vec<SchemeStats> {
    let _ = study_anycast::run; // same world, same campaign defaults
    run(
        scenario,
        &BeaconConfig {
            rounds: 6,
            ..Default::default()
        },
        10.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    fn schemes() -> Vec<SchemeStats> {
        let s = Scenario::build(ScenarioConfig::microsoft(29, Scale::Test));
        run_default(&s)
    }

    fn get<'a>(v: &'a [SchemeStats], name: &str) -> &'a SchemeStats {
        v.iter().find(|s| s.name == name).unwrap()
    }

    #[test]
    fn oracle_is_the_lower_bound() {
        let v = schemes();
        let oracle = get(&v, "oracle");
        for s in &v {
            assert!(
                oracle.median_ms <= s.median_ms + 1e-9,
                "oracle beaten by {}: {} vs {}",
                s.name,
                oracle.median_ms,
                s.median_ms
            );
        }
    }

    #[test]
    fn hybrid_redirects_fewer_than_dns_style_oracle() {
        let v = schemes();
        assert!(
            get(&v, "hybrid").redirected <= get(&v, "oracle").redirected + 1e-9,
            "hybrid must be conservative"
        );
    }

    #[test]
    fn hybrid_tail_not_worse_than_pure_dns() {
        // The point of the margin: keep anycast where prediction is shaky,
        // so the p95 must not regress vs the always-redirect scheme.
        let v = schemes();
        assert!(
            get(&v, "hybrid").p95_ms <= get(&v, "dns").p95_ms + 2.0,
            "hybrid p95 {} vs dns p95 {}",
            get(&v, "hybrid").p95_ms,
            get(&v, "dns").p95_ms
        );
    }

    #[test]
    fn all_schemes_produce_sane_latencies() {
        for s in schemes() {
            assert!(s.median_ms > 0.0 && s.median_ms < 500.0, "{s:?}");
            assert!(s.p95_ms >= s.median_ms);
            assert!((0.0..=1.0).contains(&s.redirected));
        }
    }
}
