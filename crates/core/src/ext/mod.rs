//! Extension studies: the experiments the paper's open questions call for.
//!
//! Each module turns one §3/§4 "open question" or future-work item into a
//! runnable experiment on the same simulated world.

pub mod availability;
pub mod ecs;
pub mod fabric;
pub mod grooming;
pub mod hybrid;
pub mod peering_reduction;
pub mod single_network;
pub mod site_count;
pub mod split_tcp;
