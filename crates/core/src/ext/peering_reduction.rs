//! §3.1.3 — "What is the impact of a reduced peering footprint?"
//!
//! "If less preferred paths often perform as well as more preferred ones, a
//! content provider may be able to drastically reduce its number of peers
//! without impacting latency. … A study in emulation would need to properly
//! account for the reduced peering capacity and accompanying increased
//! likelihood of congestion as the number of route options is reduced."
//!
//! The sweep raises the PNI eligibility threshold step by step (fewer and
//! fewer eyeballs keep their private interconnects) and, per step, reports
//! latency impact *and* the capacity concentration the paper warns about:
//! the traffic that used to ride many PNIs now converges on fewer egress
//! links.

use crate::world::{Scenario, ScenarioConfig};
use bb_measure::spray::build_targets;
use bb_netsim::path_base_rtt_ms;
use bb_stats::weighted_quantile;
use serde::Serialize;
use std::collections::HashMap;

/// Assumed provider-wide egress volume for capacity accounting, Gbps.
pub const TOTAL_EGRESS_GBPS: f64 = 2000.0;

/// One step of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct PeeringStep {
    /// PNI threshold applied (eyeball national share required for a PNI).
    pub pni_min_share: f64,
    /// Number of private interconnects that exist at this step.
    pub pni_links: usize,
    /// Weighted median of preferred-route base RTT across prefixes, ms.
    pub median_rtt_ms: f64,
    /// Weighted 90th percentile.
    pub p90_rtt_ms: f64,
    /// Fraction of traffic whose preferred route egresses a PNI.
    pub traffic_on_pni: f64,
    /// Fraction whose preferred route egresses public peering.
    pub traffic_on_public: f64,
    /// Fraction whose preferred route egresses paid transit.
    pub traffic_on_transit: f64,
    /// Egress links whose implied demand exceeds capacity (overload risk).
    pub overloaded_links: usize,
    /// Peak utilization implied by the demand model.
    pub peak_link_utilization: f64,
}

impl PeeringStep {
    pub fn render_row(&self) -> String {
        format!(
            "  pni>={:<4.2} links={:<4} medRTT={:>6.1}ms p90={:>6.1}ms pni/public/transit={:>4.1}/{:>4.1}/{:>4.1}% overloaded={:<3} peak={:.2}",
            self.pni_min_share,
            self.pni_links,
            self.median_rtt_ms,
            self.p90_rtt_ms,
            self.traffic_on_pni * 100.0,
            self.traffic_on_public * 100.0,
            self.traffic_on_transit * 100.0,
            self.overloaded_links,
            self.peak_link_utilization
        )
    }
}

/// Run the sweep. `thresholds` are applied as `pni_min_share` (1.1 ⇒ no
/// PNIs at all). Each step builds an independent world, so the steps run
/// concurrently on the shared worker pool; results come back in threshold
/// order regardless of worker count.
pub fn run(base: &ScenarioConfig, thresholds: &[f64]) -> Vec<PeeringStep> {
    bb_exec::par_map(thresholds, |_, &th| {
        let mut cfg = base.clone();
        cfg.provider.pni_min_share = th;
        let scenario = Scenario::build(cfg);
        evaluate(&scenario, th)
    })
}

fn evaluate(scenario: &Scenario, threshold: f64) -> PeeringStep {
    let topo = &scenario.topo;
    let provider = &scenario.provider;
    let targets = build_targets(topo, provider, &scenario.workload, 3);

    let mut rtt_points = Vec::new();
    let mut pni_weight = 0.0;
    let mut public_weight = 0.0;
    let mut transit_weight = 0.0;
    let mut total_weight = 0.0;
    let mut link_demand: HashMap<bb_topology::InterconnectId, f64> = HashMap::new();

    for t in &targets {
        let p = scenario.workload.prefix(t.prefix);
        let preferred = &t.routes[0];
        let rtt = path_base_rtt_ms(topo, &preferred.path);
        rtt_points.push((rtt, p.weight));
        total_weight += p.weight;
        match preferred.class {
            bb_bgp::ProviderRouteClass::PrivatePeer => pni_weight += p.weight,
            bb_bgp::ProviderRouteClass::PublicPeer => public_weight += p.weight,
            bb_bgp::ProviderRouteClass::Transit => transit_weight += p.weight,
        }
        *link_demand.entry(preferred.egress_link).or_insert(0.0) +=
            p.weight * TOTAL_EGRESS_GBPS;
    }

    let mut overloaded = 0;
    let mut peak_util: f64 = 0.0;
    for (&link, &demand) in &link_demand {
        let cap = topo.link(link).capacity_gbps;
        let util = demand / cap;
        peak_util = peak_util.max(util);
        if util > 1.0 {
            overloaded += 1;
        }
    }

    let pni_links = topo
        .links()
        .iter()
        .filter(|l| {
            (l.a == provider.asn || l.b == provider.asn)
                && l.kind == bb_topology::LinkKind::PrivatePeering
        })
        .count();

    PeeringStep {
        pni_min_share: threshold,
        pni_links,
        median_rtt_ms: weighted_quantile(&rtt_points, 0.5).unwrap_or(f64::NAN),
        p90_rtt_ms: weighted_quantile(&rtt_points, 0.9).unwrap_or(f64::NAN),
        traffic_on_pni: pni_weight / total_weight.max(1e-12),
        traffic_on_public: public_weight / total_weight.max(1e-12),
        traffic_on_transit: transit_weight / total_weight.max(1e-12),
        overloaded_links: overloaded,
        peak_link_utilization: peak_util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Scale;

    #[test]
    fn fewer_pnis_more_transit_similar_latency() {
        let base = ScenarioConfig::facebook(11, Scale::Test);
        let steps = run(&base, &[0.1, 0.5, 1.1]);
        assert_eq!(steps.len(), 3);
        // PNI count decreases with the threshold.
        assert!(steps[0].pni_links > steps[2].pni_links);
        assert_eq!(steps[2].pni_links, 0, "threshold 1.1 removes all PNIs");
        // Traffic shifts off PNIs onto the remaining classes.
        assert!(steps[0].traffic_on_pni > 0.2, "PNIs must matter at baseline");
        assert_eq!(steps[2].traffic_on_pni, 0.0);
        assert!(
            steps[2].traffic_on_public + steps[2].traffic_on_transit
                > steps[0].traffic_on_public + steps[0].traffic_on_transit
        );
        // The paper's §3.1.2 conjecture: latency changes little.
        let delta = steps[2].median_rtt_ms - steps[0].median_rtt_ms;
        assert!(
            delta.abs() < 15.0,
            "median RTT moved {delta}ms when removing all PNIs"
        );
    }

    #[test]
    fn capacity_concentration_grows() {
        let base = ScenarioConfig::facebook(11, Scale::Test);
        let steps = run(&base, &[0.1, 1.1]);
        assert!(
            steps[1].peak_link_utilization >= steps[0].peak_link_utilization * 0.8,
            "peak util {:.2} -> {:.2}",
            steps[0].peak_link_utilization,
            steps[1].peak_link_utilization
        );
    }

    #[test]
    fn render_row_formats() {
        let base = ScenarioConfig::facebook(11, Scale::Test);
        let steps = run(&base, &[0.1]);
        assert!(steps[0].render_row().contains("medRTT"));
    }
}
