//! §3.3.2 — "Do Internet paths perform best when they spend a larger
//! fraction of their journey on a single network?"
//!
//! For every Standard-tier vantage-point path we compute the fraction of
//! the wire distance carried by the single biggest AS on the path, and the
//! path's latency inflation over the great-circle floor. The paper's
//! hypothesis predicts inflation falls as the single-network fraction
//! rises — "BGP may perform best when it selects routes that spend much of
//! their journey on a single large provider".

use crate::world::Scenario;
use bb_cdn::{Tier, TierDeployment};
use bb_geo::CityId;
use bb_measure::select_vantage_points;
use bb_netsim::path_base_rtt_ms;
use bb_stats::weighted_quantile;
use serde::Serialize;

/// One bucket of the analysis.
#[derive(Debug, Clone, Serialize)]
pub struct SingleNetworkBucket {
    /// Single-network distance share range covered by this bucket.
    pub share_lo: f64,
    pub share_hi: f64,
    /// Vantage points falling in the bucket.
    pub vantage_points: usize,
    /// Weighted median latency inflation (path RTT / great-circle floor).
    pub median_inflation: f64,
}

impl SingleNetworkBucket {
    pub fn render_row(&self) -> String {
        format!(
            "  single-AS share {:.2}-{:.2}: n={:<4} median inflation {:.2}x",
            self.share_lo, self.share_hi, self.vantage_points, self.median_inflation
        )
    }
}

/// Run the analysis for the Standard tier toward `datacenter` (defaults to
/// the US main metro when `None`).
pub fn run(scenario: &Scenario, datacenter: Option<CityId>) -> Vec<SingleNetworkBucket> {
    let topo = &scenario.topo;
    let provider = &scenario.provider;
    let dc = datacenter.unwrap_or_else(|| {
        let (us, _) = bb_geo::country::by_code("US").expect("US exists");
        let m = topo.atlas.main_metro(us).id;
        if provider.has_pop(m) {
            m
        } else {
            provider.pops[0]
        }
    });
    let standard = TierDeployment::deploy(topo, provider, dc, Tier::Standard);
    let vps = select_vantage_points(topo, scenario.config.seed ^ 0x_99);

    // (share, inflation, weight) per VP.
    let mut samples = Vec::new();
    for vp in &vps {
        let Some(tp) = standard.reach(topo, provider, vp.asn, vp.city) else {
            continue;
        };
        let total_km = tp.path.distance_km(topo);
        if total_km < 500.0 {
            continue; // local paths have noisy inflation ratios
        }
        let (_, max_as_km) = tp.path.max_single_as_km(topo);
        let share = (max_as_km / total_km).clamp(0.0, 1.0);

        let gc = topo
            .atlas
            .city(vp.city)
            .location
            .distance_km(&topo.atlas.city(dc).location);
        if gc < 500.0 {
            continue;
        }
        let rtt = path_base_rtt_ms(topo, &tp.path) + 2.0 * tp.wan_ms;
        let floor = bb_geo::min_rtt_ms(gc);
        samples.push((share, rtt / floor, vp.users_m.max(1e-6)));
    }

    const EDGES: [(f64, f64); 4] = [(0.0, 0.5), (0.5, 0.75), (0.75, 0.9), (0.9, 1.01)];
    EDGES
        .iter()
        .map(|&(lo, hi)| {
            let pts: Vec<(f64, f64)> = samples
                .iter()
                .filter(|&&(s, _, _)| s >= lo && s < hi)
                .map(|&(_, infl, w)| (infl, w))
                .collect();
            SingleNetworkBucket {
                share_lo: lo,
                share_hi: hi.min(1.0),
                vantage_points: pts.len(),
                median_inflation: weighted_quantile(&pts, 0.5).unwrap_or(f64::NAN),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    #[test]
    fn buckets_cover_vps_and_trend_holds() {
        let s = Scenario::build(ScenarioConfig::google(17, Scale::Test));
        let buckets = run(&s, None);
        assert_eq!(buckets.len(), 4);
        let populated: Vec<&SingleNetworkBucket> =
            buckets.iter().filter(|b| b.vantage_points > 5).collect();
        assert!(populated.len() >= 2, "need at least two populated buckets");
        // Hypothesis: the most single-network bucket has lower inflation
        // than the least.
        let lo = populated.first().unwrap();
        let hi = populated.last().unwrap();
        assert!(
            hi.median_inflation <= lo.median_inflation + 0.5,
            "inflation {:.2} (share {:.2}+) vs {:.2} (share {:.2}+)",
            hi.median_inflation,
            hi.share_lo,
            lo.median_inflation,
            lo.share_lo
        );
    }

    #[test]
    fn inflations_are_at_least_one() {
        let s = Scenario::build(ScenarioConfig::google(17, Scale::Test));
        for b in run(&s, None) {
            if b.vantage_points > 0 {
                assert!(b.median_inflation >= 1.0, "{}", b.median_inflation);
            }
        }
    }
}
