//! §3.2.2 — "How quickly does benefit diminish when adding PoPs?"
//!
//! The anycast-site-count sweep (in the spirit of the paper's citation of
//! "Anycast latency: How many sites are enough?"): deploy anycast from the
//! top-k sites for growing k and measure client latency. Also reports the
//! misdirection rate — "As PoPs are added, the chance of anycast picking a
//! suboptimal one increases, but the number of reasonably performing ones
//! increases."

use crate::world::Scenario;
use bb_cdn::AnycastDeployment;
use bb_geo::CityId;
use bb_netsim::path_base_rtt_ms;
use bb_stats::weighted_quantile;
use serde::Serialize;

/// One point of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SiteCountPoint {
    pub sites: usize,
    /// Weighted median client RTT, ms.
    pub median_rtt_ms: f64,
    /// Weighted 90th percentile client RTT.
    pub p90_rtt_ms: f64,
    /// Traffic fraction not served by its nearest deployed site.
    pub misdirected: f64,
}

impl SiteCountPoint {
    pub fn render_row(&self) -> String {
        format!(
            "  sites={:<3} medRTT={:>6.1}ms p90={:>6.1}ms misdirected={:>4.1}%",
            self.sites,
            self.median_rtt_ms,
            self.p90_rtt_ms,
            self.misdirected * 100.0
        )
    }
}

/// Pick the top-k sites by covered users (greedy by country size).
pub fn top_sites(scenario: &Scenario, k: usize) -> Vec<CityId> {
    let mut pops: Vec<(CityId, f64)> = scenario
        .provider
        .pops
        .iter()
        .map(|&c| (c, scenario.topo.atlas.city_users_m(c)))
        .collect();
    pops.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    pops.into_iter().take(k).map(|(c, _)| c).collect()
}

/// Run the sweep over the given site counts (counts beyond the PoP total
/// are clamped).
pub fn run(scenario: &Scenario, counts: &[usize]) -> Vec<SiteCountPoint> {
    counts
        .iter()
        .map(|&k| {
            let k = k.min(scenario.provider.pops.len()).max(1);
            let sites = top_sites(scenario, k);
            evaluate(scenario, &sites)
        })
        .collect()
}

fn evaluate(scenario: &Scenario, sites: &[CityId]) -> SiteCountPoint {
    let topo = &scenario.topo;
    let provider = &scenario.provider;
    let dep = AnycastDeployment::deploy(topo, provider, sites);

    let mut rtt_points = Vec::new();
    let mut misdirected = 0.0;
    let mut total = 0.0;
    for p in &scenario.workload.prefixes {
        let Some(svc) = dep.serve(topo, provider, p.asn, p.city) else {
            continue;
        };
        let rtt = path_base_rtt_ms(topo, &svc.path) + 2.0 * svc.wan_extra_ms;
        rtt_points.push((rtt, p.weight));
        total += p.weight;

        let client = topo.atlas.city(p.city).location;
        let nearest = sites
            .iter()
            .min_by(|&&a, &&b| {
                topo.atlas
                    .city(a)
                    .location
                    .distance_km(&client)
                    .total_cmp(&topo.atlas.city(b).location.distance_km(&client))
            })
            .copied()
            .unwrap();
        if svc.front_end != nearest {
            misdirected += p.weight;
        }
    }

    SiteCountPoint {
        sites: sites.len(),
        median_rtt_ms: weighted_quantile(&rtt_points, 0.5).unwrap_or(f64::NAN),
        p90_rtt_ms: weighted_quantile(&rtt_points, 0.9).unwrap_or(f64::NAN),
        misdirected: misdirected / total.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    #[test]
    fn more_sites_lower_latency_with_diminishing_returns() {
        let s = Scenario::build(ScenarioConfig::microsoft(15, Scale::Test));
        let pts = run(&s, &[1, 4, 100]);
        assert_eq!(pts.len(), 3);
        // Latency improves from 1 site to 4.
        assert!(
            pts[1].median_rtt_ms < pts[0].median_rtt_ms,
            "{} -> {}",
            pts[0].median_rtt_ms,
            pts[1].median_rtt_ms
        );
        // Diminishing returns: the 4→all improvement is smaller than the
        // 1→4 improvement.
        let first_gain = pts[0].median_rtt_ms - pts[1].median_rtt_ms;
        let later_gain = pts[1].median_rtt_ms - pts[2].median_rtt_ms;
        assert!(
            later_gain <= first_gain + 1.0,
            "gains {first_gain} then {later_gain}"
        );
    }

    #[test]
    fn single_site_has_zero_misdirection() {
        let s = Scenario::build(ScenarioConfig::microsoft(15, Scale::Test));
        let pts = run(&s, &[1]);
        assert_eq!(pts[0].misdirected, 0.0);
    }

    #[test]
    fn site_counts_clamped_to_pops() {
        let s = Scenario::build(ScenarioConfig::microsoft(15, Scale::Test));
        let pts = run(&s, &[10_000]);
        assert_eq!(pts[0].sites, s.provider.pops.len());
    }
}
