//! §4 — "splitting TCP connections provides latency benefits over long
//! distances; an interesting area for study is how this benefit varies if
//! the backend of the split connection is over a private WAN versus the
//! public Internet."
//!
//! Model: a client fetches an object from an origin data center. Three
//! delivery modes:
//!
//! * **direct** — one end-to-end TCP connection (handshake + slow-start,
//!   every round trip pays the full path RTT);
//! * **split/WAN** — TCP terminates at the nearest edge PoP (short
//!   handshake and slow-start RTTs) with a pre-warmed backend connection
//!   over the private WAN;
//! * **split/public** — same split, but the backend rides the public
//!   Internet path from the PoP's metro to the origin.
//!
//! Time-to-last-byte for a small object is dominated by round trips, which
//! is where the split wins; the backend choice then decides the residual
//! one-way transit time.

use crate::world::Scenario;
use bb_cdn::{Tier, TierDeployment};
use bb_geo::CityId;
use bb_netsim::path_base_rtt_ms;
use bb_stats::weighted_quantile;
use serde::Serialize;

/// TCP initial congestion window, segments (RFC 6928).
pub const INIT_CWND: f64 = 10.0;
/// Segment size, bytes.
pub const MSS: f64 = 1460.0;

/// Slow-start round trips needed to move `bytes`.
pub fn transfer_rounds(bytes: f64) -> f64 {
    // cwnd doubles each RTT: INIT_CWND * (2^r - 1) * MSS >= bytes.
    let segs = (bytes / MSS).max(1.0);
    ((segs / INIT_CWND) + 1.0).log2().ceil().max(1.0)
}

/// Time-to-last-byte for a single connection: 1 RTT handshake plus
/// slow-start rounds.
pub fn direct_ttlb_ms(rtt_ms: f64, bytes: f64) -> f64 {
    rtt_ms + transfer_rounds(bytes) * rtt_ms
}

/// Split connection: client-side handshake and rounds at `front_rtt_ms`,
/// plus one traversal of the (pre-warmed) backend each way.
pub fn split_ttlb_ms(front_rtt_ms: f64, backend_rtt_ms: f64, bytes: f64) -> f64 {
    front_rtt_ms + transfer_rounds(bytes) * front_rtt_ms + backend_rtt_ms
}

/// Study output.
#[derive(Debug, Clone, Serialize)]
pub struct SplitTcpResult {
    pub object_bytes: f64,
    /// Weighted median TTLB per mode, ms.
    pub direct_ms: f64,
    pub split_wan_ms: f64,
    pub split_public_ms: f64,
    /// Weighted median saving of split/WAN over direct.
    pub wan_saving_ms: f64,
    /// Weighted median saving of split/public over direct.
    pub public_saving_ms: f64,
    pub clients: usize,
}

impl SplitTcpResult {
    pub fn render(&self) -> String {
        format!(
            "Split-TCP ({} KB objects, {} clients):\n  \
             direct:        {:>7.1} ms\n  \
             split (WAN):   {:>7.1} ms  (saves {:.1} ms)\n  \
             split (public):{:>7.1} ms  (saves {:.1} ms)\n",
            self.object_bytes / 1024.0,
            self.clients,
            self.direct_ms,
            self.split_wan_ms,
            self.wan_saving_ms,
            self.split_public_ms,
            self.public_saving_ms
        )
    }
}

/// Run the study: all client prefixes fetch from the origin data center.
pub fn run(scenario: &Scenario, object_bytes: f64, datacenter: Option<CityId>) -> SplitTcpResult {
    let topo = &scenario.topo;
    let provider = &scenario.provider;
    let dc = datacenter.unwrap_or_else(|| {
        let (us, _) = bb_geo::country::by_code("US").expect("US exists");
        let m = topo.atlas.main_metro(us).id;
        if provider.has_pop(m) {
            m
        } else {
            provider.pops[0]
        }
    });

    // Client→origin end-to-end (Standard-tier = public Internet to the DC)
    // and client→edge (Premium-tier entry = nearest edge PoP).
    let standard = TierDeployment::deploy(topo, provider, dc, Tier::Standard);
    let premium = TierDeployment::deploy(topo, provider, dc, Tier::Premium);

    let mut direct_pts = Vec::new();
    let mut wan_pts = Vec::new();
    let mut public_pts = Vec::new();
    let mut wan_save = Vec::new();
    let mut public_save = Vec::new();

    for p in &scenario.workload.prefixes {
        let (Some(std_path), Some(prem_path)) = (
            standard.reach(topo, provider, p.asn, p.city),
            premium.reach(topo, provider, p.asn, p.city),
        ) else {
            continue;
        };
        let e2e = path_base_rtt_ms(topo, &std_path.path);
        // Front RTT: client to its Premium entry PoP.
        let front = path_base_rtt_ms(topo, &prem_path.path);
        // Backend WAN RTT: entry PoP to DC over the private WAN.
        let backend_wan = 2.0 * prem_path.wan_ms;
        // Backend public RTT: approximate with the end-to-end public RTT
        // minus the client-side leg (both directions), floored at the
        // great-circle floor between the entry PoP and the origin. Note the
        // WAN backend is NOT always faster — where the WAN build-out
        // detours (the §3.3.2 India case), the public backend wins.
        let entry_floor = bb_geo::min_rtt_ms(
            topo.atlas
                .city(prem_path.entry_city)
                .location
                .distance_km(&topo.atlas.city(dc).location),
        );
        let backend_public = (e2e - front).max(entry_floor);

        let d = direct_ttlb_ms(e2e, object_bytes);
        let sw = split_ttlb_ms(front, backend_wan, object_bytes);
        let sp = split_ttlb_ms(front, backend_public, object_bytes);
        direct_pts.push((d, p.weight));
        wan_pts.push((sw, p.weight));
        public_pts.push((sp, p.weight));
        wan_save.push((d - sw, p.weight));
        public_save.push((d - sp, p.weight));
    }

    SplitTcpResult {
        object_bytes,
        direct_ms: weighted_quantile(&direct_pts, 0.5).unwrap_or(f64::NAN),
        split_wan_ms: weighted_quantile(&wan_pts, 0.5).unwrap_or(f64::NAN),
        split_public_ms: weighted_quantile(&public_pts, 0.5).unwrap_or(f64::NAN),
        wan_saving_ms: weighted_quantile(&wan_save, 0.5).unwrap_or(f64::NAN),
        public_saving_ms: weighted_quantile(&public_save, 0.5).unwrap_or(f64::NAN),
        clients: direct_pts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    #[test]
    fn rounds_grow_with_size() {
        assert_eq!(transfer_rounds(1000.0), 1.0);
        assert!(transfer_rounds(1e6) > transfer_rounds(1e5));
        assert!(transfer_rounds(1e7) > transfer_rounds(1e6));
    }

    #[test]
    fn split_beats_direct_for_multi_round_transfers() {
        // 100 ms e2e, 10 ms front, warm 90 ms backend, 100 KB object.
        let d = direct_ttlb_ms(100.0, 100e3);
        let s = split_ttlb_ms(10.0, 90.0, 100e3);
        assert!(s < d, "split {s} vs direct {d}");
    }

    #[test]
    fn study_shows_split_benefit_and_wan_at_least_as_good() {
        let sc = Scenario::build(ScenarioConfig::google(19, Scale::Test));
        let r = run(&sc, 100e3, None);
        assert!(r.clients > 50);
        assert!(
            r.wan_saving_ms > 0.0,
            "split over WAN must save: {:.1}",
            r.wan_saving_ms
        );
        assert!(
            r.public_saving_ms > 0.0,
            "split over public must save: {:.1}",
            r.public_saving_ms
        );
        // The two backends are comparable in the median (the paper's §4
        // question); neither should dominate by more than the direct RTT.
        assert!(
            (r.split_wan_ms - r.split_public_ms).abs() < r.direct_ms,
            "backends diverge: wan {:.1} public {:.1} direct {:.1}",
            r.split_wan_ms,
            r.split_public_ms,
            r.direct_ms
        );
        assert!(r.render().contains("Split-TCP"));
    }
}
