//! Figure data types and rendering.
//!
//! One struct per paper figure, each carrying both the distribution data
//! and the headline statistics the paper quotes in prose, plus a `render`
//! method producing the ASCII chart the `repro` binary prints.

use bb_stats::render::{render_bar_table, render_ccdfs, render_cdfs};
use bb_stats::{Ccdf, Cdf};
use serde::Serialize;

/// How much of a figure's input survived the measurement fault plane.
///
/// `Default` (`0/0`) means coverage was not tracked — a fault-free run —
/// and renders nothing, so pre-fault output stays byte-identical. A figure
/// built from degraded inputs carries `kept < total` and renders a one-line
/// partial-data annotation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Coverage {
    /// Inputs (windows, beacons, probes) that survived and were used.
    pub kept: u64,
    /// Inputs the campaign attempted.
    pub total: u64,
}

impl Coverage {
    pub fn new(kept: u64, total: u64) -> Self {
        Self { kept, total }
    }

    /// Fraction of inputs kept; `1.0` when untracked.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.kept as f64 / self.total as f64
        }
    }

    /// True when some inputs were lost (tracked and incomplete).
    pub fn is_partial(&self) -> bool {
        self.total > 0 && self.kept < self.total
    }

    /// The render line for partial figures; `None` at full coverage.
    pub fn annotation(&self) -> Option<String> {
        self.is_partial().then(|| {
            format!(
                "  [partial data: {}/{} inputs kept ({:.1}% coverage)]\n",
                self.kept,
                self.total,
                self.fraction() * 100.0
            )
        })
    }
}

/// Figure 1: CDF (by traffic volume) of median MinRTT difference,
/// BGP-preferred − best alternate, with the confidence-interval band.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Point-estimate CDF.
    pub diff: Cdf,
    /// CDFs of the per-group CI bounds (the shaded band).
    pub ci_lower: Cdf,
    pub ci_upper: Cdf,
    /// Traffic fraction where an alternate improves median MinRTT by ≥5 ms
    /// (paper: 2–4%).
    pub frac_improvable_5ms: f64,
    /// Traffic fraction where BGP is within 1 ms of the best alternate or
    /// better (paper: "the vast majority").
    pub frac_bgp_good: f64,
    /// Number of ⟨PoP, prefix⟩ groups in the analysis.
    pub groups: usize,
    /// Fraction of spray windows that survived the fault plane.
    pub coverage: Coverage,
}

impl Fig1 {
    pub fn render(&self) -> String {
        let mut s = render_cdfs(
            "Figure 1: median MinRTT difference [BGP - best alternate] (CDF of traffic)",
            "Median MinRTT Difference (ms); >0 means alternate is better",
            &[
                ("point estimate", &self.diff),
                ("CI lower", &self.ci_lower),
                ("CI upper", &self.ci_upper),
            ],
            (-10.0, 10.0),
        );
        s.push_str(&format!(
            "  groups={}  improvable by >=5ms: {:.1}% of traffic  BGP within 1ms-or-better: {:.1}%\n",
            self.groups,
            self.frac_improvable_5ms * 100.0,
            self.frac_bgp_good * 100.0
        ));
        if let Some(note) = self.coverage.annotation() {
            s.push_str(&note);
        }
        s
    }
}

/// Figure 2: peer vs transit and private vs public peering differences.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Best-peer − best-transit median difference CDF (by traffic).
    pub peer_vs_transit: Option<Cdf>,
    /// Best-private − best-public median difference CDF (by traffic).
    pub private_vs_public: Option<Cdf>,
    /// Traffic fraction where transit is within 2 ms of peering.
    pub frac_transit_close: f64,
    /// Traffic fraction where public peering is within 2 ms of private.
    pub frac_public_close: f64,
    /// Fraction of spray windows that survived the fault plane.
    pub coverage: Coverage,
}

impl Fig2 {
    pub fn render(&self) -> String {
        let mut series: Vec<(&str, &Cdf)> = Vec::new();
        if let Some(c) = &self.peer_vs_transit {
            series.push(("Peering vs Transit", c));
        }
        if let Some(c) = &self.private_vs_public {
            series.push(("Private vs Public", c));
        }
        let mut s = render_cdfs(
            "Figure 2: route-class performance differences (CDF of traffic)",
            "Median Minimum RTT Difference (ms)",
            &series,
            (-10.0, 10.0),
        );
        s.push_str(&format!(
            "  transit within 2ms of peering: {:.1}%   public within 2ms of private: {:.1}%\n",
            self.frac_transit_close * 100.0,
            self.frac_public_close * 100.0
        ));
        if let Some(note) = self.coverage.annotation() {
            s.push_str(&note);
        }
        s
    }
}

/// §3.1.1 episode analysis.
#[derive(Debug, Clone, Serialize)]
pub struct Episodes {
    /// Fraction of degraded windows (preferred route much worse than its
    /// own baseline) where the best alternate degraded too.
    pub degrade_together: f64,
    /// Fraction of windows where BGP's route is degraded vs baseline.
    pub frac_windows_degraded: f64,
    /// Fraction of windows where an alternate beats BGP by ≥5 ms.
    pub frac_windows_improvable: f64,
    /// Among ⟨PoP,prefix⟩ groups whose alternate ever beats BGP by ≥5 ms,
    /// the fraction where it does so in ≥80% of windows ("consistently
    /// better all the time").
    pub persistent_beater_fraction: f64,
}

impl Episodes {
    pub fn render(&self) -> String {
        format!(
            "S3.1.1 episodes: degraded windows: {:.1}%  improvable windows: {:.1}%\n  \
             alternates degrade together with BGP: {:.0}% of degraded windows\n  \
             beating alternates that are persistent: {:.0}%\n",
            self.frac_windows_degraded * 100.0,
            self.frac_windows_improvable * 100.0,
            self.degrade_together * 100.0,
            self.persistent_beater_fraction * 100.0
        )
    }
}

/// Figure 3: CCDF of anycast − best unicast, by region.
#[derive(Debug, Clone)]
pub struct Fig3 {
    pub world: Ccdf,
    pub europe: Option<Ccdf>,
    pub united_states: Option<Ccdf>,
    /// Fraction of requests with anycast within 10 ms of best unicast
    /// (paper: ~70%).
    pub frac_within_10ms: f64,
    /// Fraction of requests where best unicast is ≥100 ms faster
    /// (paper: ~10%).
    pub frac_gt_100ms: f64,
    /// Fraction of beacon measurements that survived the fault plane.
    pub coverage: Coverage,
}

impl Fig3 {
    pub fn render(&self) -> String {
        let mut series: Vec<(&str, &Ccdf)> = vec![("World", &self.world)];
        if let Some(c) = &self.europe {
            series.push(("Europe", c));
        }
        if let Some(c) = &self.united_states {
            series.push(("United States", c));
        }
        let mut s = render_ccdfs(
            "Figure 3: anycast minus best unicast (CCDF of requests)",
            "Performance difference between anycast and best unicast (ms)",
            &series,
            (0.0, 100.0),
        );
        s.push_str(&format!(
            "  anycast within 10ms of best unicast: {:.1}%   best unicast >=100ms faster: {:.1}%\n",
            self.frac_within_10ms * 100.0,
            self.frac_gt_100ms * 100.0
        ));
        if let Some(note) = self.coverage.annotation() {
            s.push_str(&note);
        }
        s
    }
}

/// Figure 4: improvement of the LDNS-predicted scheme over anycast.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// CDF over weighted prefixes of (anycast − predicted) at the median.
    pub median_improvement: Cdf,
    /// Same at the 75th percentile.
    pub p75_improvement: Cdf,
    /// Fraction of (weighted) queries improved at the median (paper: 27%).
    pub frac_improved: f64,
    /// Fraction made worse (paper: 17%).
    pub frac_worse: f64,
    /// Fraction of beacon measurements that survived the fault plane.
    pub coverage: Coverage,
}

impl Fig4 {
    pub fn render(&self) -> String {
        let mut s = render_cdfs(
            "Figure 4: DNS-redirection improvement over anycast (CDF of weighted prefixes)",
            "Improvement (ms); >0 means prediction beat anycast",
            &[
                ("Median", &self.median_improvement),
                ("75th", &self.p75_improvement),
            ],
            (-100.0, 100.0),
        );
        s.push_str(&format!(
            "  improved (median): {:.1}%   worse than anycast: {:.1}%\n",
            self.frac_improved * 100.0,
            self.frac_worse * 100.0
        ));
        if let Some(note) = self.coverage.annotation() {
            s.push_str(&note);
        }
        s
    }
}

/// One country row of Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct CountryDiff {
    pub code: &'static str,
    pub name: &'static str,
    pub region: bb_geo::Region,
    /// Median(Standard RTT) − median(Premium RTT), ms. Positive = Premium
    /// (private WAN) better.
    pub median_diff_ms: f64,
    pub vantage_points: usize,
    pub users_m: f64,
}

/// Figure 5 plus the §3.3 in-text ingress statistics.
#[derive(Debug, Clone)]
pub struct Fig5 {
    pub rows: Vec<CountryDiff>,
    /// Fraction of Premium traceroutes entering the provider within 400 km
    /// of the VP (paper: 80%).
    pub premium_ingress_within_400km: f64,
    /// Same for Standard (paper: 10%).
    pub standard_ingress_within_400km: f64,
    /// Qualifying vantage points (direct Premium, indirect Standard).
    pub qualifying_vps: usize,
    /// Fraction of probe rounds that survived the fault plane.
    pub coverage: Coverage,
}

impl Fig5 {
    pub fn render(&self) -> String {
        let mut rows: Vec<(String, f64)> = self
            .rows
            .iter()
            .map(|r| (format!("{} ({})", r.name, r.region), r.median_diff_ms))
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut s = render_bar_table(
            "Figure 5: Standard minus Premium median latency per country\n  (positive = private WAN better, negative = public Internet better)",
            &rows,
            "ms",
        );
        s.push_str(&format!(
            "  qualifying VPs: {}   ingress <=400km: premium {:.0}% vs standard {:.0}%\n",
            self.qualifying_vps,
            self.premium_ingress_within_400km * 100.0,
            self.standard_ingress_within_400km * 100.0
        ));
        if let Some(note) = self.coverage.annotation() {
            s.push_str(&note);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_render_contains_stats() {
        let cdf = Cdf::from_values(&[-1.0, 0.0, 1.0]).unwrap();
        let f = Fig1 {
            diff: cdf.clone(),
            ci_lower: cdf.clone(),
            ci_upper: cdf,
            frac_improvable_5ms: 0.03,
            frac_bgp_good: 0.9,
            groups: 42,
            coverage: Coverage::default(),
        };
        let s = f.render();
        assert!(s.contains("3.0%"));
        assert!(s.contains("groups=42"));
    }

    #[test]
    fn fig5_render_sorts_and_labels() {
        let f = Fig5 {
            rows: vec![
                CountryDiff {
                    code: "IN",
                    name: "India",
                    region: bb_geo::Region::SouthAsia,
                    median_diff_ms: -20.0,
                    vantage_points: 5,
                    users_m: 600.0,
                },
                CountryDiff {
                    code: "JP",
                    name: "Japan",
                    region: bb_geo::Region::EastAsia,
                    median_diff_ms: 12.0,
                    vantage_points: 3,
                    users_m: 110.0,
                },
            ],
            premium_ingress_within_400km: 0.8,
            standard_ingress_within_400km: 0.1,
            qualifying_vps: 8,
            coverage: Coverage::default(),
        };
        let s = f.render();
        let japan_pos = s.find("Japan").unwrap();
        let india_pos = s.find("India").unwrap();
        assert!(japan_pos < india_pos, "positive diffs sort first");
        assert!(s.contains("80%"));
    }

    #[test]
    fn episodes_render() {
        let e = Episodes {
            degrade_together: 0.7,
            frac_windows_degraded: 0.1,
            frac_windows_improvable: 0.03,
            persistent_beater_fraction: 0.6,
        };
        let s = e.render();
        assert!(s.contains("70%"));
    }
}
