//! # bb-core — the studies of "Beating BGP is Harder than we Thought"
//!
//! Assembles the substrate crates into the paper's three measurement
//! studies plus the extension studies its open questions call for:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`study_egress`] | §3.1, Figures 1–2, §3.1.1 episode analysis |
//! | [`study_anycast`] | §3.2, Figures 3–4 |
//! | [`study_tiers`] | §3.3, Figure 5, ingress stats, §4 fn.3 goodput |
//! | [`calibration`] | the in-text distance statistics (S23x) |
//! | [`ext::peering_reduction`] | §3.1.3 reduced-peering emulation |
//! | [`ext::grooming`] | §3.2.2 nature-vs-nurture grooming loop |
//! | [`ext::site_count`] | §3.2.2 how-many-sites-are-enough sweep |
//! | [`ext::single_network`] | §3.3.2 single-large-network analysis |
//! | [`ext::split_tcp`] | §4 split-TCP over WAN vs public backend |
//! | [`ext::availability`] | §4 availability: anycast vs DNS caching, route diversity |
//! | [`ext::hybrid`] | §4 hybrid anycast+DNS scheme |
//! | [`ext::fabric`] | §4 realizable egress controller vs omniscient |
//! | [`ext::ecs`] | §3.2.1 EDNS-Client-Subnet adoption sweep |
//!
//! [`world`] builds the scenario (topology + provider + workload +
//! congestion) each study runs on; [`figures`] holds the figure data types
//! and their ASCII rendering; [`export`] writes figure data as CSV.
//! [`serve`] and [`snapshot`] are the streaming plane: bounded-memory
//! campaign state and the crash-safe `bbsn/v1` epoch flushes behind
//! `repro serve`.

pub mod calibration;
pub mod checkpoint;
pub mod error;
pub mod export;
pub mod ext;
pub mod figures;
pub mod serve;
pub mod snapshot;
pub mod study_anycast;
pub mod study_egress;
pub mod study_tiers;
pub mod world;

pub use error::{BbError, BbResult};
pub use figures::Coverage;
pub use world::{Scale, Scenario, ScenarioConfig};
