//! Streaming campaign state for `repro serve`.
//!
//! A serve run advances the §3.1 spray campaign window by window on a
//! simulated clock, forever. The batch pipeline retains every
//! [`WindowRow`] and analyzes at the end; a daemon cannot, so serve runs
//! in one of two modes:
//!
//! * **Exact** (`--epsilon 0`): retain every row, exactly like batch.
//!   Memory grows linearly with windows, and the final figure is computed
//!   by the *batch* analyzer ([`crate::study_egress::analyze`]) over the
//!   accumulated dataset — byte-identical to a batch run over the same
//!   windows by construction.
//! * **Sketch** (`--epsilon ε > 0`): fold each window into fixed-size
//!   mergeable [`QuantileSketch`]es per ⟨PoP, prefix⟩ group (one for the
//!   preferred−best-alternate diff, one per route median — the paper's
//!   ⟨PoP, prefix, route⟩ aggregation key). Memory is O(1) per key no
//!   matter how many windows stream through; the figure carries a
//!   declared ε and an explicit sketch-mode disclosure.
//!
//! Both representations serialize to a canonical binary blob
//! ([`ServeState::encode`]) carried inside the `bbsn/v1` snapshot
//! ([`crate::snapshot`]); every float crosses as raw IEEE bits, so a
//! kill-and-resume run reconstructs bit-identical accumulator state and
//! its eventual output matches an uninterrupted run byte for byte.
//!
//! The [`Governor`] is the degraded-mode lever: when sketch memory
//! (counter-based accounting, no allocator hooks) crosses the high-water
//! mark it coarsens every sketch one level — halving memory, doubling ε —
//! rather than letting the daemon grow toward an OOM kill. Decisions land
//! only at epoch boundaries, which the snapshot key pins, so degradation
//! is as deterministic and resumable as everything else.

use crate::error::{BbError, BbResult};
use crate::figures::{Coverage, Fig1};
use crate::study_egress::MEANINGFUL_MS;
use bb_measure::{SprayTarget, WindowRow};
use bb_netsim::Window;
use bb_stats::{Cdf, QuantileSketch};

/// How a serve run aggregates the window stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeMode {
    /// Retain every row; final figure via the batch analyzer.
    Exact,
    /// Bounded-memory sketches with declared relative error `eps`.
    Sketch { eps: f64 },
}

impl ServeMode {
    /// `--epsilon` flag value → mode (`0` = exact).
    pub fn from_eps(eps: f64) -> ServeMode {
        if eps == 0.0 {
            ServeMode::Exact
        } else {
            ServeMode::Sketch { eps }
        }
    }

    pub fn eps(&self) -> f64 {
        match self {
            ServeMode::Exact => 0.0,
            ServeMode::Sketch { eps } => *eps,
        }
    }
}

/// Bounded-memory aggregate of one ⟨PoP, prefix⟩ group (sketch mode).
#[derive(Debug, Clone, PartialEq)]
struct GroupSketch {
    /// Per-window preferred − best-alternate diffs, weight 1 per window
    /// (the batch analyzer's `window_diffs`, sketched).
    diff: QuantileSketch,
    /// Per-route window-median sketches — the ⟨PoP, prefix, route⟩ keys.
    routes: Vec<QuantileSketch>,
    /// Total traffic volume of kept windows (sequential accumulation in
    /// window order: chunking never reorders it, so resume is
    /// bit-identical).
    volume: f64,
    /// Windows with ≥2 routes (the batch analyzer's denominator).
    windows_total: u64,
    /// Windows where preferred and an alternate both survived.
    windows_kept: u64,
}

impl GroupSketch {
    fn new(eps: f64, n_routes: usize) -> Self {
        GroupSketch {
            diff: QuantileSketch::new(eps),
            routes: (0..n_routes).map(|_| QuantileSketch::new(eps)).collect(),
            volume: 0.0,
            windows_total: 0,
            windows_kept: 0,
        }
    }
}

/// Per-target accumulated state, exact or sketched.
#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Exact { rows: Vec<Vec<WindowRow>> },
    Sketch { groups: Vec<GroupSketch> },
}

/// The full accumulated state of a serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeState {
    mode: ServeMode,
    repr: Repr,
    /// Windows fully ingested (across all targets).
    windows_done: u64,
}

/// Serialization magic for [`ServeState::encode`].
const STATE_MAGIC: &[u8; 8] = b"bbsv/v1\n";

/// Governor coarsening never pushes a sketch past this level: each level
/// halves the buckets, so 16 levels reduce any realistic sketch to a
/// handful of buckets and further rounds would only destroy accuracy
/// without freeing measurable memory.
const MAX_COARSEN_LEVEL: u32 = 16;

impl ServeState {
    /// Fresh state for `mode` over targets with the given per-target
    /// route counts (sketch mode pre-sizes one sketch per route).
    pub fn new(mode: ServeMode, route_counts: &[usize]) -> Self {
        let repr = match mode {
            ServeMode::Exact => Repr::Exact {
                rows: route_counts.iter().map(|_| Vec::new()).collect(),
            },
            ServeMode::Sketch { eps } => Repr::Sketch {
                groups: route_counts
                    .iter()
                    .map(|&n| GroupSketch::new(eps, n))
                    .collect(),
            },
        };
        ServeState {
            mode,
            repr,
            windows_done: 0,
        }
    }

    pub fn mode(&self) -> ServeMode {
        self.mode
    }

    /// Windows ingested so far.
    pub fn windows_done(&self) -> u64 {
        self.windows_done
    }

    /// Fold one sampled window chunk in. `per_target` is
    /// [`bb_measure::SprayEngine::sample_windows`] output: index-aligned
    /// with the engine's targets, rows window-ordered within each target.
    /// `n_windows` is the chunk's window count (the per-target row count).
    pub fn ingest(&mut self, per_target: Vec<Vec<WindowRow>>, n_windows: u64) {
        match &mut self.repr {
            Repr::Exact { rows } => {
                assert_eq!(rows.len(), per_target.len(), "target count changed");
                for (acc, chunk) in rows.iter_mut().zip(per_target) {
                    acc.extend(chunk);
                }
            }
            Repr::Sketch { groups } => {
                assert_eq!(groups.len(), per_target.len(), "target count changed");
                for (g, chunk) in groups.iter_mut().zip(&per_target) {
                    for row in chunk {
                        // Mirror the batch analyzer's row gate exactly
                        // (study_egress::analyze): <2 routes is not a
                        // comparison; NaN medians are degraded windows.
                        if row.route_median_ms.len() < 2 {
                            continue;
                        }
                        g.windows_total += 1;
                        for (ri, &m) in row.route_median_ms.iter().enumerate() {
                            if m.is_finite() {
                                g.routes[ri].add(m, 1.0);
                            }
                        }
                        let preferred = row.route_median_ms[0];
                        let best_alt =
                            bb_stats::min_finite(row.route_median_ms[1..].iter().copied());
                        if !preferred.is_finite() || !best_alt.is_finite() {
                            continue;
                        }
                        g.windows_kept += 1;
                        g.diff.add(preferred - best_alt, 1.0);
                        g.volume += row.volume;
                    }
                }
            }
        }
        self.windows_done += n_windows;
    }

    /// Resident memory of the accumulated state, in bytes — counter-based
    /// accounting (struct sizes + sketch bucket counts), the governor's
    /// input. Exact mode reports its (unbounded) retained-row footprint so
    /// the telemetry makes the mode trade-off visible.
    pub fn resident_bytes(&self) -> u64 {
        match &self.repr {
            Repr::Exact { rows } => rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|row| 96 + 20 * row.route_median_ms.len() as u64)
                        .sum::<u64>()
                })
                .sum(),
            Repr::Sketch { groups } => groups
                .iter()
                .map(|g| {
                    48 + g.diff.resident_bytes()
                        + g.routes.iter().map(|s| s.resident_bytes()).sum::<u64>()
                })
                .sum(),
        }
    }

    /// Coarsen every sketch one level (sketch mode; no-op in exact mode).
    /// Returns `true` if anything changed.
    pub fn coarsen_all(&mut self) -> bool {
        match &mut self.repr {
            Repr::Exact { .. } => false,
            Repr::Sketch { groups } => {
                let mut any = false;
                for g in groups.iter_mut() {
                    for s in std::iter::once(&mut g.diff).chain(g.routes.iter_mut()) {
                        if s.level() < MAX_COARSEN_LEVEL {
                            s.coarsen();
                            any = true;
                        }
                    }
                }
                any
            }
        }
    }

    /// The ε currently in force (grows as the governor coarsens); `0` in
    /// exact mode.
    pub fn current_eps(&self) -> f64 {
        match &self.repr {
            Repr::Exact { .. } => 0.0,
            Repr::Sketch { groups } => groups
                .iter()
                .flat_map(|g| std::iter::once(&g.diff).chain(g.routes.iter()))
                .map(|s| s.eps())
                .fold(self.mode.eps(), f64::max),
        }
    }

    /// Exact mode: surrender the retained rows, flattened target-major
    /// (the batch `spray()` row order), for the batch analyzer. Errors in
    /// sketch mode — the rows were never retained.
    pub fn into_rows(self) -> BbResult<Vec<WindowRow>> {
        match self.repr {
            Repr::Exact { rows } => Ok(rows.into_iter().flatten().collect()),
            Repr::Sketch { .. } => Err(BbError::checkpoint(
                "serve state is a sketch: retained rows were never kept \
                 (run with --epsilon 0 for exact mode)"
            )),
        }
    }

    /// Sketch mode: build Figure 1 from the group sketches.
    ///
    /// Per group, the point estimate is the sketched median diff and the
    /// band is the sketched interquartile range — **not** the batch
    /// bootstrap CI (a sketch retains no samples to resample), which is
    /// why the figure's render carries an explicit sketch disclosure. The
    /// headline fractions use the same CDF thresholds as the batch
    /// analyzer. Targets are only needed for their count symmetry check.
    pub fn sketch_fig1(&self, targets: &[SprayTarget]) -> BbResult<Fig1> {
        let groups = match &self.repr {
            Repr::Sketch { groups } => groups,
            Repr::Exact { .. } => {
                return Err(BbError::checkpoint(
                    "serve state is exact: use the batch analyzer, not sketch_fig1",
                ))
            }
        };
        assert_eq!(groups.len(), targets.len(), "target count changed");
        Self::fig1_of_groups(groups)
    }

    fn fig1_of_groups(groups: &[GroupSketch]) -> BbResult<Fig1> {
        let mut point = Vec::new();
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        let mut windows_total = 0u64;
        let mut windows_kept = 0u64;
        let mut used_groups = 0usize;
        for g in groups {
            windows_total += g.windows_total;
            windows_kept += g.windows_kept;
            if g.windows_kept == 0 {
                continue;
            }
            used_groups += 1;
            let med = g.diff.quantile(0.5).expect("kept windows imply data");
            let lo = g.diff.quantile(0.25).expect("kept windows imply data");
            let hi = g.diff.quantile(0.75).expect("kept windows imply data");
            point.push((med, g.volume));
            lower.push((lo, g.volume));
            upper.push((hi, g.volume));
        }
        let too_few = || BbError::insufficient("fig1 route-diff CDF", used_groups, 1);
        let diff = Cdf::from_weighted(&point).ok_or_else(too_few)?;
        let frac_improvable_5ms = 1.0 - diff.fraction_leq(MEANINGFUL_MS - 1e-9);
        let frac_bgp_good = diff.fraction_leq(1.0);
        Ok(Fig1 {
            ci_lower: Cdf::from_weighted(&lower).ok_or_else(too_few)?,
            ci_upper: Cdf::from_weighted(&upper).ok_or_else(too_few)?,
            diff,
            frac_improvable_5ms,
            frac_bgp_good,
            groups: used_groups,
            coverage: Coverage::new(windows_kept, windows_total),
        })
    }

    /// The disclosure lines a sketch-mode figure must carry: declared ε,
    /// ε in force after coarsening, and the memory bound that bought it.
    pub fn sketch_disclosure(&self) -> Option<String> {
        match &self.repr {
            Repr::Exact { .. } => None,
            Repr::Sketch { .. } => Some(format!(
                "  [sketch mode: quantiles within eps={} declared ({} in force); \
                 band is sketched IQR, not a bootstrap CI; {} resident bytes]\n",
                self.mode.eps(),
                self.current_eps(),
                self.resident_bytes()
            )),
        }
    }

    /// Canonical binary encoding: every float as raw IEEE bits, sketches
    /// via their own canonical codec. Equal state ⇒ equal bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(STATE_MAGIC);
        out.push(match self.mode {
            ServeMode::Exact => 0,
            ServeMode::Sketch { .. } => 1,
        });
        out.extend_from_slice(&self.mode.eps().to_bits().to_le_bytes());
        out.extend_from_slice(&self.windows_done.to_le_bytes());
        match &self.repr {
            Repr::Exact { rows } => {
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for target_rows in rows {
                    out.extend_from_slice(&(target_rows.len() as u32).to_le_bytes());
                    for row in target_rows {
                        out.extend_from_slice(&row.window.0.to_le_bytes());
                        out.extend_from_slice(&row.pop.0.to_le_bytes());
                        out.extend_from_slice(&row.prefix.0.to_le_bytes());
                        out.extend_from_slice(
                            &(row.route_median_ms.len() as u32).to_le_bytes(),
                        );
                        for &m in &row.route_median_ms {
                            out.extend_from_slice(&m.to_bits().to_le_bytes());
                        }
                        for &u in &row.route_util {
                            out.extend_from_slice(&u.to_bits().to_le_bytes());
                        }
                        for &n in &row.route_samples {
                            out.extend_from_slice(&n.to_le_bytes());
                        }
                        out.extend_from_slice(&row.volume.to_bits().to_le_bytes());
                    }
                }
            }
            Repr::Sketch { groups } => {
                out.extend_from_slice(&(groups.len() as u32).to_le_bytes());
                for g in groups {
                    out.extend_from_slice(&g.windows_total.to_le_bytes());
                    out.extend_from_slice(&g.windows_kept.to_le_bytes());
                    out.extend_from_slice(&g.volume.to_bits().to_le_bytes());
                    let diff = g.diff.encode();
                    out.extend_from_slice(&(diff.len() as u32).to_le_bytes());
                    out.extend_from_slice(&diff);
                    out.extend_from_slice(&(g.routes.len() as u32).to_le_bytes());
                    for s in &g.routes {
                        let b = s.encode();
                        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                        out.extend_from_slice(&b);
                    }
                }
            }
        }
        out
    }

    /// Decode [`encode`](Self::encode)'s output. Strict: any structural
    /// mismatch rejects (the blob travels inside a checksummed snapshot,
    /// so damage here means a codec bug or foreign bytes).
    pub fn decode(bytes: &[u8]) -> BbResult<ServeState> {
        let bad = |what: &str| BbError::checkpoint(format!("corrupt serve state: {what}"));
        let rest = bytes
            .strip_prefix(STATE_MAGIC.as_slice())
            .ok_or_else(|| bad("bad magic"))?;
        let mut c = ByteCursor { rest, pos: 0 };
        let mode_tag = c.u8().ok_or_else(|| bad("missing mode"))?;
        let eps = f64::from_bits(c.u64().ok_or_else(|| bad("missing eps"))?);
        let windows_done = c.u64().ok_or_else(|| bad("missing windows_done"))?;
        let n_targets = c.u32().ok_or_else(|| bad("missing target count"))? as usize;
        let (mode, repr) = match mode_tag {
            0 => {
                let mut rows = Vec::with_capacity(n_targets);
                for _ in 0..n_targets {
                    let n_rows = c.u32().ok_or_else(|| bad("missing row count"))? as usize;
                    let mut target_rows = Vec::with_capacity(n_rows);
                    for _ in 0..n_rows {
                        let window = Window(c.u32().ok_or_else(|| bad("row window"))?);
                        let pop = bb_geo::CityId(c.u32().ok_or_else(|| bad("row pop"))?);
                        let prefix =
                            bb_workload::PrefixId(c.u32().ok_or_else(|| bad("row prefix"))?);
                        let n_routes = c.u32().ok_or_else(|| bad("row route count"))? as usize;
                        let mut medians = Vec::with_capacity(n_routes);
                        for _ in 0..n_routes {
                            medians.push(f64::from_bits(
                                c.u64().ok_or_else(|| bad("row median"))?,
                            ));
                        }
                        let mut utils = Vec::with_capacity(n_routes);
                        for _ in 0..n_routes {
                            utils.push(f64::from_bits(c.u64().ok_or_else(|| bad("row util"))?));
                        }
                        let mut samples = Vec::with_capacity(n_routes);
                        for _ in 0..n_routes {
                            samples.push(c.u32().ok_or_else(|| bad("row samples"))?);
                        }
                        let volume =
                            f64::from_bits(c.u64().ok_or_else(|| bad("row volume"))?);
                        target_rows.push(WindowRow {
                            window,
                            pop,
                            prefix,
                            route_median_ms: medians,
                            route_util: utils,
                            route_samples: samples,
                            volume,
                        });
                    }
                    rows.push(target_rows);
                }
                (ServeMode::Exact, Repr::Exact { rows })
            }
            1 => {
                let mut groups = Vec::with_capacity(n_targets);
                for _ in 0..n_targets {
                    let windows_total = c.u64().ok_or_else(|| bad("group windows_total"))?;
                    let windows_kept = c.u64().ok_or_else(|| bad("group windows_kept"))?;
                    let volume = f64::from_bits(c.u64().ok_or_else(|| bad("group volume"))?);
                    let diff_len = c.u32().ok_or_else(|| bad("diff sketch length"))? as usize;
                    let diff = QuantileSketch::decode(
                        c.take(diff_len).ok_or_else(|| bad("diff sketch bytes"))?,
                    )
                    .ok_or_else(|| bad("diff sketch"))?;
                    let n_routes = c.u32().ok_or_else(|| bad("route sketch count"))? as usize;
                    let mut routes = Vec::with_capacity(n_routes);
                    for _ in 0..n_routes {
                        let len = c.u32().ok_or_else(|| bad("route sketch length"))? as usize;
                        routes.push(
                            QuantileSketch::decode(
                                c.take(len).ok_or_else(|| bad("route sketch bytes"))?,
                            )
                            .ok_or_else(|| bad("route sketch"))?,
                        );
                    }
                    groups.push(GroupSketch {
                        diff,
                        routes,
                        volume,
                        windows_total,
                        windows_kept,
                    });
                }
                (ServeMode::Sketch { eps }, Repr::Sketch { groups })
            }
            other => return Err(bad(&format!("unknown mode tag {other}"))),
        };
        if c.pos != c.rest.len() {
            return Err(bad("trailing bytes"));
        }
        if mode.eps() != eps {
            return Err(bad("mode/eps disagreement"));
        }
        Ok(ServeState {
            mode,
            repr,
            windows_done,
        })
    }
}

struct ByteCursor<'a> {
    rest: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.rest.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }
    fn u32(&mut self) -> Option<u32> {
        let chunk: [u8; 4] = self.rest.get(self.pos..self.pos + 4)?.try_into().ok()?;
        self.pos += 4;
        Some(u32::from_le_bytes(chunk))
    }
    fn u64(&mut self) -> Option<u64> {
        let chunk: [u8; 8] = self.rest.get(self.pos..self.pos + 8)?.try_into().ok()?;
        self.pos += 8;
        Some(u64::from_le_bytes(chunk))
    }
    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let b = self.rest.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(b)
    }
}

/// High-water memory backpressure for sketch-mode serve runs.
///
/// Counter-based accounting only ([`ServeState::resident_bytes`]): no
/// allocator hooks, no sampling, so the decision is a pure function of
/// state and therefore deterministic and resumable. When the state
/// crosses `limit_bytes`, every sketch coarsens one level per round until
/// the state fits or coarsening bottoms out. Exact mode is never
/// coarsened — its growth is the documented price of `--epsilon 0`.
#[derive(Debug, Clone, Copy)]
pub struct Governor {
    pub limit_bytes: u64,
}

impl Governor {
    pub fn new(limit_bytes: u64) -> Self {
        Governor { limit_bytes }
    }

    /// Shed resolution until the state fits. Returns coarsening rounds
    /// applied (0 = already within budget).
    pub fn enforce(&self, state: &mut ServeState) -> u64 {
        let mut rounds = 0u64;
        while state.resident_bytes() > self.limit_bytes {
            if !state.coarsen_all() {
                break; // exact mode or fully coarsened: nothing left to shed
            }
            rounds += 1;
        }
        rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(window: u32, medians: &[f64], volume: f64) -> WindowRow {
        WindowRow {
            window: Window(window),
            pop: bb_geo::CityId(3),
            prefix: bb_workload::PrefixId(7),
            route_median_ms: medians.to_vec(),
            route_util: medians.iter().map(|_| 0.5).collect(),
            route_samples: medians.iter().map(|_| 5).collect(),
            volume,
        }
    }

    fn chunk(windows: std::ops::Range<u32>) -> Vec<Vec<WindowRow>> {
        vec![windows
            .map(|w| row(w, &[40.0 + w as f64, 38.0, 45.0], 1.5 + w as f64 * 0.1))
            .collect()]
    }

    #[test]
    fn exact_roundtrip_is_bit_identical() {
        let mut s = ServeState::new(ServeMode::Exact, &[3]);
        let mut c = chunk(0..8);
        // NaN medians (degraded windows) must roundtrip too.
        c[0][2].route_median_ms[1] = f64::NAN;
        s.ingest(c, 8);
        let bytes = s.encode();
        let back = ServeState::decode(&bytes).expect("roundtrip");
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.windows_done(), 8);
        let rows = back.into_rows().expect("exact mode retains rows");
        assert_eq!(rows.len(), 8);
        assert!(rows[2].route_median_ms[1].is_nan());
    }

    #[test]
    fn chunked_ingest_matches_single_ingest() {
        let mut whole = ServeState::new(ServeMode::Sketch { eps: 0.02 }, &[3]);
        whole.ingest(chunk(0..20), 20);
        let mut parts = ServeState::new(ServeMode::Sketch { eps: 0.02 }, &[3]);
        parts.ingest(chunk(0..7), 7);
        parts.ingest(chunk(7..13), 6);
        parts.ingest(chunk(13..20), 7);
        assert_eq!(whole.encode(), parts.encode());
    }

    #[test]
    fn resume_from_encoded_state_is_bit_identical() {
        let mut straight = ServeState::new(ServeMode::Sketch { eps: 0.05 }, &[3]);
        straight.ingest(chunk(0..30), 30);
        let mut first = ServeState::new(ServeMode::Sketch { eps: 0.05 }, &[3]);
        first.ingest(chunk(0..11), 11);
        let mut resumed = ServeState::decode(&first.encode()).expect("resume");
        resumed.ingest(chunk(11..30), 19);
        assert_eq!(straight.encode(), resumed.encode());
    }

    #[test]
    fn sketch_fig1_matches_exact_shape() {
        let mut s = ServeState::new(ServeMode::Sketch { eps: 0.02 }, &[3]);
        s.ingest(chunk(0..40), 40);
        let groups = match &s.repr {
            Repr::Sketch { groups } => groups,
            _ => unreachable!(),
        };
        let fig = ServeState::fig1_of_groups(groups).expect("figure");
        assert!(fig.groups == 1);
        assert!(fig.frac_improvable_5ms >= 0.0 && fig.frac_improvable_5ms <= 1.0);
        assert!(fig.coverage.kept > 0);
        // diffs are 40+w − 38 ≥ 2ms, mostly ≥ 5ms ⇒ improvable fraction high
        assert!(fig.frac_improvable_5ms > 0.5, "{}", fig.frac_improvable_5ms);
        assert!(s.sketch_disclosure().unwrap().contains("sketch mode"));
    }

    #[test]
    fn governor_sheds_to_coarser_sketches_never_grows() {
        let mut s = ServeState::new(ServeMode::Sketch { eps: 0.005 }, &[3]);
        s.ingest(chunk(0..60), 60);
        let before = s.resident_bytes();
        let gov = Governor::new(before / 2);
        let rounds = gov.enforce(&mut s);
        assert!(rounds >= 1);
        assert!(s.resident_bytes() < before);
        assert!(s.current_eps() > 0.005);
        // Exact mode: governor must refuse to touch it.
        let mut e = ServeState::new(ServeMode::Exact, &[3]);
        e.ingest(chunk(0..60), 60);
        assert_eq!(Governor::new(1).enforce(&mut e), 0);
    }

    #[test]
    fn mode_mismatch_calls_are_rejected() {
        let s = ServeState::new(ServeMode::Exact, &[3]);
        assert!(s.sketch_fig1(&[]).is_err());
        let s = ServeState::new(ServeMode::Sketch { eps: 0.1 }, &[3]);
        assert!(s.into_rows().is_err());
    }

    #[test]
    fn corrupt_state_is_rejected() {
        let mut s = ServeState::new(ServeMode::Sketch { eps: 0.02 }, &[2]);
        s.ingest(
            vec![vec![row(0, &[40.0, 38.0], 1.0)]],
            1,
        );
        let bytes = s.encode();
        assert!(ServeState::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(ServeState::decode(b"nope").is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(ServeState::decode(&extra).is_err());
    }
}
