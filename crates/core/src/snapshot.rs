//! Serve snapshot epochs: versioned `bbsn/v1` state flushes.
//!
//! `repro serve` advances measurement windows forever and must survive a
//! SIGKILL at any instant without losing or corrupting results. Every K
//! windows (one *epoch*) it serializes its entire accumulated state — the
//! [`crate::serve::ServeState`] blob — into a `snapshot.bbsn` file in the
//! serve directory, written with the same atomic temp-file + fsync +
//! rename + dir-fsync ladder as every other artifact
//! ([`crate::export::write_atomic_bytes`]). A crash mid-flush leaves the
//! previous epoch's snapshot intact; a restart resumes from it and
//! replays forward to byte-identical eventual output.
//!
//! **Keying rule.** Like checkpoint manifests, a snapshot is valid only
//! for the exact campaign that wrote it. The [`ServeKey`] pins seed,
//! scale, fault profile, the sketch ε (as raw bits — `0` means exact
//! mode), the epoch size, CSV capture, and the code schema. The epoch
//! size is in the key because the resource governor coarsens sketches at
//! epoch boundaries: resuming with a different K would re-time degraded-
//! mode transitions and change output bytes. The *window target*
//! (`--windows`) is deliberately not in the key — extending a campaign
//! past its old horizon is the whole point of a streaming daemon, and
//! windows already sampled are never re-sampled.
//!
//! **Format.** `bbsn/v1` is the same line-oriented header +
//! length-prefixed checksummed blob shape as `bbck/v1`:
//!
//! ```text
//! bbsn/v1
//! seed 42
//! scale test
//! faults heavy
//! eps_bits 4576918229304087675
//! epoch_windows 25
//! csv 1
//! code_schema 1
//! windows_done 150
//! epochs 6
//! coarsenings 0
//! state 8192 c0ffee...          ← blob length, fnv64
//! <8192 raw state bytes>\n
//! end
//! ```
//!
//! Unlike the checkpoint manifest there is **no salvage path**: a
//! snapshot is always written atomically by this code, so a torn or
//! checksum-failing snapshot means filesystem damage or foreign bytes —
//! it is rejected outright and the daemon exits rather than resume from
//! a state it cannot trust.

use crate::checkpoint::{fnv1a, Parser, CODE_SCHEMA};
use crate::error::{BbError, BbResult};
use crate::export::write_atomic_bytes;
use std::fmt::Write as _;
use std::path::Path;

/// Snapshot file name inside a serve directory.
pub const SNAPSHOT_NAME: &str = "snapshot.bbsn";

/// On-disk format version (parser compatibility).
pub const FORMAT: &str = "bbsn/v1";

/// Identity of one serve campaign: a snapshot is valid only for an exact
/// match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeKey {
    pub seed: u64,
    /// Scale label (`test`/`full`/`large`).
    pub scale: String,
    /// Fault profile label (`off`/`light`/`heavy`).
    pub faults: String,
    /// Sketch ε as raw f64 bits; `0` (the bits of `0.0`) = exact mode.
    pub eps_bits: u64,
    /// Windows per snapshot epoch (governor decisions are epoch-aligned).
    pub epoch_windows: u64,
    /// Whether the run exports live CSV.
    pub csv: bool,
    /// [`CODE_SCHEMA`] of the build that wrote the snapshot.
    pub code_schema: u32,
}

impl ServeKey {
    pub fn new(
        seed: u64,
        scale: impl Into<String>,
        faults: impl Into<String>,
        eps: f64,
        epoch_windows: u64,
        csv: bool,
    ) -> Self {
        Self {
            seed,
            scale: scale.into(),
            faults: faults.into(),
            eps_bits: eps.to_bits(),
            epoch_windows,
            csv,
            code_schema: CODE_SCHEMA,
        }
    }

    /// The sketch ε this key declares (`0.0` = exact mode).
    pub fn eps(&self) -> f64 {
        f64::from_bits(self.eps_bits)
    }
}

/// One flushed serve epoch: the key, progress counters, and the opaque
/// [`crate::serve::ServeState`] blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub key: ServeKey,
    /// Windows fully ingested into `state`.
    pub windows_done: u64,
    /// Epochs flushed so far (this snapshot is the `epochs`-th).
    pub epochs: u64,
    /// Cumulative governor coarsening rounds applied to `state`.
    pub coarsenings: u64,
    /// Serialized serve state ([`crate::serve::ServeState::encode`]).
    pub state: Vec<u8>,
}

impl Snapshot {
    /// Reject the snapshot unless its key matches `expect` exactly,
    /// naming the first mismatching field.
    pub fn validate(&self, expect: &ServeKey) -> BbResult<()> {
        let k = &self.key;
        let mismatch = |field: &str, have: &str, want: &str| {
            Err(BbError::checkpoint(format!(
                "snapshot {field} mismatch: snapshot has {have}, this run wants {want} \
                 (refusing to resume from a stale snapshot)"
            )))
        };
        if k.code_schema != expect.code_schema {
            return mismatch(
                "code_schema",
                &k.code_schema.to_string(),
                &expect.code_schema.to_string(),
            );
        }
        if k.seed != expect.seed {
            return mismatch("seed", &k.seed.to_string(), &expect.seed.to_string());
        }
        if k.scale != expect.scale {
            return mismatch("scale", &k.scale, &expect.scale);
        }
        if k.faults != expect.faults {
            return mismatch("faults", &k.faults, &expect.faults);
        }
        if k.eps_bits != expect.eps_bits {
            return mismatch(
                "eps",
                &format!("{}", k.eps()),
                &format!("{}", expect.eps()),
            );
        }
        if k.epoch_windows != expect.epoch_windows {
            return mismatch(
                "epoch_windows",
                &k.epoch_windows.to_string(),
                &expect.epoch_windows.to_string(),
            );
        }
        if k.csv != expect.csv {
            return mismatch(
                "csv",
                if k.csv { "1" } else { "0" },
                if expect.csv { "1" } else { "0" },
            );
        }
        Ok(())
    }

    /// Serialize to `bbsn/v1` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let k = &self.key;
        let mut head = String::new();
        let _ = writeln!(head, "{FORMAT}");
        let _ = writeln!(head, "seed {}", k.seed);
        let _ = writeln!(head, "scale {}", k.scale);
        let _ = writeln!(head, "faults {}", k.faults);
        let _ = writeln!(head, "eps_bits {}", k.eps_bits);
        let _ = writeln!(head, "epoch_windows {}", k.epoch_windows);
        let _ = writeln!(head, "csv {}", if k.csv { 1 } else { 0 });
        let _ = writeln!(head, "code_schema {}", k.code_schema);
        let _ = writeln!(head, "windows_done {}", self.windows_done);
        let _ = writeln!(head, "epochs {}", self.epochs);
        let _ = writeln!(head, "coarsenings {}", self.coarsenings);
        let _ = writeln!(head, "state {} {:016x}", self.state.len(), fnv1a(&self.state));
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.state);
        out.push(b'\n');
        out.extend_from_slice(b"end\n");
        out
    }

    /// Parse `bbsn/v1` bytes. Strict: any damage — truncation included —
    /// is an error. Snapshots are written atomically, so there is no
    /// torn-tail case worth salvaging; a bad snapshot means the daemon
    /// must not resume from it.
    pub fn decode(bytes: &[u8]) -> BbResult<Snapshot> {
        if bytes.is_empty() {
            return Err(BbError::checkpoint(
                "snapshot is empty (0 bytes at byte offset 0) — an atomic \
                 writer never produces this; refusing to resume",
            ));
        }
        let mut p = Parser { bytes, pos: 0 };
        let version = p.line()?;
        if version != FORMAT {
            return Err(BbError::checkpoint(format!(
                "unsupported snapshot format {version:?}, this build reads {FORMAT}"
            )));
        }
        let seed: u64 = p.field("seed")?;
        let scale = p.field_str("scale")?;
        let faults = p.field_str("faults")?;
        let eps_bits: u64 = p.field("eps_bits")?;
        let epoch_windows: u64 = p.field("epoch_windows")?;
        let csv = match p.field_str("csv")?.as_str() {
            "1" => true,
            "0" => false,
            other => {
                return Err(BbError::checkpoint(format!("bad csv flag {other:?}")));
            }
        };
        let code_schema: u32 = p.field("code_schema")?;
        let windows_done: u64 = p.field("windows_done")?;
        let epochs: u64 = p.field("epochs")?;
        let coarsenings: u64 = p.field("coarsenings")?;
        let state_line = p.field_str("state")?;
        let mut tok = state_line.split(' ');
        let len: usize = tok
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| BbError::checkpoint("bad state length"))?;
        let sum = tok
            .next()
            .and_then(|t| u64::from_str_radix(t, 16).ok())
            .ok_or_else(|| BbError::checkpoint("bad state checksum"))?;
        let blob_at = p.pos;
        let state = match p.blob_opt(len, "serve state")? {
            Some(blob) => blob,
            None => {
                return Err(BbError::checkpoint(format!(
                    "state blob cut at EOF (byte offset {blob_at}) — snapshots \
                     are written atomically, refusing to resume from damage"
                )));
            }
        };
        if fnv1a(state) != sum {
            return Err(BbError::checkpoint(format!(
                "checksum mismatch in serve state (blob at byte offset {blob_at}) \
                 — refusing to resume from a corrupt snapshot"
            )));
        }
        match p.line_opt()? {
            Some(l) if l == "end" => {}
            other => {
                return Err(BbError::checkpoint(format!(
                    "expected `end` after state blob, got {other:?}"
                )));
            }
        }
        Ok(Snapshot {
            key: ServeKey {
                seed,
                scale,
                faults,
                eps_bits,
                epoch_windows,
                csv,
                code_schema,
            },
            windows_done,
            epochs,
            coarsenings,
            state: state.to_vec(),
        })
    }

    /// Atomically write the snapshot into `dir`.
    pub fn save(&self, dir: &Path) -> BbResult<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| BbError::io(format!("create serve dir {}", dir.display()), e))?;
        write_atomic_bytes(&dir.join(SNAPSHOT_NAME), &self.encode())
    }

    /// Load the snapshot from `dir`. Missing file is [`BbError::Io`] (the
    /// caller treats it as a fresh start); anything else that fails is a
    /// hard reject.
    pub fn load(dir: &Path) -> BbResult<Snapshot> {
        let path = dir.join(SNAPSHOT_NAME);
        let bytes = std::fs::read(&path)
            .map_err(|e| BbError::io(format!("read {}", path.display()), e))?;
        Self::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            key: ServeKey::new(42, "test", "heavy", 0.02, 25, true),
            windows_done: 150,
            epochs: 6,
            coarsenings: 2,
            // Binary-ish payload: newlines, NULs, non-UTF-8.
            state: vec![0, 10, 255, b'e', b'n', b'd', 10, 0, 7],
        }
    }

    #[test]
    fn roundtrip_exact_bytes() {
        let s = sample();
        let bytes = s.encode();
        let back = Snapshot::decode(&bytes).expect("roundtrip");
        assert_eq!(back, s);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn exact_mode_key_has_zero_eps_bits() {
        let k = ServeKey::new(1, "test", "off", 0.0, 10, false);
        assert_eq!(k.eps_bits, 0);
        assert_eq!(k.eps(), 0.0);
    }

    #[test]
    fn validate_names_first_mismatching_field() {
        let s = sample();
        let mut want = s.key.clone();
        want.epoch_windows = 50;
        let err = s.validate(&want).unwrap_err().to_string();
        assert!(err.contains("epoch_windows mismatch"), "{err}");
        assert!(err.contains("25") && err.contains("50"), "{err}");

        let mut want = s.key.clone();
        want.eps_bits = 0.05f64.to_bits();
        let err = s.validate(&want).unwrap_err().to_string();
        assert!(err.contains("eps mismatch"), "{err}");

        s.validate(&s.key).expect("matching key validates");
    }

    #[test]
    fn truncation_is_rejected_not_salvaged() {
        let bytes = sample().encode();
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 2] {
            let err = Snapshot::decode(&bytes[..cut]).unwrap_err().to_string();
            assert!(
                err.contains("refusing to resume")
                    || err.contains("truncated")
                    || err.contains("expected `end`"),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_state_blob_is_rejected_with_offset() {
        let s = sample();
        let mut bytes = s.encode();
        // Flip the first byte of the state blob: it starts right after the
        // `state <len> <sum>` line.
        let needle = b"state 9 ";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("state line");
        let blob_at = at + bytes[at..].iter().position(|&b| b == b'\n').unwrap() + 1;
        bytes[blob_at] ^= 0xff;
        let err = Snapshot::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("checksum mismatch"), "{err}");
        assert!(err.contains(&format!("byte offset {blob_at}")), "{err}");
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("bbsn-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = sample();
        s.save(&dir).expect("save");
        let back = Snapshot::load(&dir).expect("load");
        assert_eq!(back, s);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
