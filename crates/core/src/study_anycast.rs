//! Study B (§3.2): anycast vs best unicast (Fig 3) and DNS redirection vs
//! anycast (Fig 4).
//!
//! Figure 3 asks the oracle question: how much faster is the best unicast
//! front-end than where anycast lands the client? Figure 4 asks the
//! practical one: after training an LDNS-granularity predictor on earlier
//! measurements, does handing out the predicted-best address beat plain
//! anycast on later measurements? ("The LDNS-predicted optimal and anycast
//! are then measured side-by-side.")

use crate::error::{BbError, BbResult};
use crate::figures::{Coverage, Fig3, Fig4};
use crate::world::Scenario;
use bb_cdn::dns::TrainingSample;
use bb_cdn::{AnycastDeployment, DnsRedirector, SiteChoice};
use bb_geo::{CityId, Region};
use bb_measure::beacon::build_unicast_deployments;
use bb_measure::{run_beacons, BeaconConfig, BeaconMeasurement};
use bb_stats::{Ccdf, Cdf};
use std::collections::BTreeMap;

/// Results of the anycast study.
pub struct AnycastStudy {
    pub fig3: Fig3,
    pub fig4: Fig4,
    pub redirector: DnsRedirector,
    pub measurements: Vec<BeaconMeasurement>,
}

/// Run the full study: deploy anycast from every PoP, beacon campaign,
/// train/test split, figures.
pub fn run(scenario: &Scenario, beacon_cfg: &BeaconConfig) -> BbResult<AnycastStudy> {
    let sites = scenario.provider.pops.clone();
    let anycast = AnycastDeployment::deploy(&scenario.topo, &scenario.provider, &sites);
    let unicast = build_unicast_deployments(&scenario.topo, &scenario.provider, &sites);
    let measurements = run_beacons(
        &scenario.topo,
        &scenario.provider,
        &anycast,
        &unicast,
        &scenario.workload,
        &scenario.congestion,
        scenario.fault_plane(),
        beacon_cfg,
    );
    analyze(scenario, measurements)
}

/// Analyze an already-collected beacon campaign.
///
/// Incomplete measurements (anycast or every unicast beacon lost to the
/// fault plane) are excluded from every aggregate; Figures 3 and 4 carry
/// the resulting coverage. Errors with [`BbError::InsufficientData`] when
/// no complete measurement survives.
pub fn analyze(
    scenario: &Scenario,
    measurements: Vec<BeaconMeasurement>,
) -> BbResult<AnycastStudy> {
    let coverage = Coverage::new(
        measurements.iter().filter(|m| m.is_complete()).count() as u64,
        measurements.len() as u64,
    );

    // --- Figure 3: per-measurement penalty CCDFs, weighted by traffic. ---
    let penalty_points = |filter: &dyn Fn(&BeaconMeasurement) -> bool| -> Vec<(f64, f64)> {
        measurements
            .iter()
            .filter(|m| m.is_complete() && filter(m))
            .map(|m| (m.anycast_penalty_ms().max(0.0), m.weight))
            .collect()
    };
    let world = Ccdf::from_weighted(&penalty_points(&|_| true)).ok_or_else(|| {
        BbError::insufficient("fig3 penalty CCDF", coverage.kept as usize, 1)
    })?;
    let europe = Ccdf::from_weighted(&penalty_points(&|m| m.region == Region::Europe));
    let us_country = bb_geo::country::by_code("US").map(|(i, _)| i);
    let united_states = Ccdf::from_weighted(&penalty_points(&|m| {
        us_country.is_some_and(|us| {
            scenario
                .topo
                .atlas
                .city(scenario.workload.prefix(m.prefix).city)
                .country
                == us
        })
    }));
    let frac_within_10ms = 1.0 - world.fraction_gt(10.0);
    let frac_gt_100ms = world.fraction_gt(100.0);
    let fig3 = Fig3 {
        world,
        europe,
        united_states,
        frac_within_10ms,
        frac_gt_100ms,
        coverage,
    };

    // --- Figure 4: train on even rounds, test on odd rounds. ---
    let mut round_times: Vec<u64> = measurements
        .iter()
        .map(|m| m.time.minutes().to_bits())
        .collect();
    round_times.sort_unstable();
    round_times.dedup();
    let round_of = |m: &BeaconMeasurement| {
        round_times
            .binary_search(&m.time.minutes().to_bits())
            .unwrap()
    };

    let (train, test): (Vec<&BeaconMeasurement>, Vec<&BeaconMeasurement>) = measurements
        .iter()
        .filter(|m| m.is_complete())
        .partition(|m| round_of(m) % 2 == 0);

    // Training samples: per-prefix medians over the training rounds.
    // BTreeMaps keep sample/figure order independent of hash state.
    let mut per_prefix_train: BTreeMap<bb_workload::PrefixId, Vec<&BeaconMeasurement>> =
        BTreeMap::new();
    for m in &train {
        per_prefix_train.entry(m.prefix).or_default().push(m);
    }
    let samples: Vec<TrainingSample> = per_prefix_train
        .iter()
        .map(|(&prefix, ms)| {
            let anycast_med = median(ms.iter().map(|m| m.anycast_rtt_ms));
            // Median per unicast site across the rounds.
            let mut per_site: BTreeMap<CityId, Vec<f64>> = BTreeMap::new();
            for m in ms {
                for &(s, r) in &m.unicast_rtt_ms {
                    if r.is_finite() {
                        per_site.entry(s).or_default().push(r);
                    }
                }
            }
            TrainingSample {
                prefix,
                weight: ms[0].weight,
                anycast_rtt_ms: anycast_med,
                unicast_rtt_ms: per_site
                    .into_iter()
                    .map(|(s, v)| (s, median(v.into_iter())))
                    .collect(),
            }
        })
        .collect();
    let redirector = DnsRedirector::train(&scenario.workload, &samples);

    // Test: per prefix, collect (anycast, predicted) series over test rounds.
    let mut per_prefix_test: BTreeMap<bb_workload::PrefixId, Vec<&BeaconMeasurement>> =
        BTreeMap::new();
    for m in &test {
        per_prefix_test.entry(m.prefix).or_default().push(m);
    }
    let mut med_points = Vec::new();
    let mut p75_points = Vec::new();
    for (&prefix, ms) in &per_prefix_test {
        let choices = redirector.choices_for(&scenario.workload, prefix);
        let mut anycast_series = Vec::new();
        let mut predicted_series = Vec::new();
        for m in ms {
            anycast_series.push(m.anycast_rtt_ms);
            // Expected RTT across the prefix's resolver mix.
            let mut acc = 0.0;
            for &(choice, frac) in &choices {
                let rtt = match choice {
                    SiteChoice::Anycast => m.anycast_rtt_ms,
                    SiteChoice::Unicast(site) => m
                        .unicast_rtt_ms
                        .iter()
                        .find(|&&(s, r)| s == site && r.is_finite())
                        .map(|&(_, r)| r)
                        // Predicted site not among this client's nearby
                        // measured ones — the misdirection case. Its RTT is
                        // dominated by the detour: approximate with the
                        // anycast RTT plus the extra great-circle RTT to
                        // that site.
                        .unwrap_or_else(|| {
                            let client_city =
                                scenario.workload.prefix(prefix).city;
                            let extra = bb_geo::min_rtt_ms(
                                scenario
                                    .topo
                                    .atlas
                                    .city(site)
                                    .location
                                    .distance_km(
                                        &scenario.topo.atlas.city(client_city).location,
                                    ),
                            );
                            m.anycast_rtt_ms + extra
                        }),
                };
                acc += frac * rtt;
            }
            predicted_series.push(acc);
        }
        let w = ms[0].weight;
        let q = |v: &[f64], p: f64| bb_stats::quantile_unsorted(v, p).expect("non-empty series");
        med_points.push((q(&anycast_series, 0.5) - q(&predicted_series, 0.5), w));
        p75_points.push((q(&anycast_series, 0.75) - q(&predicted_series, 0.75), w));
    }
    let too_few =
        || BbError::insufficient("fig4 improvement CDF", med_points.len(), 1);
    let median_improvement = Cdf::from_weighted(&med_points).ok_or_else(too_few)?;
    let p75_improvement = Cdf::from_weighted(&p75_points).ok_or_else(too_few)?;
    // The paper reads improvement/worse straight off the CDF's sign
    // ("improvement for 27% of queries … worse than anycast for 17%");
    // a ±0.1 ms band absorbs measurement noise around zero.
    let frac_improved = 1.0 - median_improvement.fraction_leq(0.1);
    let frac_worse = median_improvement.fraction_leq(-0.1);
    let fig4 = Fig4 {
        median_improvement,
        p75_improvement,
        frac_improved,
        frac_worse,
        coverage,
    };

    Ok(AnycastStudy {
        fig3,
        fig4,
        redirector,
        measurements,
    })
}

fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    bb_stats::quantile_select(&mut v, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    fn quick_study() -> AnycastStudy {
        let scenario = Scenario::build(ScenarioConfig::microsoft(4, Scale::Test));
        let cfg = BeaconConfig {
            rounds: 6,
            ..Default::default()
        };
        run(&scenario, &cfg).expect("fault-free study succeeds")
    }

    #[test]
    fn fig3_anycast_mostly_good_with_a_tail() {
        let s = quick_study();
        assert!(
            s.fig3.frac_within_10ms > 0.5,
            "anycast within 10ms only {:.2}",
            s.fig3.frac_within_10ms
        );
        assert!(
            s.fig3.frac_gt_100ms < 0.3,
            "tail too heavy: {:.2}",
            s.fig3.frac_gt_100ms
        );
    }

    #[test]
    fn fig4_has_both_tails() {
        // The paper's central Fig-4 finding: prediction helps some clients
        // and hurts others. Both fractions must be non-trivial or zero-ish
        // but the CDF must exist.
        let s = quick_study();
        assert!(s.fig4.frac_improved >= 0.0);
        assert!(s.fig4.frac_worse >= 0.0);
        assert!(s.fig4.median_improvement.len() > 20);
    }

    #[test]
    fn penalties_are_non_negative() {
        let s = quick_study();
        // Fig3 uses max(0, penalty); CCDF at 0 must be ≤ 1 trivially and
        // decreasing.
        let at0 = s.fig3.world.fraction_gt(0.0);
        let at50 = s.fig3.world.fraction_gt(50.0);
        assert!(at0 >= at50);
    }

    #[test]
    fn renders() {
        let s = quick_study();
        assert!(s.fig3.render().contains("Figure 3"));
        assert!(s.fig4.render().contains("Figure 4"));
    }
}
