//! Study A (§3.1): performance-aware egress routing at each PoP vs BGP.
//!
//! Compares BGP's preferred route to an *omniscient* performance-aware
//! controller that always uses the instantaneously-best of the top-3 routes
//! — the strongest possible opponent, as in the paper: "These measurements
//! let us compare the performance of BGP's preferred route versus an
//! omniscient performance-aware route controller that always uses the path
//! with the best instantaneous performance."

use crate::error::{BbError, BbResult};
use crate::figures::{Coverage, Episodes, Fig1, Fig2};
use crate::world::Scenario;
use bb_bgp::ProviderRouteClass;
use bb_measure::{spray, SprayConfig, SprayDataset};
use bb_stats::{bootstrap_median_ci, Cdf};
use std::collections::{BTreeMap, HashMap};

/// Threshold for "meaningful" improvement/degradation, ms (the paper's
/// "5ms or more" yardstick).
pub const MEANINGFUL_MS: f64 = 5.0;

/// Results of the egress study.
pub struct EgressStudy {
    pub fig1: Fig1,
    pub fig2: Fig2,
    pub episodes: Episodes,
    /// §3.1's closing remark, checked: "We find qualitatively similar
    /// results for bandwidth (not shown)." Fraction of traffic whose best
    /// alternate improves modeled goodput by ≥10 %.
    pub bandwidth_improvable: f64,
    pub dataset: SprayDataset,
}

/// Per-⟨PoP, prefix⟩ aggregate used by the figures.
struct GroupAgg {
    /// Per-window diffs: preferred − best alternate.
    window_diffs: Vec<f64>,
    /// Per-window preferred medians (for the degradation baseline).
    preferred: Vec<f64>,
    /// Per-window best-alternate medians.
    best_alt: Vec<f64>,
    /// Total traffic volume.
    volume: f64,
    /// Per-window best peer / transit / private / public medians, where the
    /// route classes exist.
    peer_vs_transit: Vec<f64>,
    private_vs_public: Vec<f64>,
}

/// Run the full study.
pub fn run(scenario: &Scenario, spray_cfg: &SprayConfig) -> BbResult<EgressStudy> {
    // Targets depend only on the world, not on congestion or faults: repeat
    // campaigns over a content-identical world (e.g. the xablate arms)
    // reuse the first build instead of recomputing routes.
    let spray_cfg = SprayConfig {
        targets_memo: Some(scenario.config.world_key()),
        ..spray_cfg.clone()
    };
    let dataset = spray(
        &scenario.topo,
        &scenario.provider,
        &scenario.workload,
        &scenario.congestion,
        scenario.fault_plane(),
        &spray_cfg,
    );
    bb_exec::timing::time("egress:analyze", || analyze(scenario, &spray_cfg, dataset))
}

/// Analyze an already-collected spray dataset.
///
/// NaN medians (windows degraded by the fault plane) are excluded from
/// every aggregate; the figures carry the resulting coverage. Errors with
/// [`BbError::InsufficientData`] when no usable window survives.
pub fn analyze(
    scenario: &Scenario,
    spray_cfg: &SprayConfig,
    dataset: SprayDataset,
) -> BbResult<EgressStudy> {
    // Index target metadata (classes are per-target, constant over time).
    let classes_by_key: HashMap<(bb_geo::CityId, bb_workload::PrefixId), Vec<ProviderRouteClass>> =
        dataset
            .targets
            .iter()
            .map(|t| {
                (
                    (t.pop, t.prefix),
                    t.routes.iter().map(|r| r.class).collect(),
                )
            })
            .collect();

    // BTreeMap: iteration order feeds CDF construction and float
    // accumulation, so it must not depend on hash state.
    let mut groups: BTreeMap<(bb_geo::CityId, bb_workload::PrefixId), GroupAgg> = BTreeMap::new();
    let mut windows_total = 0u64;
    let mut windows_kept = 0u64;
    for row in &dataset.rows {
        if row.route_median_ms.len() < 2 {
            continue; // no alternate to compare against
        }
        windows_total += 1;
        let classes = &classes_by_key[&(row.pop, row.prefix)];
        // Degraded windows carry NaN medians; a window is usable only when
        // the preferred route and at least one alternate survived.
        let preferred = row.route_median_ms[0];
        // min_finite yields NaN (never ±inf) when every alternate degraded,
        // so the is_finite gate below is the single NaN-policy check.
        let best_alt = bb_stats::min_finite(row.route_median_ms[1..].iter().copied());
        if !preferred.is_finite() || !best_alt.is_finite() {
            continue;
        }
        windows_kept += 1;

        let agg = groups
            .entry((row.pop, row.prefix))
            .or_insert_with(|| GroupAgg {
                window_diffs: Vec::new(),
                preferred: Vec::new(),
                best_alt: Vec::new(),
                volume: 0.0,
                peer_vs_transit: Vec::new(),
                private_vs_public: Vec::new(),
            });
        agg.window_diffs.push(preferred - best_alt);
        agg.preferred.push(preferred);
        agg.best_alt.push(best_alt);
        agg.volume += row.volume;

        // Figure 2 class comparisons within this window.
        let best_of = |pred: &dyn Fn(ProviderRouteClass) -> bool| -> Option<f64> {
            row.route_median_ms
                .iter()
                .zip(classes)
                .filter(|&(&m, &c)| pred(c) && m.is_finite())
                .map(|(&m, _)| m)
                .fold(None, |acc: Option<f64>, m| {
                    Some(acc.map_or(m, |a| a.min(m)))
                })
        };
        let peer = best_of(&|c| {
            matches!(
                c,
                ProviderRouteClass::PrivatePeer | ProviderRouteClass::PublicPeer
            )
        });
        let transit = best_of(&|c| c == ProviderRouteClass::Transit);
        if let (Some(p), Some(t)) = (peer, transit) {
            agg.peer_vs_transit.push(p - t);
        }
        let private = best_of(&|c| c == ProviderRouteClass::PrivatePeer);
        let public = best_of(&|c| c == ProviderRouteClass::PublicPeer);
        if let (Some(pr), Some(pu)) = (private, public) {
            agg.private_vs_public.push(pr - pu);
        }
    }

    // --- Figure 1 ---
    // Per-group bootstrap CIs are independent and seeded per (pop, prefix):
    // run them in parallel, in-order.
    let keys: Vec<_> = groups.keys().copied().collect();
    let cis = bb_exec::timing::time("egress:fig1-ci", || {
        bb_exec::par_map(&keys, |_, &(pop, prefix)| {
            bootstrap_median_ci(
                &groups[&(pop, prefix)].window_diffs,
                0.95,
                120,
                scenario.config.seed ^ ((pop.0 as u64) << 32) ^ prefix.0 as u64,
            )
            .expect("non-empty group")
        })
    });
    bb_exec::timing::add_count("kernel:bootstrap:batches", keys.len());
    let mut point = Vec::new();
    let mut lower = Vec::new();
    let mut upper = Vec::new();
    for (agg, ci) in groups.values().zip(&cis) {
        point.push((ci.point, agg.volume));
        lower.push((ci.lower, agg.volume));
        upper.push((ci.upper, agg.volume));
    }
    let coverage = Coverage::new(windows_kept, windows_total);
    let too_few = || BbError::insufficient("fig1 route-diff CDF", groups.len(), 1);
    let diff = Cdf::from_weighted(&point).ok_or_else(too_few)?;
    let frac_improvable_5ms = 1.0 - diff.fraction_leq(MEANINGFUL_MS - 1e-9);
    let frac_bgp_good = diff.fraction_leq(1.0);
    let fig1 = Fig1 {
        ci_lower: Cdf::from_weighted(&lower).ok_or_else(too_few)?,
        ci_upper: Cdf::from_weighted(&upper).ok_or_else(too_few)?,
        diff,
        frac_improvable_5ms,
        frac_bgp_good,
        groups: groups.len(),
        coverage,
    };

    // --- Figure 2 ---
    let collect_class = |f: &dyn Fn(&GroupAgg) -> &Vec<f64>| -> Option<Cdf> {
        let pts: Vec<(f64, f64)> = groups
            .values()
            .filter(|g| !f(g).is_empty())
            .map(|g| {
                let med = bb_stats::quantile_unsorted(f(g), 0.5).expect("non-empty class");
                (med, g.volume)
            })
            .collect();
        Cdf::from_weighted(&pts)
    };
    let peer_vs_transit = collect_class(&|g| &g.peer_vs_transit);
    let private_vs_public = collect_class(&|g| &g.private_vs_public);
    // "Similar performance" = |median diff| within 2 ms, or the less
    // preferred class outright better (diff > 0).
    let similar = |c: &Cdf| 1.0 - c.fraction_leq(-2.0 - 1e-9);
    let frac_transit_close = peer_vs_transit.as_ref().map(similar).unwrap_or(0.0);
    let frac_public_close = private_vs_public.as_ref().map(similar).unwrap_or(0.0);
    let fig2 = Fig2 {
        peer_vs_transit,
        private_vs_public,
        frac_transit_close,
        frac_public_close,
        coverage,
    };

    // --- §3.1.1 episodes ---
    let mut degraded_windows = 0usize;
    let mut degraded_and_alt_degraded = 0usize;
    let mut total_windows = 0usize;
    let mut improvable_windows = 0usize;
    let mut ever_beaten_groups = 0usize;
    let mut persistent_beaters = 0usize;
    for agg in groups.values() {
        let pref_base = bb_stats::median_unsorted(&agg.preferred).expect("non-empty group");
        let alt_base = bb_stats::median_unsorted(&agg.best_alt).expect("non-empty group");

        let mut beat_count = 0usize;
        for i in 0..agg.preferred.len() {
            total_windows += 1;
            let degraded = agg.preferred[i] > pref_base + MEANINGFUL_MS;
            if degraded {
                degraded_windows += 1;
                if agg.best_alt[i] > alt_base + MEANINGFUL_MS {
                    degraded_and_alt_degraded += 1;
                }
            }
            if agg.window_diffs[i] >= MEANINGFUL_MS {
                improvable_windows += 1;
                beat_count += 1;
            }
        }
        if beat_count > 0 {
            ever_beaten_groups += 1;
            if beat_count as f64 >= 0.8 * agg.preferred.len() as f64 {
                persistent_beaters += 1;
            }
        }
    }
    let episodes = Episodes {
        degrade_together: if degraded_windows > 0 {
            degraded_and_alt_degraded as f64 / degraded_windows as f64
        } else {
            0.0
        },
        frac_windows_degraded: degraded_windows as f64 / total_windows.max(1) as f64,
        frac_windows_improvable: improvable_windows as f64 / total_windows.max(1) as f64,
        persistent_beater_fraction: if ever_beaten_groups > 0 {
            persistent_beaters as f64 / ever_beaten_groups as f64
        } else {
            0.0
        },
    };

    // --- Bandwidth variant (§3.1: "qualitatively similar results"). ---
    // Goodput over each route from its median MinRTT and egress
    // utilization; a group counts as bandwidth-improvable if the best
    // alternate's median goodput beats BGP's by ≥10 %.
    let mut bw_points = Vec::new();
    {
        let mut per_group: BTreeMap<(bb_geo::CityId, bb_workload::PrefixId), (Vec<f64>, f64)> =
            BTreeMap::new();
        for row in &dataset.rows {
            if row.route_median_ms.len() < 2 {
                continue;
            }
            // goodput_mbps asserts rtt > 0, so degraded (NaN) medians must
            // be filtered before the call, not after.
            if !row.route_median_ms[0].is_finite() {
                continue; // window degraded away by the fault plane
            }
            let gp = |i: usize| {
                bb_netsim::goodput_mbps(row.route_median_ms[i], row.route_util[i], 200.0)
            };
            let bgp = gp(0);
            let best_alt = (1..row.route_median_ms.len())
                .filter(|&i| row.route_median_ms[i].is_finite())
                .map(gp)
                .fold(f64::NEG_INFINITY, f64::max);
            if !best_alt.is_finite() {
                continue; // no alternate survived the fault plane
            }
            let entry = per_group
                .entry((row.pop, row.prefix))
                .or_insert((Vec::new(), 0.0));
            entry.0.push(best_alt / bgp.max(1e-9));
            entry.1 += row.volume;
        }
        for (mut ratios, volume) in per_group.into_values() {
            let med = bb_stats::quantile_select(&mut ratios, 0.5);
            bw_points.push((med, volume));
        }
    }
    let total_bw: f64 = bw_points.iter().map(|&(_, w)| w).sum();
    let bandwidth_improvable = bw_points
        .iter()
        .filter(|&&(r, _)| r >= 1.10)
        .map(|&(_, w)| w)
        .sum::<f64>()
        / total_bw.max(1e-12);

    let _ = spray_cfg;
    Ok(EgressStudy {
        fig1,
        fig2,
        episodes,
        bandwidth_improvable,
        dataset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    fn quick_study() -> EgressStudy {
        let scenario = Scenario::build(ScenarioConfig::facebook(3, Scale::Test));
        let cfg = SprayConfig {
            days: 1.0,
            window_stride: 8,
            sessions_per_window: 5,
            ..Default::default()
        };
        run(&scenario, &cfg).expect("fault-free study succeeds")
    }

    #[test]
    fn fig1_has_paper_shape() {
        let s = quick_study();
        // Core claim: BGP good for the vast majority of traffic.
        assert!(
            s.fig1.frac_bgp_good > 0.7,
            "BGP within 1ms-or-better for only {:.2}",
            s.fig1.frac_bgp_good
        );
        // Improvable tail exists but is small.
        assert!(
            s.fig1.frac_improvable_5ms < 0.25,
            "improvable {:.2} too large",
            s.fig1.frac_improvable_5ms
        );
        assert!(s.fig1.groups > 50);
    }

    #[test]
    fn ci_band_brackets_point_estimate() {
        let s = quick_study();
        // At any x, lower-bound CDF ≥ point CDF ≥ upper-bound CDF (stochastic
        // ordering: lower bounds are smaller values).
        for x in [-5.0, -1.0, 0.0, 1.0, 5.0] {
            let lo = s.fig1.ci_lower.fraction_leq(x);
            let pt = s.fig1.diff.fraction_leq(x);
            let hi = s.fig1.ci_upper.fraction_leq(x);
            assert!(lo >= pt - 1e-9, "at {x}: lower {lo} < point {pt}");
            assert!(pt >= hi - 1e-9, "at {x}: point {pt} < upper {hi}");
        }
    }

    #[test]
    fn fig2_exists_and_is_concentrated() {
        let s = quick_study();
        let c = s.fig2.peer_vs_transit.as_ref().expect("peer/transit data");
        // Distribution should be concentrated near zero: most mass in ±10ms.
        let central = c.fraction_leq(10.0) - c.fraction_leq(-10.0 - 1e-9);
        assert!(central > 0.6, "only {central:.2} within ±10ms");
    }

    #[test]
    fn episode_analysis_fractions_in_range() {
        let s = quick_study();
        for v in [
            s.episodes.degrade_together,
            s.episodes.frac_windows_degraded,
            s.episodes.frac_windows_improvable,
            s.episodes.persistent_beater_fraction,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
        // First §3.1.1 observation: degradations are substantially
        // correlated across a destination's routes.
        assert!(
            s.episodes.degrade_together > 0.2,
            "degrade-together {:.3}",
            s.episodes.degrade_together
        );
        // Third observation: persistent beaters exist among the alternates
        // that ever beat BGP.
        assert!(s.episodes.persistent_beater_fraction > 0.0);
    }

    #[test]
    fn bandwidth_results_qualitatively_match_latency() {
        // §3.1: similar story for bandwidth — only a small fraction of
        // traffic has a meaningfully better alternate.
        let s = quick_study();
        assert!(
            s.bandwidth_improvable < 0.25,
            "bandwidth improvable {:.2}",
            s.bandwidth_improvable
        );
    }

    #[test]
    fn faulted_study_flags_partial_coverage_and_keeps_shape() {
        let mut config = ScenarioConfig::facebook(3, Scale::Test);
        config.faults = Some(bb_netsim::FaultConfig::light());
        let scenario = Scenario::build(config);
        let cfg = SprayConfig {
            days: 1.0,
            window_stride: 8,
            sessions_per_window: 5,
            ..Default::default()
        };
        let s = run(&scenario, &cfg).expect("light faults leave enough data");
        assert!(
            s.fig1.coverage.is_partial(),
            "light churn must drop some windows: {:?}",
            s.fig1.coverage
        );
        assert!(s.fig1.coverage.fraction() > 0.8, "{:?}", s.fig1.coverage);
        assert!(s.fig1.render().contains("partial data"));
        // The paper's headline survives realistic data loss.
        assert!(s.fig1.frac_bgp_good > 0.7, "{:.2}", s.fig1.frac_bgp_good);
        assert!(
            s.fig1.frac_improvable_5ms < 0.25,
            "{:.2}",
            s.fig1.frac_improvable_5ms
        );
    }

    #[test]
    fn renders_do_not_panic() {
        let s = quick_study();
        assert!(s.fig1.render().contains("Figure 1"));
        assert!(s.fig2.render().contains("Figure 2"));
        assert!(s.episodes.render().contains("episodes"));
    }
}
