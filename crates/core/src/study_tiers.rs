//! Study C (§3.3): Premium Tier (private WAN) vs Standard Tier (public
//! Internet) to a US-Central data center.
//!
//! Applies the paper's vantage-point filter — "vantage points whose route
//! to the Standard Tier includes at least one intermediate AS between the
//! vantage point's AS and Google, but whose route to the Premium Tier
//! enters Google directly from the vantage point's AS" — and reports the
//! per-country median latency difference plus the ingress-distance and
//! goodput statistics.

use crate::error::{BbError, BbResult};
use crate::figures::{CountryDiff, Coverage, Fig5};
use crate::world::Scenario;
use bb_cdn::{Tier, TierDeployment};
use bb_geo::CityId;
use bb_measure::{probe_tiers, select_vantage_points, ProbeConfig, TierProbe, VantagePoint};
use bb_netsim::goodput::transfer_time_s;
use std::collections::BTreeMap;

/// Results of the tiers study.
pub struct TiersStudy {
    pub fig5: Fig5,
    /// §4 fn.3: weighted median of (Standard − Premium) 10 MB download time
    /// across qualifying VPs, seconds (paper: "saw little difference").
    pub goodput_diff_s: f64,
    pub datacenter: CityId,
    pub probes: Vec<TierProbe>,
    pub vantage_points: Vec<VantagePoint>,
}

/// Run the study against the US-Central data center.
pub fn run(scenario: &Scenario, probe_cfg: &ProbeConfig) -> BbResult<TiersStudy> {
    let (us, _) = bb_geo::country::by_code("US").expect("US exists");
    let us_metro = scenario.topo.atlas.main_metro(us).id;
    let datacenter = if scenario.provider.has_pop(us_metro) {
        us_metro
    } else {
        scenario.provider.pops[0]
    };
    run_with_datacenter(scenario, probe_cfg, datacenter)
}

/// Run against an arbitrary data-center PoP.
pub fn run_with_datacenter(
    scenario: &Scenario,
    probe_cfg: &ProbeConfig,
    datacenter: CityId,
) -> BbResult<TiersStudy> {
    let premium = TierDeployment::deploy(&scenario.topo, &scenario.provider, datacenter, Tier::Premium);
    let standard =
        TierDeployment::deploy(&scenario.topo, &scenario.provider, datacenter, Tier::Standard);
    let vps = select_vantage_points(&scenario.topo, scenario.config.seed ^ 0x_77);
    let probes = probe_tiers(
        &scenario.topo,
        &scenario.provider,
        &premium,
        &standard,
        &vps,
        &scenario.congestion,
        scenario.fault_plane(),
        probe_cfg,
    );
    analyze(scenario, datacenter, vps, probes)
}

/// Analyze collected probes.
///
/// Rounds lost to the fault plane carry NaN RTTs and are excluded from the
/// per-VP medians; Figure 5 carries the resulting coverage. Errors with
/// [`BbError::InsufficientData`] when no qualifying vantage point keeps a
/// measurable round on both tiers.
pub fn analyze(
    scenario: &Scenario,
    datacenter: CityId,
    vps: Vec<VantagePoint>,
    probes: Vec<TierProbe>,
) -> BbResult<TiersStudy> {
    let rounds_total = probes.len() as u64;
    let rounds_kept = probes.iter().filter(|p| p.rtt_ms.is_finite()).count() as u64;
    // Per-VP per-tier medians + qualification flags.
    struct VpAgg {
        premium: Vec<f64>,
        standard: Vec<f64>,
        premium_direct: bool,
        standard_indirect: bool,
        premium_ingress_km: f64,
        standard_ingress_km: f64,
    }
    // BTreeMap: iteration order feeds the qualifying-VP list and the
    // figures downstream, so it must not depend on hash state.
    let mut per_vp: BTreeMap<usize, VpAgg> = BTreeMap::new();
    for p in &probes {
        let agg = per_vp.entry(p.vp_index).or_insert(VpAgg {
            premium: Vec::new(),
            standard: Vec::new(),
            premium_direct: false,
            standard_indirect: false,
            premium_ingress_km: f64::NAN,
            standard_ingress_km: f64::NAN,
        });
        match p.tier {
            Tier::Premium => {
                if p.rtt_ms.is_finite() {
                    agg.premium.push(p.rtt_ms);
                }
                agg.premium_direct = p.intermediate_ases == 0;
                agg.premium_ingress_km = p.ingress_distance_km;
            }
            Tier::Standard => {
                if p.rtt_ms.is_finite() {
                    agg.standard.push(p.rtt_ms);
                }
                agg.standard_indirect = p.intermediate_ases >= 1;
                agg.standard_ingress_km = p.ingress_distance_km;
            }
        }
    }

    // Ingress statistics over ALL VPs with both tiers measured (the 80%/10%
    // traceroute statistic precedes the paper's VP filter).
    let both: Vec<&VpAgg> = per_vp
        .values()
        .filter(|a| !a.premium.is_empty() && !a.standard.is_empty())
        .collect();
    let frac_within = |f: &dyn Fn(&VpAgg) -> f64| {
        let close = both.iter().filter(|a| f(a) <= 400.0).count();
        close as f64 / both.len().max(1) as f64
    };
    let premium_ingress_within_400km = frac_within(&|a| a.premium_ingress_km);
    let standard_ingress_within_400km = frac_within(&|a| a.standard_ingress_km);

    // Qualifying VPs per the paper's filter.
    let qualifying: Vec<(usize, f64)> = per_vp
        .iter()
        .filter(|(_, a)| {
            !a.premium.is_empty() && !a.standard.is_empty() && a.premium_direct && a.standard_indirect
        })
        .map(|(&vi, a)| {
            let med = |v: &[f64]| bb_stats::median_unsorted(v).expect("non-empty tier series");
            (vi, med(&a.standard) - med(&a.premium))
        })
        .collect();

    // Per-country medians, weighted by VP user counts.
    let mut per_country: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
    for &(vi, diff) in &qualifying {
        let vp = &vps[vi];
        per_country
            .entry(vp.country)
            .or_default()
            .push((diff, vp.users_m.max(1e-6)));
    }
    let mut rows: Vec<CountryDiff> = per_country
        .into_iter()
        .map(|(country, points)| {
            let c = &scenario.topo.atlas.countries[country];
            let vantage_points = points.len();
            CountryDiff {
                code: c.code,
                name: c.name,
                region: c.region,
                median_diff_ms: bb_stats::weighted_median(&points).unwrap(),
                vantage_points,
                users_m: c.users_m,
            }
        })
        .collect();
    rows.sort_by(|a, b| a.code.cmp(b.code));

    if qualifying.is_empty() {
        return Err(BbError::insufficient(
            "fig5 qualifying vantage points",
            0,
            1,
        ));
    }
    let fig5 = Fig5 {
        rows,
        premium_ingress_within_400km,
        standard_ingress_within_400km,
        qualifying_vps: qualifying.len(),
        coverage: Coverage::new(rounds_kept, rounds_total),
    };

    // Goodput (10 MB transfer-time) comparison across qualifying VPs.
    let mut goodput_points = Vec::new();
    for &(vi, _) in &qualifying {
        let agg = &per_vp[&vi];
        let vp = &vps[vi];
        let med = |v: &[f64]| bb_stats::median_unsorted(v).expect("non-empty tier series");
        // Bottleneck utilization proxy: the VP's last-mile at a neutral hour.
        let util = 0.5;
        let access = 80.0;
        let t_std = transfer_time_s(10e6, med(&agg.standard), util, access);
        let t_prem = transfer_time_s(10e6, med(&agg.premium), util, access);
        goodput_points.push((t_std - t_prem, vp.users_m.max(1e-6)));
    }
    let goodput_diff_s = bb_stats::weighted_median(&goodput_points).unwrap_or(0.0);

    Ok(TiersStudy {
        fig5,
        goodput_diff_s,
        datacenter,
        probes,
        vantage_points: vps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Scale, ScenarioConfig};

    fn quick_study() -> (Scenario, TiersStudy) {
        let scenario = Scenario::build(ScenarioConfig::google(6, Scale::Test));
        let cfg = ProbeConfig {
            rounds: 4,
            ..Default::default()
        };
        let s = run(&scenario, &cfg).expect("fault-free study succeeds");
        (scenario, s)
    }

    #[test]
    fn has_qualifying_vps_and_countries() {
        let (_, s) = quick_study();
        assert!(s.fig5.qualifying_vps > 5, "got {}", s.fig5.qualifying_vps);
        assert!(s.fig5.rows.len() >= 3, "got {} countries", s.fig5.rows.len());
    }

    #[test]
    fn premium_ingress_nearer_than_standard() {
        let (_, s) = quick_study();
        assert!(
            s.fig5.premium_ingress_within_400km > s.fig5.standard_ingress_within_400km,
            "premium {:.2} vs standard {:.2}",
            s.fig5.premium_ingress_within_400km,
            s.fig5.standard_ingress_within_400km
        );
    }

    #[test]
    fn goodput_difference_is_small() {
        // §4 fn.3: "saw little difference" — under a second either way for
        // a 10 MB transfer.
        let (_, s) = quick_study();
        assert!(
            s.goodput_diff_s.abs() < 1.0,
            "goodput diff {:.2}s",
            s.goodput_diff_s
        );
    }

    #[test]
    fn diffs_are_bounded() {
        let (_, s) = quick_study();
        for row in &s.fig5.rows {
            assert!(
                row.median_diff_ms.abs() < 500.0,
                "{}: {}",
                row.code,
                row.median_diff_ms
            );
            assert!(row.vantage_points > 0);
        }
    }

    #[test]
    fn render_mentions_ingress_stats() {
        let (_, s) = quick_study();
        let txt = s.fig5.render();
        assert!(txt.contains("Figure 5"));
        assert!(txt.contains("ingress"));
    }
}
