//! Scenario assembly: one struct holding everything a study needs.

use crate::error::{BbError, BbResult};
use bb_cdn::{build_provider, Provider, ProviderConfig};
use bb_netsim::{CongestionConfig, CongestionModel, FaultConfig, FaultPlane};
use bb_topology::{generate, SnapshotConfig, Topology, TopologyConfig};
use bb_workload::{generate_workload, Workload, WorkloadConfig};
use serde::Serialize;

/// How big a world to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scale {
    /// Small topology for tests and quick runs (~100 ASes).
    Test,
    /// Full default topology (~400 ASes, every country populated).
    Full,
    /// Denser world (~900 ASes, ~2× cities, finer eyeball granularity) for
    /// users who want statistics closer to provider scale. Experiments run
    /// in tens of seconds instead of seconds.
    Large,
    /// Internet-sized world (≥50k ASes). Route propagation at this scale
    /// rides the interned-path arena and the frontier worklist; it is meant
    /// for `repro propagate` and targeted studies, not the full figure
    /// pipeline.
    Planet,
}

/// Everything needed to build a [`Scenario`].
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioConfig {
    pub seed: u64,
    pub topology: TopologyConfig,
    pub provider: ProviderConfig,
    pub workload: WorkloadConfig,
    pub congestion: CongestionConfig,
    /// Multiplier on every (non-content) AS's exit fidelity. 1.0 keeps the
    /// topology defaults; <1.0 models an era/market where interior exit
    /// selection tracked geography even less (used by the Microsoft-2015
    /// scenario, whose measured anycast catchments were notoriously loose).
    pub exit_fidelity_factor: f64,
    /// Measurement fault plane (`--faults light|heavy`). `None` runs the
    /// fault-free pipelines, byte-identical to the pre-fault baseline.
    pub faults: Option<FaultConfig>,
    /// Path to a CAIDA-style AS-relationship snapshot. When set, the
    /// topology is ingested from the snapshot (via the same construction
    /// path) instead of generated; `topology.seed` and `topology.atlas`
    /// still drive the synthetic geography.
    pub snapshot: Option<String>,
}

impl ScenarioConfig {
    /// The topology preset behind each `--scale` tier.
    pub fn topology_for(scale: Scale, seed: u64) -> TopologyConfig {
        match scale {
            Scale::Test => TopologyConfig::small(seed),
            Scale::Full => TopologyConfig {
                seed,
                ..Default::default()
            },
            Scale::Large => TopologyConfig {
                seed,
                atlas: bb_geo::atlas::AtlasConfig {
                    seed: seed ^ 0x_1a1a,
                    city_density: 1.4,
                },
                n_tier1: 14,
                transits_per_region: 7,
                global_transits: 10,
                eyeball_users_per_as_m: 12.0,
                max_eyeballs_per_country: 20,
                ..Default::default()
            },
            // ~4.3B modeled users / 0.075M per AS, capped per country:
            // ≥50k eyeballs plus a dense transit layer.
            Scale::Planet => TopologyConfig {
                seed,
                atlas: bb_geo::atlas::AtlasConfig {
                    seed: seed ^ 0x_91a7,
                    city_density: 2.0,
                },
                n_tier1: 16,
                transits_per_region: 24,
                global_transits: 12,
                eyeball_users_per_as_m: 0.075,
                max_eyeballs_per_country: 20_000,
                ..Default::default()
            },
        }
    }

    /// The §2.3.1 world: Facebook-like provider, wide PNI deployment.
    pub fn facebook(seed: u64, scale: Scale) -> Self {
        Self {
            seed,
            topology: Self::topology_for(scale, seed ^ 0x_0f0f),
            provider: ProviderConfig::facebook_like(seed ^ 0x_1111),
            workload: WorkloadConfig {
                seed: seed ^ 0x_2222,
                ..Default::default()
            },
            congestion: CongestionConfig::default(),
            exit_fidelity_factor: 1.0,
            faults: None,
            snapshot: None,
        }
    }

    /// Fingerprint of every input that shapes the *world* — topology,
    /// provider, workload, the exit-fidelity knob, and the snapshot path —
    /// but not the congestion or fault planes, which never influence
    /// target/route computation. Keys the process-wide spray-target memo
    /// ([`bb_measure::SprayConfig::targets_memo`]): two configs with equal
    /// keys build identical topologies, providers, and workloads, so their
    /// spray targets are interchangeable.
    ///
    /// Every field is folded explicitly (floats via their IEEE-754 bits)
    /// rather than through `Debug` formatting: `{:?}` renderings are not a
    /// stable serialization — they change with field order, float
    /// formatting, and derive output across compiler versions, and two
    /// different values can print identically.
    pub fn world_key(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.seed);
        // TopologyConfig.
        let t = &self.topology;
        h.word(t.seed);
        h.word(t.atlas.seed);
        h.f64(t.atlas.city_density);
        h.word(t.n_tier1 as u64);
        h.word(t.transits_per_region as u64);
        h.word(t.global_transits as u64);
        h.f64(t.eyeball_users_per_as_m);
        h.word(t.max_eyeballs_per_country as u64);
        h.word(t.tier1_exit as u64);
        // ProviderConfig.
        let p = &self.provider;
        h.word(p.seed);
        h.bytes(p.name.as_bytes());
        h.f64(p.pop_country_min_users_m);
        h.word(p.max_pops as u64);
        h.f64(p.pni_min_share);
        h.f64(p.public_peer_min_share);
        h.word(p.transit_tier1s as u64);
        h.f64(p.pni_capacity_factor);
        h.f64(p.remote_peering_prob);
        // WorkloadConfig.
        let w = &self.workload;
        h.word(w.seed);
        h.f64(w.activity_sigma);
        h.f64(w.public_resolver_fraction);
        h.f64(w.isp_ecs_fraction);
        h.f64(w.access_mbps.0);
        h.f64(w.access_mbps.1);
        h.f64(self.exit_fidelity_factor);
        match &self.snapshot {
            None => h.word(0),
            Some(path) => {
                h.word(1);
                h.bytes(path.as_bytes());
            }
        }
        h.finish()
    }

    /// The §2.3.2 world: Microsoft-like anycast CDN.
    pub fn microsoft(seed: u64, scale: Scale) -> Self {
        Self {
            provider: ProviderConfig::microsoft_like(seed ^ 0x_1111),
            exit_fidelity_factor: 0.72,
            ..Self::facebook(seed, scale)
        }
    }

    /// The §2.3.3 world: Google-like cloud with a very wide edge.
    pub fn google(seed: u64, scale: Scale) -> Self {
        Self {
            provider: ProviderConfig::google_like(seed ^ 0x_1111),
            ..Self::facebook(seed, scale)
        }
    }
}

/// FNV-1a folding helper: stable, dependency-free, and collision-safe
/// enough for a handful of scenario configs per process.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0x_cbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x_0000_0100_0000_01b3);
        }
    }

    fn word(&mut self, w: u64) {
        self.bytes(&w.to_le_bytes());
    }

    fn f64(&mut self, x: f64) {
        self.word(x.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A built world: topology with provider attached, workload, congestion.
pub struct Scenario {
    pub config: ScenarioConfig,
    pub topo: Topology,
    pub provider: Provider,
    pub workload: Workload,
    pub congestion: CongestionModel,
    /// Built from `config.faults`; `None` means fault-free pipelines.
    pub faults: Option<FaultPlane>,
}

impl Scenario {
    /// Build the world from a config, panicking on bad inputs. Prefer
    /// [`Scenario::try_build`] where an unreadable snapshot should surface
    /// as a usage error instead of a crash.
    pub fn build(config: ScenarioConfig) -> Scenario {
        Self::try_build(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build the world from a config. Snapshot ingestion failures (missing
    /// file, malformed lines, unanchorable hierarchy) come back as
    /// [`BbError::Usage`].
    pub fn try_build(config: ScenarioConfig) -> BbResult<Scenario> {
        let mut topo = match &config.snapshot {
            Some(path) => {
                let snap_cfg = SnapshotConfig {
                    seed: config.topology.seed,
                    atlas: config.topology.atlas.clone(),
                    max_ases: None,
                };
                bb_topology::load_snapshot_file(std::path::Path::new(path), &snap_cfg)
                    .map_err(|e| BbError::usage(format!("snapshot {path}: {e}")))?
            }
            None => generate(&config.topology),
        };
        if config.exit_fidelity_factor < 1.0 {
            let ids: Vec<_> = topo.ases().iter().map(|a| (a.id, a.exit_fidelity)).collect();
            for (id, f) in ids {
                topo.set_exit_fidelity(id, f * config.exit_fidelity_factor);
            }
        }
        let provider = build_provider(&mut topo, &config.provider);
        let workload = generate_workload(&topo, &config.workload);
        let congestion = CongestionModel::new(config.seed ^ 0x_c01d, config.congestion.clone());
        let faults = config
            .faults
            .as_ref()
            .map(|f| FaultPlane::new(config.seed ^ 0x_0bad, f.clone()));
        Ok(Scenario {
            config,
            topo,
            provider,
            workload,
            congestion,
            faults,
        })
    }

    /// The fault plane to hand to the measurement pipelines.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.faults.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_scale_builds_quickly_and_validates() {
        let s = Scenario::build(ScenarioConfig::facebook(1, Scale::Test));
        bb_topology::validate::validate(&s.topo).unwrap();
        assert!(!s.workload.prefixes.is_empty());
        assert!(!s.provider.pops.is_empty());
    }

    #[test]
    fn presets_differ_in_provider_breadth() {
        let g = Scenario::build(ScenarioConfig::google(1, Scale::Test));
        let m = Scenario::build(ScenarioConfig::microsoft(1, Scale::Test));
        assert!(g.provider.pops.len() > m.provider.pops.len());
    }

    #[test]
    fn deterministic_build() {
        let a = Scenario::build(ScenarioConfig::facebook(5, Scale::Test));
        let b = Scenario::build(ScenarioConfig::facebook(5, Scale::Test));
        assert_eq!(a.topo.as_count(), b.topo.as_count());
        assert_eq!(a.workload.prefixes.len(), b.workload.prefixes.len());
        assert_eq!(a.provider.pops, b.provider.pops);
    }

    #[test]
    fn world_key_stable_and_distinct_across_presets() {
        // Stability: equal configs hash equally, rebuilt from scratch.
        assert_eq!(
            ScenarioConfig::facebook(7, Scale::Test).world_key(),
            ScenarioConfig::facebook(7, Scale::Test).world_key()
        );
        // Inequality across all three provider presets and across the
        // other world-shaping inputs.
        let fb = ScenarioConfig::facebook(7, Scale::Test).world_key();
        let ms = ScenarioConfig::microsoft(7, Scale::Test).world_key();
        let gg = ScenarioConfig::google(7, Scale::Test).world_key();
        assert_ne!(fb, ms);
        assert_ne!(fb, gg);
        assert_ne!(ms, gg);
        assert_ne!(fb, ScenarioConfig::facebook(8, Scale::Test).world_key());
        assert_ne!(fb, ScenarioConfig::facebook(7, Scale::Full).world_key());
        let mut snap = ScenarioConfig::facebook(7, Scale::Test);
        snap.snapshot = Some("as-rel.txt".into());
        assert_ne!(fb, snap.world_key());
    }

    #[test]
    fn world_key_sees_float_bit_changes() {
        // The old Debug-string fingerprint collapsed values whose `{:?}`
        // renderings coincide; the explicit folding must see any bit-level
        // field change.
        let base = ScenarioConfig::facebook(7, Scale::Test);
        let mut tweaked = base.clone();
        tweaked.exit_fidelity_factor = f64::from_bits(base.exit_fidelity_factor.to_bits() + 1);
        assert_ne!(base.world_key(), tweaked.world_key());
    }

    #[test]
    fn congestion_and_faults_do_not_shape_world_key() {
        let base = ScenarioConfig::facebook(7, Scale::Test);
        let mut faulted = base.clone();
        faulted.faults = Some(bb_netsim::FaultConfig::light());
        assert_eq!(base.world_key(), faulted.world_key());
    }

    #[test]
    fn planet_topology_config_is_internet_sized() {
        let t = ScenarioConfig::topology_for(Scale::Planet, 1);
        // ≥50k eyeballs before capping: world users / users-per-AS.
        assert!(t.eyeball_users_per_as_m <= 0.1);
        assert!(t.max_eyeballs_per_country >= 10_000);
        assert!(t.n_tier1 >= 14);
    }

    #[test]
    fn snapshot_build_routes_like_generated_worlds() {
        let dir = std::env::temp_dir().join("bb-core-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("as-rel.txt");
        std::fs::write(&path, "1|2|-1\n1|3|-1\n2|3|0\n2|4|-1\n3|5|-1\n4|5|0\n").unwrap();
        let mut cfg = ScenarioConfig::facebook(3, Scale::Test);
        cfg.snapshot = Some(path.to_string_lossy().into_owned());
        let s = Scenario::try_build(cfg).unwrap();
        assert_eq!(s.topo.as_count(), 5 + 1, "5 snapshot ASes + provider");
        bb_topology::validate::validate(&s.topo).unwrap();
        assert!(!s.workload.prefixes.is_empty());
    }

    #[test]
    fn missing_snapshot_is_a_usage_error() {
        let mut cfg = ScenarioConfig::facebook(3, Scale::Test);
        cfg.snapshot = Some("/nonexistent/as-rel.txt".into());
        let err = Scenario::try_build(cfg).err().expect("must fail");
        match err {
            BbError::Usage { message } => {
                assert!(message.contains("/nonexistent/as-rel.txt"), "{message}")
            }
            other => panic!("expected usage error, got {other}"),
        }
    }
}
