//! Scenario assembly: one struct holding everything a study needs.

use bb_cdn::{build_provider, Provider, ProviderConfig};
use bb_netsim::{CongestionConfig, CongestionModel, FaultConfig, FaultPlane};
use bb_topology::{generate, Topology, TopologyConfig};
use bb_workload::{generate_workload, Workload, WorkloadConfig};
use serde::Serialize;

/// How big a world to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scale {
    /// Small topology for tests and quick runs (~100 ASes).
    Test,
    /// Full default topology (~400 ASes, every country populated).
    Full,
    /// Denser world (~900 ASes, ~2× cities, finer eyeball granularity) for
    /// users who want statistics closer to provider scale. Experiments run
    /// in tens of seconds instead of seconds.
    Large,
}

/// Everything needed to build a [`Scenario`].
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioConfig {
    pub seed: u64,
    pub topology: TopologyConfig,
    pub provider: ProviderConfig,
    pub workload: WorkloadConfig,
    pub congestion: CongestionConfig,
    /// Multiplier on every (non-content) AS's exit fidelity. 1.0 keeps the
    /// topology defaults; <1.0 models an era/market where interior exit
    /// selection tracked geography even less (used by the Microsoft-2015
    /// scenario, whose measured anycast catchments were notoriously loose).
    pub exit_fidelity_factor: f64,
    /// Measurement fault plane (`--faults light|heavy`). `None` runs the
    /// fault-free pipelines, byte-identical to the pre-fault baseline.
    pub faults: Option<FaultConfig>,
}

impl ScenarioConfig {
    fn topology_for(scale: Scale, seed: u64) -> TopologyConfig {
        match scale {
            Scale::Test => TopologyConfig::small(seed),
            Scale::Full => TopologyConfig {
                seed,
                ..Default::default()
            },
            Scale::Large => TopologyConfig {
                seed,
                atlas: bb_geo::atlas::AtlasConfig {
                    seed: seed ^ 0x_1a1a,
                    city_density: 1.4,
                },
                n_tier1: 14,
                transits_per_region: 7,
                global_transits: 10,
                eyeball_users_per_as_m: 12.0,
                max_eyeballs_per_country: 20,
                ..Default::default()
            },
        }
    }

    /// The §2.3.1 world: Facebook-like provider, wide PNI deployment.
    pub fn facebook(seed: u64, scale: Scale) -> Self {
        Self {
            seed,
            topology: Self::topology_for(scale, seed ^ 0x_0f0f),
            provider: ProviderConfig::facebook_like(seed ^ 0x_1111),
            workload: WorkloadConfig {
                seed: seed ^ 0x_2222,
                ..Default::default()
            },
            congestion: CongestionConfig::default(),
            exit_fidelity_factor: 1.0,
            faults: None,
        }
    }

    /// Fingerprint of every input that shapes the *world* — topology,
    /// provider, workload, and the exit-fidelity knob — but not the
    /// congestion or fault planes, which never influence target/route
    /// computation. Keys the process-wide spray-target memo
    /// ([`bb_measure::SprayConfig::targets_memo`]): two configs with equal
    /// keys build identical topologies, providers, and workloads, so their
    /// spray targets are interchangeable.
    pub fn world_key(&self) -> u64 {
        let blob = format!(
            "{};{:?};{:?};{:?};{}",
            self.seed, self.topology, self.provider, self.workload, self.exit_fidelity_factor,
        );
        // FNV-1a: stable, dependency-free, and collision-safe enough for a
        // handful of scenario configs per process.
        let mut h: u64 = 0x_cbf2_9ce4_8422_2325;
        for b in blob.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x_0000_0100_0000_01b3);
        }
        h
    }

    /// The §2.3.2 world: Microsoft-like anycast CDN.
    pub fn microsoft(seed: u64, scale: Scale) -> Self {
        Self {
            provider: ProviderConfig::microsoft_like(seed ^ 0x_1111),
            exit_fidelity_factor: 0.72,
            ..Self::facebook(seed, scale)
        }
    }

    /// The §2.3.3 world: Google-like cloud with a very wide edge.
    pub fn google(seed: u64, scale: Scale) -> Self {
        Self {
            provider: ProviderConfig::google_like(seed ^ 0x_1111),
            ..Self::facebook(seed, scale)
        }
    }
}

/// A built world: topology with provider attached, workload, congestion.
pub struct Scenario {
    pub config: ScenarioConfig,
    pub topo: Topology,
    pub provider: Provider,
    pub workload: Workload,
    pub congestion: CongestionModel,
    /// Built from `config.faults`; `None` means fault-free pipelines.
    pub faults: Option<FaultPlane>,
}

impl Scenario {
    /// Build the world from a config.
    pub fn build(config: ScenarioConfig) -> Scenario {
        let mut topo = generate(&config.topology);
        if config.exit_fidelity_factor < 1.0 {
            let ids: Vec<_> = topo.ases().iter().map(|a| (a.id, a.exit_fidelity)).collect();
            for (id, f) in ids {
                topo.set_exit_fidelity(id, f * config.exit_fidelity_factor);
            }
        }
        let provider = build_provider(&mut topo, &config.provider);
        let workload = generate_workload(&topo, &config.workload);
        let congestion = CongestionModel::new(config.seed ^ 0x_c01d, config.congestion.clone());
        let faults = config
            .faults
            .as_ref()
            .map(|f| FaultPlane::new(config.seed ^ 0x_0bad, f.clone()));
        Scenario {
            config,
            topo,
            provider,
            workload,
            congestion,
            faults,
        }
    }

    /// The fault plane to hand to the measurement pipelines.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.faults.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_scale_builds_quickly_and_validates() {
        let s = Scenario::build(ScenarioConfig::facebook(1, Scale::Test));
        bb_topology::validate::validate(&s.topo).unwrap();
        assert!(!s.workload.prefixes.is_empty());
        assert!(!s.provider.pops.is_empty());
    }

    #[test]
    fn presets_differ_in_provider_breadth() {
        let g = Scenario::build(ScenarioConfig::google(1, Scale::Test));
        let m = Scenario::build(ScenarioConfig::microsoft(1, Scale::Test));
        assert!(g.provider.pops.len() > m.provider.pops.len());
    }

    #[test]
    fn deterministic_build() {
        let a = Scenario::build(ScenarioConfig::facebook(5, Scale::Test));
        let b = Scenario::build(ScenarioConfig::facebook(5, Scale::Test));
        assert_eq!(a.topo.as_count(), b.topo.as_count());
        assert_eq!(a.workload.prefixes.len(), b.workload.prefixes.len());
        assert_eq!(a.provider.pops, b.provider.pops);
    }
}
