//! Deterministic parallel execution for the studies.
//!
//! Two ideas, one crate:
//!
//! 1. [`par_map`] — a scoped work-claiming map over a slice. Workers claim
//!    indexes from an atomic counter and write results into pre-allocated
//!    per-item slots, so the output vector is always in input order and the
//!    result is **bit-identical** to a sequential run. Every study's RNG is
//!    already seeded per item (see [`derive_seed`]), so parallelism never
//!    changes which random draws an item sees — only when they happen.
//!
//! 2. [`cached_routes`] — a process-wide memo of
//!    [`bb_bgp::compute_routes`] keyed on `(topology content fingerprint,
//!    announcement content)`. Route propagation dominates every study's
//!    runtime, and the
//!    same announcement (a full-table unicast origin, an anycast deployment
//!    under evaluation) is recomputed across spray target building,
//!    catchment evaluation, tier comparison, and the grooming/site-count/
//!    availability loops. The cache hands out `Arc<RoutingTable>` clones.
//!
//! [`set_jobs`] / [`jobs`] control the worker count (`--jobs N`);
//! [`timing`] collects per-label wall-clock and cache hit/miss counts for
//! `--timing` reports.

use bb_bgp::{try_compute_routes, Announcement, AnnouncementError, Offer, RoutingTable};
use bb_topology::{InterconnectId, Topology};

pub mod orchestrator;
pub mod supervisor;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Worker-count control
// ---------------------------------------------------------------------------

/// 0 = "not set, use available cores".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker count used by [`par_map`]. `0` resets to the default
/// (available cores). Typically called once from `--jobs N`.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// Current worker count: the value from [`set_jobs`], or available cores.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

// ---------------------------------------------------------------------------
// Deterministic per-item seeding
// ---------------------------------------------------------------------------

/// Derive an independent per-item seed from a base seed and an item index.
///
/// SplitMix64 finalizer over `seed ^ index`: adjacent indexes land far
/// apart, and the result depends only on `(seed, index)` — never on thread
/// schedule — which is what makes parallel runs reproduce sequential ones.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Scoped work-claiming parallel map
// ---------------------------------------------------------------------------

/// Map `f` over `items` on up to [`jobs`] scoped worker threads, returning
/// results **in input order**.
///
/// `f` receives `(index, &item)`. Each worker claims the next unprocessed
/// index from a shared atomic counter (dynamic load balancing: one slow
/// item does not idle the other workers behind a static partition) and
/// writes the result into that index's slot. Because each item's work is a
/// pure function of `(index, item)` — callers derive any RNG from
/// [`derive_seed`] — the output is identical for every worker count,
/// including `jobs = 1`, which short-circuits to a plain sequential loop.
///
/// Panics in `f` propagate after all workers stop claiming new items.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = AtomicUsize::new(0);

    // Hand each worker a disjoint view of the slots through a raw pointer;
    // the claim counter guarantees every index is written by exactly one
    // worker, and the scope joins all workers before `slots` is read.
    struct SlotPtr<R>(*mut Option<R>);
    unsafe impl<R: Send> Sync for SlotPtr<R> {}
    let slot_ptr = SlotPtr(slots.as_mut_ptr());
    let slot_ref = &slot_ptr;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i, &items[i]);
                // SAFETY: `i` came from a unique fetch_add claim, so no two
                // workers ever touch the same slot, and the enclosing scope
                // outlives every worker.
                unsafe {
                    *slot_ref.0.add(i) = Some(out);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("par_map slot unfilled"))
        .collect()
}

// ---------------------------------------------------------------------------
// Panic-isolating parallel map
// ---------------------------------------------------------------------------

/// Why one item of a [`par_map_isolated`] call failed.
#[derive(Debug, Clone)]
pub struct ItemFailure {
    /// Input index of the failed item.
    pub index: usize,
    /// Panic payload (if it was a `&str`/`String`), or the deadline report.
    pub message: String,
    /// Wall-clock the failing attempt ran before dying — every failure
    /// variant carries it, so supervision reports and
    /// `=== EXPERIMENT FAILED ===` blocks can say which unit died and how
    /// long it lived.
    pub elapsed: std::time::Duration,
    /// Whether the failure was an absorbed panic (vs a deadline overrun).
    pub panicked: bool,
}

impl std::fmt::Display for ItemFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "item {} (after {:.3}s): {}",
            self.index,
            self.elapsed.as_secs_f64(),
            self.message
        )
    }
}

/// Panics caught and converted to [`ItemFailure`]s since process start.
static PANICS_ISOLATED: AtomicUsize = AtomicUsize::new(0);

/// Items that finished but blew their advisory deadline, since start.
static DEADLINES_EXCEEDED: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of panics [`par_map_isolated`] absorbed.
pub fn panics_isolated() -> usize {
    PANICS_ISOLATED.load(Ordering::Relaxed)
}

/// Process-wide count of advisory per-item deadlines exceeded.
pub fn deadlines_exceeded() -> usize {
    DEADLINES_EXCEEDED.load(Ordering::Relaxed)
}

/// [`par_map`] with per-item panic isolation and an optional per-item
/// deadline: one poisoned item yields an `Err` slot instead of taking down
/// the whole run.
///
/// Shares the work-claiming engine with [`par_map`] (the wrapped closure
/// never unwinds, so the engine's in-order slot contract is preserved).
/// Each caught panic bumps the process-wide poison counter readable via
/// [`panics_isolated`].
///
/// The deadline is **advisory**: threads cannot be cancelled safely, and
/// dropping still-running items would make output depend on machine speed,
/// so an over-deadline item runs to completion and is *then* marked failed
/// (deterministically — callers decide whether to use the computed value).
/// Callers that need byte-stable output across machines simply pass `None`.
pub fn par_map_isolated<T, R, F>(
    items: &[T],
    deadline: Option<std::time::Duration>,
    f: F,
) -> Vec<Result<R, ItemFailure>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, |i, item| run_attempt(i, deadline, || f(i, item)))
}

/// Run one attempt of item `i` under `catch_unwind` plus the advisory
/// deadline check. Shared by [`par_map_isolated`] and the
/// [`supervisor`] retry loop so both report failures identically.
pub(crate) fn run_attempt<R>(
    i: usize,
    deadline: Option<std::time::Duration>,
    f: impl FnOnce() -> R,
) -> Result<R, ItemFailure> {
    let start = Instant::now();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    let elapsed = start.elapsed();
    match out {
        Ok(r) => {
            if let Some(limit) = deadline {
                if elapsed > limit {
                    DEADLINES_EXCEEDED.fetch_add(1, Ordering::Relaxed);
                    return Err(ItemFailure {
                        index: i,
                        message: format!(
                            "deadline exceeded: {:.3}s > {:.3}s",
                            elapsed.as_secs_f64(),
                            limit.as_secs_f64()
                        ),
                        elapsed,
                        panicked: false,
                    });
                }
            }
            Ok(r)
        }
        Err(payload) => {
            PANICS_ISOLATED.fetch_add(1, Ordering::Relaxed);
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(ItemFailure {
                index: i,
                message,
                elapsed,
                panicked: true,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Route-table cache
// ---------------------------------------------------------------------------

/// Content key for one `compute_routes` call: topology content plus the
/// announcement's full configuration.
///
/// The topology contributes its [`Topology::fingerprint`] (a fold of the
/// construction sequence), not its process-unique `uid`: two loads of the
/// same CAIDA snapshot — or the same generator config — produce the same
/// key and share cached tables, while any mutation changes the
/// fingerprint and keys a fresh entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AnnouncementKey {
    topo_content: u64,
    origin: bb_topology::AsId,
    offers: Vec<(InterconnectId, Offer)>,
}

impl AnnouncementKey {
    fn new(topo: &Topology, ann: &Announcement) -> Self {
        AnnouncementKey {
            topo_content: topo.fingerprint(),
            origin: ann.origin,
            // offers_detailed iterates the BTreeMap, so the Vec is canonical.
            offers: ann.offers_detailed().collect(),
        }
    }
}

struct RouteCache {
    tables: RwLock<HashMap<AnnouncementKey, Arc<RoutingTable>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

fn route_cache() -> &'static RouteCache {
    static CACHE: OnceLock<RouteCache> = OnceLock::new();
    CACHE.get_or_init(|| RouteCache {
        tables: RwLock::new(HashMap::new()),
        hits: AtomicUsize::new(0),
        misses: AtomicUsize::new(0),
    })
}

/// Memoized [`bb_bgp::compute_routes`].
///
/// Returns a shared routing table for `(topo, ann)`, computing it on first
/// use. Correctness rests on two invariants: `Topology::fingerprint`
/// changes on every topology mutation, and `compute_routes` is a pure
/// function of `(topology, announcement)`. Concurrent misses on the same
/// key may both compute; one result wins the insert and both callers get
/// equal tables.
///
/// Panics on an announcement that does not belong to `topo`; runtime
/// paths that can see foreign announcements (loaded snapshots) use
/// [`try_cached_routes`].
pub fn cached_routes(topo: &Topology, ann: &Announcement) -> Arc<RoutingTable> {
    try_cached_routes(topo, ann).unwrap_or_else(|e| panic!("{e}"))
}

/// [`cached_routes`], surfacing a mismatched announcement as an error the
/// caller maps to a usage failure instead of panicking a worker.
///
/// Each cache miss also publishes the table's RIB-memory and propagation
/// work under the `rib:*` timing counters, which `--timing-json` rolls up
/// into the perf report's `rib` section.
pub fn try_cached_routes(
    topo: &Topology,
    ann: &Announcement,
) -> Result<Arc<RoutingTable>, AnnouncementError> {
    let cache = route_cache();
    let key = AnnouncementKey::new(topo, ann);
    if let Some(table) = cache.tables.read().get(&key) {
        cache.hits.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(table));
    }
    cache.misses.fetch_add(1, Ordering::Relaxed);
    let table = Arc::new(try_compute_routes(topo, ann)?);
    let (considered, installed) = table.work();
    timing::add_count("rib:tables", 1);
    timing::add_count("rib:interned_bytes", table.interned_path_bytes());
    timing::add_count("rib:naive_bytes", table.naive_path_bytes());
    timing::add_count("rib:entry_pool_bytes", table.entry_pool_bytes());
    timing::add_count("rib:candidates_considered", considered as usize);
    timing::add_count("rib:candidates_installed", installed as usize);
    let mut w = cache.tables.write();
    Ok(Arc::clone(w.entry(key).or_insert(table)))
}

/// Drop every cached table (e.g. between unrelated experiment suites, or
/// in tests that want cold-cache behavior). Hit/miss counters survive.
pub fn clear_route_cache() {
    route_cache().tables.write().clear();
}

/// `(hits, misses, resident tables)` since process start.
pub fn cache_stats() -> (usize, usize, usize) {
    let cache = route_cache();
    (
        cache.hits.load(Ordering::Relaxed),
        cache.misses.load(Ordering::Relaxed),
        cache.tables.read().len(),
    )
}

// ---------------------------------------------------------------------------
// Timing instrumentation
// ---------------------------------------------------------------------------

pub mod timing {
    //! Opt-in wall-clock accounting for `--timing`.
    //!
    //! Labels accumulate total duration and call count; [`report`] renders
    //! them in label order plus the route-cache hit rate. Collection is
    //! always on (a mutex push per labelled region, negligible next to
    //! route propagation); rendering is the caller's choice.

    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    struct Entry {
        total: Duration,
        calls: usize,
    }

    fn registry() -> &'static Mutex<BTreeMap<String, Entry>> {
        static REG: OnceLock<Mutex<BTreeMap<String, Entry>>> = OnceLock::new();
        REG.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    fn counter_registry() -> &'static Mutex<BTreeMap<String, u64>> {
        static REG: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
        REG.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    /// Add `n` to the named event counter (e.g. RTT samples drawn). Called
    /// once per batch, never per event.
    pub fn add_count(label: &str, n: usize) {
        let mut reg = counter_registry().lock();
        *reg.entry(label.to_string()).or_insert(0) += n as u64;
    }

    /// All counters accumulated since the last [`reset`], label-sorted.
    pub fn counters() -> Vec<(String, u64)> {
        counter_registry()
            .lock()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// All timing phases accumulated since the last [`reset`]:
    /// `(label, total seconds, calls)`, label-sorted.
    pub fn snapshot() -> Vec<(String, f64, usize)> {
        registry()
            .lock()
            .iter()
            .map(|(k, e)| (k.clone(), e.total.as_secs_f64(), e.calls))
            .collect()
    }

    /// Add one observation of `label` taking `elapsed`.
    pub fn record(label: &str, elapsed: Duration) {
        let mut reg = registry().lock();
        let e = reg.entry(label.to_string()).or_insert(Entry {
            total: Duration::ZERO,
            calls: 0,
        });
        e.total += elapsed;
        e.calls += 1;
    }

    /// Time `f` under `label`, passing through its result.
    pub fn time<R>(label: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        record(label, start.elapsed());
        out
    }

    /// Forget all recorded timings and counters (tests; between repro
    /// invocations).
    pub fn reset() {
        registry().lock().clear();
        counter_registry().lock().clear();
    }

    /// Render the timing table plus route-cache counters.
    pub fn report() -> String {
        let reg = registry().lock();
        let mut out = String::from("--- timing ---\n");
        let width = reg.keys().map(|k| k.len()).max().unwrap_or(8).max(8);
        for (label, e) in reg.iter() {
            out.push_str(&format!(
                "{label:<width$}  {:>9.3}s  ({} calls)\n",
                e.total.as_secs_f64(),
                e.calls
            ));
        }
        for (label, n) in counters() {
            out.push_str(&format!("{label:<width$}  {n:>10} events\n"));
        }
        let (hits, misses, resident) = super::cache_stats();
        let total = hits + misses;
        let rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64 * 100.0
        };
        out.push_str(&format!(
            "route cache: {hits} hits / {misses} misses ({rate:.1}% hit rate), {resident} tables resident\n"
        ));
        out
    }
}

/// Convenience: run `f` and return `(result, wall_clock)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Advisory deadline telemetry for long-running loops (`repro serve`).
///
/// A streaming daemon cannot let a slow epoch change its output — killing
/// or retrying work on a wall-clock signal would make results depend on
/// machine speed, breaking byte-identity. So the watchdog is strictly
/// *observational*: each missed deadline bumps a counter (visible in
/// `--timing`/`--timing-json` and to the PR 7 supervisor's stall
/// heuristics via the heartbeat it feeds) and warns on stderr, and the
/// epoch's results land unchanged.
pub mod watchdog {
    use std::time::{Duration, Instant};

    /// Per-iteration deadline observer. Counts misses; never intervenes.
    #[derive(Debug, Clone, Copy)]
    pub struct Watchdog {
        budget: Duration,
        label: &'static str,
    }

    impl Watchdog {
        /// A watchdog that considers any iteration longer than `budget`
        /// a miss, reported under `{label}:deadline_missed`.
        pub fn new(label: &'static str, budget: Duration) -> Self {
            Watchdog { budget, label }
        }

        /// Observe one completed iteration that started at `start`.
        /// Returns `true` (and bumps the counter) on a miss.
        pub fn observe(&self, start: Instant) -> bool {
            let elapsed = start.elapsed();
            if elapsed <= self.budget {
                return false;
            }
            super::timing::add_count(&format!("{}:deadline_missed", self.label), 1);
            eprintln!(
                "watchdog: {} iteration took {:.3}s (budget {:.3}s) — \
                 continuing; results are unaffected",
                self.label,
                elapsed.as_secs_f64(),
                self.budget.as_secs_f64()
            );
            true
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn misses_are_counted_and_hits_are_not() {
            let wd = Watchdog::new("wdtest", Duration::from_secs(3600));
            assert!(!wd.observe(Instant::now()));
            let wd = Watchdog::new("wdtest", Duration::ZERO);
            let t = Instant::now() - Duration::from_millis(5);
            assert!(wd.observe(t));
            let n = crate::timing::counters()
                .into_iter()
                .find(|(l, _)| l == "wdtest:deadline_missed")
                .map(|(_, n)| n)
                .unwrap_or(0);
            assert!(n >= 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_sequential_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, &x: &u64| derive_seed(x, i as u64);
        set_jobs(1);
        let seq = par_map(&items, f);
        for jobs in [2, 3, 8] {
            set_jobs(jobs);
            assert_eq!(par_map(&items, f), seq, "jobs={jobs}");
        }
        set_jobs(0);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_isolated_contains_panics() {
        let items: Vec<u64> = (0..64).collect();
        let poisoned_before = panics_isolated();
        // Silence the default hook while we panic on purpose.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = par_map_isolated(&items, None, |_, &x| {
            if x % 10 == 3 {
                panic!("poisoned item {x}");
            }
            x * 2
        });
        std::panic::set_hook(prev);

        assert_eq!(out.len(), items.len());
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 3 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, i);
                assert!(e.message.contains("poisoned item"), "{e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64 * 2);
            }
        }
        assert_eq!(panics_isolated() - poisoned_before, 7, "0..64 has 7 items ≡3 mod 10");
    }

    #[test]
    fn par_map_isolated_deterministic_across_job_counts() {
        let items: Vec<u64> = (0..100).collect();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut runs: Vec<String> = Vec::new();
        for jobs in [1usize, 4] {
            set_jobs(jobs);
            let out = par_map_isolated(&items, None, |i, &x| {
                if x == 41 {
                    panic!("boom");
                }
                derive_seed(x, i as u64)
            });
            // Render without `elapsed` — wall-clock is measurement, not
            // payload, and legitimately varies run to run.
            let rendered: Vec<String> = out
                .iter()
                .map(|r| match r {
                    Ok(v) => format!("ok:{v}"),
                    Err(e) => format!("err:{}:{}:{}", e.index, e.panicked, e.message),
                })
                .collect();
            runs.push(rendered.join(","));
        }
        std::panic::set_hook(prev);
        set_jobs(0);
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn par_map_isolated_deadline_is_advisory() {
        let items = [5u64];
        let before = deadlines_exceeded();
        let out = par_map_isolated(
            &items,
            Some(std::time::Duration::from_nanos(1)),
            |_, &x| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                x
            },
        );
        // The item ran to completion but is marked failed afterwards.
        let e = out[0].as_ref().unwrap_err();
        assert!(e.message.contains("deadline exceeded"), "{e}");
        assert!(deadlines_exceeded() > before);

        // A generous deadline passes everything through untouched.
        let ok = par_map_isolated(&items, Some(std::time::Duration::from_secs(60)), |_, &x| x);
        assert_eq!(*ok[0].as_ref().unwrap(), 5);
    }

    #[test]
    fn derive_seed_decorrelates_indexes() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        assert_ne!(a, b);
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
        // Stable across calls.
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn jobs_defaults_to_cores() {
        set_jobs(0);
        assert!(jobs() >= 1);
        set_jobs(5);
        assert_eq!(jobs(), 5);
        set_jobs(0);
    }

    #[test]
    fn cached_routes_matches_fresh_compute() {
        let topo = bb_topology::generate(&bb_topology::TopologyConfig::small(17));
        let asn = topo.ases()[0].id;
        let ann = Announcement::full(&topo, asn);

        let (h0, m0, _) = cache_stats();
        let cached = cached_routes(&topo, &ann);
        let fresh = bb_bgp::compute_routes(&topo, &ann);
        assert_eq!(
            format!("{cached:?}"),
            format!("{fresh:?}"),
            "cache must hand out exactly what compute_routes produces"
        );

        let again = cached_routes(&topo, &ann);
        assert!(Arc::ptr_eq(&cached, &again), "second lookup shares the table");
        let (h1, m1, _) = cache_stats();
        assert_eq!(m1 - m0, 1, "one distinct key, one miss");
        assert!(h1 - h0 >= 1, "second lookup hits");

        // Mutating the topology refreshes its uid, so the same announcement
        // keys a different entry.
        let mut mutated = topo.clone();
        mutated.set_exit_fidelity(asn, 0.5);
        assert_ne!(topo.uid(), mutated.uid());
        let (_, m2, _) = cache_stats();
        let _ = cached_routes(&mutated, &ann);
        let (_, m3, _) = cache_stats();
        assert_eq!(m3 - m2, 1, "mutated topology misses");
    }

    #[test]
    fn cache_shared_across_identical_constructions() {
        // Two separate loads of the same world (what a CAIDA snapshot
        // re-read looks like) have different uids but the same content
        // fingerprint, so the second propagation is a cache hit.
        let cfg = bb_topology::TopologyConfig::small(19);
        let t1 = bb_topology::generate(&cfg);
        let t2 = bb_topology::generate(&cfg);
        assert_ne!(t1.uid(), t2.uid());
        assert_eq!(t1.fingerprint(), t2.fingerprint());
        let ann = Announcement::full(&t1, t1.ases()[0].id);
        let a = cached_routes(&t1, &ann);
        let (h0, _, _) = cache_stats();
        let b = cached_routes(&t2, &ann);
        let (h1, _, _) = cache_stats();
        assert!(Arc::ptr_eq(&a, &b), "identical content shares the table");
        assert_eq!(h1 - h0, 1);
    }

    #[test]
    fn try_cached_routes_rejects_foreign_announcement() {
        let topo = bb_topology::generate(&bb_topology::TopologyConfig::small(23));
        let ghost = bb_topology::AsId(topo.as_count() as u32);
        let err = try_cached_routes(&topo, &Announcement::empty(ghost)).unwrap_err();
        assert!(err.to_string().contains("not in this topology"), "{err}");
    }

    #[test]
    fn miss_publishes_rib_counters() {
        let topo = bb_topology::generate(&bb_topology::TopologyConfig::small(29));
        let ann = Announcement::full(&topo, topo.ases()[1].id);
        let before: u64 = timing::counters()
            .into_iter()
            .find(|(l, _)| l == "rib:interned_bytes")
            .map(|(_, n)| n)
            .unwrap_or(0);
        let table = cached_routes(&topo, &ann);
        let after: u64 = timing::counters()
            .into_iter()
            .find(|(l, _)| l == "rib:interned_bytes")
            .map(|(_, n)| n)
            .unwrap_or(0);
        assert_eq!(after - before, table.interned_path_bytes() as u64);
        assert!(
            table.interned_path_bytes() * 4 <= table.naive_path_bytes(),
            "interned storage must stay ≤ 25% of the naive layout"
        );
    }

    #[test]
    fn timing_accumulates() {
        timing::reset();
        timing::record("unit", std::time::Duration::from_millis(5));
        timing::record("unit", std::time::Duration::from_millis(5));
        let report = timing::report();
        assert!(report.contains("unit"));
        assert!(report.contains("(2 calls)"));
        assert!(report.contains("route cache:"));
    }
}
