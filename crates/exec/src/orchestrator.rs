//! Process-level supervision: the [`supervisor`](crate::supervisor) ledger
//! design, one level up.
//!
//! [`supervise`](crate::supervisor::supervise) keeps *threads* honest inside
//! one process; [`orchestrate`] keeps whole worker **processes** honest. The
//! orchestrator spawns one child per shard (via a caller-supplied closure —
//! this module knows nothing about argv or checkpoints), then runs a poll
//! loop that classifies every way a worker can go wrong:
//!
//! * **crash** — the child exits nonzero (or dies to a signal). Retryable:
//!   the shard is respawned after deterministic backoff and resumes from
//!   its own checkpoint.
//! * **hang** — the child is alive but its heartbeat file's *content* stops
//!   changing for longer than `hang_timeout`. The orchestrator kills it and
//!   treats it as a crash. Staleness is judged against the orchestrator's
//!   own monotonic clock from the moment the content last changed — the
//!   timestamp inside the heartbeat is never parsed, so writer and watcher
//!   need no clock agreement.
//! * **fatal** — the child exits with the repo's usage/config code
//!   ([`FATAL_EXIT`] = 2). Deterministic: respawning reproduces it, so the
//!   shard fails immediately without burning the restart budget.
//!
//! Restarts are bounded twice, exactly like thread-level retries: a
//! per-shard `max_restarts` and a campaign-wide `restart_budget`. Backoff
//! before restart `k` of shard `i` reuses [`RetryPolicy::backoff`] — the
//! delay is derived purely from `(jitter_seed, i, k)`, so a chaos run
//! replays the same restart schedule every time.
//!
//! Cancellation kills all running children and reports the campaign
//! cancelled; because workers checkpoint after every finalized unit, a
//! later orchestrated run resumes from what the dead workers had saved.

use crate::supervisor::RetryPolicy;
use std::path::PathBuf;
use std::process::Child;
use std::time::{Duration, Instant};

/// Exit code treated as deterministic (usage/stale-checkpoint) failure:
/// restarting the child would reproduce it, so the orchestrator does not
/// retry. Mirrors the repo-wide exit-code contract (2 = usage error).
pub const FATAL_EXIT: i32 = 2;

/// One shard to orchestrate: everything the monitor needs to watch it.
/// What the child *does* lives entirely in the spawn closure.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Display label for reports (e.g. `shard 0/3`).
    pub label: String,
    /// Heartbeat file whose content changing proves the worker is alive.
    /// It need not exist at spawn time; a worker that never produces it
    /// is declared hung after `hang_timeout`.
    pub heartbeat: PathBuf,
}

/// Restart policy for one orchestrated campaign.
#[derive(Debug, Clone)]
pub struct OrchestratorPolicy {
    /// Restarts allowed per shard after its first launch.
    pub max_restarts: u32,
    /// Campaign-wide cap on total restarts across all shards.
    pub restart_budget: u32,
    /// Backoff before the first restart; doubles per subsequent restart,
    /// with jitter derived from `(jitter_seed, shard, attempt)`.
    pub backoff_base: Duration,
    /// Keys the deterministic backoff jitter; pass the campaign seed.
    pub jitter_seed: u64,
    /// A running child whose heartbeat content is unchanged for this long
    /// is killed and restarted.
    pub hang_timeout: Duration,
    /// Poll-loop sleep between liveness sweeps.
    pub poll_interval: Duration,
}

impl Default for OrchestratorPolicy {
    fn default() -> Self {
        Self {
            max_restarts: 2,
            restart_budget: 8,
            backoff_base: Duration::from_millis(50),
            jitter_seed: 0,
            hang_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
        }
    }
}

impl OrchestratorPolicy {
    fn retry(&self) -> RetryPolicy {
        RetryPolicy {
            max_retries: self.max_restarts,
            backoff_base: self.backoff_base,
            retry_budget: self.restart_budget,
            jitter_seed: self.jitter_seed,
        }
    }
}

/// How one orchestrated shard ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOutcome {
    /// Exited 0 (possibly after restarts).
    Completed,
    /// Exhausted its restarts (or the campaign budget) without exiting 0.
    Failed,
    /// Exited [`FATAL_EXIT`]: deterministic failure, never retried.
    Fatal,
    /// Killed by cancellation before reaching a terminal state.
    Cancelled,
}

impl ShardOutcome {
    /// Stable one-word label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ShardOutcome::Completed => "completed",
            ShardOutcome::Failed => "failed",
            ShardOutcome::Fatal => "fatal",
            ShardOutcome::Cancelled => "cancelled",
        }
    }
}

/// Per-shard record in an [`OrchestratorReport`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Input index of the shard.
    pub index: usize,
    /// Label copied from the [`ShardSpec`].
    pub label: String,
    /// Launches actually performed (first launch + restarts).
    pub attempts: u32,
    /// Crash events observed (nonzero exits, signal deaths, spawn errors).
    pub crashes: u32,
    /// Hang events observed (stale heartbeat → kill).
    pub hangs: u32,
    /// Total wall-clock across all launches of this shard, seconds.
    pub elapsed_s: f64,
    pub outcome: ShardOutcome,
    /// Last failure description, for failed/fatal shards (and recovered
    /// ones — it names what the final successful restart recovered from).
    pub error: Option<String>,
}

/// Structured outcome of one [`orchestrate`] campaign.
#[derive(Debug, Clone)]
pub struct OrchestratorReport {
    /// One entry per input shard, in input order.
    pub shards: Vec<ShardReport>,
    /// Total child launches across all shards.
    pub attempts: u64,
    /// Total restarts (launches beyond each shard's first).
    pub restarts: u64,
    /// Crash events across all shards.
    pub crashes_detected: u64,
    /// Hang events across all shards.
    pub hangs_detected: u64,
    /// The campaign's restart budget, for context in reports.
    pub restart_budget: u32,
    /// True when a restart was denied because the budget ran out.
    pub budget_exhausted: bool,
    /// True when cancellation killed at least one running shard.
    pub cancelled: bool,
}

impl OrchestratorReport {
    pub fn count(&self, want: &str) -> usize {
        self.shards
            .iter()
            .filter(|s| s.outcome.label() == want)
            .count()
    }

    /// True when every shard completed.
    pub fn all_completed(&self) -> bool {
        self.count("completed") == self.shards.len()
    }
}

/// Heartbeat watch: last observed content and when it last changed,
/// against the orchestrator's own monotonic clock.
struct HbWatch {
    content: Vec<u8>,
    changed_at: Instant,
}

impl HbWatch {
    fn start(path: &PathBuf) -> Self {
        Self {
            content: std::fs::read(path).unwrap_or_default(),
            changed_at: Instant::now(),
        }
    }

    /// Re-read the heartbeat; returns how long the content has been static.
    fn staleness(&mut self, path: &PathBuf) -> Duration {
        let now = std::fs::read(path).unwrap_or_default();
        if now != self.content {
            self.content = now;
            self.changed_at = Instant::now();
        }
        self.changed_at.elapsed()
    }
}

enum State {
    /// Waiting to (re)launch: `attempt` is the next launch's index.
    Pending { attempt: u32, not_before: Instant },
    Running {
        child: Child,
        attempt: u32,
        started: Instant,
        watch: HbWatch,
    },
    Done(ShardOutcome),
}

/// Everything a liveness sweep can observe about one child.
enum Event {
    Exited(Option<i32>),
    Hung,
    StillRunning,
}

/// Spawn and supervise one child process per shard until every shard is
/// complete, permanently failed, or cancelled. See the module docs for the
/// crash/hang/fatal taxonomy and the restart policy.
///
/// `spawn(shard, attempt)` launches the child for `attempt` (0 = first
/// launch); it owns all child-specific setup — argv, env hooks, resume
/// decisions, pre-launch manifest salvage. A spawn error counts as a crash
/// of that attempt. `cancel()` turning true kills all running children.
pub fn orchestrate(
    specs: &[ShardSpec],
    policy: &OrchestratorPolicy,
    cancel: &dyn Fn() -> bool,
    spawn: &mut dyn FnMut(usize, u32) -> std::io::Result<Child>,
) -> OrchestratorReport {
    let retry = policy.retry();
    let mut budget = policy.restart_budget as i64;
    let mut budget_exhausted = false;
    let mut cancelled = false;

    struct Stat {
        attempts: u32,
        crashes: u32,
        hangs: u32,
        elapsed_s: f64,
        error: Option<String>,
    }
    let mut stats: Vec<Stat> = specs
        .iter()
        .map(|_| Stat {
            attempts: 0,
            crashes: 0,
            hangs: 0,
            elapsed_s: 0.0,
            error: None,
        })
        .collect();
    let now = Instant::now();
    let mut states: Vec<State> = specs
        .iter()
        .map(|_| State::Pending {
            attempt: 0,
            not_before: now,
        })
        .collect();

    loop {
        if !cancelled && cancel() {
            cancelled = true;
            for (i, state) in states.iter_mut().enumerate() {
                if let State::Running { child, started, .. } = state {
                    let _ = child.kill();
                    let _ = child.wait();
                    stats[i].elapsed_s += started.elapsed().as_secs_f64();
                }
                if !matches!(state, State::Done(_)) {
                    *state = State::Done(ShardOutcome::Cancelled);
                }
            }
        }

        let mut all_done = true;
        for i in 0..specs.len() {
            match &mut states[i] {
                State::Done(_) => continue,
                State::Pending { attempt, not_before } => {
                    all_done = false;
                    if Instant::now() < *not_before {
                        continue;
                    }
                    let attempt = *attempt;
                    stats[i].attempts += 1;
                    match spawn(i, attempt) {
                        Ok(child) => {
                            states[i] = State::Running {
                                child,
                                attempt,
                                started: Instant::now(),
                                watch: HbWatch::start(&specs[i].heartbeat),
                            };
                        }
                        Err(e) => {
                            stats[i].crashes += 1;
                            let msg = format!("spawn failed: {e}");
                            states[i] = next_state(
                                i,
                                attempt,
                                msg,
                                &retry,
                                &mut budget,
                                &mut budget_exhausted,
                                &mut stats[i].error,
                            );
                        }
                    }
                }
                State::Running {
                    child,
                    attempt,
                    started,
                    watch,
                } => {
                    all_done = false;
                    let event = match child.try_wait() {
                        Ok(Some(status)) => Event::Exited(status.code()),
                        Ok(None) => {
                            if watch.staleness(&specs[i].heartbeat) > policy.hang_timeout {
                                let _ = child.kill();
                                let _ = child.wait();
                                Event::Hung
                            } else {
                                Event::StillRunning
                            }
                        }
                        // try_wait error: the child is lost to us — kill and
                        // treat as a signal-death crash.
                        Err(_) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            Event::Exited(None)
                        }
                    };
                    let attempt = *attempt;
                    match event {
                        Event::StillRunning => {}
                        Event::Exited(Some(0)) => {
                            stats[i].elapsed_s += started.elapsed().as_secs_f64();
                            states[i] = State::Done(ShardOutcome::Completed);
                        }
                        Event::Exited(Some(FATAL_EXIT)) => {
                            stats[i].elapsed_s += started.elapsed().as_secs_f64();
                            stats[i].error =
                                Some(format!("exit {FATAL_EXIT} (deterministic, not retried)"));
                            states[i] = State::Done(ShardOutcome::Fatal);
                        }
                        Event::Exited(code) => {
                            stats[i].elapsed_s += started.elapsed().as_secs_f64();
                            stats[i].crashes += 1;
                            let msg = match code {
                                Some(c) => format!("exit {c}"),
                                None => "killed by signal".to_string(),
                            };
                            states[i] = next_state(
                                i,
                                attempt,
                                msg,
                                &retry,
                                &mut budget,
                                &mut budget_exhausted,
                                &mut stats[i].error,
                            );
                        }
                        Event::Hung => {
                            stats[i].elapsed_s += started.elapsed().as_secs_f64();
                            stats[i].hangs += 1;
                            let msg = format!(
                                "heartbeat stale for {:.1}s (hung, killed)",
                                policy.hang_timeout.as_secs_f64()
                            );
                            states[i] = next_state(
                                i,
                                attempt,
                                msg,
                                &retry,
                                &mut budget,
                                &mut budget_exhausted,
                                &mut stats[i].error,
                            );
                        }
                    }
                }
            }
        }
        if all_done {
            break;
        }
        std::thread::sleep(policy.poll_interval);
    }

    let mut attempts = 0u64;
    let mut restarts = 0u64;
    let mut crashes = 0u64;
    let mut hangs = 0u64;
    let shards: Vec<ShardReport> = states
        .into_iter()
        .zip(stats)
        .enumerate()
        .map(|(index, (state, stat))| {
            let outcome = match state {
                State::Done(o) => o,
                // Unreachable: the loop only exits when every state is Done.
                _ => ShardOutcome::Cancelled,
            };
            attempts += stat.attempts as u64;
            restarts += stat.attempts.saturating_sub(1) as u64;
            crashes += stat.crashes as u64;
            hangs += stat.hangs as u64;
            ShardReport {
                index,
                label: specs[index].label.clone(),
                attempts: stat.attempts,
                crashes: stat.crashes,
                hangs: stat.hangs,
                elapsed_s: stat.elapsed_s,
                outcome,
                error: stat.error,
            }
        })
        .collect();

    OrchestratorReport {
        shards,
        attempts,
        restarts,
        crashes_detected: crashes,
        hangs_detected: hangs,
        restart_budget: policy.restart_budget,
        budget_exhausted,
        cancelled,
    }
}

/// Decide what follows a failed attempt: a backoff-delayed restart, or a
/// permanent `Failed` when the shard's restarts or the campaign budget are
/// exhausted. `attempt` is the index of the launch that just failed.
fn next_state(
    index: usize,
    attempt: u32,
    msg: String,
    retry: &RetryPolicy,
    budget: &mut i64,
    budget_exhausted: &mut bool,
    error: &mut Option<String>,
) -> State {
    *error = Some(msg);
    if attempt >= retry.max_retries {
        return State::Done(ShardOutcome::Failed);
    }
    if *budget <= 0 {
        *budget_exhausted = true;
        return State::Done(ShardOutcome::Failed);
    }
    *budget -= 1;
    State::Pending {
        attempt: attempt + 1,
        not_before: Instant::now() + retry.backoff(index, attempt + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::process::Command;

    fn sh(script: &str) -> std::io::Result<Child> {
        Command::new("sh").arg("-c").arg(script).spawn()
    }

    fn quick_policy() -> OrchestratorPolicy {
        OrchestratorPolicy {
            backoff_base: Duration::from_millis(1),
            hang_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(5),
            jitter_seed: 42,
            ..Default::default()
        }
    }

    fn specs(n: usize, tag: &str) -> (Vec<ShardSpec>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("bb_orch_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let specs = (0..n)
            .map(|i| ShardSpec {
                label: format!("shard {i}/{n}"),
                heartbeat: dir.join(format!("hb{i}")),
            })
            .collect();
        (specs, dir)
    }

    #[test]
    fn crash_is_restarted_until_success() {
        let (specs, dir) = specs(2, "crash");
        let report = orchestrate(&specs, &quick_policy(), &|| false, &mut |i, attempt| {
            // Shard 1 crashes on its first launch only.
            if i == 1 && attempt == 0 {
                sh("exit 7")
            } else {
                sh("true")
            }
        });
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(report.shards[0].attempts, 1);
        assert_eq!(report.shards[1].attempts, 2);
        assert_eq!(report.restarts, 1);
        assert_eq!(report.crashes_detected, 1);
        assert_eq!(report.hangs_detected, 0);
        assert!(report.shards[1].error.as_deref().unwrap().contains("exit 7"));
        assert!(!report.budget_exhausted);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spawn_error_counts_as_crash_and_is_retried() {
        let (specs, dir) = specs(1, "spawnerr");
        let report = orchestrate(&specs, &quick_policy(), &|| false, &mut |_, attempt| {
            if attempt == 0 {
                Err(std::io::Error::other("no such binary"))
            } else {
                sh("true")
            }
        });
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(report.shards[0].attempts, 2);
        assert_eq!(report.crashes_detected, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_heartbeat_is_killed_and_restarted() {
        let (specs, dir) = specs(1, "hang");
        let policy = OrchestratorPolicy {
            hang_timeout: Duration::from_millis(200),
            ..quick_policy()
        };
        let started = Instant::now();
        let report = orchestrate(&specs, &policy, &|| false, &mut |_, attempt| {
            // First launch hangs forever without ever beating; the restart
            // completes instantly.
            if attempt == 0 {
                sh("sleep 60")
            } else {
                sh("true")
            }
        });
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(report.hangs_detected, 1);
        assert_eq!(report.restarts, 1);
        assert!(
            report.shards[0].error.as_deref().unwrap().contains("hung"),
            "{report:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "hang must be detected by timeout, not by the child finishing"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn advancing_heartbeat_prevents_the_kill() {
        let (specs, dir) = specs(1, "beat");
        let policy = OrchestratorPolicy {
            hang_timeout: Duration::from_millis(400),
            ..quick_policy()
        };
        let hb = specs[0].heartbeat.display().to_string();
        // Runs ~1s total (well past hang_timeout) but beats every ~100ms,
        // so the content keeps changing and the watcher stays satisfied.
        let script =
            format!("i=0; while [ $i -lt 10 ]; do i=$((i+1)); echo $i > {hb}; sleep 0.1; done");
        let report = orchestrate(&specs, &policy, &|| false, &mut |_, _| sh(&script));
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(report.hangs_detected, 0, "{report:?}");
        assert_eq!(report.restarts, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fatal_exit_is_not_retried() {
        let (specs, dir) = specs(2, "fatal");
        let report = orchestrate(&specs, &quick_policy(), &|| false, &mut |i, _| {
            if i == 0 {
                sh("exit 2")
            } else {
                sh("true")
            }
        });
        assert!(!report.all_completed());
        assert_eq!(report.shards[0].outcome, ShardOutcome::Fatal);
        assert_eq!(report.shards[0].attempts, 1, "fatal exits burn no restarts");
        assert_eq!(report.shards[1].outcome, ShardOutcome::Completed);
        assert_eq!(report.count("fatal"), 1);
        assert_eq!(report.count("completed"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_budget_caps_total_restarts() {
        let (specs, dir) = specs(2, "budget");
        let policy = OrchestratorPolicy {
            max_restarts: 5,
            restart_budget: 1,
            ..quick_policy()
        };
        let report = orchestrate(&specs, &policy, &|| false, &mut |_, _| sh("exit 1"));
        assert_eq!(report.count("failed"), 2);
        assert!(report.budget_exhausted);
        assert_eq!(report.restarts, 1, "exactly the budget is spent");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_shard_restart_cap_holds() {
        let (specs, dir) = specs(1, "cap");
        let report = orchestrate(&specs, &quick_policy(), &|| false, &mut |_, _| sh("exit 3"));
        assert_eq!(report.shards[0].outcome, ShardOutcome::Failed);
        assert_eq!(report.shards[0].attempts, 3, "1 launch + max_restarts");
        assert_eq!(report.shards[0].crashes, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancel_kills_running_children() {
        let (specs, dir) = specs(2, "cancel");
        let started = Instant::now();
        let report = orchestrate(
            &specs,
            &quick_policy(),
            &|| started.elapsed() > Duration::from_millis(150),
            &mut |_, _| sh("sleep 60"),
        );
        assert!(report.cancelled);
        assert_eq!(report.count("cancelled"), 2);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "cancel must kill, not wait for the children"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_backoff_schedule_is_reused_from_supervisor() {
        let policy = quick_policy();
        let retry = policy.retry();
        // Same derivation as thread-level supervision: exact match, not
        // merely similar shape.
        assert_eq!(retry.backoff(3, 1), policy.retry().backoff(3, 1));
        assert_ne!(retry.backoff(0, 1), retry.backoff(1, 1));
    }

    #[test]
    fn empty_input_is_a_completed_campaign() {
        let report = orchestrate(&[], &quick_policy(), &|| false, &mut |_, _| sh("true"));
        assert!(report.all_completed());
        assert_eq!(report.attempts, 0);
        assert!(!report.cancelled);
    }
}
