//! Supervised execution: retries, deterministic backoff, graceful drain.
//!
//! [`par_map_isolated`](crate::par_map_isolated) turns a poisoned item into
//! an `Err` slot; this module promotes that to a real supervision policy.
//! [`supervise`] runs items on the same work-claiming engine, but
//!
//! * **failed items are re-run** — panics, advisory-deadline overruns —
//!   with bounded per-item retries and a campaign-wide retry budget;
//! * **backoff is deterministic**: the delay before attempt `k` of item `i`
//!   is `base · 2^(k-1)` scaled by jitter derived from
//!   `(jitter_seed, i, k)` via [`derive_seed`](crate::derive_seed) — never
//!   from wall clock or thread schedule — so a retried campaign runs the
//!   same attempt pattern for every `--jobs` value;
//! * **cancellation is a drain, not an abort**: when `cancel()` turns true,
//!   workers stop claiming new items but finish (and retry) the ones in
//!   flight, so every item ends in a definite disposition;
//! * every final disposition is delivered to an `on_final` callback as soon
//!   as it is known (the driver checkpoints completed units there, without
//!   waiting for the whole campaign), and the returned
//!   [`SupervisionReport`] records attempts, absorbed panics, and the final
//!   disposition per item for `--timing-json`.
//!
//! Retry-budget exhaustion is the one schedule-dependent part: which item
//! claims the last budget unit depends on worker interleaving. It affects
//! only telemetry and how often a deterministic failure is retried — never
//! the value a successful item produces — so stdout/CSV byte-identity
//! across `--jobs` is preserved.
//!
//! The same retry-budget/ledger design exists one level up in
//! [`orchestrator`](crate::orchestrator), which supervises whole shard
//! *processes* (crash/hang detection via heartbeats, checkpoint-resumed
//! restarts) instead of in-process work items.

use crate::{jobs, run_attempt, ItemFailure};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::atomic::AtomicUsize;
use std::time::{Duration, Instant};

/// Retry policy for one supervised campaign.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries allowed per item after its first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff_base: Duration,
    /// Campaign-wide cap on total retries across all items. Exhausting it
    /// stops further retries (items fail with their last error) but never
    /// aborts first attempts.
    pub retry_budget: u32,
    /// Keys the deterministic backoff jitter; pass the campaign seed.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            retry_budget: 32,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Deadline-free policy that never retries (plain isolation).
    pub fn no_retries() -> Self {
        Self {
            max_retries: 0,
            retry_budget: 0,
            ..Self::default()
        }
    }

    /// Backoff before retrying item `index` after `failed_attempts`
    /// attempts have failed (so `failed_attempts >= 1`). Exponential in the
    /// attempt count with multiplicative jitter in `[0.5, 1.0)`, derived
    /// purely from `(jitter_seed, index, failed_attempts)` — byte-identical
    /// across runs, worker counts, and machines.
    pub fn backoff(&self, index: usize, failed_attempts: u32) -> Duration {
        let exp = failed_attempts.saturating_sub(1).min(16);
        let base = self.backoff_base.as_secs_f64() * (1u64 << exp) as f64;
        let bits = crate::derive_seed(
            self.jitter_seed,
            ((index as u64) << 8) | failed_attempts as u64,
        );
        // Top 53 bits → uniform in [0, 1).
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_secs_f64(base * (0.5 + 0.5 * unit))
    }
}

/// How a supervised item ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// Succeeded on the first attempt.
    Succeeded,
    /// Failed, then a retry succeeded.
    Recovered { retries: u32 },
    /// Exhausted its retries (or the campaign budget) without succeeding.
    Failed { retries: u32 },
    /// Never started: the campaign drained before this item was claimed.
    Skipped,
}

impl Disposition {
    /// Stable one-word label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Disposition::Succeeded => "succeeded",
            Disposition::Recovered { .. } => "recovered",
            Disposition::Failed { .. } => "failed",
            Disposition::Skipped => "skipped",
        }
    }
}

/// Per-item record in a [`SupervisionReport`].
#[derive(Debug, Clone)]
pub struct ItemReport {
    /// Input index of the item.
    pub index: usize,
    /// Attempts actually run (0 for skipped items).
    pub attempts: u32,
    /// Panics absorbed across those attempts.
    pub panics: u32,
    /// Total wall-clock across all attempts, seconds.
    pub elapsed_s: f64,
    pub disposition: Disposition,
    /// Last failure message, for failed (and recovered) items.
    pub error: Option<String>,
}

/// Structured outcome of one [`supervise`] campaign.
#[derive(Debug, Clone)]
pub struct SupervisionReport {
    /// One entry per input item, in input order.
    pub items: Vec<ItemReport>,
    /// Total attempts run across all items.
    pub attempts: u64,
    /// Total retries (attempts beyond each item's first).
    pub retries: u64,
    /// Panics absorbed across all attempts.
    pub panics_absorbed: u64,
    /// The campaign's retry budget, for context in reports.
    pub retry_budget: u32,
    /// True when a retry was denied because the budget ran out.
    pub budget_exhausted: bool,
    /// True when the campaign drained early: at least one item was never
    /// claimed because `cancel()` turned true.
    pub cancelled: bool,
}

impl SupervisionReport {
    pub fn count(&self, want: &str) -> usize {
        self.items
            .iter()
            .filter(|i| i.disposition.label() == want)
            .count()
    }
}

/// Run `f` over `items` with panic isolation, supervised retries, and
/// drain-style cancellation. See the module docs for the policy.
///
/// `f` receives `(index, attempt, &item)` with `attempt` starting at 0, so
/// callers can make attempt-dependent behavior (or test hooks) explicit.
/// `on_final(index, &outcome)` fires exactly once per *finalized* item, from
/// the worker that ran it, as soon as its disposition is known; it is never
/// called for skipped items. The returned vector is in input order; `None`
/// marks an item skipped by cancellation.
pub fn supervise<T, R, F>(
    items: &[T],
    policy: &RetryPolicy,
    deadline: Option<Duration>,
    cancel: &(dyn Fn() -> bool + Sync),
    on_final: &(dyn Fn(usize, &Result<R, ItemFailure>) + Sync),
    f: F,
) -> (Vec<Option<Result<R, ItemFailure>>>, SupervisionReport)
where
    T: Sync,
    R: Send,
    F: Fn(usize, u32, &T) -> R + Sync,
{
    let n = items.len();
    let cursor = AtomicUsize::new(0);
    let budget = AtomicI64::new(policy.retry_budget as i64);
    let budget_exhausted = AtomicBool::new(false);
    let total_attempts = AtomicU64::new(0);
    let total_retries = AtomicU64::new(0);
    let total_panics = AtomicU64::new(0);

    struct Meta {
        attempts: u32,
        panics: u32,
        elapsed_s: f64,
        error: Option<String>,
    }
    let mut slots: Vec<Option<(Result<R, ItemFailure>, Meta)>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    // Same disjoint-slot contract as `par_map`: the claim counter gives
    // every index to exactly one worker, and the scope joins all workers
    // before `slots` is read.
    struct SlotPtr<S>(*mut Option<S>);
    unsafe impl<S: Send> Sync for SlotPtr<S> {}
    let slot_ptr = SlotPtr(slots.as_mut_ptr());
    let slot_ref = &slot_ptr;

    let worker = |_w: usize| loop {
        if cancel() {
            break;
        }
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let started = Instant::now();
        let mut attempts = 0u32;
        let mut panics = 0u32;
        let outcome = loop {
            attempts += 1;
            total_attempts.fetch_add(1, Ordering::Relaxed);
            match run_attempt(i, deadline, || f(i, attempts - 1, &items[i])) {
                Ok(r) => break Ok(r),
                Err(fail) => {
                    if fail.panicked {
                        panics += 1;
                        total_panics.fetch_add(1, Ordering::Relaxed);
                    }
                    if attempts > policy.max_retries {
                        break Err(fail);
                    }
                    // Claim one unit of the campaign-wide retry budget.
                    if budget.fetch_sub(1, Ordering::Relaxed) <= 0 {
                        budget.fetch_add(1, Ordering::Relaxed);
                        budget_exhausted.store(true, Ordering::Relaxed);
                        break Err(fail);
                    }
                    total_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(policy.backoff(i, attempts));
                }
            }
        };
        let meta = Meta {
            attempts,
            panics,
            elapsed_s: started.elapsed().as_secs_f64(),
            error: outcome.as_ref().err().map(|e| e.message.clone()),
        };
        on_final(i, &outcome);
        // SAFETY: `i` came from a unique fetch_add claim; no other worker
        // touches this slot, and the scope outlives every worker.
        unsafe {
            *slot_ref.0.add(i) = Some((outcome, meta));
        }
    };

    let workers = jobs().min(n.max(1));
    if workers <= 1 || n <= 1 {
        worker(0);
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || worker(w));
            }
        });
    }

    let mut results = Vec::with_capacity(n);
    let mut reports = Vec::with_capacity(n);
    let mut cancelled = false;
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some((outcome, meta)) => {
                let disposition = match (&outcome, meta.attempts) {
                    (Ok(_), 1) => Disposition::Succeeded,
                    (Ok(_), a) => Disposition::Recovered { retries: a - 1 },
                    (Err(_), a) => Disposition::Failed {
                        retries: a.saturating_sub(1),
                    },
                };
                reports.push(ItemReport {
                    index: i,
                    attempts: meta.attempts,
                    panics: meta.panics,
                    elapsed_s: meta.elapsed_s,
                    disposition,
                    error: meta.error,
                });
                results.push(Some(outcome));
            }
            None => {
                cancelled = true;
                reports.push(ItemReport {
                    index: i,
                    attempts: 0,
                    panics: 0,
                    elapsed_s: 0.0,
                    disposition: Disposition::Skipped,
                    error: None,
                });
                results.push(None);
            }
        }
    }

    let report = SupervisionReport {
        items: reports,
        attempts: total_attempts.load(Ordering::Relaxed),
        retries: total_retries.load(Ordering::Relaxed),
        panics_absorbed: total_panics.load(Ordering::Relaxed),
        retry_budget: policy.retry_budget,
        budget_exhausted: budget_exhausted.load(Ordering::Relaxed),
        cancelled,
    };
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quiet_policy() -> RetryPolicy {
        RetryPolicy {
            backoff_base: Duration::from_millis(1),
            jitter_seed: 42,
            ..Default::default()
        }
    }

    /// Silence the default panic hook for a scope that panics on purpose.
    fn hushed<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn retry_recovers_transiently_poisoned_item() {
        let items: Vec<u64> = (0..8).collect();
        let (results, report) = hushed(|| {
            supervise(
                &items,
                &quiet_policy(),
                None,
                &|| false,
                &|_, _| {},
                |_, attempt, &x| {
                    // Item 3 panics on its first attempt only.
                    if x == 3 && attempt == 0 {
                        panic!("transient fault");
                    }
                    x * 2
                },
            )
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                *r.as_ref().unwrap().as_ref().unwrap(),
                i as u64 * 2,
                "item {i}"
            );
        }
        let r3 = &report.items[3];
        assert_eq!(r3.disposition, Disposition::Recovered { retries: 1 });
        assert_eq!(r3.attempts, 2);
        assert_eq!(r3.panics, 1);
        assert_eq!(report.count("recovered"), 1);
        assert_eq!(report.count("succeeded"), 7);
        assert_eq!(report.retries, 1);
        assert!(!report.cancelled);
        assert!(!report.budget_exhausted);
    }

    #[test]
    fn persistent_failure_exhausts_bounded_retries() {
        let items = [1u64];
        let (results, report) = hushed(|| {
            supervise(
                &items,
                &quiet_policy(),
                None,
                &|| false,
                &|_, _| {},
                |_, _, _| -> u64 { panic!("always broken") },
            )
        });
        let fail = results[0].as_ref().unwrap().as_ref().unwrap_err();
        assert!(fail.message.contains("always broken"));
        assert!(fail.panicked);
        let item = &report.items[0];
        assert_eq!(item.disposition, Disposition::Failed { retries: 2 });
        assert_eq!(item.attempts, 3, "1 attempt + max_retries");
        assert_eq!(report.attempts, 3);
        assert_eq!(report.retries, 2);
        assert_eq!(item.error.as_deref(), Some("always broken"));
    }

    #[test]
    fn zero_budget_means_no_retries() {
        let items: Vec<u64> = (0..4).collect();
        let policy = RetryPolicy {
            retry_budget: 0,
            ..quiet_policy()
        };
        let (_, report) = hushed(|| {
            supervise(
                &items,
                &policy,
                None,
                &|| false,
                &|_, _| {},
                |_, _, _| -> u64 { panic!("broken") },
            )
        });
        assert_eq!(report.retries, 0, "budget 0 denies every retry");
        assert!(report.budget_exhausted);
        for item in &report.items {
            assert_eq!(item.attempts, 1);
            assert!(matches!(item.disposition, Disposition::Failed { retries: 0 }));
        }
    }

    #[test]
    fn budget_caps_total_retries_across_items() {
        let items: Vec<u64> = (0..6).collect();
        let policy = RetryPolicy {
            retry_budget: 3,
            ..quiet_policy()
        };
        let (_, report) = hushed(|| {
            supervise(
                &items,
                &policy,
                None,
                &|| false,
                &|_, _| {},
                |_, _, _| -> u64 { panic!("broken") },
            )
        });
        assert_eq!(report.retries, 3, "exactly the budget is spent");
        assert!(report.budget_exhausted);
        assert_eq!(report.count("failed"), 6);
    }

    #[test]
    fn cancel_drains_instead_of_aborting() {
        crate::set_jobs(1);
        let items: Vec<u64> = (0..10).collect();
        let finalized = AtomicUsize::new(0);
        let (results, report) = supervise(
            &items,
            &RetryPolicy::no_retries(),
            None,
            &|| finalized.load(Ordering::Relaxed) >= 3,
            &|_, _| {
                finalized.fetch_add(1, Ordering::Relaxed);
            },
            |_, _, &x| x + 1,
        );
        crate::set_jobs(0);
        let done = results.iter().filter(|r| r.is_some()).count();
        assert_eq!(done, 3, "drain finishes in-flight items, claims no more");
        assert!(report.cancelled);
        assert_eq!(report.count("skipped"), 7);
        // Completed items are correct and in order.
        for (i, r) in results.iter().take(3).enumerate() {
            assert_eq!(*r.as_ref().unwrap().as_ref().unwrap(), i as u64 + 1);
        }
        // Skipped items report attempts = 0.
        for item in report.items.iter().skip(3) {
            assert_eq!(item.attempts, 0);
            assert_eq!(item.disposition, Disposition::Skipped);
        }
    }

    #[test]
    fn on_final_fires_once_per_finalized_item() {
        let items: Vec<u64> = (0..32).collect();
        let calls = AtomicUsize::new(0);
        let (results, _) = supervise(
            &items,
            &RetryPolicy::no_retries(),
            None,
            &|| false,
            &|i, outcome| {
                calls.fetch_add(1, Ordering::Relaxed);
                assert_eq!(*outcome.as_ref().unwrap(), i as u64 * 3);
            },
            |_, _, &x| x * 3,
        );
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
        assert!(results.iter().all(|r| r.is_some()));
    }

    #[test]
    fn backoff_is_deterministic_exponential_with_jitter() {
        let policy = RetryPolicy {
            backoff_base: Duration::from_millis(100),
            jitter_seed: 7,
            ..Default::default()
        };
        for index in [0usize, 3, 17] {
            for attempt in 1..=4u32 {
                let d = policy.backoff(index, attempt);
                assert_eq!(d, policy.backoff(index, attempt), "stable across calls");
                let base = 0.1 * (1u64 << (attempt - 1)) as f64;
                let s = d.as_secs_f64();
                assert!(s >= base * 0.5 && s < base, "attempt {attempt}: {s}s");
            }
        }
        // Jitter decorrelates items and seeds.
        assert_ne!(policy.backoff(0, 1), policy.backoff(1, 1));
        let other = RetryPolicy {
            jitter_seed: 8,
            ..policy.clone()
        };
        assert_ne!(policy.backoff(0, 1), other.backoff(0, 1));
    }

    #[test]
    fn results_identical_across_job_counts() {
        let items: Vec<u64> = (0..64).collect();
        let mut runs: Vec<String> = Vec::new();
        for jobs in [1usize, 4] {
            crate::set_jobs(jobs);
            let (results, _) = hushed(|| {
                supervise(
                    &items,
                    &quiet_policy(),
                    None,
                    &|| false,
                    &|_, _| {},
                    |i, attempt, &x| {
                        // Item 11 recovers on retry; item 42 always fails.
                        if x == 11 && attempt == 0 {
                            panic!("transient");
                        }
                        if x == 42 {
                            panic!("permanent");
                        }
                        crate::derive_seed(x, i as u64)
                    },
                )
            });
            let rendered: Vec<String> = results
                .iter()
                .map(|r| match r {
                    Some(Ok(v)) => format!("ok:{v}"),
                    Some(Err(e)) => format!("err:{}:{}", e.index, e.message),
                    None => "skipped".to_string(),
                })
                .collect();
            runs.push(rendered.join(","));
        }
        crate::set_jobs(0);
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let items: Vec<u64> = vec![];
        let (results, report) =
            supervise(&items, &RetryPolicy::default(), None, &|| false, &|_, _| {}, |_, _, &x| x);
        assert!(results.is_empty());
        assert!(report.items.is_empty());
        assert_eq!(report.attempts, 0);
        assert!(!report.cancelled);
    }
}
