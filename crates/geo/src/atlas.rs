//! The world atlas: countries plus deterministically sampled cities.

use crate::city::{City, CityId};
use crate::country::{Country, CountryIdx, WORLD};
use crate::point::GeoPoint;
use crate::region::Region;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Configuration for atlas generation.
#[derive(Debug, Clone, Serialize)]
pub struct AtlasConfig {
    pub seed: u64,
    /// Scales the number of cities per country (1.0 ⇒ up to ~10 for the
    /// largest countries). Lower it for fast tests.
    pub city_density: f64,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        Self {
            seed: 0x_b6b5_1dea,
            city_density: 1.0,
        }
    }
}

/// Countries plus sampled cities. Cities are stored in one dense vector so
/// that `CityId` indexes directly; each country's cities are contiguous.
#[derive(Debug, Clone, Serialize)]
pub struct Atlas {
    pub countries: Vec<Country>,
    pub cities: Vec<City>,
    /// For each country, the range of its city indices.
    city_ranges: Vec<std::ops::Range<usize>>,
}

impl Atlas {
    /// Generate the atlas: every country gets a main metro at its centroid
    /// plus satellite cities scattered within `spread_km`, with Zipf-like
    /// user shares.
    pub fn generate(cfg: &AtlasConfig) -> Atlas {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut cities = Vec::new();
        let mut city_ranges = Vec::with_capacity(WORLD.len());

        for (ci, country) in WORLD.iter().enumerate() {
            let start = cities.len();
            let n = city_count(country, cfg.city_density);
            let shares = zipf_shares(n);
            for (k, &share) in shares.iter().enumerate() {
                let location = if k == 0 {
                    country.centroid
                } else {
                    scatter(&mut rng, country.centroid, country.spread_km)
                };
                let colo_hub = k == 0 && (country.major_hub || country.users_m >= 60.0);
                cities.push(City {
                    id: CityId(cities.len() as u32),
                    name: format!("{}-{}", country.code, k),
                    country: ci,
                    region: country.region,
                    location,
                    user_share: share,
                    colo_hub,
                });
            }
            city_ranges.push(start..cities.len());
        }

        Atlas {
            countries: WORLD.to_vec(),
            cities,
            city_ranges,
        }
    }

    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.index()]
    }

    pub fn country_of(&self, id: CityId) -> &Country {
        &self.countries[self.city(id).country]
    }

    /// Cities of one country.
    pub fn cities_of(&self, country: CountryIdx) -> &[City] {
        &self.cities[self.city_ranges[country].clone()]
    }

    /// The main metro (first city) of a country.
    pub fn main_metro(&self, country: CountryIdx) -> &City {
        &self.cities[self.city_ranges[country].start]
    }

    /// All cities flagged as colo hubs.
    pub fn colo_hubs(&self) -> impl Iterator<Item = &City> {
        self.cities.iter().filter(|c| c.colo_hub)
    }

    /// Cities in a region.
    pub fn cities_in_region(&self, region: Region) -> impl Iterator<Item = &City> {
        self.cities.iter().filter(move |c| c.region == region)
    }

    /// Internet users (millions) represented by one city.
    pub fn city_users_m(&self, id: CityId) -> f64 {
        let c = self.city(id);
        self.countries[c.country].users_m * c.user_share
    }

    /// The city nearest to `point`.
    pub fn nearest_city(&self, point: GeoPoint) -> &City {
        self.cities
            .iter()
            .min_by(|a, b| {
                a.location
                    .distance_km(&point)
                    .total_cmp(&b.location.distance_km(&point))
            })
            .expect("atlas has cities")
    }
}

fn city_count(country: &Country, density: f64) -> usize {
    let n = (country.users_m.sqrt() * 0.55 * density).round() as usize;
    n.clamp(1, 16)
}

/// Zipf(1.0)-shaped shares over `n` cities, normalized to sum to 1.
fn zipf_shares(n: usize) -> Vec<f64> {
    let raw: Vec<f64> = (1..=n).map(|k| 1.0 / k as f64).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|x| x / total).collect()
}

/// Sample a point within `spread_km` of the centroid (triangular-ish radial
/// density: more cities near the middle of the country).
fn scatter(rng: &mut StdRng, centroid: GeoPoint, spread_km: f64) -> GeoPoint {
    let r = spread_km * rng.gen::<f64>().sqrt() * rng.gen::<f64>();
    let theta = rng.gen::<f64>() * std::f64::consts::TAU;
    centroid.offset_km(r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atlas() -> Atlas {
        Atlas::generate(&AtlasConfig::default())
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = atlas();
        let b = atlas();
        assert_eq!(a.cities.len(), b.cities.len());
        for (x, y) in a.cities.iter().zip(&b.cities) {
            assert_eq!(x.location.lat_deg, y.location.lat_deg);
            assert_eq!(x.location.lon_deg, y.location.lon_deg);
        }
    }

    #[test]
    fn different_seed_different_scatter() {
        let a = atlas();
        let b = Atlas::generate(&AtlasConfig {
            seed: 7,
            ..Default::default()
        });
        // Main metros are fixed at centroids, but at least one satellite
        // city must move.
        let moved = a
            .cities
            .iter()
            .zip(&b.cities)
            .any(|(x, y)| x.location.lon_deg != y.location.lon_deg);
        assert!(moved);
    }

    #[test]
    fn user_shares_sum_to_one_per_country() {
        let a = atlas();
        for ci in 0..a.countries.len() {
            let s: f64 = a.cities_of(ci).iter().map(|c| c.user_share).sum();
            assert!((s - 1.0).abs() < 1e-9, "country {ci}: {s}");
        }
    }

    #[test]
    fn main_metro_sits_at_centroid() {
        let a = atlas();
        for ci in 0..a.countries.len() {
            let m = a.main_metro(ci);
            assert_eq!(m.location.lat_deg, a.countries[ci].centroid.lat_deg);
        }
    }

    #[test]
    fn cities_stay_within_spread() {
        let a = atlas();
        for c in &a.cities {
            let country = &a.countries[c.country];
            let d = c.location.distance_km(&country.centroid);
            // offset_km is approximate; allow 25% slack.
            assert!(
                d <= country.spread_km * 1.25,
                "{} is {d} km from centroid (spread {})",
                c.name,
                country.spread_km
            );
        }
    }

    #[test]
    fn big_countries_have_more_cities() {
        let a = atlas();
        let (us, _) = crate::country::by_code("US").unwrap();
        let (nz, _) = crate::country::by_code("NZ").unwrap();
        assert!(a.cities_of(us).len() > a.cities_of(nz).len());
    }

    #[test]
    fn colo_hubs_exist_on_every_continent_with_hub_countries() {
        let a = atlas();
        let hubs: Vec<_> = a.colo_hubs().collect();
        assert!(hubs.len() >= 10);
        assert!(hubs.iter().any(|c| c.region == Region::Europe));
        assert!(hubs.iter().any(|c| c.region == Region::NorthAmerica));
        assert!(hubs.iter().any(|c| c.region == Region::SouthAsia));
    }

    #[test]
    fn nearest_city_returns_self_for_city_location() {
        let a = atlas();
        let c = &a.cities[3];
        assert_eq!(a.nearest_city(c.location).id, c.id);
    }

    #[test]
    fn city_density_scales_city_count() {
        let small = Atlas::generate(&AtlasConfig {
            seed: 1,
            city_density: 0.3,
        });
        let big = Atlas::generate(&AtlasConfig {
            seed: 1,
            city_density: 1.0,
        });
        assert!(small.cities.len() < big.cities.len());
    }

    #[test]
    fn city_users_total_matches_country_totals() {
        let a = atlas();
        let total: f64 = a.cities.iter().map(|c| a.city_users_m(c.id)).sum();
        let expected = crate::country::total_users_m();
        assert!((total - expected).abs() < 1e-6);
    }
}
