//! Cities: the unit of geographic placement for PoPs, interconnects, and
//! client populations.

use crate::country::CountryIdx;
use crate::point::GeoPoint;
use crate::region::Region;
use serde::{Deserialize, Serialize};

/// Dense index of a city within an [`crate::atlas::Atlas`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CityId(pub u32);

impl CityId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "city#{}", self.0)
    }
}

/// A city in the synthetic atlas.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    pub id: CityId,
    /// Synthetic name, e.g. `US-3`. The first city of each country (`XX-0`)
    /// sits at the country centroid and acts as its main metro.
    pub name: String,
    pub country: CountryIdx,
    pub region: Region,
    pub location: GeoPoint,
    /// Share of the country's users living in this city's metro area.
    /// Sums to 1.0 within a country.
    pub user_share: f64,
    /// Whether the city is a major colocation/interconnection hub.
    pub colo_hub: bool,
}

impl City {
    /// Great-circle distance to another city, km.
    pub fn distance_km(&self, other: &City) -> f64 {
        self.location.distance_km(&other.location)
    }
}
