//! Static country table: centroids, regions, and Internet user populations.
//!
//! Population figures are approximate 2019 Internet-user counts in millions
//! (the paper weights §3.3 results by APNIC user-population estimates; this
//! table plays that role). Centroids are population-weighted-ish country
//! centers, not geometric ones (e.g., Canada's sits near its southern belt).

use crate::point::GeoPoint;
use crate::region::Region;
use serde::Serialize;

/// Index of a country in [`WORLD`].
pub type CountryIdx = usize;

/// A country in the synthetic atlas.
#[derive(Debug, Clone, Serialize)]
pub struct Country {
    /// ISO-3166-ish two-letter code.
    pub code: &'static str,
    pub name: &'static str,
    pub region: Region,
    /// Population-weighted center.
    pub centroid: GeoPoint,
    /// Internet users, millions.
    pub users_m: f64,
    /// Rough radius over which cities scatter, km.
    pub spread_km: f64,
    /// Whether the country hosts a major interconnection hub (big colo
    /// market); drives IXP and tier-1 footprint placement.
    pub major_hub: bool,
}

macro_rules! country {
    ($code:expr, $name:expr, $region:expr, $lat:expr, $lon:expr, $users:expr, $spread:expr, $hub:expr) => {
        Country {
            code: $code,
            name: $name,
            region: $region,
            centroid: GeoPoint {
                lat_deg: $lat,
                lon_deg: $lon,
            },
            users_m: $users,
            spread_km: $spread,
            major_hub: $hub,
        }
    };
}

/// The world: 56 countries covering ~4.3 B Internet users.
pub const WORLD: &[Country] = &[
    // --- North America ---
    country!("US", "United States", Region::NorthAmerica, 39.0, -96.0, 295.0, 1800.0, true),
    country!("CA", "Canada", Region::NorthAmerica, 49.0, -95.0, 34.0, 1400.0, false),
    country!("MX", "Mexico", Region::NorthAmerica, 23.0, -102.0, 88.0, 700.0, false),
    // --- South America ---
    country!("BR", "Brazil", Region::SouthAmerica, -15.0, -48.0, 150.0, 1400.0, true),
    country!("AR", "Argentina", Region::SouthAmerica, -34.0, -64.0, 39.0, 800.0, false),
    country!("CO", "Colombia", Region::SouthAmerica, 4.5, -74.0, 33.0, 500.0, false),
    country!("CL", "Chile", Region::SouthAmerica, -33.5, -70.7, 15.0, 700.0, false),
    country!("PE", "Peru", Region::SouthAmerica, -9.2, -75.0, 20.0, 500.0, false),
    country!("VE", "Venezuela", Region::SouthAmerica, 8.0, -66.0, 19.0, 400.0, false),
    country!("EC", "Ecuador", Region::SouthAmerica, -1.8, -78.2, 10.0, 300.0, false),
    // --- Europe ---
    country!("GB", "United Kingdom", Region::Europe, 52.5, -1.5, 63.0, 350.0, true),
    country!("DE", "Germany", Region::Europe, 51.0, 10.0, 77.0, 350.0, true),
    country!("FR", "France", Region::Europe, 47.0, 2.5, 58.0, 400.0, true),
    country!("IT", "Italy", Region::Europe, 42.8, 12.5, 50.0, 450.0, false),
    country!("ES", "Spain", Region::Europe, 40.2, -3.7, 42.0, 400.0, false),
    country!("NL", "Netherlands", Region::Europe, 52.2, 5.3, 16.0, 120.0, true),
    country!("PL", "Poland", Region::Europe, 52.0, 19.5, 30.0, 300.0, false),
    country!("SE", "Sweden", Region::Europe, 59.5, 17.0, 9.3, 400.0, false),
    country!("UA", "Ukraine", Region::Europe, 49.0, 31.5, 29.0, 400.0, false),
    country!("RO", "Romania", Region::Europe, 45.9, 25.0, 14.0, 250.0, false),
    country!("RU", "Russia", Region::Europe, 56.0, 44.0, 118.0, 1800.0, false),
    country!("BE", "Belgium", Region::Europe, 50.8, 4.4, 10.0, 100.0, false),
    country!("CH", "Switzerland", Region::Europe, 46.9, 7.5, 7.8, 120.0, false),
    country!("AT", "Austria", Region::Europe, 48.1, 15.0, 7.7, 180.0, false),
    country!("CZ", "Czechia", Region::Europe, 49.9, 15.3, 8.5, 150.0, false),
    country!("PT", "Portugal", Region::Europe, 39.7, -8.5, 7.8, 250.0, false),
    country!("GR", "Greece", Region::Europe, 38.5, 23.2, 7.5, 250.0, false),
    country!("NO", "Norway", Region::Europe, 60.0, 9.5, 5.0, 350.0, false),
    country!("DK", "Denmark", Region::Europe, 55.8, 10.5, 5.5, 130.0, false),
    country!("FI", "Finland", Region::Europe, 61.5, 25.0, 5.2, 350.0, false),
    country!("IE", "Ireland", Region::Europe, 53.3, -7.5, 4.3, 130.0, false),
    // --- Middle East ---
    country!("TR", "Turkey", Region::MiddleEast, 39.5, 33.0, 62.0, 600.0, false),
    country!("SA", "Saudi Arabia", Region::MiddleEast, 24.5, 45.0, 30.0, 700.0, false),
    country!("IR", "Iran", Region::MiddleEast, 33.5, 52.0, 62.0, 700.0, false),
    country!("AE", "UAE", Region::MiddleEast, 24.3, 54.4, 9.0, 150.0, true),
    country!("IL", "Israel", Region::MiddleEast, 31.8, 35.0, 7.2, 120.0, false),
    country!("IQ", "Iraq", Region::MiddleEast, 33.2, 43.7, 18.0, 350.0, false),
    // --- Africa ---
    country!("NG", "Nigeria", Region::Africa, 9.0, 7.5, 100.0, 600.0, false),
    country!("ZA", "South Africa", Region::Africa, -28.5, 25.0, 33.0, 700.0, true),
    country!("EG", "Egypt", Region::Africa, 27.5, 30.5, 50.0, 400.0, false),
    country!("KE", "Kenya", Region::Africa, -0.5, 37.5, 23.0, 350.0, false),
    country!("MA", "Morocco", Region::Africa, 32.5, -6.5, 23.0, 400.0, false),
    country!("ET", "Ethiopia", Region::Africa, 9.0, 39.5, 18.0, 450.0, false),
    country!("GH", "Ghana", Region::Africa, 7.5, -1.0, 11.0, 250.0, false),
    // --- East Asia ---
    country!("CN", "China", Region::EastAsia, 33.0, 110.0, 850.0, 1500.0, false),
    country!("JP", "Japan", Region::EastAsia, 36.0, 138.5, 110.0, 700.0, true),
    country!("KR", "South Korea", Region::EastAsia, 36.5, 127.8, 48.0, 250.0, false),
    country!("ID", "Indonesia", Region::EastAsia, -4.0, 112.0, 170.0, 1300.0, false),
    country!("PH", "Philippines", Region::EastAsia, 13.0, 122.0, 68.0, 600.0, false),
    country!("VN", "Vietnam", Region::EastAsia, 16.5, 107.5, 65.0, 700.0, false),
    country!("TH", "Thailand", Region::EastAsia, 15.0, 101.0, 50.0, 450.0, false),
    country!("MY", "Malaysia", Region::EastAsia, 3.8, 102.0, 27.0, 500.0, false),
    country!("TW", "Taiwan", Region::EastAsia, 23.8, 121.0, 21.0, 180.0, false),
    country!("SG", "Singapore", Region::EastAsia, 1.35, 103.85, 5.3, 25.0, true),
    country!("HK", "Hong Kong", Region::EastAsia, 22.3, 114.2, 6.5, 25.0, true),
    // --- South Asia ---
    country!("IN", "India", Region::SouthAsia, 22.0, 79.0, 600.0, 1200.0, true),
    country!("PK", "Pakistan", Region::SouthAsia, 30.0, 70.0, 80.0, 600.0, false),
    country!("BD", "Bangladesh", Region::SouthAsia, 23.8, 90.3, 85.0, 250.0, false),
    country!("LK", "Sri Lanka", Region::SouthAsia, 7.5, 80.7, 10.0, 150.0, false),
    country!("NP", "Nepal", Region::SouthAsia, 28.2, 84.2, 11.0, 300.0, false),
    // --- Oceania ---
    country!("AU", "Australia", Region::Oceania, -30.0, 140.0, 22.0, 1500.0, true),
    country!("NZ", "New Zealand", Region::Oceania, -40.5, 174.0, 4.4, 500.0, false),
];

/// Total Internet users across the atlas, in millions.
pub fn total_users_m() -> f64 {
    WORLD.iter().map(|c| c.users_m).sum()
}

/// Look up a country by its two-letter code.
pub fn by_code(code: &str) -> Option<(CountryIdx, &'static Country)> {
    WORLD.iter().enumerate().find(|(_, c)| c.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn codes_are_unique() {
        let set: HashSet<_> = WORLD.iter().map(|c| c.code).collect();
        assert_eq!(set.len(), WORLD.len());
    }

    #[test]
    fn total_users_is_global_scale() {
        let t = total_users_m();
        assert!((3000.0..5000.0).contains(&t), "got {t}");
    }

    #[test]
    fn every_region_represented() {
        for r in Region::ALL {
            assert!(
                WORLD.iter().any(|c| c.region == r),
                "region {r} has no countries"
            );
        }
    }

    #[test]
    fn centroids_are_valid_coordinates() {
        for c in WORLD {
            assert!(c.centroid.lat_deg.abs() <= 90.0, "{}", c.code);
            assert!(c.centroid.lon_deg.abs() <= 180.0, "{}", c.code);
            assert!(c.users_m > 0.0);
            assert!(c.spread_km > 0.0);
        }
    }

    #[test]
    fn lookup_by_code() {
        let (_, us) = by_code("US").unwrap();
        assert_eq!(us.name, "United States");
        assert!(by_code("ZZ").is_none());
    }

    #[test]
    fn india_is_south_asia_and_hub() {
        let (_, inn) = by_code("IN").unwrap();
        assert_eq!(inn.region, Region::SouthAsia);
        assert!(inn.major_hub);
    }

    #[test]
    fn there_are_enough_major_hubs_for_a_global_backbone() {
        let hubs = WORLD.iter().filter(|c| c.major_hub).count();
        assert!(hubs >= 10, "got {hubs}");
    }
}
