//! Speed-of-light-in-fiber delay primitives.
//!
//! Light in fiber covers roughly 200 km per millisecond (c × ~0.67). The
//! paper's rule of thumb — "500 km … translates to as little as 5 ms RTT"
//! (§2.3.1) — corresponds to 200 km/ms one-way times two directions with a
//! factor-of-two route inflation; our default inflation factors are chosen so
//! that calibration check S23x reproduces that arithmetic.

/// Kilometers light travels per millisecond in fiber.
pub const FIBER_KM_PER_MS: f64 = 200.0;

/// One-way propagation delay over `distance_km` of great-circle distance,
/// inflated by `path_inflation` (≥ 1.0) to account for cable routes not
/// following great circles.
pub fn propagation_delay_ms(distance_km: f64, path_inflation: f64) -> f64 {
    debug_assert!(distance_km >= 0.0);
    debug_assert!(path_inflation >= 1.0);
    distance_km * path_inflation / FIBER_KM_PER_MS
}

/// The minimum possible RTT between two points `distance_km` apart: straight
/// great-circle fiber, no queueing, no inflation.
pub fn min_rtt_ms(distance_km: f64) -> f64 {
    2.0 * propagation_delay_ms(distance_km, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rule_of_thumb_500km_is_5ms_rtt() {
        // §2.3.1: clients within 500 km → "as little as 5ms RTT".
        let rtt = min_rtt_ms(500.0);
        assert!((rtt - 5.0).abs() < 1e-9, "got {rtt}");
    }

    #[test]
    fn inflation_scales_linearly() {
        let base = propagation_delay_ms(1000.0, 1.0);
        let inflated = propagation_delay_ms(1000.0, 1.5);
        assert!((inflated / base - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_zero_delay() {
        assert_eq!(propagation_delay_ms(0.0, 1.0), 0.0);
        assert_eq!(min_rtt_ms(0.0), 0.0);
    }

    #[test]
    fn transatlantic_min_rtt_realistic() {
        // NYC–London ≈ 5570 km ⇒ theoretical floor ≈ 56 ms RTT; real-world
        // best paths are ~70 ms.
        let rtt = min_rtt_ms(5570.0);
        assert!((50.0..60.0).contains(&rtt), "got {rtt}");
    }
}
