//! # bb-geo — geographic substrate
//!
//! Geographic primitives for the Beating-BGP reproduction: coordinates and
//! great-circle distances, a synthetic-but-realistic world atlas (regions,
//! countries with population weights, cities), and speed-of-light-in-fiber
//! delay models.
//!
//! Everything here is deterministic: the atlas base data is static, and the
//! city sampler takes an explicit seed.
//!
//! The paper's studies weight results by where Internet users actually are
//! (e.g., §3.3 weights vantage points by APNIC user-population estimates), so
//! the atlas carries per-country user populations that the workload crate
//! turns into traffic weights.

pub mod atlas;
pub mod city;
pub mod country;
pub mod delay;
pub mod point;
pub mod region;

pub use atlas::Atlas;
pub use city::{City, CityId};
pub use country::{Country, CountryIdx};
pub use delay::{min_rtt_ms, propagation_delay_ms, FIBER_KM_PER_MS};
pub use point::GeoPoint;
pub use region::Region;
