//! Geographic coordinates and great-circle distance.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometers (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A point on the Earth's surface, in decimal degrees.
///
/// Latitude is positive north, longitude positive east.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    pub lat_deg: f64,
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Construct a point, normalizing longitude into [-180, 180) and clamping
    /// latitude into [-90, 90].
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        let lat = lat_deg.clamp(-90.0, 90.0);
        let mut lon = lon_deg.rem_euclid(360.0);
        if lon >= 180.0 {
            lon -= 360.0;
        }
        Self {
            lat_deg: lat,
            lon_deg: lon,
        }
    }

    /// Great-circle (haversine) distance to `other`, in kilometers.
    ///
    /// ```
    /// use bb_geo::GeoPoint;
    /// let nyc = GeoPoint::new(40.71, -74.01);
    /// let london = GeoPoint::new(51.51, -0.13);
    /// let d = nyc.distance_km(&london);
    /// assert!((5400.0..5750.0).contains(&d)); // ~5570 km in reality
    /// ```
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();

        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        // `a` can drift a hair above 1.0 from floating-point error for
        // antipodal points; clamp before the sqrt.
        let a = a.clamp(0.0, 1.0);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// A point offset from this one by roughly `dx_km` east and `dy_km`
    /// north. Used by the atlas generator to scatter cities around a country
    /// centroid; accuracy degrades near the poles, which is fine for our
    /// synthetic atlas (no city is placed above ~70° latitude).
    pub fn offset_km(&self, dx_km: f64, dy_km: f64) -> GeoPoint {
        let dlat = dy_km / 111.0;
        let cos_lat = self.lat_deg.to_radians().cos().max(0.05);
        let dlon = dx_km / (111.0 * cos_lat);
        GeoPoint::new(self.lat_deg + dlat, self.lon_deg + dlon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nyc() -> GeoPoint {
        GeoPoint::new(40.71, -74.01)
    }
    fn london() -> GeoPoint {
        GeoPoint::new(51.51, -0.13)
    }
    fn sydney() -> GeoPoint {
        GeoPoint::new(-33.87, 151.21)
    }

    #[test]
    fn zero_distance_to_self() {
        let p = nyc();
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn nyc_london_distance_is_realistic() {
        // Real-world value is ~5570 km.
        let d = nyc().distance_km(&london());
        assert!((5400.0..5750.0).contains(&d), "got {d}");
    }

    #[test]
    fn london_sydney_distance_is_realistic() {
        // Real-world value is ~16990 km.
        let d = london().distance_km(&sydney());
        assert!((16700.0..17300.0).contains(&d), "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let (a, b) = (nyc(), sydney());
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn longitude_normalization() {
        let p = GeoPoint::new(0.0, 190.0);
        assert!((p.lon_deg - (-170.0)).abs() < 1e-9);
        let q = GeoPoint::new(0.0, -190.0);
        assert!((q.lon_deg - 170.0).abs() < 1e-9);
    }

    #[test]
    fn antipodal_distance_near_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, expected ~{half}");
    }

    #[test]
    fn offset_roughly_preserves_distance() {
        let p = nyc();
        let q = p.offset_km(100.0, 0.0);
        let d = p.distance_km(&q);
        assert!((90.0..110.0).contains(&d), "got {d}");
        let r = p.offset_km(0.0, 100.0);
        let d2 = p.distance_km(&r);
        assert!((95.0..105.0).contains(&d2), "got {d2}");
    }
}
