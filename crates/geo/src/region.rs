//! World regions, at the granularity Figure 5 of the paper reasons about.
//!
//! South Asia is split out from the rest of Asia because the paper's §3.3.2
//! case study (public Internet beating Google's WAN from India) is a
//! region-level effect we model explicitly.

use serde::{Deserialize, Serialize};

/// A coarse world region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    NorthAmerica,
    SouthAmerica,
    Europe,
    MiddleEast,
    Africa,
    /// East and Southeast Asia (China, Japan, Korea, SE Asia).
    EastAsia,
    /// India and its neighbors — split out for the §3.3.2 case study.
    SouthAsia,
    Oceania,
}

impl Region {
    /// All regions, in a stable order.
    pub const ALL: [Region; 8] = [
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Europe,
        Region::MiddleEast,
        Region::Africa,
        Region::EastAsia,
        Region::SouthAsia,
        Region::Oceania,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Region::NorthAmerica => "North America",
            Region::SouthAmerica => "South America",
            Region::Europe => "Europe",
            Region::MiddleEast => "Middle East",
            Region::Africa => "Africa",
            Region::EastAsia => "East Asia",
            Region::SouthAsia => "South Asia",
            Region::Oceania => "Oceania",
        }
    }

    /// Whether this region is "Asia" in the paper's Figure 5 coloring
    /// (the paper does not split South Asia out; we do internally).
    pub fn is_asia(&self) -> bool {
        matches!(self, Region::EastAsia | Region::SouthAsia)
    }

    /// Rough UTC offset of the region's population center, in hours. Used by
    /// the diurnal congestion model to phase local peak hours.
    pub fn utc_offset_hours(&self) -> f64 {
        match self {
            Region::NorthAmerica => -6.0,
            Region::SouthAmerica => -4.0,
            Region::Europe => 1.0,
            Region::MiddleEast => 3.0,
            Region::Africa => 2.0,
            Region::EastAsia => 8.0,
            Region::SouthAsia => 5.5,
            Region::Oceania => 10.0,
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_regions_distinct() {
        use std::collections::HashSet;
        let set: HashSet<_> = Region::ALL.iter().collect();
        assert_eq!(set.len(), Region::ALL.len());
    }

    #[test]
    fn asia_classification() {
        assert!(Region::EastAsia.is_asia());
        assert!(Region::SouthAsia.is_asia());
        assert!(!Region::Europe.is_asia());
        assert!(!Region::Oceania.is_asia());
    }

    #[test]
    fn utc_offsets_within_bounds() {
        for r in Region::ALL {
            let o = r.utc_offset_hours();
            assert!((-12.0..=14.0).contains(&o));
        }
    }
}
