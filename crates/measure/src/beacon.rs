//! Bing-style client beacons (§2.3.2, §3.2).
//!
//! "This earlier work instrumented millions of Bing search results with
//! JavaScript to measure from the client to both the anycast address and to
//! a number of nearby unicast addresses." Each beacon measurement therefore
//! carries, for one client prefix at one time, the anycast RTT plus the RTT
//! to the N unicast front-ends nearest the client.

use bb_cdn::{AnycastDeployment, Provider};
use bb_geo::{CityId, Region};
use bb_netsim::{
    sample_min_rtt, CongestionKey, CongestionModel, CongestionPlan, FaultPlane, PathPlan,
    RttModel, SimTime,
};
use bb_topology::Topology;
use bb_workload::{PrefixId, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashMap;

/// Front-end processing time added to every request, ms.
pub const FRONTEND_PROCESS_MS: f64 = 0.5;

/// Beacon campaign configuration.
#[derive(Debug, Clone, Serialize)]
pub struct BeaconConfig {
    pub seed: u64,
    /// Unicast front-ends measured per client (paper: "a number of nearby
    /// unicast addresses").
    pub n_nearest_unicast: usize,
    /// Measurement rounds (each at a different time of day).
    pub rounds: usize,
    /// Hours between rounds.
    pub round_spacing_h: f64,
    /// Jittered RTT samples per measurement.
    pub samples: usize,
}

impl Default for BeaconConfig {
    fn default() -> Self {
        Self {
            seed: 0x_000b_eac0,
            n_nearest_unicast: 4,
            rounds: 8,
            round_spacing_h: 7.0, // co-prime with 24h: sweeps the day
            samples: 3,
        }
    }
}

/// One beacon observation: a client prefix's side-by-side measurements.
#[derive(Debug, Clone, Serialize)]
pub struct BeaconMeasurement {
    pub prefix: PrefixId,
    pub weight: f64,
    pub region: Region,
    pub time: SimTime,
    pub anycast_rtt_ms: f64,
    /// Which front-end anycast landed on.
    pub anycast_front_end: CityId,
    /// (site, RTT) for the measured nearby unicast front-ends.
    pub unicast_rtt_ms: Vec<(CityId, f64)>,
}

impl BeaconMeasurement {
    /// RTT of the best measured unicast front-end. Beacons lost to the
    /// fault plane carry `NaN` and are skipped; with *every* unicast beacon
    /// lost this is `NaN` (and the measurement is incomplete).
    pub fn best_unicast_ms(&self) -> f64 {
        bb_stats::min_finite(self.unicast_rtt_ms.iter().map(|&(_, r)| r))
    }

    /// Whether both sides of the comparison survived the fault plane: the
    /// anycast beacon reported and at least one unicast beacon did too.
    pub fn is_complete(&self) -> bool {
        self.anycast_rtt_ms.is_finite() && self.best_unicast_ms().is_finite()
    }

    /// Paper's Fig 3 quantity: anycast − best unicast (positive = anycast
    /// slower). `NaN` when the measurement is incomplete.
    pub fn anycast_penalty_ms(&self) -> f64 {
        self.anycast_rtt_ms - self.best_unicast_ms()
    }
}

/// Run a beacon campaign against an anycast deployment plus per-site
/// unicast deployments.
///
/// `unicast` maps each site to its single-site deployment (built once by
/// the caller; they're reused across rounds and clients).
pub fn run_beacons(
    topo: &Topology,
    provider: &Provider,
    anycast: &AnycastDeployment,
    unicast: &HashMap<CityId, AnycastDeployment>,
    workload: &Workload,
    congestion: &CongestionModel,
    faults: Option<&FaultPlane>,
    cfg: &BeaconConfig,
) -> Vec<BeaconMeasurement> {
    let rtt_model = RttModel::default();

    // One task per prefix; the RNG is keyed on (seed, prefix id, round), so
    // output is identical for every worker count, and the in-order flatten
    // reproduces the sequential prefix-major row order.
    let per_prefix = bb_exec::par_map(&workload.prefixes, |_, prefix| {
        let lastmile = CongestionKey::LastMile(prefix.id.lastmile_code());
        // Cache the services once per prefix (routing is static).
        let any_svc = anycast.serve(topo, provider, prefix.asn, prefix.city)?;
        // Nearby sites: by great-circle distance from the client.
        let mut sites: Vec<(CityId, f64)> = anycast
            .sites
            .iter()
            .map(|&s| {
                (
                    s,
                    topo.atlas
                        .city(s)
                        .location
                        .distance_km(&topo.atlas.city(prefix.city).location),
                )
            })
            .collect();
        sites.sort_by(|a, b| a.1.total_cmp(&b.1));
        let uni_svcs: Vec<(CityId, _)> = sites
            .iter()
            .take(cfg.n_nearest_unicast)
            .filter_map(|&(s, _)| {
                unicast
                    .get(&s)
                    .and_then(|dep| dep.serve(topo, provider, prefix.asn, prefix.city))
                    .map(|svc| (s, svc))
            })
            .collect();
        if uni_svcs.is_empty() {
            return None;
        }

        // Compile each service's path once; rounds then query the plans.
        let cplan = CongestionPlan::new(congestion);
        let compile = |svc: &bb_cdn::anycast::ClientService| {
            cplan.compile_path(topo, &svc.path, Some(lastmile))
        };
        let any_plan = compile(&any_svc);
        let uni_plans: Vec<(CityId, PathPlan, f64)> = uni_svcs
            .iter()
            .map(|(s, svc)| (*s, compile(svc), svc.wan_extra_ms))
            .collect();

        let mut tally = crate::FaultTally::default();
        let mut rows = Vec::with_capacity(cfg.rounds);
        for round in 0..cfg.rounds {
            let t = SimTime::from_hours(round as f64 * cfg.round_spacing_h);
            let (anycast_rtt_ms, unicast_rtt_ms) = match faults {
                None => {
                    let mut rng = StdRng::seed_from_u64(
                        cfg.seed ^ (prefix.id.0 as u64) << 20 ^ round as u64,
                    );
                    let measure = |plan: &PathPlan, wan_extra_ms: f64, rng: &mut StdRng| {
                        let det = plan.rtt_ms(t) + 2.0 * wan_extra_ms + FRONTEND_PROCESS_MS;
                        sample_min_rtt(det, &rtt_model, cfg.samples, rng)
                    };
                    let any = measure(&any_plan, any_svc.wan_extra_ms, &mut rng);
                    let uni: Vec<(CityId, f64)> = uni_plans
                        .iter()
                        .map(|(s, plan, wan)| (*s, measure(plan, *wan, &mut rng)))
                        .collect();
                    (any, uni)
                }
                Some(fp) => {
                    // Beacons lost to the fault plane report NaN; the row
                    // is still emitted so analysis can count coverage.
                    // `fe_tag` identifies the front-end (u64::MAX =
                    // anycast); churn is keyed per ⟨prefix, front-end⟩
                    // route, loss per ⟨route, round⟩ beacon.
                    let fe_measure = |plan: &PathPlan,
                                          wan_extra_ms: f64,
                                          fe_tag: u64,
                                          tally: &mut crate::FaultTally| {
                        let route_key =
                            FaultPlane::stream_key(&[prefix.id.0 as u64, fe_tag]);
                        if fp.route_withdrawn(route_key, t) {
                            tally.lost += 1;
                            return f64::NAN;
                        }
                        let probe_key = FaultPlane::stream_key(&[route_key, round as u64]);
                        crate::faulted_attempts(fp, probe_key, tally, |attempt| {
                            let ta = t + attempt as f64 * fp.config().retry_backoff_min;
                            let mut rng = StdRng::seed_from_u64(bb_exec::derive_seed(
                                cfg.seed ^ probe_key,
                                attempt as u64,
                            ));
                            let det =
                                plan.rtt_ms(ta) + 2.0 * wan_extra_ms + FRONTEND_PROCESS_MS;
                            sample_min_rtt(det, &rtt_model, cfg.samples, &mut rng)
                        })
                        .unwrap_or(f64::NAN)
                    };
                    let any =
                        fe_measure(&any_plan, any_svc.wan_extra_ms, u64::MAX, &mut tally);
                    let uni: Vec<(CityId, f64)> = uni_plans
                        .iter()
                        .map(|(s, plan, wan)| {
                            (*s, fe_measure(plan, *wan, s.0 as u64, &mut tally))
                        })
                        .collect();
                    (any, uni)
                }
            };

            rows.push(BeaconMeasurement {
                prefix: prefix.id,
                weight: prefix.weight,
                region: topo.atlas.city(prefix.city).region,
                time: t,
                anycast_rtt_ms,
                anycast_front_end: any_svc.front_end,
                unicast_rtt_ms,
            });
            crate::progress::window_done();
        }
        Some((rows, tally))
    });
    let mut tally = crate::FaultTally::default();
    let mut measurements: Vec<BeaconMeasurement> = Vec::new();
    for (prefix_rows, prefix_tally) in per_prefix.into_iter().flatten() {
        measurements.extend(prefix_rows);
        tally.merge(prefix_tally);
    }
    if faults.is_some() {
        tally.publish();
    }
    let draws: usize = measurements.iter().map(|m| 1 + m.unicast_rtt_ms.len()).sum();
    bb_exec::timing::add_count("samples:beacon", draws * cfg.samples);
    measurements
}

/// Build the per-site unicast deployments for a set of sites.
pub fn build_unicast_deployments(
    topo: &Topology,
    provider: &Provider,
    sites: &[CityId],
) -> HashMap<CityId, AnycastDeployment> {
    bb_exec::par_map(sites, |_, &s| (s, AnycastDeployment::unicast(topo, provider, s)))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_cdn::{build_provider, ProviderConfig};
    use bb_netsim::CongestionConfig;
    use bb_topology::{generate, TopologyConfig};
    use bb_workload::{generate_workload, WorkloadConfig};

    fn campaign() -> (Topology, Vec<BeaconMeasurement>) {
        let mut topo = generate(&TopologyConfig::small(91));
        let provider = build_provider(&mut topo, &ProviderConfig::microsoft_like(9));
        let workload = generate_workload(&topo, &WorkloadConfig::default());
        let congestion = CongestionModel::new(9, CongestionConfig::default());
        let sites = provider.pops.clone();
        let anycast = AnycastDeployment::deploy(&topo, &provider, &sites);
        let unicast = build_unicast_deployments(&topo, &provider, &sites);
        let cfg = BeaconConfig {
            rounds: 2,
            ..Default::default()
        };
        let ms = run_beacons(
            &topo, &provider, &anycast, &unicast, &workload, &congestion, None, &cfg,
        );
        (topo, ms)
    }

    #[test]
    fn beacons_cover_most_prefixes() {
        let (_, ms) = campaign();
        assert!(!ms.is_empty());
        let prefixes: std::collections::HashSet<_> = ms.iter().map(|m| m.prefix).collect();
        assert!(prefixes.len() > 50, "got {}", prefixes.len());
    }

    #[test]
    fn measurements_are_positive_and_bounded() {
        let (_, ms) = campaign();
        for m in &ms {
            assert!(m.anycast_rtt_ms > 0.0 && m.anycast_rtt_ms < 1000.0);
            for &(_, r) in &m.unicast_rtt_ms {
                assert!(r > 0.0 && r < 1500.0);
            }
            assert!(m.best_unicast_ms().is_finite());
        }
    }

    #[test]
    fn anycast_mostly_close_to_best_unicast() {
        // §3.2.1's headline: "most of the time, anycast performs as well as
        // the best possible unicast front-end". With everything announcing
        // everywhere, the catchment is usually the nearby site.
        let (_, ms) = campaign();
        let close = ms
            .iter()
            .filter(|m| m.anycast_penalty_ms() < 10.0)
            .count();
        assert!(
            close * 10 >= ms.len() * 5,
            "anycast within 10ms for {close}/{}",
            ms.len()
        );
    }

    #[test]
    fn unicast_count_respects_config() {
        let (_, ms) = campaign();
        for m in &ms {
            assert!(m.unicast_rtt_ms.len() <= 4);
            assert!(!m.unicast_rtt_ms.is_empty());
        }
    }

    #[test]
    fn rounds_have_distinct_times() {
        let (_, ms) = campaign();
        let times: std::collections::HashSet<u64> =
            ms.iter().map(|m| m.time.minutes().to_bits()).collect();
        assert_eq!(times.len(), 2);
    }

    #[test]
    fn deterministic() {
        let (_, a) = campaign();
        let (_, b) = campaign();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.anycast_rtt_ms, y.anycast_rtt_ms);
        }
    }

    #[test]
    fn faulted_beacons_flag_incomplete_rows() {
        use bb_netsim::{FaultConfig, FaultPlane};
        let mut topo = generate(&TopologyConfig::small(91));
        let provider = build_provider(&mut topo, &ProviderConfig::microsoft_like(9));
        let workload = generate_workload(&topo, &WorkloadConfig::default());
        let congestion = CongestionModel::new(9, CongestionConfig::default());
        let sites = provider.pops.clone();
        let anycast = AnycastDeployment::deploy(&topo, &provider, &sites);
        let unicast = build_unicast_deployments(&topo, &provider, &sites);
        let cfg = BeaconConfig {
            rounds: 4,
            ..Default::default()
        };
        let plane = FaultPlane::new(
            21,
            FaultConfig {
                probe_loss: 0.30,
                max_retries: 0,
                ..FaultConfig::heavy()
            },
        );
        let run = || {
            run_beacons(
                &topo, &provider, &anycast, &unicast, &workload, &congestion, Some(&plane),
                &cfg,
            )
        };
        let ms = run();
        let incomplete = ms.iter().filter(|m| !m.is_complete()).count();
        let complete = ms.len() - incomplete;
        assert!(incomplete > 0, "30% loss must kill some beacons");
        assert!(complete > incomplete, "most beacons still report");
        for m in &ms {
            if m.is_complete() {
                assert!(m.anycast_penalty_ms().is_finite());
            } else {
                assert!(m.anycast_penalty_ms().is_nan());
            }
        }
        // Cached churn processes in the same plane object: a repeat run is
        // byte-identical.
        let again = run();
        assert_eq!(format!("{ms:?}"), format!("{again:?}"));
    }
}
