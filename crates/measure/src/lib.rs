//! # bb-measure — the measurement systems of the three studies
//!
//! Each sub-module reproduces one data-collection pipeline:
//!
//! * [`spray`] — the Facebook-style load-balancer instrumentation of §3.1:
//!   "A sampled subset of client HTTP sessions are sprayed across different
//!   egress routes, including BGP's most preferred, second-most preferred,
//!   and third-most preferred path that a PoP has to each client prefix",
//!   aggregated as median TCP MinRTT per ⟨PoP, prefix, route⟩ per 15-minute
//!   window, weighted by traffic volume;
//! * [`beacon`] — the Bing-style JavaScript beacons of §3.2: clients
//!   measure the anycast address and several nearby unicast front-ends
//!   side by side;
//! * [`probe`] — the Speedchecker-style vantage-point probing of §3.3:
//!   pings (min of 5) and traceroutes (ingress inference) from ⟨City, AS⟩
//!   vantage points to Premium- and Standard-tier VMs.

//!
//! All three pipelines optionally consume a
//! [`FaultPlane`](bb_netsim::FaultPlane): probes are lost, time out, and
//! retry with bounded backoff; routes are withdrawn mid-window by churn.
//! Measurements that do not survive are emitted as `NaN` (never silently
//! averaged) and per-campaign fault tallies land in `bb_exec::timing`
//! counters (`faults:*`). With no fault plane the pipelines run the exact
//! pre-fault code path, byte for byte.

pub mod beacon;
pub mod probe;
pub mod spray;

/// Window-granular campaign progress, for checkpointing inside a study.
///
/// The measurement pipelines tick [`progress::window_done`] once per
/// completed aggregation unit (a spray ⟨target, window⟩, a beacon
/// ⟨prefix, round⟩, a tier probe). A harness that wants intra-experiment
/// checkpoints registers a hook fired every N ticks; with no hook
/// installed the cost is one relaxed `fetch_add` per window — zero
/// synchronization, zero I/O — so `--checkpoint`-off runs pay nothing.
///
/// The tick count is *telemetry*, not payload: it feeds the checkpoint
/// manifest's `windows_done` field and progress displays, never figure
/// data, so its (deterministic) value has no byte-identity obligations
/// beyond being stable for a given campaign.
pub mod progress {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, RwLock};

    static WINDOWS: AtomicU64 = AtomicU64::new(0);
    static EVERY: AtomicU64 = AtomicU64::new(0);
    static HOOK: RwLock<Option<Arc<dyn Fn(u64) + Send + Sync>>> = RwLock::new(None);

    /// Record one completed measurement window; fires the hook on every
    /// N-th window when one is installed.
    pub fn window_done() {
        let n = WINDOWS.fetch_add(1, Ordering::Relaxed) + 1;
        let every = EVERY.load(Ordering::Relaxed);
        if every != 0 && n % every == 0 {
            let hook = HOOK.read().unwrap_or_else(|e| e.into_inner()).clone();
            if let Some(h) = hook {
                h(n);
            }
        }
    }

    /// Windows completed so far in this process.
    pub fn windows_done() -> u64 {
        WINDOWS.load(Ordering::Relaxed)
    }

    /// Install `hook`, fired (from whichever worker thread crosses the
    /// boundary) every `every` completed windows. `every == 0` disables.
    pub fn set_hook(every: u64, hook: Arc<dyn Fn(u64) + Send + Sync>) {
        *HOOK.write().unwrap_or_else(|e| e.into_inner()) = Some(hook);
        EVERY.store(every, Ordering::Relaxed);
    }

    /// Remove the hook and reset the counter (tests, campaign boundaries).
    pub fn reset() {
        EVERY.store(0, Ordering::Relaxed);
        *HOOK.write().unwrap_or_else(|e| e.into_inner()) = None;
        WINDOWS.store(0, Ordering::Relaxed);
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicUsize;

        #[test]
        fn hook_fires_every_n_windows() {
            // Serialize against other tests via the write lock semantics:
            // this test owns the global hook for its duration.
            reset();
            let fired = Arc::new(AtomicUsize::new(0));
            let f = fired.clone();
            set_hook(
                3,
                Arc::new(move |_| {
                    f.fetch_add(1, Ordering::Relaxed);
                }),
            );
            let base = windows_done();
            for _ in 0..10 {
                window_done();
            }
            assert_eq!(windows_done() - base, 10);
            // 10 ticks at every=3 crosses at least three multiples of 3.
            assert!(fired.load(Ordering::Relaxed) >= 3);
            reset();
            let before = fired.load(Ordering::Relaxed);
            window_done();
            window_done();
            window_done();
            assert_eq!(fired.load(Ordering::Relaxed), before, "reset removes hook");
        }
    }
}

pub use beacon::{run_beacons, BeaconConfig, BeaconMeasurement};
pub use probe::{probe_tiers, select_vantage_points, ProbeConfig, TierProbe, VantagePoint};
pub use spray::{spray, SprayConfig, SprayDataset, SprayEngine, SprayTarget, WindowRow};

/// Per-campaign fault bookkeeping, accumulated inside `par_map` tasks and
/// merged into the process-wide `timing` counters once per campaign.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FaultTally {
    /// Probe attempts that never reported (lost in flight or timed out).
    pub lost: usize,
    /// Of `lost`, attempts censored by the measurement timeout — split out
    /// so a timeout preset eating legitimate long-haul RTTs shows up in
    /// the telemetry rather than hiding inside generic loss.
    pub timeouts: usize,
    /// Retry attempts issued after a lost/timed-out probe.
    pub retries: usize,
    /// Aggregation windows flagged degraded (below min-sample threshold or
    /// route withdrawn).
    pub dropped: usize,
}

impl FaultTally {
    pub fn merge(&mut self, other: FaultTally) {
        self.lost += other.lost;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.dropped += other.dropped;
    }

    /// Publish into the timing counters. Called only when a fault plane is
    /// active, so fault-free runs keep their counter set unchanged.
    pub fn publish(&self) {
        bb_exec::timing::add_count("faults:samples_lost", self.lost);
        bb_exec::timing::add_count("faults:timeouts", self.timeouts);
        bb_exec::timing::add_count("faults:retries", self.retries);
        bb_exec::timing::add_count("faults:windows_dropped", self.dropped);
    }
}

/// One faulted measurement: run up to `1 + max_retries` attempts of
/// `attempt -> Option<rtt>` (the closure returns `None` for a sample that
/// exceeded the measurement timeout), skipping attempts lost in flight.
/// Returns the first surviving RTT; `tally` absorbs losses and retries.
pub(crate) fn faulted_attempts(
    fp: &bb_netsim::FaultPlane,
    probe_key: u64,
    tally: &mut FaultTally,
    mut attempt_rtt: impl FnMut(u32) -> f64,
) -> Option<f64> {
    for attempt in 0..=fp.config().max_retries {
        if attempt > 0 {
            tally.retries += 1;
        }
        if fp.lost(probe_key, attempt) {
            tally.lost += 1;
            continue;
        }
        let rtt = attempt_rtt(attempt);
        if fp.timed_out(rtt) {
            tally.lost += 1;
            tally.timeouts += 1;
            continue;
        }
        return Some(rtt);
    }
    None
}
