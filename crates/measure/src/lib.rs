//! # bb-measure — the measurement systems of the three studies
//!
//! Each sub-module reproduces one data-collection pipeline:
//!
//! * [`spray`] — the Facebook-style load-balancer instrumentation of §3.1:
//!   "A sampled subset of client HTTP sessions are sprayed across different
//!   egress routes, including BGP's most preferred, second-most preferred,
//!   and third-most preferred path that a PoP has to each client prefix",
//!   aggregated as median TCP MinRTT per ⟨PoP, prefix, route⟩ per 15-minute
//!   window, weighted by traffic volume;
//! * [`beacon`] — the Bing-style JavaScript beacons of §3.2: clients
//!   measure the anycast address and several nearby unicast front-ends
//!   side by side;
//! * [`probe`] — the Speedchecker-style vantage-point probing of §3.3:
//!   pings (min of 5) and traceroutes (ingress inference) from ⟨City, AS⟩
//!   vantage points to Premium- and Standard-tier VMs.

pub mod beacon;
pub mod probe;
pub mod spray;

pub use beacon::{run_beacons, BeaconConfig, BeaconMeasurement};
pub use probe::{probe_tiers, select_vantage_points, ProbeConfig, TierProbe, VantagePoint};
pub use spray::{spray, SprayConfig, SprayDataset, WindowRow};
