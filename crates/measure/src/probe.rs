//! Speedchecker-style vantage-point probing (§2.3.3, §3.3).
//!
//! "Our credits allow us to issue one traceroute and five pings to each of
//! the VMs 10 times a day from 800 vantage points, which we select daily to
//! rotate across ⟨City, AS⟩ locations over time." Each probe records the
//! min-of-5-pings RTT to the Premium- and Standard-tier VMs and a
//! traceroute-derived provider-ingress city.

use bb_cdn::{Provider, Tier, TierDeployment};
use bb_geo::{CityId, CountryIdx};
use bb_netsim::{
    sample_min_rtt, CongestionKey, CongestionModel, CongestionPlan, FaultPlane, RttModel,
    SimTime,
};
use bb_topology::{AsClass, AsId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

/// Probe campaign configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeConfig {
    pub seed: u64,
    /// Probe rounds (the paper's campaign: 10/day for 10 months; scale this
    /// down while keeping day-time coverage).
    pub rounds: usize,
    /// Hours between rounds (co-prime with 24 sweeps the clock).
    pub round_spacing_h: f64,
    /// Pings per probe (paper: 5; we take the min).
    pub pings: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self {
            seed: 0x_5eed_cafe,
            rounds: 20,
            round_spacing_h: 5.0,
            pings: 5,
        }
    }
}

/// One ⟨City, AS⟩ vantage point.
#[derive(Debug, Clone, Serialize)]
pub struct VantagePoint {
    pub asn: AsId,
    pub city: CityId,
    pub country: CountryIdx,
    /// APNIC-style user weight (millions) for aggregation.
    pub users_m: f64,
}

/// One probe result for one tier.
#[derive(Debug, Clone, Serialize)]
pub struct TierProbe {
    pub vp_index: usize,
    pub tier: Tier,
    pub time: SimTime,
    /// Min of the round's pings, ms. `NaN` when the round was lost to the
    /// fault plane (all pings lost/timed out, or route withdrawn).
    pub rtt_ms: f64,
    /// Traceroute-inferred provider ingress.
    pub ingress_city: CityId,
    /// Distance from the VP to the ingress, km (the §3.3 "enter within
    /// 400 km" statistic).
    pub ingress_distance_km: f64,
    /// Intermediate ASes between the VP's AS and the provider.
    pub intermediate_ases: usize,
}

/// Enumerate ⟨City, AS⟩ vantage points over all eyeball ASes, shuffled
/// deterministically (the daily rotation).
pub fn select_vantage_points(topo: &Topology, seed: u64) -> Vec<VantagePoint> {
    let mut vps = Vec::new();
    for eye in topo.ases_of_class(AsClass::Eyeball) {
        let country = eye.home_country.expect("eyeballs have home countries");
        for &city in &eye.footprint {
            let users_m = topo.atlas.city_users_m(city) * eye.user_share;
            if users_m <= 0.0 {
                continue;
            }
            vps.push(VantagePoint {
                asn: eye.id,
                city,
                country,
                users_m,
            });
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    vps.shuffle(&mut rng);
    vps
}

/// Probe both tiers from every vantage point across the campaign rounds.
pub fn probe_tiers(
    topo: &Topology,
    provider: &Provider,
    premium: &TierDeployment,
    standard: &TierDeployment,
    vps: &[VantagePoint],
    congestion: &CongestionModel,
    faults: Option<&FaultPlane>,
    cfg: &ProbeConfig,
) -> Vec<TierProbe> {
    let rtt_model = RttModel::default();

    // One task per vantage point; the RNG is keyed on (seed, vp index,
    // round, tier), so output is identical for every worker count, and the
    // in-order flatten reproduces the sequential vp-major row order.
    let per_vp: Vec<(Vec<TierProbe>, crate::FaultTally)> = bb_exec::par_map(vps, |vi, vp| {
        let mut out = Vec::new();
        let mut tally = crate::FaultTally::default();
        let lastmile = CongestionKey::LastMile(0x_caa0_0000 | vi as u64);
        let cplan = CongestionPlan::new(congestion);
        for (tier, dep) in [(Tier::Premium, premium), (Tier::Standard, standard)] {
            let Some(tp) = dep.reach(topo, provider, vp.asn, vp.city) else {
                continue;
            };
            let ingress_distance_km = topo
                .atlas
                .city(tp.entry_city)
                .location
                .distance_km(&topo.atlas.city(vp.city).location);

            // Compile the tier path once; rounds query the plan.
            let plan = cplan.compile_path(topo, &tp.path, Some(lastmile));
            for round in 0..cfg.rounds {
                let t = SimTime::from_hours(round as f64 * cfg.round_spacing_h);
                let rtt_ms = match faults {
                    None => {
                        let det = plan.rtt_ms(t) + 2.0 * tp.wan_ms;
                        let mut rng = StdRng::seed_from_u64(
                            cfg.seed ^ (vi as u64) << 24 ^ (round as u64) << 2 ^ tier as u64,
                        );
                        sample_min_rtt(det, &rtt_model, cfg.pings, &mut rng)
                    }
                    Some(fp) => {
                        // Churn per ⟨VP, tier⟩ route; loss per round. Lost
                        // rounds are emitted as NaN so the analysis can
                        // count coverage per vantage point.
                        let route_key =
                            FaultPlane::stream_key(&[vi as u64, tier as u64]);
                        if fp.route_withdrawn(route_key, t) {
                            tally.lost += 1;
                            f64::NAN
                        } else {
                            let probe_key =
                                FaultPlane::stream_key(&[route_key, round as u64]);
                            crate::faulted_attempts(fp, probe_key, &mut tally, |attempt| {
                                let ta = t + attempt as f64 * fp.config().retry_backoff_min;
                                let mut rng = StdRng::seed_from_u64(bb_exec::derive_seed(
                                    cfg.seed ^ probe_key,
                                    attempt as u64,
                                ));
                                let det = plan.rtt_ms(ta) + 2.0 * tp.wan_ms;
                                sample_min_rtt(det, &rtt_model, cfg.pings, &mut rng)
                            })
                            .unwrap_or(f64::NAN)
                        }
                    }
                };
                out.push(TierProbe {
                    vp_index: vi,
                    tier,
                    time: t,
                    rtt_ms,
                    ingress_city: tp.entry_city,
                    ingress_distance_km,
                    intermediate_ases: tp.intermediate_ases,
                });
                crate::progress::window_done();
            }
        }
        (out, tally)
    });
    let mut tally = crate::FaultTally::default();
    let mut probes: Vec<TierProbe> = Vec::new();
    for (vp_probes, vp_tally) in per_vp {
        probes.extend(vp_probes);
        tally.merge(vp_tally);
    }
    if faults.is_some() {
        tally.publish();
    }
    bb_exec::timing::add_count("samples:probe", probes.len() * cfg.pings);
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_cdn::{build_provider, ProviderConfig};
    use bb_netsim::CongestionConfig;
    use bb_topology::{generate, TopologyConfig};

    fn campaign() -> (Topology, Provider, Vec<VantagePoint>, Vec<TierProbe>) {
        let mut topo = generate(&TopologyConfig::small(101));
        let provider = build_provider(&mut topo, &ProviderConfig::google_like(10));
        let (us, _) = bb_geo::country::by_code("US").unwrap();
        let us_metro = topo.atlas.main_metro(us).id;
        let dc = if provider.has_pop(us_metro) {
            us_metro
        } else {
            provider.pops[0]
        };
        let premium = TierDeployment::deploy(&topo, &provider, dc, Tier::Premium);
        let standard = TierDeployment::deploy(&topo, &provider, dc, Tier::Standard);
        let vps = select_vantage_points(&topo, 7);
        let congestion = CongestionModel::new(10, CongestionConfig::default());
        let cfg = ProbeConfig {
            rounds: 3,
            ..Default::default()
        };
        let probes = probe_tiers(
            &topo, &provider, &premium, &standard, &vps, &congestion, None, &cfg,
        );
        (topo, provider, vps, probes)
    }

    #[test]
    fn vantage_points_span_many_countries() {
        let (topo, _, vps, _) = campaign();
        let countries: std::collections::HashSet<_> = vps.iter().map(|v| v.country).collect();
        assert!(countries.len() >= topo.atlas.countries.len() / 2);
    }

    #[test]
    fn both_tiers_probed() {
        let (_, _, _, probes) = campaign();
        let prem = probes.iter().filter(|p| p.tier == Tier::Premium).count();
        let std_ = probes.iter().filter(|p| p.tier == Tier::Standard).count();
        assert!(prem > 0 && std_ > 0);
    }

    #[test]
    fn standard_ingress_is_at_datacenter_distance() {
        // Standard-tier probes must enter at the DC, so their ingress
        // distance equals VP→DC distance — usually far.
        let (_, _, _, probes) = campaign();
        let std_far = probes
            .iter()
            .filter(|p| p.tier == Tier::Standard && p.ingress_distance_km > 400.0)
            .count();
        let std_total = probes.iter().filter(|p| p.tier == Tier::Standard).count();
        assert!(std_far * 10 >= std_total * 6, "{std_far}/{std_total}");
    }

    #[test]
    fn premium_ingress_close_more_often_than_standard() {
        let (_, _, _, probes) = campaign();
        let frac_close = |tier: Tier| {
            let (close, total) = probes.iter().filter(|p| p.tier == tier).fold(
                (0usize, 0usize),
                |(c, t), p| {
                    (c + usize::from(p.ingress_distance_km <= 400.0), t + 1)
                },
            );
            close as f64 / total.max(1) as f64
        };
        assert!(
            frac_close(Tier::Premium) > frac_close(Tier::Standard),
            "premium {:.2} vs standard {:.2}",
            frac_close(Tier::Premium),
            frac_close(Tier::Standard)
        );
    }

    #[test]
    fn rtts_are_sane() {
        let (_, _, _, probes) = campaign();
        for p in &probes {
            assert!(p.rtt_ms > 0.0 && p.rtt_ms < 2000.0, "{}", p.rtt_ms);
        }
    }

    #[test]
    fn deterministic() {
        let (_, _, _, a) = campaign();
        let (_, _, _, b) = campaign();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rtt_ms, y.rtt_ms);
        }
    }

    #[test]
    fn faulted_probes_emit_nan_for_lost_rounds() {
        use bb_netsim::{FaultConfig, FaultPlane};
        let mut topo = generate(&TopologyConfig::small(101));
        let provider = build_provider(&mut topo, &ProviderConfig::google_like(10));
        let dc = provider.pops[0];
        let premium = TierDeployment::deploy(&topo, &provider, dc, Tier::Premium);
        let standard = TierDeployment::deploy(&topo, &provider, dc, Tier::Standard);
        let vps = select_vantage_points(&topo, 7);
        let congestion = CongestionModel::new(10, CongestionConfig::default());
        let cfg = ProbeConfig {
            rounds: 3,
            ..Default::default()
        };
        let plane = FaultPlane::new(
            33,
            FaultConfig {
                probe_loss: 0.40,
                max_retries: 0,
                ..FaultConfig::heavy()
            },
        );
        let probes = probe_tiers(
            &topo, &provider, &premium, &standard, &vps, &congestion, Some(&plane), &cfg,
        );
        let lost = probes.iter().filter(|p| p.rtt_ms.is_nan()).count();
        let kept = probes.len() - lost;
        assert!(lost > 0, "40% loss with no retry must drop some rounds");
        assert!(kept > lost, "most rounds survive");
        for p in probes.iter().filter(|p| !p.rtt_ms.is_nan()) {
            assert!(p.rtt_ms > 0.0 && p.rtt_ms < 2000.0);
        }
    }
}

#[cfg(test)]
mod traceroute_tests {
    use super::*;
    use bb_cdn::{build_provider, ProviderConfig, TierDeployment};
    use bb_topology::generate;
    use bb_topology::TopologyConfig;

    /// The probe's inferred ingress must agree with the traceroute view:
    /// the first hop owned by the provider sits at the ingress city.
    #[test]
    fn ingress_matches_traceroute_first_provider_hop() {
        let mut topo = generate(&TopologyConfig::small(107));
        let provider = build_provider(&mut topo, &ProviderConfig::google_like(11));
        let dc = provider.pops[0];
        let prem = TierDeployment::deploy(&topo, &provider, dc, Tier::Premium);
        let mut checked = 0;
        for eye in topo.ases_of_class(AsClass::Eyeball).take(25) {
            let Some(tp) = prem.reach(&topo, &provider, eye.id, eye.footprint[0]) else {
                continue;
            };
            let hops = tp.path.traceroute(&topo);
            let first_provider_hop = hops
                .iter()
                .find(|h| h.owner == provider.asn)
                .expect("path enters the provider");
            assert_eq!(
                first_provider_hop.city, tp.entry_city,
                "traceroute ingress disagrees with reach()"
            );
            // Hop latencies are non-decreasing and start at zero.
            assert_eq!(hops[0].one_way_ms, 0.0);
            for w in hops.windows(2) {
                assert!(w[1].one_way_ms >= w[0].one_way_ms);
            }
            checked += 1;
        }
        assert!(checked > 10, "checked only {checked}");
    }
}
