//! Facebook-style egress spraying (§2.3.1, §3.1).
//!
//! For every client prefix we pick its serving PoP (the nearest provider
//! PoP, as the provider's global load balancer would), take BGP's top-k
//! routes from that PoP's RIB, realize each route's wire path once (routes
//! are stable over the ten days), and then sample sessions per 15-minute
//! window on every route. The output row is the paper's aggregation unit:
//! median MinRTT per ⟨PoP, prefix, route⟩ per window, plus the window's
//! traffic volume for weighting.

use bb_bgp::{provider_rib, Announcement, ProviderRouteClass};
use bb_cdn::Provider;
use bb_geo::CityId;
use bb_netsim::{
    batch_session_min_z, realize_path, sample_min_rtt, CongestionKey, CongestionModel,
    CongestionPlan, DiurnalTable, FaultPlane, JitterScratch, OffsetTable, PathPlan, PathPlanBatch,
    RealizeSpec, RealizedPath, RttModel, SimTime, UtilProbe, Window,
};
use bb_topology::{AsId, InterconnectId, Topology};
use bb_workload::{PrefixId, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Spray campaign configuration.
#[derive(Debug, Clone, Serialize)]
pub struct SprayConfig {
    pub seed: u64,
    /// Campaign length in days (paper: 10).
    pub days: f64,
    /// Sample every n-th 15-minute window (1 = all 960 windows of 10 days).
    pub window_stride: u32,
    /// Sessions sampled per route per window.
    pub sessions_per_window: usize,
    /// TCP MinRTT samples per session.
    pub rtt_samples_per_session: usize,
    /// Routes sprayed per ⟨PoP, prefix⟩ (paper: top 3).
    pub top_k: usize,
    /// World fingerprint for the process-wide target memo. `Some(key)`
    /// lets repeat campaigns over a content-identical world (same
    /// topology/provider/workload — e.g. the xablate arms, which vary only
    /// congestion) reuse the first build's targets instead of recomputing
    /// routes. `None` (default) always builds. The key must capture every
    /// input that shapes the target set (see `ScenarioConfig::world_key`).
    #[serde(skip)]
    pub targets_memo: Option<u64>,
}

impl Default for SprayConfig {
    fn default() -> Self {
        Self {
            seed: 0x_f1f0_cafe,
            days: 10.0,
            window_stride: 4,
            sessions_per_window: 7,
            rtt_samples_per_session: 5,
            top_k: 3,
            targets_memo: None,
        }
    }
}

/// Process-wide spray-target memo, keyed on
/// `(world fingerprint, provider AS, top_k)`.
static TARGET_CACHE: OnceLock<Mutex<HashMap<(u64, u64, usize), Arc<Vec<SprayTarget>>>>> =
    OnceLock::new();

fn cached_targets(
    world_key: u64,
    topo: &Topology,
    provider: &Provider,
    workload: &Workload,
    top_k: usize,
) -> Arc<Vec<SprayTarget>> {
    let cache = TARGET_CACHE.get_or_init(Default::default);
    let key = (world_key, provider.asn.0 as u64, top_k);
    let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(t) = cache.get(&key) {
        bb_exec::timing::add_count("kernel:targets_memo_hits", 1);
        return Arc::clone(t);
    }
    let t = Arc::new(build_targets(topo, provider, workload, top_k));
    cache.insert(key, Arc::clone(&t));
    t
}

/// One pre-realized route of a ⟨PoP, prefix⟩.
#[derive(Debug, Clone)]
pub struct SprayRoute {
    pub egress_link: InterconnectId,
    pub class: ProviderRouteClass,
    pub path: RealizedPath,
}

/// All routes of one ⟨PoP, prefix⟩.
#[derive(Debug, Clone)]
pub struct SprayTarget {
    pub pop: CityId,
    pub prefix: PrefixId,
    pub client_as: AsId,
    pub routes: Vec<SprayRoute>,
}

/// One aggregated measurement row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowRow {
    pub window: Window,
    pub pop: CityId,
    pub prefix: PrefixId,
    /// Median MinRTT per route, in RIB policy order (index 0 = BGP
    /// preferred).
    pub route_median_ms: Vec<f64>,
    /// Egress-link utilization per route at the window midpoint.
    pub route_util: Vec<f64>,
    /// Sessions that survived the fault plane per route. Degraded routes
    /// (below the per-window minimum) carry a `NaN` median; fault-free runs
    /// always report the full session count.
    pub route_samples: Vec<u32>,
    /// Traffic volume of the prefix in this window (weighting).
    pub volume: f64,
}

/// The full campaign output.
#[derive(Debug, Clone)]
pub struct SprayDataset {
    pub targets: Vec<SprayTarget>,
    pub rows: Vec<WindowRow>,
}

impl SprayDataset {
    /// Route classes of one target, policy order.
    pub fn classes(&self, target: usize) -> Vec<ProviderRouteClass> {
        self.targets[target].routes.iter().map(|r| r.class).collect()
    }
}

/// Per-task batch-kernel counters, merged and published once per campaign
/// (same accumulate-then-publish shape as `FaultTally`, so worker count
/// never changes the reported totals).
#[derive(Debug, Default, Clone, Copy)]
struct KernelTally {
    /// `batch_session_min_z` invocations.
    batches: usize,
    /// `cos` evaluations elided by the batch kernel's `-r > min` cutoff.
    cos_skipped: usize,
}

impl KernelTally {
    fn merge(&mut self, other: KernelTally) {
        self.batches += other.batches;
        self.cos_skipped += other.cos_skipped;
    }

    fn publish(&self) {
        if self.batches > 0 {
            bb_exec::timing::add_count("kernel:spray:batches", self.batches);
            bb_exec::timing::add_count("kernel:spray:cos_skipped", self.cos_skipped);
        }
    }
}

/// A spray campaign compiled for repeated (streaming) window sampling.
///
/// `repro serve` advances windows forever; recompiling routes and plans
/// per window chunk would dominate. The engine front-loads everything the
/// per-window loop needs — targets, compiled plan batches, the interned
/// UTC-offset table, per-target client metadata — and then
/// [`sample_windows`](Self::sample_windows) evaluates any window set
/// against it. The batch entry point [`spray`] is a thin wrapper
/// (build engine, sample the full campaign window list once), so the
/// streaming path is bit-identical to the batch path *by construction*:
/// there is only one sampling loop.
pub struct SprayEngine {
    cfg: SprayConfig,
    targets: Vec<SprayTarget>,
    batches: Vec<PathPlanBatch>,
    offsets: OffsetTable,
    rtt_model: RttModel,
    /// Per-target `(client UTC offset, prefix weight)` — the only
    /// workload/topology facts the window loop consumes.
    client: Vec<(f64, f64)>,
}

impl SprayEngine {
    /// Compile the campaign: targets, per-route plans, SoA batches.
    pub fn new(
        topo: &Topology,
        provider: &Provider,
        workload: &Workload,
        congestion: &CongestionModel,
        cfg: &SprayConfig,
    ) -> Self {
        let targets = bb_exec::timing::time("spray:targets", || match cfg.targets_memo {
            Some(world_key) => {
                (*cached_targets(world_key, topo, provider, workload, cfg.top_k)).clone()
            }
            None => build_targets(topo, provider, workload, cfg.top_k),
        });

        // Compile every route's measurement plan once, then re-lay the
        // compiled plans out as per-target structure-of-arrays batches: the
        // per-window query is a linear pass over flat term lanes, with no
        // topology lookups, no model lock, and no Arc chases on the hot
        // path.
        struct RoutePlan {
            rtt: PathPlan,
            egress_util: UtilProbe,
        }
        let (batches, offsets) = bb_exec::timing::time("spray:plan", || {
            let cplan = CongestionPlan::new(congestion);
            let plans: Vec<Vec<RoutePlan>> = bb_exec::par_map(&targets, |_, target| {
                let lastmile = CongestionKey::LastMile(target.prefix.lastmile_code());
                target
                    .routes
                    .iter()
                    .map(|route| {
                        let link_city = topo.link(route.egress_link).city;
                        let link_offset = topo.atlas.city(link_city).region.utc_offset_hours();
                        RoutePlan {
                            rtt: cplan.compile_path(topo, &route.path, Some(lastmile)),
                            egress_util: cplan
                                .probe(CongestionKey::Link(route.egress_link), link_offset),
                        }
                    })
                    .collect()
            });
            let mut offsets = OffsetTable::new();
            let batches: Vec<PathPlanBatch> = plans
                .iter()
                .map(|rps| {
                    let pairs: Vec<(&PathPlan, Option<&UtilProbe>)> =
                        rps.iter().map(|rp| (&rp.rtt, Some(&rp.egress_util))).collect();
                    PathPlanBatch::from_route_plans(&pairs, &mut offsets)
                })
                .collect();
            (batches, offsets)
        });
        let client: Vec<(f64, f64)> = targets
            .iter()
            .map(|t| {
                let prefix = workload.prefix(t.prefix);
                (
                    topo.atlas.city(prefix.city).region.utc_offset_hours(),
                    prefix.weight,
                )
            })
            .collect();

        SprayEngine {
            cfg: cfg.clone(),
            targets,
            batches,
            offsets,
            rtt_model: RttModel::default(),
            client,
        }
    }

    /// The compiled targets, in the order `sample_windows` reports them.
    pub fn targets(&self) -> &[SprayTarget] {
        &self.targets
    }

    /// Consume the engine, yielding the targets (for `SprayDataset`).
    pub fn into_targets(self) -> Vec<SprayTarget> {
        self.targets
    }

    /// The campaign window list of `cfg`: every `window_stride`-th
    /// 15-minute window over `days`, the batch universe. Streaming callers
    /// take a prefix (or extend past the batch horizon with
    /// [`window_at`](Self::window_at)).
    pub fn batch_windows(&self) -> Vec<Window> {
        Window::over(SimTime::from_days(self.cfg.days))
            .filter(|w| w.0 % self.cfg.window_stride == 0)
            .collect()
    }

    /// The `i`-th window of the (unbounded) campaign universe: strided
    /// window indices continue past the batch horizon, so a serve run can
    /// outlive `cfg.days` without changing any window it shares with the
    /// batch run.
    pub fn window_at(&self, i: u64) -> Window {
        Window((i * self.cfg.window_stride as u64) as u32)
    }

    /// Sample `windows` on every target, returning per-target row vectors
    /// (index-aligned with [`targets`](Self::targets); rows window-ordered
    /// within each target). Every RNG stream is keyed on
    /// `(seed, window, target, route)` — never on worker schedule or on
    /// which chunk of windows a call covers — so sampling the campaign in
    /// one call or in chunks yields identical bytes.
    pub fn sample_windows(
        &self,
        windows: &[Window],
        faults: Option<&FaultPlane>,
    ) -> Vec<Vec<WindowRow>> {
        let cfg = &self.cfg;
        let rtt_model = &self.rtt_model;
        // Diurnal factors for every (window midpoint, UTC offset) pair are
        // tabulated once per call — the sine that used to run per term per
        // window runs once per table cell. The factors depend only on the
        // (time, offset) pair, so chunked tabulation reads the same bits
        // the whole-campaign table would.
        let times: Vec<SimTime> = windows.iter().map(|w| w.midpoint()).collect();
        let diurnal = DiurnalTable::build(&times, &self.offsets);

        // The log-normal jitter map `z ↦ median·exp(sigma·z)` is monotone
        // non-decreasing for sigma, median ≥ 0, so (a) each session's min
        // jitter is the jitter of the session's min deviate (one exp per
        // session — `sample_min_rtt` has always exploited this) and (b)
        // with an odd session count the window median — an exact order
        // statistic under `quantile_select` — commutes with the map too:
        // one exp per (window, route) instead of one per session, same
        // bits.
        let monotone_jitter = rtt_model.jitter_sigma >= 0.0 && rtt_model.jitter_median_ms >= 0.0;
        let odd_sessions = cfg.sessions_per_window % 2 == 1;
        let jitter_of =
            |min_z: f64| rtt_model.jitter_median_ms * (rtt_model.jitter_sigma * min_z).exp();

        // One task per target; the in-order merge keeps the row order of
        // the old sequential nesting (target-major, window-minor).
        let per_target: Vec<(Vec<WindowRow>, crate::FaultTally, KernelTally)> =
            bb_exec::timing::time("spray:windows", || {
                bb_exec::par_map(&self.targets, |ti, target| {
            let (client_offset, prefix_weight) = self.client[ti];
            let batch = &self.batches[ti];

            // Scratch reused across every (window, route) of this target:
            // session values, batch kernel lanes, per-session minima, and
            // the fault path's kept-session buffer. Nothing allocates
            // inside the window loop except the per-row output vectors.
            let mut sessions = vec![0.0_f64; cfg.sessions_per_window];
            let mut jscratch = JitterScratch::default();
            let mut min_z: Vec<f64> = Vec::with_capacity(cfg.sessions_per_window);
            let mut kept: Vec<f64> = Vec::with_capacity(cfg.sessions_per_window);
            let mut tally = crate::FaultTally::default();
            let mut ktally = KernelTally::default();
            let mut rows = Vec::with_capacity(windows.len());
            for (wi, &w) in windows.iter().enumerate() {
                let t = w.midpoint();
                let drow = diurnal.row(wi);
                let mut medians = Vec::with_capacity(target.routes.len());
                let mut utils = Vec::with_capacity(target.routes.len());
                let mut counts = Vec::with_capacity(target.routes.len());
                for ri in 0..target.routes.len() {
                    // Deterministic per (seed, window, target, route)
                    // sampling. Chained SplitMix64 mixing: the raw
                    // shift-XOR scheme used previously left low-entropy,
                    // correlated streams for adjacent (window, target,
                    // route) triples (e.g. ri and ti bits could cancel).
                    let route_rng_seed = bb_exec::derive_seed(
                        bb_exec::derive_seed(bb_exec::derive_seed(cfg.seed, w.0 as u64), ti as u64),
                        ri as u64,
                    );
                    match faults {
                        None => {
                            let det = batch.det_rtt_ms(ri, t, drow);
                            let mut rng = StdRng::seed_from_u64(route_rng_seed);
                            if monotone_jitter {
                                ktally.batches += 1;
                                ktally.cos_skipped += batch_session_min_z(
                                    &mut rng,
                                    cfg.sessions_per_window,
                                    cfg.rtt_samples_per_session,
                                    &mut jscratch,
                                    &mut min_z,
                                );
                                let med = if odd_sessions {
                                    let z =
                                        bb_stats::quantile::quantile_select(&mut min_z, 0.5);
                                    det + jitter_of(z)
                                } else {
                                    for (slot, &z) in sessions.iter_mut().zip(&min_z) {
                                        *slot = det + jitter_of(z);
                                    }
                                    bb_stats::quantile::quantile_select(&mut sessions, 0.5)
                                };
                                medians.push(med);
                            } else {
                                for s in sessions.iter_mut() {
                                    *s = sample_min_rtt(
                                        det,
                                        &rtt_model,
                                        cfg.rtt_samples_per_session,
                                        &mut rng,
                                    );
                                }
                                medians.push(bb_stats::quantile::quantile_select(
                                    &mut sessions,
                                    0.5,
                                ));
                            }
                            counts.push(cfg.sessions_per_window as u32);
                        }
                        Some(fp) => {
                            // Churn is a property of the route, not the
                            // window: the same key across all windows.
                            let route_key = FaultPlane::stream_key(&[
                                target.pop.0 as u64,
                                target.prefix.0 as u64,
                                ri as u64,
                            ]);
                            if fp.route_withdrawn(route_key, t) {
                                // No path: every session of the window is
                                // lost outright, no retry can help.
                                tally.lost += cfg.sessions_per_window;
                                tally.dropped += 1;
                                medians.push(f64::NAN);
                                counts.push(0);
                            } else {
                                kept.clear();
                                for s in 0..cfg.sessions_per_window {
                                    let probe_key = FaultPlane::stream_key(&[
                                        route_key,
                                        w.0 as u64,
                                        s as u64,
                                    ]);
                                    let got = crate::faulted_attempts(
                                        fp,
                                        probe_key,
                                        &mut tally,
                                        |attempt| {
                                            // Retries re-observe the path a
                                            // little later (backoff).
                                            let ta = t + attempt as f64
                                                * fp.config().retry_backoff_min;
                                            let det = batch.det_rtt_ms_at(ri, ta);
                                            let mut rng =
                                                StdRng::seed_from_u64(bb_exec::derive_seed(
                                                    bb_exec::derive_seed(
                                                        route_rng_seed,
                                                        s as u64,
                                                    ),
                                                    attempt as u64,
                                                ));
                                            if monotone_jitter {
                                                ktally.batches += 1;
                                                ktally.cos_skipped += batch_session_min_z(
                                                    &mut rng,
                                                    1,
                                                    cfg.rtt_samples_per_session,
                                                    &mut jscratch,
                                                    &mut min_z,
                                                );
                                                det + jitter_of(min_z[0])
                                            } else {
                                                sample_min_rtt(
                                                    det,
                                                    &rtt_model,
                                                    cfg.rtt_samples_per_session,
                                                    &mut rng,
                                                )
                                            }
                                        },
                                    );
                                    if let Some(v) = got {
                                        kept.push(v);
                                    }
                                }
                                counts.push(kept.len() as u32);
                                if kept.len() < fp.config().min_samples_per_window {
                                    tally.dropped += 1;
                                    medians.push(f64::NAN);
                                } else {
                                    medians.push(bb_stats::quantile::quantile_select(
                                        &mut kept, 0.5,
                                    ));
                                }
                            }
                        }
                    }
                    utils.push(batch.probe_util(ri, t, drow));
                }
                let volume =
                    prefix_weight * bb_workload::diurnal_activity(t.local_hour(client_offset));
                rows.push(WindowRow {
                    window: w,
                    pop: target.pop,
                    prefix: target.prefix,
                    route_median_ms: medians,
                    route_util: utils,
                    route_samples: counts,
                    volume,
                });
                crate::progress::window_done();
            }
            (rows, tally, ktally)
                })
            });
        let mut tally = crate::FaultTally::default();
        let mut ktally = KernelTally::default();
        let mut out: Vec<Vec<WindowRow>> = Vec::with_capacity(per_target.len());
        for (target_rows, target_tally, target_ktally) in per_target {
            out.push(target_rows);
            tally.merge(target_tally);
            ktally.merge(target_ktally);
        }
        if faults.is_some() {
            tally.publish();
        }
        ktally.publish();

        let route_windows: usize =
            self.targets.iter().map(|t| t.routes.len()).sum::<usize>() * windows.len();
        bb_exec::timing::add_count(
            "samples:spray",
            route_windows * cfg.sessions_per_window * cfg.rtt_samples_per_session,
        );
        out
    }
}

/// Run the spray campaign.
///
/// With `faults: Some(..)` the campaign runs through the measurement fault
/// plane: sprayed sessions are lost/timed out and retried with bounded
/// backoff, churned-away routes lose whole windows, and routes that keep
/// fewer than `min_samples_per_window` sessions report a `NaN` median
/// (flagged, never averaged). `faults: None` takes the exact pre-fault
/// code path.
pub fn spray(
    topo: &Topology,
    provider: &Provider,
    workload: &Workload,
    congestion: &CongestionModel,
    faults: Option<&FaultPlane>,
    cfg: &SprayConfig,
) -> SprayDataset {
    let engine = SprayEngine::new(topo, provider, workload, congestion, cfg);
    let windows = engine.batch_windows();
    let per_target = engine.sample_windows(&windows, faults);
    let rows: Vec<WindowRow> = per_target.into_iter().flatten().collect();
    SprayDataset {
        targets: engine.into_targets(),
        rows,
    }
}

/// Compute per-prefix spray targets: serving PoP, top-k routes, realized
/// paths.
pub fn build_targets(
    topo: &Topology,
    provider: &Provider,
    workload: &Workload,
    top_k: usize,
) -> Vec<SprayTarget> {
    // One routing computation per client AS, shared by its prefixes. The
    // per-AS tables go through the process-wide route cache (repeat calls
    // for the same world — e.g. fig1 then the fabric controller study —
    // skip propagation entirely) and the misses compute in parallel.
    let mut asns: Vec<AsId> = Vec::new();
    {
        let mut seen: std::collections::HashSet<AsId> = Default::default();
        for prefix in &workload.prefixes {
            if seen.insert(prefix.asn) {
                asns.push(prefix.asn);
            }
        }
    }
    let tables: HashMap<AsId, _> = bb_exec::par_map(&asns, |_, &asn| {
        let ann = Announcement::full(topo, asn);
        let t = bb_exec::cached_routes(topo, &ann);
        let ribs = provider_rib(topo, provider.asn, &t);
        (asn, (t, ribs))
    })
    .into_iter()
    .collect();

    let targets: Vec<Option<SprayTarget>> = bb_exec::par_map(&workload.prefixes, |_, prefix| {
        let (table, ribs) = &tables[&prefix.asn];

        // Serving PoP: nearest PoP that actually has routes to the prefix.
        let by_dist = provider.pops_by_distance(topo, prefix.city);
        let rib = by_dist
            .iter()
            .find_map(|&(pop, _)| ribs.iter().find(|r| r.pop_city == pop))?;

        let routes: Vec<SprayRoute> = rib
            .top_k(top_k)
            .iter()
            .map(|cand| {
                // Wire path: provider PoP → neighbor → … → client AS,
                // ending at the client city.
                let mut as_path = vec![provider.asn];
                if cand.neighbor == prefix.asn {
                    as_path.push(prefix.asn);
                } else {
                    as_path.extend(
                        table
                            .as_path(cand.neighbor)
                            .expect("RIB route implies neighbor reachability"),
                    );
                }
                let spec = RealizeSpec {
                    as_path: &as_path,
                    src_city: rib.pop_city,
                    dst_city: Some(prefix.city),
                    first_link: Some(cand.link),
                    final_entry_links: None,
                };
                SprayRoute {
                    egress_link: cand.link,
                    class: cand.class,
                    path: realize_path(topo, &spec),
                }
            })
            .collect();

        if routes.is_empty() {
            return None;
        }
        Some(SprayTarget {
            pop: rib.pop_city,
            prefix: prefix.id,
            client_as: prefix.asn,
            routes,
        })
    });
    targets.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_cdn::{build_provider, ProviderConfig};
    use bb_netsim::CongestionConfig;
    use bb_topology::{generate, TopologyConfig};
    use bb_workload::{generate_workload, WorkloadConfig};

    fn tiny_campaign() -> (Topology, SprayDataset) {
        let mut topo = generate(&TopologyConfig::small(81));
        let provider = build_provider(&mut topo, &ProviderConfig::facebook_like(8));
        let workload = generate_workload(&topo, &WorkloadConfig::default());
        let congestion = CongestionModel::new(8, CongestionConfig::default());
        let cfg = SprayConfig {
            days: 0.5,
            window_stride: 8,
            sessions_per_window: 5,
            ..Default::default()
        };
        let ds = spray(&topo, &provider, &workload, &congestion, None, &cfg);
        (topo, ds)
    }

    #[test]
    fn campaign_produces_rows_for_most_prefixes() {
        let (_, ds) = tiny_campaign();
        assert!(!ds.targets.is_empty());
        assert!(!ds.rows.is_empty());
        let windows: std::collections::HashSet<_> = ds.rows.iter().map(|r| r.window).collect();
        assert!(windows.len() >= 2);
    }

    #[test]
    fn most_targets_have_route_diversity() {
        // §2.3.1: "For most clients, the PoP serving the client has at
        // least three routes to the client's prefix."
        let (_, ds) = tiny_campaign();
        let multi = ds.targets.iter().filter(|t| t.routes.len() >= 3).count();
        assert!(
            multi * 2 >= ds.targets.len(),
            "{multi}/{} targets with ≥3 routes",
            ds.targets.len()
        );
    }

    #[test]
    fn rows_have_consistent_shapes() {
        let (_, ds) = tiny_campaign();
        for row in &ds.rows {
            assert_eq!(row.route_median_ms.len(), row.route_util.len());
            assert_eq!(row.route_median_ms.len(), row.route_samples.len());
            assert!(!row.route_median_ms.is_empty());
            assert!(row.volume > 0.0);
            for &m in &row.route_median_ms {
                assert!(m.is_finite() && m > 0.0);
            }
            for &u in &row.route_util {
                assert!((0.0..=1.0).contains(&u));
            }
            for &n in &row.route_samples {
                assert_eq!(n as usize, 5, "fault-free runs keep every session");
            }
        }
    }

    #[test]
    fn faulted_campaign_flags_degraded_windows() {
        use bb_netsim::{FaultConfig, FaultPlane};
        let mut topo = generate(&TopologyConfig::small(81));
        let provider = build_provider(&mut topo, &ProviderConfig::facebook_like(8));
        let workload = generate_workload(&topo, &WorkloadConfig::default());
        let congestion = CongestionModel::new(8, CongestionConfig::default());
        let cfg = SprayConfig {
            days: 0.5,
            window_stride: 8,
            sessions_per_window: 5,
            ..Default::default()
        };
        // Aggressive faults so every failure mode appears at tiny scale.
        let plane = FaultPlane::new(
            13,
            FaultConfig {
                probe_loss: 0.35,
                max_retries: 1,
                churn_events_per_day: 6.0,
                min_samples_per_window: 4,
                ..FaultConfig::heavy()
            },
        );
        let ds = spray(&topo, &provider, &workload, &congestion, Some(&plane), &cfg);

        let mut degraded = 0usize;
        let mut kept = 0usize;
        for row in &ds.rows {
            for (ri, &m) in row.route_median_ms.iter().enumerate() {
                let n = row.route_samples[ri] as usize;
                if m.is_nan() {
                    degraded += 1;
                    assert!(
                        n < plane.config().min_samples_per_window,
                        "NaN median must mean a degraded window, got {n} samples"
                    );
                } else {
                    kept += 1;
                    assert!(m.is_finite() && m > 0.0);
                    assert!(n >= plane.config().min_samples_per_window);
                }
            }
        }
        assert!(degraded > 0, "aggressive faults must degrade some windows");
        assert!(kept > degraded, "most windows still survive");

        // Same plane parameters, fresh plane object: byte-identical rows —
        // the fault draws are pure functions of (seed, stream).
        let plane2 = FaultPlane::new(
            13,
            FaultConfig {
                probe_loss: 0.35,
                max_retries: 1,
                churn_events_per_day: 6.0,
                min_samples_per_window: 4,
                ..FaultConfig::heavy()
            },
        );
        let ds2 = spray(&topo, &provider, &workload, &congestion, Some(&plane2), &cfg);
        assert_eq!(format!("{:?}", ds.rows), format!("{:?}", ds2.rows));
    }

    #[test]
    fn preferred_route_is_first_by_policy() {
        let (_, ds) = tiny_campaign();
        for (ti, t) in ds.targets.iter().enumerate() {
            let classes = ds.classes(ti);
            for w in classes.windows(2) {
                assert!(w[0] <= w[1], "routes must stay policy-ordered");
            }
            assert_eq!(t.routes.len(), classes.len());
        }
    }

    #[test]
    fn serving_pop_is_nearby() {
        // Half of traffic within 500 km is checked at the study level; here
        // just assert the PoP is the nearest one with routes, i.e. not
        // absurdly far for most prefixes.
        let (topo, ds) = tiny_campaign();
        let mut near = 0;
        for t in &ds.targets {
            let prefix_city = t
                .routes
                .first()
                .map(|r| r.path.segments.last().unwrap().to)
                .unwrap();
            let d = topo
                .atlas
                .city(t.pop)
                .location
                .distance_km(&topo.atlas.city(prefix_city).location);
            if d < 5000.0 {
                near += 1;
            }
        }
        assert!(near * 10 >= ds.targets.len() * 8);
    }

    #[test]
    fn deterministic() {
        let (_, a) = tiny_campaign();
        let (_, b) = tiny_campaign();
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.route_median_ms, y.route_median_ms);
            assert_eq!(x.volume, y.volume);
        }
    }

    #[test]
    fn routes_end_at_client_city() {
        let (topo, ds) = tiny_campaign();
        let _ = topo;
        for t in &ds.targets {
            let end_cities: std::collections::HashSet<_> = t
                .routes
                .iter()
                .map(|r| r.path.segments.last().unwrap().to)
                .collect();
            assert_eq!(end_cities.len(), 1, "all routes reach the same client");
        }
    }
}
