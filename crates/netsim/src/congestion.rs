//! Deterministic congestion processes.
//!
//! Every congestible entity — an interconnect, a destination metro's shared
//! infrastructure, a client prefix's last mile — gets a utilization process
//!
//! ```text
//! util(t) = base + diurnal_amplitude · D(local_hour(t)) + Σ active events
//! ```
//!
//! where `D` peaks in the local evening and events arrive as a Poisson
//! process with exponential durations. Everything about a key's process is
//! derived from `(model seed, key)`, so two queries at the same time always
//! agree, no matter the order of evaluation.
//!
//! The key structure encodes the paper's §3.1.1 observation mechanically:
//! *metro and last-mile keys sit on every route to a client*, so when they
//! degrade, all route options degrade together and performance-aware routing
//! has nothing to exploit. Only link-keyed events (e.g. a congested PNI,
//! §2.1/§2.2) are route-specific and steerable-around.

use crate::time::SimTime;
use bb_geo::CityId;
use bb_topology::InterconnectId;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// What a congestion process is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CongestionKey {
    /// One interconnect between two ASes.
    Link(InterconnectId),
    /// Shared infrastructure of a destination metro (affects every route
    /// that terminates in this city).
    Metro(CityId),
    /// A client prefix's access network (affects every route to the prefix).
    LastMile(u64),
}

impl CongestionKey {
    /// Stable 64-bit encoding used for seeding.
    fn encode(&self) -> u64 {
        match *self {
            CongestionKey::Link(l) => 0x1000_0000_0000 | l.0 as u64,
            CongestionKey::Metro(c) => 0x2000_0000_0000 | c.0 as u64,
            CongestionKey::LastMile(p) => 0x3000_0000_0000 ^ p,
        }
    }
}

/// Tuning knobs for the congestion plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionConfig {
    /// Simulated horizon; events are materialized across it.
    pub horizon_min: f64,
    /// Base utilization is drawn uniformly from this range per key.
    pub base_util: (f64, f64),
    /// Diurnal amplitude range per key.
    pub diurnal_amp: (f64, f64),
    /// Transient event rate per day for link keys.
    pub link_events_per_day: f64,
    /// Transient event rate per day for metro keys.
    pub metro_events_per_day: f64,
    /// Transient event rate per day for last-mile keys.
    pub lastmile_events_per_day: f64,
    /// Mean event duration, minutes (exponential).
    pub event_duration_mean_min: f64,
    /// Event severity (added utilization) range.
    pub event_severity: (f64, f64),
    /// Queueing-delay scale: delay = d0 · ρ² / (1 − ρ).
    pub queue_d0_ms: f64,
    /// Utilization cap (keeps the queueing curve finite).
    pub max_util: f64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        Self {
            horizon_min: 10.0 * 24.0 * 60.0,
            base_util: (0.15, 0.55),
            diurnal_amp: (0.05, 0.25),
            link_events_per_day: 0.25,
            metro_events_per_day: 0.10,
            lastmile_events_per_day: 0.35,
            event_duration_mean_min: 45.0,
            event_severity: (0.25, 0.55),
            queue_d0_ms: 1.0,
            max_util: 0.97,
        }
    }
}

/// One transient congestion event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionEvent {
    pub start_min: f64,
    pub end_min: f64,
    pub severity: f64,
}

/// Diurnal demand factor at a local hour-of-day: peaks at 20:00 local,
/// troughs at 08:00, in [0, 1].
///
/// Factored out of [`KeyProcess::utilization`] so the SoA batch tables
/// ([`crate::plan::DiurnalTable`]) evaluate the exact same expression —
/// bit-identity between the batched and scalar paths hinges on both sides
/// running this one function.
#[inline]
pub fn diurnal_factor(local_h: f64) -> f64 {
    0.5 * (1.0 + ((local_h - 14.0) / 24.0 * std::f64::consts::TAU).sin())
}

/// The materialized utilization process of one key: base + diurnal
/// amplitude plus a start-sorted, non-overlapping event list (generation
/// spaces events by `duration + gap` with `gap > 0`, so at most one event
/// is active at any instant and a binary search finds it).
///
/// Handles to a `KeyProcess` ([`Arc`]) are what plan compilation hands out:
/// querying through a handle touches no lock and hashes no key.
#[derive(Debug, Clone)]
pub struct KeyProcess {
    base: f64,
    amp: f64,
    events: Vec<CongestionEvent>,
}

impl KeyProcess {
    /// Utilization at `t` with the diurnal term phased to
    /// `utc_offset_hours`, capped at `max_util`.
    ///
    /// Bit-identical to the historical linear-scan evaluation: the sum is
    /// `base + amp·D + severity` in that order, and non-overlap means the
    /// single active event contributes exactly the same term the scan's
    /// `+=` loop did.
    #[inline]
    pub fn utilization(&self, utc_offset_hours: f64, t: SimTime, max_util: f64) -> f64 {
        let local_h = t.local_hour(utc_offset_hours);
        self.utilization_with_diurnal(diurnal_factor(local_h), t, max_util)
    }

    /// [`utilization`](Self::utilization) with the diurnal factor supplied
    /// by the caller (batch paths read it from a per-window table instead
    /// of recomputing the sine per term).
    #[inline]
    pub fn utilization_with_diurnal(&self, diurnal: f64, t: SimTime, max_util: f64) -> f64 {
        let mut util = self.base + self.amp * diurnal;
        if let Some(sev) = self.active_severity(t) {
            util += sev;
        }
        util.min(max_util)
    }

    /// Base utilization of this process (SoA batch compilation).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Diurnal amplitude of this process (SoA batch compilation).
    pub fn amp(&self) -> f64 {
        self.amp
    }

    /// Severity of the event active at `t`, if any.
    #[inline]
    pub fn active_severity(&self, t: SimTime) -> Option<f64> {
        let m = t.minutes();
        // First event with start_min > m; the only candidate is the one
        // before it (starts are strictly increasing).
        let i = self.events.partition_point(|e| e.start_min <= m);
        let e = self.events.get(i.checked_sub(1)?)?;
        (m < e.end_min).then_some(e.severity)
    }

    /// The event list, start-sorted and non-overlapping.
    pub fn events(&self) -> &[CongestionEvent] {
        &self.events
    }
}

/// Times the read→write upgrade in [`CongestionModel::process`] found the
/// key already inserted by a racing worker — i.e. double materializations
/// that the write-lock double-check prevented. Reported under `--timing`.
static MATERIALIZE_RACES_CLOSED: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of closed materialization races (see
/// [`MATERIALIZE_RACES_CLOSED`]).
pub fn materialize_races_closed() -> usize {
    MATERIALIZE_RACES_CLOSED.load(Ordering::Relaxed)
}

/// The congestion plane. Cheap to share by reference; processes are cached
/// behind a lock as shared handles.
pub struct CongestionModel {
    seed: u64,
    cfg: CongestionConfig,
    cache: RwLock<HashMap<u64, Arc<KeyProcess>>>,
}

impl CongestionModel {
    pub fn new(seed: u64, cfg: CongestionConfig) -> Self {
        Self {
            seed,
            cfg,
            cache: RwLock::new(HashMap::new()),
        }
    }

    pub fn config(&self) -> &CongestionConfig {
        &self.cfg
    }

    /// Utilization of `key` at time `t`, with the diurnal term phased to
    /// `utc_offset_hours` local time.
    pub fn utilization(&self, key: CongestionKey, utc_offset_hours: f64, t: SimTime) -> f64 {
        self.process(key)
            .utilization(utc_offset_hours, t, self.cfg.max_util)
    }

    /// Queueing delay implied by utilization at `t` (one direction, ms).
    pub fn queueing_delay_ms(&self, key: CongestionKey, utc_offset_hours: f64, t: SimTime) -> f64 {
        let rho = self.utilization(key, utc_offset_hours, t);
        self.delay_for_util(rho)
    }

    /// The convex utilization→delay curve.
    pub fn delay_for_util(&self, rho: f64) -> f64 {
        let rho = rho.clamp(0.0, self.cfg.max_util);
        self.cfg.queue_d0_ms * rho * rho / (1.0 - rho)
    }

    /// Whether a transient event is active on `key` at `t`.
    pub fn event_active(&self, key: CongestionKey, t: SimTime) -> bool {
        self.process(key).active_severity(t).is_some()
    }

    /// All events of a key (for analysis / tests).
    pub fn events(&self, key: CongestionKey) -> Vec<CongestionEvent> {
        self.process(key).events.clone()
    }

    /// Shared handle to `key`'s materialized process. This is the lookup
    /// plan compilation performs once per key; queries then go through the
    /// handle with no lock and no hash.
    pub fn process(&self, key: CongestionKey) -> Arc<KeyProcess> {
        let code = key.encode();
        if let Some(p) = self.cache.read().get(&code) {
            return Arc::clone(p);
        }
        // Miss: take the write lock, then re-check. Without the re-check a
        // racing worker could materialize the same key between our read and
        // write, wasting a full event-list generation.
        let mut cache = self.cache.write();
        if let Some(p) = cache.get(&code) {
            MATERIALIZE_RACES_CLOSED.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(p);
        }
        let p = Arc::new(self.materialize(key));
        cache.insert(code, Arc::clone(&p));
        p
    }

    fn materialize(&self, key: CongestionKey) -> KeyProcess {
        let code = key.encode();
        let mut rng = StdRng::seed_from_u64(splitmix(self.seed ^ code));
        let base = rng.gen_range(self.cfg.base_util.0..self.cfg.base_util.1);
        let amp = rng.gen_range(self.cfg.diurnal_amp.0..self.cfg.diurnal_amp.1);
        let rate_per_day = match key {
            CongestionKey::Link(_) => self.cfg.link_events_per_day,
            CongestionKey::Metro(_) => self.cfg.metro_events_per_day,
            CongestionKey::LastMile(_) => self.cfg.lastmile_events_per_day,
        };
        let mut events = Vec::new();
        if rate_per_day > 0.0 {
            let mean_gap_min = 24.0 * 60.0 / rate_per_day;
            let mut t = exp_sample(&mut rng, mean_gap_min);
            while t < self.cfg.horizon_min {
                let dur = exp_sample(&mut rng, self.cfg.event_duration_mean_min).max(1.0);
                let sev = rng.gen_range(self.cfg.event_severity.0..self.cfg.event_severity.1);
                events.push(CongestionEvent {
                    start_min: t,
                    end_min: t + dur,
                    severity: sev,
                });
                t += dur + exp_sample(&mut rng, mean_gap_min);
            }
        }
        debug_assert!(
            events.windows(2).all(|w| w[0].end_min < w[1].start_min),
            "events must be start-sorted and non-overlapping for binary search"
        );
        KeyProcess { base, amp, events }
    }
}

fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// SplitMix64 finalizer: decorrelates sequential key codes.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CongestionModel {
        CongestionModel::new(42, CongestionConfig::default())
    }

    #[test]
    fn deterministic_across_instances_and_query_order() {
        let a = model();
        let b = model();
        let k1 = CongestionKey::Link(InterconnectId(7));
        let k2 = CongestionKey::Metro(CityId(3));
        let t = SimTime::from_hours(30.0);
        // Query in different orders.
        let a2 = a.utilization(k2, 1.0, t);
        let a1 = a.utilization(k1, 1.0, t);
        let b1 = b.utilization(k1, 1.0, t);
        let b2 = b.utilization(k2, 1.0, t);
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
    }

    #[test]
    fn different_keys_differ() {
        let m = model();
        let t = SimTime::from_hours(5.0);
        let u1 = m.utilization(CongestionKey::Link(InterconnectId(1)), 0.0, t);
        let u2 = m.utilization(CongestionKey::Link(InterconnectId(2)), 0.0, t);
        assert_ne!(u1, u2);
    }

    #[test]
    fn utilization_bounded() {
        let m = model();
        for i in 0..50 {
            for h in 0..48 {
                let u = m.utilization(
                    CongestionKey::LastMile(i),
                    5.5,
                    SimTime::from_hours(h as f64),
                );
                assert!((0.0..=0.97).contains(&u), "got {u}");
            }
        }
    }

    #[test]
    fn diurnal_peaks_in_local_evening() {
        // With events disabled, 20:00 local must beat 08:00 local.
        let cfg = CongestionConfig {
            link_events_per_day: 0.0,
            metro_events_per_day: 0.0,
            lastmile_events_per_day: 0.0,
            ..Default::default()
        };
        let m = CongestionModel::new(7, cfg);
        let k = CongestionKey::Metro(CityId(0));
        let evening = m.utilization(k, 0.0, SimTime::from_hours(20.0));
        let morning = m.utilization(k, 0.0, SimTime::from_hours(8.0));
        assert!(evening > morning, "evening {evening} vs morning {morning}");
    }

    #[test]
    fn events_raise_utilization() {
        let m = model();
        // Find a key with at least one event.
        let key = (0..200)
            .map(CongestionKey::LastMile)
            .find(|&k| !m.events(k).is_empty())
            .expect("some key must have events at default rates");
        let e = m.events(key)[0];
        let during = SimTime::from_minutes((e.start_min + e.end_min) / 2.0);
        let before = SimTime::from_minutes((e.start_min - 1.0).max(0.0));
        assert!(m.event_active(key, during));
        // Compare at the same local hour modulo small diurnal drift: severity
        // (≥0.25) dwarfs any diurnal delta over one minute.
        assert!(
            m.utilization(key, 0.0, during) > m.utilization(key, 0.0, before),
            "event must raise utilization"
        );
    }

    #[test]
    fn queueing_curve_is_monotone_and_convex() {
        let m = model();
        let mut prev = -1.0;
        let mut prev_slope = 0.0;
        for i in 0..=90 {
            let rho = i as f64 / 100.0;
            let d = m.delay_for_util(rho);
            assert!(d >= prev);
            if i > 0 {
                let slope = d - prev;
                assert!(slope >= prev_slope - 1e-9, "convexity at rho={rho}");
                prev_slope = slope;
            }
            prev = d;
        }
    }

    #[test]
    fn delay_magnitudes_are_sane() {
        let m = model();
        assert!(m.delay_for_util(0.3) < 0.2);
        assert!(m.delay_for_util(0.5) < 1.0);
        assert!(m.delay_for_util(0.95) > 10.0);
    }

    #[test]
    fn events_respect_horizon() {
        let m = model();
        for i in 0..50 {
            for e in m.events(CongestionKey::LastMile(i)) {
                assert!(e.start_min < m.config().horizon_min);
                assert!(e.end_min > e.start_min);
            }
        }
    }

    #[test]
    fn event_rate_roughly_matches_config() {
        let m = model();
        let days = m.config().horizon_min / (24.0 * 60.0);
        let n_keys = 300;
        let total: usize = (0..n_keys)
            .map(|i| m.events(CongestionKey::LastMile(i)).len())
            .sum();
        let rate = total as f64 / (n_keys as f64 * days);
        let expect = m.config().lastmile_events_per_day;
        assert!(
            (rate - expect).abs() < expect * 0.3,
            "rate {rate} vs configured {expect}"
        );
    }
}
