//! Failure injection: deterministic outage schedules for sites and
//! interconnects.
//!
//! §4 of the paper puts availability first among the "other factors at
//! play": anycast's resilience to site outages, DNS caching's induced
//! downtime, route diversity's protection against link failures, and small
//! peers failing more often. This module provides the outage processes
//! those experiments run on: per-entity Poisson failures with exponential
//! repair times, materialized lazily and deterministically exactly like
//! the congestion processes.

use crate::time::SimTime;
use bb_geo::CityId;
use bb_topology::InterconnectId;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// What can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKey {
    /// A whole site/PoP (power, fabric, maintenance gone wrong).
    Site(CityId),
    /// One interconnect (fiber cut, port flap, mis-provisioned LAG).
    Link(InterconnectId),
}

impl FailureKey {
    fn encode(&self) -> u64 {
        match *self {
            FailureKey::Site(c) => 0x_6000_0000_0000 | c.0 as u64,
            FailureKey::Link(l) => 0x_7000_0000_0000 | l.0 as u64,
        }
    }
}

/// Outage process parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Horizon over which outages are materialized, minutes.
    pub horizon_min: f64,
    /// Mean time between failures for a site, days.
    pub site_mtbf_days: f64,
    /// Mean time between failures for a link, days.
    pub link_mtbf_days: f64,
    /// Mean repair time, minutes (exponential).
    pub repair_mean_min: f64,
    /// MTBF multiplier for links whose capacity is below
    /// `small_link_gbps` — §4: "small peers may be less reliable and cause
    /// more issues". <1.0 means they fail more often.
    pub small_link_mtbf_factor: f64,
    pub small_link_gbps: f64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        Self {
            horizon_min: 365.0 * 24.0 * 60.0,
            site_mtbf_days: 60.0,
            link_mtbf_days: 90.0,
            repair_mean_min: 45.0,
            small_link_mtbf_factor: 0.35,
            small_link_gbps: 100.0,
        }
    }
}

/// One outage interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    pub start_min: f64,
    pub end_min: f64,
}

impl Outage {
    pub fn duration_min(&self) -> f64 {
        self.end_min - self.start_min
    }

    pub fn contains(&self, t: SimTime) -> bool {
        t.minutes() >= self.start_min && t.minutes() < self.end_min
    }
}

/// Times the read→write upgrade in [`FailureModel::outages`] found the key
/// already materialized by a racing worker (same double-check pattern as
/// `CongestionModel::process`).
static OUTAGE_RACES_CLOSED: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of closed outage-materialization races.
pub fn outage_races_closed() -> usize {
    OUTAGE_RACES_CLOSED.load(Ordering::Relaxed)
}

/// The failure plane.
pub struct FailureModel {
    seed: u64,
    cfg: FailureConfig,
    cache: RwLock<HashMap<u64, Arc<[Outage]>>>,
}

impl FailureModel {
    pub fn new(seed: u64, cfg: FailureConfig) -> Self {
        Self {
            seed,
            cfg,
            cache: RwLock::new(HashMap::new()),
        }
    }

    pub fn config(&self) -> &FailureConfig {
        &self.cfg
    }

    /// All outages of an entity across the horizon, as a shared slice —
    /// queries after the first hand out the cached `Arc` without copying.
    /// `capacity_gbps` applies the small-link reliability penalty for
    /// `FailureKey::Link`s.
    pub fn outages(&self, key: FailureKey, capacity_gbps: f64) -> Arc<[Outage]> {
        let code = key.encode();
        if let Some(v) = self.cache.read().get(&code) {
            return Arc::clone(v);
        }
        // Miss: take the write lock, then re-check — a racing worker may
        // have materialized the same key between our read and write.
        let mut cache = self.cache.write();
        if let Some(v) = cache.get(&code) {
            OUTAGE_RACES_CLOSED.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        let v: Arc<[Outage]> = self.materialize(key, capacity_gbps).into();
        cache.insert(code, Arc::clone(&v));
        v
    }

    /// Whether the entity is down at `t`.
    pub fn is_down(&self, key: FailureKey, capacity_gbps: f64, t: SimTime) -> bool {
        self.outages(key, capacity_gbps).iter().any(|o| o.contains(t))
    }

    fn materialize(&self, key: FailureKey, capacity_gbps: f64) -> Vec<Outage> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed ^ key.encode()));
        let mtbf_days = match key {
            FailureKey::Site(_) => self.cfg.site_mtbf_days,
            FailureKey::Link(_) => {
                let base = self.cfg.link_mtbf_days;
                if capacity_gbps < self.cfg.small_link_gbps {
                    base * self.cfg.small_link_mtbf_factor
                } else {
                    base
                }
            }
        };
        let mean_gap_min = mtbf_days * 24.0 * 60.0;
        let mut outages = Vec::new();
        let mut t = exp(&mut rng, mean_gap_min);
        while t < self.cfg.horizon_min {
            let dur = exp(&mut rng, self.cfg.repair_mean_min).max(1.0);
            outages.push(Outage {
                start_min: t,
                end_min: t + dur,
            });
            t += dur + exp(&mut rng, mean_gap_min);
        }
        outages
    }
}

fn exp(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FailureModel {
        FailureModel::new(5, FailureConfig::default())
    }

    #[test]
    fn deterministic() {
        let a = model();
        let b = model();
        let k = FailureKey::Site(CityId(3));
        assert_eq!(&*a.outages(k, 0.0), &*b.outages(k, 0.0));
    }

    #[test]
    fn cache_hands_out_shared_slices() {
        let m = model();
        let k = FailureKey::Site(CityId(9));
        let a = m.outages(k, 0.0);
        let b = m.outages(k, 0.0);
        assert!(Arc::ptr_eq(&a, &b), "repeat queries must not re-clone");
    }

    #[test]
    fn outages_ordered_and_disjoint() {
        let m = model();
        for i in 0..30 {
            let v = m.outages(FailureKey::Link(InterconnectId(i)), 500.0);
            for w in v.windows(2) {
                assert!(w[0].end_min <= w[1].start_min);
            }
            for o in v.iter() {
                assert!(o.duration_min() >= 1.0);
                assert!(o.start_min < m.config().horizon_min);
            }
        }
    }

    #[test]
    fn outage_rate_matches_mtbf() {
        let m = model();
        let years = m.config().horizon_min / (365.0 * 24.0 * 60.0);
        let n_keys = 200;
        let total: usize = (0..n_keys)
            .map(|i| m.outages(FailureKey::Site(CityId(i)), 0.0).len())
            .sum();
        let per_year = total as f64 / (n_keys as f64 * years);
        let expect = 365.0 / m.config().site_mtbf_days;
        assert!(
            (per_year - expect).abs() < expect * 0.25,
            "{per_year} vs {expect}"
        );
    }

    #[test]
    fn small_links_fail_more() {
        let m = model();
        let n = 300;
        let small: usize = (0..n)
            .map(|i| m.outages(FailureKey::Link(InterconnectId(i)), 10.0).len())
            .sum();
        // Different key range so the processes are independent draws.
        let big: usize = (n..2 * n)
            .map(|i| m.outages(FailureKey::Link(InterconnectId(i)), 1000.0).len())
            .sum();
        assert!(
            small as f64 > big as f64 * 1.5,
            "small links must fail materially more often: {small} vs {big}"
        );
    }

    #[test]
    fn is_down_tracks_intervals() {
        let m = model();
        let k = FailureKey::Site(CityId(1));
        let v = m.outages(k, 0.0);
        if let Some(o) = v.first() {
            let mid = SimTime::from_minutes((o.start_min + o.end_min) / 2.0);
            assert!(m.is_down(k, 0.0, mid));
            let before = SimTime::from_minutes((o.start_min - 1.0).max(0.0));
            assert!(!m.is_down(k, 0.0, before));
        }
    }
}
