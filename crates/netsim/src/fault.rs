//! Measurement-plane fault injection: probe loss, measurement timeouts,
//! and BGP route churn.
//!
//! [`failure`](crate::failure) models outages of the *world* (sites and
//! links). This module models failures of the *measurement pipelines
//! themselves* — the messy-telemetry reality behind the paper's datasets:
//! sprayed sessions at "low rates" (§2.3.1) lose probes, client beacons
//! only sometimes fire (§2.3.2), and §4 puts availability first among the
//! "other factors at play". A route can also be withdrawn or flap
//! mid-window, invalidating the `RealizedPath` a campaign pre-realized.
//!
//! Everything is deterministic and order-independent:
//!
//! * **Probe loss** is a pure hash of `(plane seed, stream key, attempt)` —
//!   two queries for the same probe always agree, no matter which worker
//!   asks first, so faulted runs stay byte-identical across `--jobs`.
//! * **Route churn** is a per-route-key Poisson withdrawal process with
//!   exponential hold times, materialized lazily and cached behind the same
//!   write-lock double-check pattern as the congestion processes.
//! * **Timeouts** are a deterministic threshold on the sampled RTT: a probe
//!   whose MinRTT exceeds the timeout never reports.
//!
//! The measurement loops (bb-measure) consume this plane with bounded
//! retry-with-backoff; windows that degrade below their minimum-sample
//! threshold are flagged (NaN medians) rather than silently averaged.

use crate::failure::Outage;
use crate::time::SimTime;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Fault-injection intensity selected by `repro --faults`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultLevel {
    /// No fault plane at all: byte-identical to the pre-fault baseline.
    Off,
    /// Production-plausible telemetry loss: a few percent of probes lost,
    /// generous timeouts, occasional route withdrawals.
    Light,
    /// Chaos-drill intensity: heavy loss, tight timeouts, frequent churn.
    Heavy,
}

impl FaultLevel {
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultLevel::Off => "off",
            FaultLevel::Light => "light",
            FaultLevel::Heavy => "heavy",
        }
    }

    /// The config this level stands for; `None` for `Off`.
    pub fn config(&self) -> Option<FaultConfig> {
        match self {
            FaultLevel::Off => None,
            FaultLevel::Light => Some(FaultConfig::light()),
            FaultLevel::Heavy => Some(FaultConfig::heavy()),
        }
    }
}

impl std::str::FromStr for FaultLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(FaultLevel::Off),
            "light" => Ok(FaultLevel::Light),
            "heavy" => Ok(FaultLevel::Heavy),
            other => Err(format!("unknown fault level {other:?}; use off|light|heavy")),
        }
    }
}

/// Tuning knobs for the fault plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-attempt probe loss probability.
    pub probe_loss: f64,
    /// Measurement timeout: samples above this RTT never report, ms.
    pub timeout_ms: f64,
    /// Retries after a lost/timed-out attempt (bounded retry).
    pub max_retries: u32,
    /// Simulated backoff between attempts, minutes (retries re-observe the
    /// path at a slightly later time).
    pub retry_backoff_min: f64,
    /// Route withdrawal/flap rate per route per day.
    pub churn_events_per_day: f64,
    /// Mean withdrawal hold time, minutes (exponential).
    pub churn_duration_mean_min: f64,
    /// Horizon over which churn events are materialized, minutes.
    pub horizon_min: f64,
    /// Minimum surviving samples for a window to count; below this the
    /// window is flagged as degraded (NaN) instead of averaged.
    pub min_samples_per_window: usize,
}

impl FaultConfig {
    /// Production-plausible loss (the `--faults light` preset).
    pub fn light() -> Self {
        Self {
            probe_loss: 0.03,
            timeout_ms: 800.0,
            max_retries: 2,
            retry_backoff_min: 1.0,
            churn_events_per_day: 0.4,
            churn_duration_mean_min: 30.0,
            horizon_min: 30.0 * 24.0 * 60.0,
            min_samples_per_window: 3,
        }
    }

    /// Chaos-drill intensity (the `--faults heavy` preset).
    ///
    /// The timeout is tight but sits above `MAX_BASE_RTT_MS`, the worst
    /// intercontinental *base* RTT the topologies produce (circuitous
    /// hot-potato paths at Large scale reach ~513 ms before congestion).
    /// A timeout below that ceiling would silently censor legitimate
    /// long-haul paths — geography, not faults — biasing the Fig 3/5
    /// tails; 300 ms did exactly that until this was derived from the
    /// bound. Heavy timeouts therefore censor congestion spikes only.
    pub fn heavy() -> Self {
        Self {
            probe_loss: 0.15,
            timeout_ms: MAX_BASE_RTT_MS + 50.0,
            max_retries: 1,
            retry_backoff_min: 2.0,
            churn_events_per_day: 2.0,
            churn_duration_mean_min: 90.0,
            horizon_min: 30.0 * 24.0 * 60.0,
            min_samples_per_window: 4,
        }
    }
}

/// Times the read→write upgrade in [`FaultPlane::churn_events`] found the
/// key already materialized by a racing worker (same double-check pattern
/// as `CongestionModel::process`).
static CHURN_RACES_CLOSED: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of closed churn-materialization races.
pub fn churn_races_closed() -> usize {
    CHURN_RACES_CLOSED.load(Ordering::Relaxed)
}

/// The measurement fault plane. Cheap to share by reference; churn
/// processes are cached behind a lock as shared slices.
pub struct FaultPlane {
    seed: u64,
    cfg: FaultConfig,
    churn_cache: RwLock<HashMap<u64, Arc<[Outage]>>>,
}

impl FaultPlane {
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        Self {
            seed,
            cfg,
            churn_cache: RwLock::new(HashMap::new()),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Stable key for a route (or any measured stream) from its identifying
    /// parts — chained SplitMix64, so adjacent part tuples land far apart.
    pub fn stream_key(parts: &[u64]) -> u64 {
        let mut k = 0x_bb_fa_u64;
        for &p in parts {
            k = mix(k ^ p.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        k
    }

    /// Whether attempt `attempt` of the probe identified by `stream` is
    /// lost in flight. Pure function of `(plane seed, stream, attempt)`.
    ///
    /// The attempt runs through its own full SplitMix64 round (tagged to
    /// stay disjoint from churn draws) chained with the stream's, rather
    /// than being packed into the top key bits — packing meant a stream
    /// differing only in bits 48.. replayed another stream's retry draws,
    /// the same aliasing class 5cc3617 fixed in spray's session RNG.
    pub fn lost(&self, stream: u64, attempt: u32) -> bool {
        let per_stream = mix(self.seed ^ mix(stream));
        u01(mix(per_stream ^ mix(LOSS_TAG ^ attempt as u64))) < self.cfg.probe_loss
    }

    /// Whether a sampled RTT exceeds the measurement timeout.
    pub fn timed_out(&self, rtt_ms: f64) -> bool {
        rtt_ms > self.cfg.timeout_ms
    }

    /// Whether the route identified by `route_key` is withdrawn at `t`.
    pub fn route_withdrawn(&self, route_key: u64, t: SimTime) -> bool {
        let events = self.churn_events(route_key);
        let m = t.minutes();
        // First event with start_min > m; the only candidate is the one
        // before it (starts are strictly increasing).
        let i = events.partition_point(|e| e.start_min <= m);
        i.checked_sub(1)
            .and_then(|i| events.get(i))
            .is_some_and(|e| m < e.end_min)
    }

    /// All withdrawal intervals of a route across the horizon, start-sorted
    /// and disjoint. Shared handle; materialized once per key.
    pub fn churn_events(&self, route_key: u64) -> Arc<[Outage]> {
        if let Some(v) = self.churn_cache.read().get(&route_key) {
            return Arc::clone(v);
        }
        // Miss: take the write lock, then re-check — a racing worker may
        // have materialized the same route between our read and write.
        let mut cache = self.churn_cache.write();
        if let Some(v) = cache.get(&route_key) {
            CHURN_RACES_CLOSED.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        let v: Arc<[Outage]> = self.materialize_churn(route_key).into();
        cache.insert(route_key, Arc::clone(&v));
        v
    }

    fn materialize_churn(&self, route_key: u64) -> Vec<Outage> {
        let mut state = mix(self.seed ^ mix(route_key ^ CHURN_TAG));
        let mut next_u01 = move || {
            state = mix(state.wrapping_add(0x9E37_79B9_7F4A_7C15));
            u01(state)
        };
        let mut events = Vec::new();
        if self.cfg.churn_events_per_day <= 0.0 {
            return events;
        }
        let mean_gap_min = 24.0 * 60.0 / self.cfg.churn_events_per_day;
        let exp = |u: f64, mean: f64| -mean * u.max(f64::EPSILON).ln();
        let mut t = exp(next_u01(), mean_gap_min);
        while t < self.cfg.horizon_min {
            let dur = exp(next_u01(), self.cfg.churn_duration_mean_min).max(1.0);
            events.push(Outage {
                start_min: t,
                end_min: t + dur,
            });
            t += dur + exp(next_u01(), mean_gap_min);
        }
        events
    }
}

/// Map a u64 to [0, 1) using the top 53 bits.
fn u01(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain-separation tag keeping churn draws disjoint from loss draws.
const CHURN_TAG: u64 = 0x_c4ac_0de5;

/// Domain-separation tag for per-attempt loss draws.
const LOSS_TAG: u64 = 0x_10_55;

/// Worst-case *base* (uncongested) path RTT any built topology produces,
/// ms: an antipodal great-circle (~20,000 km) at fiber speed gives a
/// ~200 ms RTT, and hot-potato exit policies inflate the realized
/// waypoint walk well past the geodesic (§2.1's "circuitous routes") —
/// an empirical sweep of spray routes across scales and seeds tops out
/// at ~513 ms (Large scale), so 600 ms leaves margin for unlucky seeds.
/// Fault presets must keep `timeout_ms` above this so timeouts censor
/// congestion, never geography. `bb-audit`'s `rtt.censoring` rule checks
/// the realized paths against the active timeout at run time.
pub const MAX_BASE_RTT_MS: f64 = 600.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> FaultPlane {
        FaultPlane::new(42, FaultConfig::light())
    }

    #[test]
    fn levels_parse_and_roundtrip() {
        for (s, lvl) in [
            ("off", FaultLevel::Off),
            ("light", FaultLevel::Light),
            ("heavy", FaultLevel::Heavy),
        ] {
            assert_eq!(s.parse::<FaultLevel>().unwrap(), lvl);
            assert_eq!(lvl.as_str(), s);
        }
        assert!("chaos".parse::<FaultLevel>().is_err());
        assert!(FaultLevel::Off.config().is_none());
        assert!(FaultLevel::Heavy.config().unwrap().probe_loss > FaultLevel::Light.config().unwrap().probe_loss);
    }

    #[test]
    fn loss_is_deterministic_and_order_independent() {
        let a = plane();
        let b = plane();
        // Query b in reverse order: pure hashing means order cannot matter.
        let keys: Vec<u64> = (0..200).map(|i| FaultPlane::stream_key(&[i, 7])).collect();
        let from_a: Vec<bool> = keys.iter().map(|&k| a.lost(k, 0)).collect();
        let from_b: Vec<bool> = {
            let mut v: Vec<bool> = keys.iter().rev().map(|&k| b.lost(k, 0)).collect();
            v.reverse();
            v
        };
        assert_eq!(from_a, from_b);
    }

    #[test]
    fn loss_rate_tracks_config() {
        let p = FaultPlane::new(9, FaultConfig { probe_loss: 0.10, ..FaultConfig::light() });
        let n = 20_000;
        let lost = (0..n)
            .filter(|&i| p.lost(FaultPlane::stream_key(&[i]), 0))
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.01, "observed loss rate {rate}");
    }

    #[test]
    fn attempts_are_independent_streams() {
        let p = plane();
        // Some stream lost on attempt 0 must survive on a later attempt
        // (otherwise retry would be pointless).
        let recovered = (0..5000u64)
            .map(|i| FaultPlane::stream_key(&[i]))
            .filter(|&k| p.lost(k, 0))
            .any(|k| !p.lost(k, 1));
        assert!(recovered, "no stream ever recovers on retry");
    }

    #[test]
    fn high_key_bits_do_not_alias_attempts() {
        let p = plane();
        // Pre-fix, the attempt was packed as `stream ^ (attempt << 48)`,
        // so lost(s ^ 1<<48, 0) was *literally* lost(s, 1): streams
        // differing only in the top 16 key bits replayed another stream's
        // retry draws. The two families must now disagree somewhere.
        let aliased = (0..4096u64).all(|s| p.lost(s ^ (1 << 48), 0) == p.lost(s, 1));
        assert!(!aliased, "attempt draws still alias the top key bits");
    }

    #[test]
    fn presets_do_not_censor_base_rtts() {
        // Timeouts must only ever censor congestion, never geography: both
        // presets sit above the worst uncongested path RTT the topologies
        // can produce.
        for cfg in [FaultConfig::light(), FaultConfig::heavy()] {
            assert!(
                cfg.timeout_ms > MAX_BASE_RTT_MS,
                "timeout {} censors legitimate base RTTs (max {})",
                cfg.timeout_ms,
                MAX_BASE_RTT_MS
            );
        }
    }

    #[test]
    fn churn_events_sorted_disjoint_and_deterministic() {
        let a = plane();
        let b = plane();
        for rk in 0..50u64 {
            let ea = a.churn_events(rk);
            let eb = b.churn_events(rk);
            assert_eq!(&*ea, &*eb);
            for w in ea.windows(2) {
                assert!(w[0].end_min <= w[1].start_min, "overlap at key {rk}");
            }
            for e in ea.iter() {
                assert!(e.duration_min() >= 1.0);
                assert!(e.start_min < a.config().horizon_min);
            }
        }
    }

    #[test]
    fn churn_rate_roughly_matches_config() {
        let p = plane();
        let days = p.config().horizon_min / (24.0 * 60.0);
        let n_keys = 300u64;
        let total: usize = (0..n_keys).map(|k| p.churn_events(k).len()).sum();
        let rate = total as f64 / (n_keys as f64 * days);
        let expect = p.config().churn_events_per_day;
        assert!(
            (rate - expect).abs() < expect * 0.3,
            "rate {rate} vs configured {expect}"
        );
    }

    #[test]
    fn withdrawn_tracks_intervals() {
        let p = plane();
        let rk = (0..200)
            .find(|&k| !p.churn_events(k).is_empty())
            .expect("some route churns at light rates");
        let e = p.churn_events(rk)[0];
        let mid = SimTime::from_minutes((e.start_min + e.end_min) / 2.0);
        let before = SimTime::from_minutes((e.start_min - 1.0).max(0.0));
        assert!(p.route_withdrawn(rk, mid));
        assert!(!p.route_withdrawn(rk, before));
    }

    #[test]
    fn cache_hands_out_shared_slices() {
        let p = plane();
        let a = p.churn_events(3);
        let b = p.churn_events(3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn stream_key_decorrelates_parts() {
        assert_ne!(
            FaultPlane::stream_key(&[1, 2, 3]),
            FaultPlane::stream_key(&[3, 2, 1])
        );
        assert_ne!(FaultPlane::stream_key(&[0]), FaultPlane::stream_key(&[0, 0]));
    }
}
