//! Throughput model for the paper's goodput comparison (§4 footnote 3:
//! "We used Speedchecker to measure goodput of 10MB downloads from Google's
//! Premium and Standard Tiers and saw little difference").
//!
//! We use a Mathis-style TCP model: steady-state throughput is
//! `MSS / (RTT · √p)` (with constant ≈1.22), capped by the client's access
//! rate. Loss probability `p` has a small floor plus a term that grows as a
//! bottleneck's utilization approaches saturation.

/// TCP maximum segment size assumed by the model, bytes.
pub const MSS_BYTES: f64 = 1460.0;

/// Loss-rate floor on a clean path.
pub const BASE_LOSS: f64 = 1e-4;

/// Loss probability implied by a bottleneck utilization.
pub fn loss_probability(bottleneck_util: f64) -> f64 {
    let overload = (bottleneck_util - 0.90).max(0.0);
    BASE_LOSS + overload * overload * 2.0
}

/// Steady-state goodput in Mbps for a transfer over a path with the given
/// RTT and worst (bottleneck) utilization, capped by `access_mbps`.
pub fn goodput_mbps(rtt_ms: f64, bottleneck_util: f64, access_mbps: f64) -> f64 {
    assert!(rtt_ms > 0.0);
    let p = loss_probability(bottleneck_util);
    let rtt_s = rtt_ms / 1000.0;
    let mathis_bps = 1.22 * MSS_BYTES * 8.0 / (rtt_s * p.sqrt());
    (mathis_bps / 1e6).min(access_mbps)
}

/// Time to download `bytes` at the modeled goodput plus one RTT of setup,
/// seconds. Used for the 10 MB-download comparison.
pub fn transfer_time_s(bytes: f64, rtt_ms: f64, bottleneck_util: f64, access_mbps: f64) -> f64 {
    let gp = goodput_mbps(rtt_ms, bottleneck_util, access_mbps);
    rtt_ms / 1000.0 + (bytes * 8.0 / 1e6) / gp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_short_path_hits_access_cap() {
        // 20 ms RTT, clean path: Mathis gives ~71 Mbps; with a 50 Mbps
        // access line the cap binds.
        let gp = goodput_mbps(20.0, 0.3, 50.0);
        assert_eq!(gp, 50.0);
    }

    #[test]
    fn long_rtt_reduces_goodput() {
        let short = goodput_mbps(20.0, 0.3, 1000.0);
        let long = goodput_mbps(200.0, 0.3, 1000.0);
        assert!((short / long - 10.0).abs() < 1e-6, "inverse in RTT");
    }

    #[test]
    fn saturation_reduces_goodput() {
        let clean = goodput_mbps(50.0, 0.5, 1000.0);
        let congested = goodput_mbps(50.0, 0.97, 1000.0);
        assert!(congested < clean * 0.5, "{congested} vs {clean}");
    }

    #[test]
    fn loss_floor_below_90pct_util() {
        assert_eq!(loss_probability(0.0), BASE_LOSS);
        assert_eq!(loss_probability(0.89), BASE_LOSS);
        assert!(loss_probability(0.95) > BASE_LOSS);
    }

    #[test]
    fn transfer_time_includes_setup_rtt() {
        // Tiny transfer: dominated by the setup RTT.
        let t = transfer_time_s(1.0, 100.0, 0.2, 100.0);
        assert!(t >= 0.1);
        // 10 MB at 50 Mbps ≈ 1.6 s.
        let t10 = transfer_time_s(10e6, 20.0, 0.2, 50.0);
        assert!((1.0..3.0).contains(&t10), "got {t10}");
    }

    #[test]
    #[should_panic]
    fn zero_rtt_rejected() {
        goodput_mbps(0.0, 0.5, 100.0);
    }
}
