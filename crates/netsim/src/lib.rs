//! # bb-netsim — the performance plane
//!
//! Where `bb-bgp` decides *which* AS-level routes exist, this crate decides
//! *how they perform*:
//!
//! * [`path`] realizes an AS-level path into a city-level waypoint sequence,
//!   applying each AS's exit policy (hot-potato early exit vs late exit) at
//!   every interconnection choice — the mechanism behind §2.1's "circuitous
//!   routes" and §3.3.2's single-large-network effect;
//! * [`congestion`] drives deterministic utilization processes per
//!   interconnect, per destination metro, and per last-mile, with diurnal
//!   swings and transient events. Destination-side keys are shared by *all*
//!   routes to a client, producing §3.1.1's correlated degradation;
//! * [`rtt`] turns a realized path plus the congestion state at time *t*
//!   into an RTT sample, and models TCP MinRTT sampling;
//! * [`plan`] compiles the window-invariant part of a measurement —
//!   topology lookups and congestion-key resolution — once per realized
//!   path, so the per-window query is a branch-free fold over resolved
//!   handles (bit-identical to the naive walk);
//! * [`goodput`] is a Mathis-style throughput model for the paper's
//!   footnote-3 goodput comparison;
//! * [`failure`] and [`fault`] inject failures: the former takes down
//!   sites and links of the simulated world, the latter degrades the
//!   *measurement* plane itself (probe loss, timeouts, route churn);
//! * [`time`] holds the simulation clock (minutes) and the 15-minute
//!   aggregation windows of §3.1.
//!
//! Everything is deterministic given the model seed; congestion processes
//! are lazily materialized per key and cached.

pub mod congestion;
pub mod failure;
pub mod fault;
pub mod goodput;
pub mod path;
pub mod plan;
pub mod rtt;
pub mod time;

pub use congestion::{
    diurnal_factor, materialize_races_closed, CongestionConfig, CongestionKey, CongestionModel,
    KeyProcess,
};
pub use plan::{CongestionPlan, DiurnalTable, OffsetTable, PathPlan, PathPlanBatch, UtilProbe};
pub use failure::{outage_races_closed, FailureConfig, FailureKey, FailureModel, Outage};
pub use fault::{churn_races_closed, FaultConfig, FaultLevel, FaultPlane, MAX_BASE_RTT_MS};
pub use goodput::goodput_mbps;
pub use path::{realize_path, RealizeSpec, RealizedPath, Segment, TracerouteHop};
pub use rtt::{
    batch_session_min_z, path_base_rtt_ms, path_rtt_ms, sample_min_rtt, JitterScratch, RttModel,
};
pub use time::{SimTime, Window, WINDOW_MINUTES};
