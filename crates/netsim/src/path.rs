//! City-level realization of AS-level paths.
//!
//! BGP hands us a sequence of ASes; the wire path depends on *where* each
//! AS hands traffic to the next. Each AS picks among the available
//! interconnects per its exit policy:
//!
//! * **early exit / hot potato** — hand off at the interconnect nearest to
//!   where the traffic currently is (minimize own carriage);
//! * **late exit** — carry the traffic on the own backbone to the
//!   interconnect nearest the destination (only possible when the
//!   destination is known; cold-potato behaviour of well-run backbones).
//!
//! The realization records every intra-AS segment (with that AS's path
//! inflation) and every crossed interconnect (whose congestion process then
//! applies), which is all `rtt` needs.

use bb_geo::CityId;
use bb_topology::{AsId, ExitPolicy, InterconnectId, Topology};
use serde::{Deserialize, Serialize};

/// One intra-AS carriage segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    pub from: CityId,
    pub to: CityId,
    /// AS carrying this segment.
    pub owner: AsId,
    /// That AS's path inflation over great-circle distance.
    pub inflation: f64,
}

/// A fully realized path: waypoints, carried segments, crossed links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealizedPath {
    /// AS-level path in traffic direction.
    pub as_path: Vec<AsId>,
    /// Intra-AS segments in order (zero-length segments are kept so each
    /// AS's presence is visible).
    pub segments: Vec<Segment>,
    /// Interconnects crossed, in order.
    pub links: Vec<InterconnectId>,
    /// The link used to enter the final AS (catchment information when the
    /// final AS is an anycast provider).
    pub entry_link: Option<InterconnectId>,
}

impl RealizedPath {
    /// Total carried great-circle distance (un-inflated), km.
    pub fn distance_km(&self, topo: &Topology) -> f64 {
        self.segments
            .iter()
            .map(|s| {
                topo.atlas
                    .city(s.from)
                    .location
                    .distance_km(&topo.atlas.city(s.to).location)
            })
            .sum()
    }

    /// One-way propagation delay, ms: inflated distance over fiber speed.
    pub fn propagation_ms(&self, topo: &Topology) -> f64 {
        self.segments
            .iter()
            .map(|s| {
                let d = topo
                    .atlas
                    .city(s.from)
                    .location
                    .distance_km(&topo.atlas.city(s.to).location);
                bb_geo::propagation_delay_ms(d, s.inflation)
            })
            .sum()
    }

    /// Number of AS-boundary crossings.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// City where the path ends.
    pub fn final_city(&self) -> CityId {
        self.segments
            .last()
            .map(|s| s.to)
            .expect("realized path has segments")
    }

    /// Traceroute view of the path: one hop per router the probe would see
    /// (each segment endpoint), with cumulative one-way latency. This is
    /// what the §3.3 methodology parses to locate the provider ingress
    /// ("We locate the ingress if we can find a RIPE Atlas probe with a
    /// ping RTT of at most 1ms to the border router").
    pub fn traceroute(&self, topo: &Topology) -> Vec<TracerouteHop> {
        let mut hops = Vec::with_capacity(self.segments.len() + 1);
        let mut cum_ms = 0.0;
        for (i, s) in self.segments.iter().enumerate() {
            if i == 0 {
                hops.push(TracerouteHop {
                    city: s.from,
                    owner: s.owner,
                    one_way_ms: 0.0,
                });
            }
            let d = topo
                .atlas
                .city(s.from)
                .location
                .distance_km(&topo.atlas.city(s.to).location);
            cum_ms += bb_geo::propagation_delay_ms(d, s.inflation);
            // The router at the segment end belongs to the *next* segment's
            // owner when this segment ends at an interconnect (the hand-off
            // router), else to the current owner.
            let owner = self
                .segments
                .get(i + 1)
                .map(|n| n.owner)
                .unwrap_or(s.owner);
            hops.push(TracerouteHop {
                city: s.to,
                owner,
                one_way_ms: cum_ms,
            });
        }
        hops
    }

    /// The longest distance carried inside a single AS, and that AS
    /// (§3.3.2's "fraction of the journey on a single network").
    pub fn max_single_as_km(&self, topo: &Topology) -> (AsId, f64) {
        // BTreeMap so exact-tie winners don't depend on hasher state.
        let mut per_as: std::collections::BTreeMap<AsId, f64> = std::collections::BTreeMap::new();
        for s in &self.segments {
            let d = topo
                .atlas
                .city(s.from)
                .location
                .distance_km(&topo.atlas.city(s.to).location);
            *per_as.entry(s.owner).or_insert(0.0) += d;
        }
        per_as
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty path")
    }
}

/// One hop of a [`RealizedPath::traceroute`] view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracerouteHop {
    pub city: CityId,
    /// AS owning the responding router.
    pub owner: AsId,
    /// Cumulative one-way propagation latency to this hop, ms.
    pub one_way_ms: f64,
}

/// Inputs to [`realize_path`].
#[derive(Debug, Clone)]
pub struct RealizeSpec<'a> {
    /// AS-level path in traffic direction (≥ 2 ASes, consecutive pairs must
    /// interconnect).
    pub as_path: &'a [AsId],
    /// City where traffic starts (must be in the first AS's footprint
    /// conceptually; not enforced — clients sit in eyeball cities).
    pub src_city: CityId,
    /// Final destination city inside the last AS, if known. Late-exit ASes
    /// aim for it; when present, a final intra-AS segment to it is emitted.
    pub dst_city: Option<CityId>,
    /// Force the first AS boundary to use this interconnect (the egress
    /// choice of a provider's route, Fig 1's unit of comparison).
    pub first_link: Option<InterconnectId>,
    /// Restrict the last AS boundary to these interconnects (an anycast
    /// origin's announced entry points).
    pub final_entry_links: Option<&'a [InterconnectId]>,
}

/// Realize an AS path into segments and crossed links.
///
/// Panics if consecutive ASes share no eligible interconnect — callers must
/// only pass BGP-valid paths.
pub fn realize_path(topo: &Topology, spec: &RealizeSpec<'_>) -> RealizedPath {
    assert!(spec.as_path.len() >= 2, "need at least two ASes");
    let mut segments = Vec::new();
    let mut links = Vec::new();
    let mut current_city = spec.src_city;

    let n = spec.as_path.len();
    for i in 0..n - 1 {
        let here = spec.as_path[i];
        let next = spec.as_path[i + 1];
        let is_first = i == 0;
        let is_last = i == n - 2;

        // Candidate interconnects for this boundary.
        let candidates: Vec<&bb_topology::Interconnect> = match (
            is_first.then_some(spec.first_link).flatten(),
            if is_last { spec.final_entry_links } else { None },
        ) {
            (Some(forced), _) => vec![topo.link(forced)],
            (None, Some(entries)) => entries.iter().map(|&l| topo.link(l)).collect(),
            _ => topo.links_between(here, next),
        };
        assert!(
            !candidates.is_empty(),
            "no interconnect between {here} and {next}"
        );

        let chosen = choose_link(topo, &candidates, here, current_city, spec.dst_city);

        // Intra-AS carriage to the handoff city.
        let node = topo.asys(here);
        segments.push(Segment {
            from: current_city,
            to: chosen.city,
            owner: here,
            inflation: node.intra_inflation,
        });
        links.push(chosen.id);
        current_city = chosen.city;
    }

    // Final carriage inside the last AS.
    let last = *spec.as_path.last().unwrap();
    if let Some(dst) = spec.dst_city {
        segments.push(Segment {
            from: current_city,
            to: dst,
            owner: last,
            inflation: topo.asys(last).intra_inflation,
        });
    } else {
        // Zero-length marker so the last AS appears in the segment list.
        segments.push(Segment {
            from: current_city,
            to: current_city,
            owner: last,
            inflation: 1.0,
        });
    }

    RealizedPath {
        as_path: spec.as_path.to_vec(),
        segments,
        links: links.clone(),
        entry_link: links.last().copied(),
    }
}

/// Pick an interconnect per the sending AS's exit policy.
///
/// With probability `1 - exit_fidelity` the sender's internal tie-breaking
/// (IGP metrics, route-reflector visibility) does not follow geography and
/// a hash-selected exit is used instead — deterministic per
/// (sender, current city), so a given client's catchment is stable across
/// time but arbitrary across clients, as observed in anycast measurement
/// studies.
fn choose_link<'a>(
    topo: &Topology,
    candidates: &[&'a bb_topology::Interconnect],
    sender: AsId,
    current_city: CityId,
    dst_city: Option<CityId>,
) -> &'a bb_topology::Interconnect {
    let node = topo.asys(sender);
    if candidates.len() > 1 && node.exit_fidelity < 1.0 {
        let h = mix(((sender.0 as u64) << 32) ^ current_city.0 as u64);
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        if frac >= node.exit_fidelity {
            let pick = (mix(h) % candidates.len() as u64) as usize;
            return candidates[pick];
        }
    }
    let aim_city = match (node.exit_policy, dst_city) {
        (ExitPolicy::LateExit, Some(dst)) => dst,
        _ => current_city,
    };
    let aim = topo.atlas.city(aim_city).location;
    candidates
        .iter()
        .min_by(|a, b| {
            let da = topo.atlas.city(a.city).location.distance_km(&aim);
            let db = topo.atlas.city(b.city).location.distance_km(&aim);
            da.total_cmp(&db).then(a.id.cmp(&b.id))
        })
        .unwrap()
}

/// SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_geo::atlas::AtlasConfig;
    use bb_geo::Atlas;
    use bb_topology::{AsClass, BusinessRel, ExitPolicy, LinkKind, Topology};

    /// Two-AS world with interconnects in two cities for exit-policy tests.
    fn two_as_world() -> (Topology, AsId, AsId, CityId, CityId) {
        let atlas = Atlas::generate(&AtlasConfig {
            seed: 5,
            city_density: 1.0,
        });
        // Pick two far-apart hub cities.
        let hubs: Vec<CityId> = atlas.colo_hubs().map(|c| c.id).collect();
        let (ca, cb) = (hubs[0], hubs[5]);
        let mut t = Topology::new(atlas);
        let a = t.add_as(AsClass::Tier1, "A", vec![ca, cb], ExitPolicy::EarlyExit, 1.1, None, 0.0);
        let b = t.add_as(AsClass::Tier1, "B", vec![ca, cb], ExitPolicy::EarlyExit, 1.1, None, 0.0);
        // Perfectly geographic exits: these tests check the policy itself.
        t.set_exit_fidelity(a, 1.0);
        t.set_exit_fidelity(b, 1.0);
        t.add_interconnect(a, b, BusinessRel::Peer, LinkKind::PrivatePeering, ca, 100.0);
        t.add_interconnect(a, b, BusinessRel::Peer, LinkKind::PrivatePeering, cb, 100.0);
        (t, a, b, ca, cb)
    }

    #[test]
    fn early_exit_hands_off_near_source() {
        let (t, a, b, ca, cb) = two_as_world();
        let spec = RealizeSpec {
            as_path: &[a, b],
            src_city: ca,
            dst_city: Some(cb),
            first_link: None,
            final_entry_links: None,
        };
        let p = realize_path(&t, &spec);
        // Early exit: hand off at ca (distance 0 from source), B carries the
        // long haul.
        assert_eq!(t.link(p.links[0]).city, ca);
        let (owner, _) = p.max_single_as_km(&t);
        assert_eq!(owner, b);
    }

    #[test]
    fn late_exit_carries_to_destination() {
        let (mut t, a, b, ca, cb) = two_as_world();
        // Flip A to late exit.
        {
            // Rebuild A as late-exit by mutating via add? Topology doesn't
            // expose mutation of exit policy; construct a fresh topology.
            let atlas = t.atlas.clone();
            let mut t2 = Topology::new(atlas);
            let a2 = t2.add_as(AsClass::Tier1, "A", vec![ca, cb], ExitPolicy::LateExit, 1.1, None, 0.0);
            let b2 = t2.add_as(AsClass::Tier1, "B", vec![ca, cb], ExitPolicy::EarlyExit, 1.1, None, 0.0);
            t2.set_exit_fidelity(a2, 1.0);
            t2.set_exit_fidelity(b2, 1.0);
            t2.add_interconnect(a2, b2, BusinessRel::Peer, LinkKind::PrivatePeering, ca, 100.0);
            t2.add_interconnect(a2, b2, BusinessRel::Peer, LinkKind::PrivatePeering, cb, 100.0);
            t = t2;
        }
        let (a, b) = (a, b);
        let spec = RealizeSpec {
            as_path: &[a, b],
            src_city: ca,
            dst_city: Some(cb),
            first_link: None,
            final_entry_links: None,
        };
        let p = realize_path(&t, &spec);
        // Late exit: A carries to cb and hands off there.
        assert_eq!(t.link(p.links[0]).city, cb);
        let (owner, _) = p.max_single_as_km(&t);
        assert_eq!(owner, a);
    }

    #[test]
    fn forced_first_link_is_respected() {
        let (t, a, b, ca, cb) = two_as_world();
        let far_link = t
            .links_between(a, b)
            .into_iter()
            .find(|l| l.city == cb)
            .unwrap()
            .id;
        let spec = RealizeSpec {
            as_path: &[a, b],
            src_city: ca,
            dst_city: Some(cb),
            first_link: Some(far_link),
            final_entry_links: None,
        };
        let p = realize_path(&t, &spec);
        assert_eq!(p.links[0], far_link);
        assert_eq!(t.link(p.links[0]).city, cb);
    }

    #[test]
    fn final_entry_links_restrict_choice() {
        let (t, a, b, ca, cb) = two_as_world();
        let far_link = t
            .links_between(a, b)
            .into_iter()
            .find(|l| l.city == cb)
            .unwrap()
            .id;
        let spec = RealizeSpec {
            as_path: &[a, b],
            src_city: ca,
            dst_city: None,
            first_link: None,
            final_entry_links: Some(&[far_link]),
        };
        let p = realize_path(&t, &spec);
        assert_eq!(p.entry_link, Some(far_link));
        // Without a dst, the path ends at the entry city.
        assert_eq!(p.final_city(), cb);
    }

    #[test]
    fn propagation_tracks_distance_and_inflation() {
        let (t, a, b, ca, cb) = two_as_world();
        let spec = RealizeSpec {
            as_path: &[a, b],
            src_city: ca,
            dst_city: Some(cb),
            first_link: None,
            final_entry_links: None,
        };
        let p = realize_path(&t, &spec);
        let d = t
            .atlas
            .city(ca)
            .location
            .distance_km(&t.atlas.city(cb).location);
        assert!((p.distance_km(&t) - d).abs() < 1e-9);
        let expect_ms = bb_geo::propagation_delay_ms(d, 1.1);
        assert!((p.propagation_ms(&t) - expect_ms).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two ASes")]
    fn single_as_path_panics() {
        let (t, a, _, ca, _) = two_as_world();
        let spec = RealizeSpec {
            as_path: &[a],
            src_city: ca,
            dst_city: None,
            first_link: None,
            final_entry_links: None,
        };
        realize_path(&t, &spec);
    }

    #[test]
    fn traceroute_hops_are_cumulative_and_cover_all_ases() {
        let (t, a, b, ca, cb) = two_as_world();
        let spec = RealizeSpec {
            as_path: &[a, b],
            src_city: ca,
            dst_city: Some(cb),
            first_link: None,
            final_entry_links: None,
        };
        let p = realize_path(&t, &spec);
        let hops = p.traceroute(&t);
        assert!(hops.len() >= 2);
        assert_eq!(hops[0].city, ca);
        assert_eq!(hops[0].one_way_ms, 0.0);
        assert_eq!(hops.last().unwrap().city, cb);
        for w in hops.windows(2) {
            assert!(w[1].one_way_ms >= w[0].one_way_ms);
        }
        // Final hop latency equals the path's one-way propagation.
        assert!((hops.last().unwrap().one_way_ms - p.propagation_ms(&t)).abs() < 1e-9);
        // Both ASes appear as owners.
        let owners: std::collections::HashSet<_> = hops.iter().map(|h| h.owner).collect();
        assert!(owners.contains(&a) && owners.contains(&b));
    }

    #[test]
    fn multi_hop_realization_over_generated_topology() {
        use bb_bgp::{compute_routes, Announcement};
        use bb_topology::{generate, TopologyConfig};
        let topo = generate(&TopologyConfig::small(13));
        let eye = topo.ases_of_class(AsClass::Eyeball).next().unwrap();
        let origin = eye.id;
        let dst_city = eye.footprint[0];
        let table = compute_routes(&topo, &Announcement::full(&topo, origin));
        // Realize from a handful of far-away ASes.
        let mut realized = 0;
        for node in topo.ases().iter().take(20) {
            if node.id == origin {
                continue;
            }
            let path = table.as_path(node.id).unwrap();
            let src_city = node.footprint[0];
            let spec = RealizeSpec {
                as_path: &path,
                src_city,
                dst_city: Some(dst_city),
                first_link: None,
                final_entry_links: None,
            };
            let p = realize_path(&topo, &spec);
            assert_eq!(p.hop_count(), path.len() - 1);
            assert_eq!(p.final_city(), dst_city);
            // Crossed links must each connect the right AS pair.
            for (w, &l) in path.windows(2).zip(&p.links) {
                let link = topo.link(l);
                assert!(
                    (link.a == w[0] && link.b == w[1]) || (link.a == w[1] && link.b == w[0]),
                    "link endpoints must match path hop"
                );
            }
            realized += 1;
        }
        assert!(realized > 10);
    }
}
