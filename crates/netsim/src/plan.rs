//! Compiled measurement plans: resolve the window-invariant part of a
//! measurement once, query the time-varying part with table reads.
//!
//! Every study samples the same realized paths across hundreds of time
//! windows. The naive walk ([`path_rtt_ms`](crate::path_rtt_ms)) redoes the
//! invariant work on every sample: per-link `topo.link` → `atlas.city` →
//! `region.utc_offset_hours()` lookups, plus a lock acquisition and a hash
//! per congestion key. [`CongestionPlan`] resolves each
//! [`CongestionKey`](crate::CongestionKey) once into a shared
//! [`KeyProcess`] handle, and [`PathPlan`] compiles a whole
//! [`RealizedPath`] into its base RTT plus a flat `(process, utc offset)`
//! term list in the exact order of the naive walk — so
//! [`PathPlan::rtt_ms`] is a branch-free fold that is **bit-identical** to
//! `path_rtt_ms` (same f64 summation order; `tests/proptest_stats_netsim.rs`
//! checks the equivalence over random worlds).

use crate::congestion::{CongestionKey, CongestionModel, KeyProcess};
use crate::path::RealizedPath;
use crate::rtt::path_base_rtt_ms;
use crate::time::SimTime;
use bb_topology::Topology;
use std::sync::Arc;

/// Key resolver over one [`CongestionModel`]: each lookup is the model's
/// one-time lock-and-hash; everything handed out queries lock-free.
pub struct CongestionPlan<'a> {
    model: &'a CongestionModel,
    queue_d0_ms: f64,
    max_util: f64,
}

impl<'a> CongestionPlan<'a> {
    pub fn new(model: &'a CongestionModel) -> Self {
        let cfg = model.config();
        Self {
            model,
            queue_d0_ms: cfg.queue_d0_ms,
            max_util: cfg.max_util,
        }
    }

    /// Shared handle to `key`'s process.
    pub fn handle(&self, key: CongestionKey) -> Arc<KeyProcess> {
        self.model.process(key)
    }

    /// A standalone utilization probe for `key` observed from a fixed
    /// local-time offset (e.g. spray's per-route egress-link utilization).
    pub fn probe(&self, key: CongestionKey, utc_offset_hours: f64) -> UtilProbe {
        UtilProbe {
            process: self.handle(key),
            utc_offset_hours,
            max_util: self.max_util,
        }
    }

    /// Compile `path` (+ optional last-mile key) into a [`PathPlan`].
    ///
    /// Term order replicates `path_rtt_ms` exactly: each interconnect at its
    /// own city's offset, then the destination metro, then the last mile —
    /// the last two both at the final city's offset.
    pub fn compile_path(
        &self,
        topo: &Topology,
        path: &RealizedPath,
        lastmile: Option<CongestionKey>,
    ) -> PathPlan {
        let mut terms = Vec::with_capacity(path.links.len() + 2);
        for &l in &path.links {
            let city = topo.link(l).city;
            let offset = topo.atlas.city(city).region.utc_offset_hours();
            terms.push((self.handle(CongestionKey::Link(l)), offset));
        }
        let final_city = path.final_city();
        let offset = topo.atlas.city(final_city).region.utc_offset_hours();
        terms.push((self.handle(CongestionKey::Metro(final_city)), offset));
        if let Some(lm) = lastmile {
            terms.push((self.handle(lm), offset));
        }
        PathPlan {
            base_rtt_ms: path_base_rtt_ms(topo, path),
            terms,
            queue_d0_ms: self.queue_d0_ms,
            max_util: self.max_util,
        }
    }
}

/// A resolved `(key, local-time offset)` pair for repeated utilization
/// queries.
pub struct UtilProbe {
    process: Arc<KeyProcess>,
    utc_offset_hours: f64,
    max_util: f64,
}

impl UtilProbe {
    /// Same value as `CongestionModel::utilization` for the probed key.
    #[inline]
    pub fn utilization(&self, t: SimTime) -> f64 {
        self.process.utilization(self.utc_offset_hours, t, self.max_util)
    }
}

/// One realized path, compiled: the congestion-free floor plus every
/// queueing term as a resolved process handle.
pub struct PathPlan {
    base_rtt_ms: f64,
    /// `(process, utc offset)` in walk order: links, metro, last mile.
    terms: Vec<(Arc<KeyProcess>, f64)>,
    queue_d0_ms: f64,
    max_util: f64,
}

impl PathPlan {
    /// Deterministic RTT at `t`; bit-identical to
    /// [`path_rtt_ms`](crate::path_rtt_ms) over the same path and keys.
    #[inline]
    pub fn rtt_ms(&self, t: SimTime) -> f64 {
        let mut rtt = self.base_rtt_ms;
        for (process, offset) in &self.terms {
            let rho = process
                .utilization(*offset, t, self.max_util)
                .clamp(0.0, self.max_util);
            rtt += self.queue_d0_ms * rho * rho / (1.0 - rho);
        }
        rtt
    }

    /// The congestion-free floor (`path_base_rtt_ms`).
    pub fn base_rtt_ms(&self) -> f64 {
        self.base_rtt_ms
    }

    /// Number of queueing terms (links + metro + optional last mile).
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::CongestionConfig;
    use crate::path::{realize_path, RealizeSpec};
    use crate::rtt::path_rtt_ms;
    use bb_bgp::{compute_routes, Announcement};
    use bb_topology::{generate, AsClass, TopologyConfig};

    fn world() -> (Topology, RealizedPath) {
        let topo = generate(&TopologyConfig::small(23));
        let eye = topo.ases_of_class(AsClass::Eyeball).next().unwrap();
        let origin = eye.id;
        let dst_city = eye.footprint[0];
        let table = compute_routes(&topo, &Announcement::full(&topo, origin));
        let src = topo
            .ases()
            .iter()
            .find(|a| a.id != origin && table.as_path(a.id).is_some_and(|p| p.len() >= 3))
            .expect("some multi-hop source");
        let path = table.as_path(src.id).unwrap();
        let spec = RealizeSpec {
            as_path: &path,
            src_city: src.footprint[0],
            dst_city: Some(dst_city),
            first_link: None,
            final_entry_links: None,
        };
        let p = realize_path(&topo, &spec);
        (topo, p)
    }

    #[test]
    fn plan_rtt_matches_walk_bitwise() {
        let (topo, p) = world();
        let model = CongestionModel::new(5, CongestionConfig::default());
        let plan = CongestionPlan::new(&model);
        for lastmile in [None, Some(CongestionKey::LastMile(77))] {
            let pp = plan.compile_path(&topo, &p, lastmile);
            for i in 0..200 {
                let t = SimTime::from_minutes(i as f64 * 71.3);
                assert_eq!(
                    pp.rtt_ms(t),
                    path_rtt_ms(&topo, &model, &p, lastmile, t),
                    "t={t:?} lastmile={lastmile:?}"
                );
            }
        }
    }

    #[test]
    fn probe_matches_model_utilization() {
        let (topo, p) = world();
        let model = CongestionModel::new(5, CongestionConfig::default());
        let plan = CongestionPlan::new(&model);
        let l = p.links[0];
        let offset = topo.atlas.city(topo.link(l).city).region.utc_offset_hours();
        let probe = plan.probe(CongestionKey::Link(l), offset);
        for i in 0..100 {
            let t = SimTime::from_minutes(i as f64 * 53.0);
            assert_eq!(
                probe.utilization(t),
                model.utilization(CongestionKey::Link(l), offset, t)
            );
        }
    }

    #[test]
    fn plan_has_expected_term_count() {
        let (topo, p) = world();
        let model = CongestionModel::new(5, CongestionConfig::default());
        let plan = CongestionPlan::new(&model);
        let without = plan.compile_path(&topo, &p, None);
        let with = plan.compile_path(&topo, &p, Some(CongestionKey::LastMile(1)));
        assert_eq!(without.term_count(), p.links.len() + 1);
        assert_eq!(with.term_count(), p.links.len() + 2);
        assert!(with.base_rtt_ms() > 0.0);
    }
}
