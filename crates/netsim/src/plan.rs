//! Compiled measurement plans: resolve the window-invariant part of a
//! measurement once, query the time-varying part with table reads.
//!
//! Every study samples the same realized paths across hundreds of time
//! windows. The naive walk ([`path_rtt_ms`](crate::path_rtt_ms)) redoes the
//! invariant work on every sample: per-link `topo.link` → `atlas.city` →
//! `region.utc_offset_hours()` lookups, plus a lock acquisition and a hash
//! per congestion key. [`CongestionPlan`] resolves each
//! [`CongestionKey`](crate::CongestionKey) once into a shared
//! [`KeyProcess`] handle, and [`PathPlan`] compiles a whole
//! [`RealizedPath`] into its base RTT plus a flat `(process, utc offset)`
//! term list in the exact order of the naive walk — so
//! [`PathPlan::rtt_ms`] is a branch-free fold that is **bit-identical** to
//! `path_rtt_ms` (same f64 summation order; `tests/proptest_stats_netsim.rs`
//! checks the equivalence over random worlds).

use crate::congestion::{diurnal_factor, CongestionKey, CongestionModel, KeyProcess};
use crate::path::RealizedPath;
use crate::rtt::path_base_rtt_ms;
use crate::time::SimTime;
use bb_topology::Topology;
use std::collections::HashMap;
use std::sync::Arc;

/// Key resolver over one [`CongestionModel`]: each lookup is the model's
/// one-time lock-and-hash; everything handed out queries lock-free.
pub struct CongestionPlan<'a> {
    model: &'a CongestionModel,
    queue_d0_ms: f64,
    max_util: f64,
}

impl<'a> CongestionPlan<'a> {
    pub fn new(model: &'a CongestionModel) -> Self {
        let cfg = model.config();
        Self {
            model,
            queue_d0_ms: cfg.queue_d0_ms,
            max_util: cfg.max_util,
        }
    }

    /// Shared handle to `key`'s process.
    pub fn handle(&self, key: CongestionKey) -> Arc<KeyProcess> {
        self.model.process(key)
    }

    /// A standalone utilization probe for `key` observed from a fixed
    /// local-time offset (e.g. spray's per-route egress-link utilization).
    pub fn probe(&self, key: CongestionKey, utc_offset_hours: f64) -> UtilProbe {
        UtilProbe {
            process: self.handle(key),
            utc_offset_hours,
            max_util: self.max_util,
        }
    }

    /// Compile `path` (+ optional last-mile key) into a [`PathPlan`].
    ///
    /// Term order replicates `path_rtt_ms` exactly: each interconnect at its
    /// own city's offset, then the destination metro, then the last mile —
    /// the last two both at the final city's offset.
    pub fn compile_path(
        &self,
        topo: &Topology,
        path: &RealizedPath,
        lastmile: Option<CongestionKey>,
    ) -> PathPlan {
        let mut terms = Vec::with_capacity(path.links.len() + 2);
        for &l in &path.links {
            let city = topo.link(l).city;
            let offset = topo.atlas.city(city).region.utc_offset_hours();
            terms.push((self.handle(CongestionKey::Link(l)), offset));
        }
        let final_city = path.final_city();
        let offset = topo.atlas.city(final_city).region.utc_offset_hours();
        terms.push((self.handle(CongestionKey::Metro(final_city)), offset));
        if let Some(lm) = lastmile {
            terms.push((self.handle(lm), offset));
        }
        PathPlan {
            base_rtt_ms: path_base_rtt_ms(topo, path),
            terms,
            queue_d0_ms: self.queue_d0_ms,
            max_util: self.max_util,
        }
    }
}

/// A resolved `(key, local-time offset)` pair for repeated utilization
/// queries.
pub struct UtilProbe {
    process: Arc<KeyProcess>,
    utc_offset_hours: f64,
    max_util: f64,
}

impl UtilProbe {
    /// Same value as `CongestionModel::utilization` for the probed key.
    #[inline]
    pub fn utilization(&self, t: SimTime) -> f64 {
        self.process.utilization(self.utc_offset_hours, t, self.max_util)
    }
}

/// One realized path, compiled: the congestion-free floor plus every
/// queueing term as a resolved process handle.
pub struct PathPlan {
    base_rtt_ms: f64,
    /// `(process, utc offset)` in walk order: links, metro, last mile.
    terms: Vec<(Arc<KeyProcess>, f64)>,
    queue_d0_ms: f64,
    max_util: f64,
}

impl PathPlan {
    /// Deterministic RTT at `t`; bit-identical to
    /// [`path_rtt_ms`](crate::path_rtt_ms) over the same path and keys.
    #[inline]
    pub fn rtt_ms(&self, t: SimTime) -> f64 {
        let mut rtt = self.base_rtt_ms;
        for (process, offset) in &self.terms {
            let rho = process
                .utilization(*offset, t, self.max_util)
                .clamp(0.0, self.max_util);
            rtt += self.queue_d0_ms * rho * rho / (1.0 - rho);
        }
        rtt
    }

    /// The congestion-free floor (`path_base_rtt_ms`).
    pub fn base_rtt_ms(&self) -> f64 {
        self.base_rtt_ms
    }

    /// Number of queueing terms (links + metro + optional last mile).
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }
}

/// Interned UTC offsets: every distinct offset a batch's terms reference,
/// deduplicated by bit pattern so a [`DiurnalTable`] row can be indexed by a
/// small integer instead of recomputing `sin` per term.
#[derive(Default)]
pub struct OffsetTable {
    offsets: Vec<f64>,
    index: HashMap<u64, u32>,
}

impl OffsetTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of `offset`, interning it on first sight.
    pub fn intern(&mut self, offset: f64) -> u32 {
        let bits = offset.to_bits();
        if let Some(&i) = self.index.get(&bits) {
            return i;
        }
        let i = self.offsets.len() as u32;
        self.offsets.push(offset);
        self.index.insert(bits, i);
        i
    }

    /// The interned offsets, in interning order.
    pub fn offsets(&self) -> &[f64] {
        &self.offsets
    }

    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

/// Precomputed diurnal factors for a set of sample times × interned UTC
/// offsets. A 10-day full-scale spray evaluates ~6M utilization terms but
/// only ~240 windows × ~25 offsets distinct `(time, offset)` pairs; this
/// table computes each sine once. Values are produced by the exact
/// [`diurnal_factor`] expression the scalar walk uses, so reads are
/// bit-identical to inline evaluation.
pub struct DiurnalTable {
    n_offsets: usize,
    values: Vec<f64>,
}

impl DiurnalTable {
    /// Build the `times × offsets` table.
    pub fn build(times: &[SimTime], offsets: &OffsetTable) -> Self {
        let n_offsets = offsets.len();
        let mut values = Vec::with_capacity(times.len() * n_offsets);
        for &t in times {
            for &off in offsets.offsets() {
                values.push(diurnal_factor(t.local_hour(off)));
            }
        }
        DiurnalTable { n_offsets, values }
    }

    /// Diurnal factors of every interned offset at `times[time_idx]`.
    #[inline]
    pub fn row(&self, time_idx: usize) -> &[f64] {
        &self.values[time_idx * self.n_offsets..(time_idx + 1) * self.n_offsets]
    }
}

/// A batch of compiled route plans in structure-of-arrays layout: every
/// term's `(base, amp, offset index, event range)` in flat parallel arrays,
/// so a window evaluation is a linear pass over contiguous f64 lanes with
/// no `Arc` pointer chases and (with a [`DiurnalTable`]) no trigonometry.
///
/// [`det_rtt_ms`](Self::det_rtt_ms) is **bit-identical** to
/// [`PathPlan::rtt_ms`] on the plan each route was built from: same term
/// order, same `base + amp·D (+ severity)` / `min` / `clamp` sequence, same
/// f64 summation order (`tests/proptest_stats_netsim.rs` checks the
/// equivalence over random worlds).
pub struct PathPlanBatch {
    /// Per route: congestion-free floor.
    base_rtt: Vec<f64>,
    /// Per route: `term_start[r]..term_end[r]` indexes the RTT term arrays.
    /// An explicit end, because a route's optional probe term sits between
    /// its last RTT term and the next route's first (probes never
    /// contribute to the RTT fold).
    term_start: Vec<u32>,
    term_end: Vec<u32>,
    term_base: Vec<f64>,
    term_amp: Vec<f64>,
    /// Per term: index into the [`OffsetTable`] rows.
    term_offset_idx: Vec<u32>,
    /// Per term: the raw UTC offset (for off-table times, e.g. retries).
    term_offset_hours: Vec<f64>,
    /// Per term: `term_ev_start[i]..term_ev_start[i+1]` indexes the event
    /// arrays (start-sorted, non-overlapping, as in [`KeyProcess`]).
    term_ev_start: Vec<u32>,
    ev_start_min: Vec<f64>,
    ev_end_min: Vec<f64>,
    ev_severity: Vec<f64>,
    /// Per route: optional utilization-probe term (index into the term
    /// arrays), appended after the route's RTT terms.
    probe_term: Vec<Option<u32>>,
    queue_d0_ms: f64,
    max_util: f64,
}

impl PathPlanBatch {
    /// Compile a batch from `(plan, optional egress-utilization probe)`
    /// pairs, interning every term's UTC offset into `offsets`.
    pub fn from_route_plans(
        routes: &[(&PathPlan, Option<&UtilProbe>)],
        offsets: &mut OffsetTable,
    ) -> Self {
        let n_terms: usize = routes.iter().map(|(p, _)| p.terms.len()).sum();
        let mut batch = PathPlanBatch {
            base_rtt: Vec::with_capacity(routes.len()),
            term_start: Vec::with_capacity(routes.len()),
            term_end: Vec::with_capacity(routes.len()),
            term_base: Vec::with_capacity(n_terms),
            term_amp: Vec::with_capacity(n_terms),
            term_offset_idx: Vec::with_capacity(n_terms),
            term_offset_hours: Vec::with_capacity(n_terms),
            term_ev_start: vec![0],
            ev_start_min: Vec::new(),
            ev_end_min: Vec::new(),
            ev_severity: Vec::new(),
            probe_term: Vec::with_capacity(routes.len()),
            queue_d0_ms: routes.first().map_or(1.0, |(p, _)| p.queue_d0_ms),
            max_util: routes.first().map_or(1.0, |(p, _)| p.max_util),
        };
        for (plan, probe) in routes {
            debug_assert_eq!(plan.queue_d0_ms.to_bits(), batch.queue_d0_ms.to_bits());
            debug_assert_eq!(plan.max_util.to_bits(), batch.max_util.to_bits());
            batch.term_start.push(batch.term_base.len() as u32);
            batch.base_rtt.push(plan.base_rtt_ms);
            for (process, offset) in &plan.terms {
                batch.push_term(process, *offset, offsets);
            }
            batch.term_end.push(batch.term_base.len() as u32);
            let probe_entry = probe.map(|pr| {
                let idx = batch.term_base.len() as u32;
                batch.push_term(&pr.process, pr.utc_offset_hours, offsets);
                idx
            });
            batch.probe_term.push(probe_entry);
        }
        batch
    }

    fn push_term(&mut self, process: &KeyProcess, offset: f64, offsets: &mut OffsetTable) {
        self.term_base.push(process.base());
        self.term_amp.push(process.amp());
        self.term_offset_idx.push(offsets.intern(offset));
        self.term_offset_hours.push(offset);
        for e in process.events() {
            self.ev_start_min.push(e.start_min);
            self.ev_end_min.push(e.end_min);
            self.ev_severity.push(e.severity);
        }
        self.term_ev_start.push(self.ev_start_min.len() as u32);
    }

    /// Number of routes in the batch.
    pub fn routes(&self) -> usize {
        self.base_rtt.len()
    }

    /// Severity of the event active on `term` at minute `m`, if any — the
    /// same partition-point lookup as [`KeyProcess::active_severity`].
    #[inline]
    fn active_severity(&self, term: usize, m: f64) -> Option<f64> {
        let (s, e) = (
            self.term_ev_start[term] as usize,
            self.term_ev_start[term + 1] as usize,
        );
        let i = self.ev_start_min[s..e].partition_point(|&start| start <= m);
        let idx = s + i.checked_sub(1)?;
        (m < self.ev_end_min[idx]).then_some(self.ev_severity[idx])
    }

    /// Utilization of one term: `(base + amp·D + severity).min(max_util)`,
    /// in exactly [`KeyProcess::utilization`]'s operation order.
    #[inline]
    fn term_util(&self, term: usize, m: f64, diurnal: f64) -> f64 {
        let mut util = self.term_base[term] + self.term_amp[term] * diurnal;
        if let Some(sev) = self.active_severity(term, m) {
            util += sev;
        }
        util.min(self.max_util)
    }

    /// Deterministic RTT of `route` at `t`, reading diurnal factors from a
    /// [`DiurnalTable`] row for this `t`. Bit-identical to
    /// [`PathPlan::rtt_ms`].
    #[inline]
    pub fn det_rtt_ms(&self, route: usize, t: SimTime, diurnal_row: &[f64]) -> f64 {
        let m = t.minutes();
        let mut rtt = self.base_rtt[route];
        for term in self.term_start[route] as usize..self.term_end[route] as usize {
            let d = diurnal_row[self.term_offset_idx[term] as usize];
            let rho = self.term_util(term, m, d).clamp(0.0, self.max_util);
            rtt += self.queue_d0_ms * rho * rho / (1.0 - rho);
        }
        rtt
    }

    /// Deterministic RTT of `route` at an arbitrary `t` not covered by the
    /// table (the fault plane's retry/backoff path re-observes a window a
    /// little later). Computes each term's diurnal factor inline; still
    /// bit-identical to [`PathPlan::rtt_ms`].
    pub fn det_rtt_ms_at(&self, route: usize, t: SimTime) -> f64 {
        let m = t.minutes();
        let mut rtt = self.base_rtt[route];
        for term in self.term_start[route] as usize..self.term_end[route] as usize {
            let d = diurnal_factor(t.local_hour(self.term_offset_hours[term]));
            let rho = self.term_util(term, m, d).clamp(0.0, self.max_util);
            rtt += self.queue_d0_ms * rho * rho / (1.0 - rho);
        }
        rtt
    }

    /// Utilization of `route`'s probe term at `t` (diurnal factors from the
    /// table row). Bit-identical to [`UtilProbe::utilization`]. Panics if
    /// the route was compiled without a probe.
    #[inline]
    pub fn probe_util(&self, route: usize, t: SimTime, diurnal_row: &[f64]) -> f64 {
        let term = self.probe_term[route].expect("route compiled without a probe") as usize;
        let d = diurnal_row[self.term_offset_idx[term] as usize];
        self.term_util(term, t.minutes(), d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::CongestionConfig;
    use crate::path::{realize_path, RealizeSpec};
    use crate::rtt::path_rtt_ms;
    use bb_bgp::{compute_routes, Announcement};
    use bb_topology::{generate, AsClass, TopologyConfig};

    fn world() -> (Topology, RealizedPath) {
        let topo = generate(&TopologyConfig::small(23));
        let eye = topo.ases_of_class(AsClass::Eyeball).next().unwrap();
        let origin = eye.id;
        let dst_city = eye.footprint[0];
        let table = compute_routes(&topo, &Announcement::full(&topo, origin));
        let src = topo
            .ases()
            .iter()
            .find(|a| a.id != origin && table.as_path(a.id).is_some_and(|p| p.len() >= 3))
            .expect("some multi-hop source");
        let path = table.as_path(src.id).unwrap();
        let spec = RealizeSpec {
            as_path: &path,
            src_city: src.footprint[0],
            dst_city: Some(dst_city),
            first_link: None,
            final_entry_links: None,
        };
        let p = realize_path(&topo, &spec);
        (topo, p)
    }

    #[test]
    fn plan_rtt_matches_walk_bitwise() {
        let (topo, p) = world();
        let model = CongestionModel::new(5, CongestionConfig::default());
        let plan = CongestionPlan::new(&model);
        for lastmile in [None, Some(CongestionKey::LastMile(77))] {
            let pp = plan.compile_path(&topo, &p, lastmile);
            for i in 0..200 {
                let t = SimTime::from_minutes(i as f64 * 71.3);
                assert_eq!(
                    pp.rtt_ms(t),
                    path_rtt_ms(&topo, &model, &p, lastmile, t),
                    "t={t:?} lastmile={lastmile:?}"
                );
            }
        }
    }

    #[test]
    fn probe_matches_model_utilization() {
        let (topo, p) = world();
        let model = CongestionModel::new(5, CongestionConfig::default());
        let plan = CongestionPlan::new(&model);
        let l = p.links[0];
        let offset = topo.atlas.city(topo.link(l).city).region.utc_offset_hours();
        let probe = plan.probe(CongestionKey::Link(l), offset);
        for i in 0..100 {
            let t = SimTime::from_minutes(i as f64 * 53.0);
            assert_eq!(
                probe.utilization(t),
                model.utilization(CongestionKey::Link(l), offset, t)
            );
        }
    }

    #[test]
    fn batch_det_rtt_matches_plan_bitwise() {
        let (topo, p) = world();
        let model = CongestionModel::new(5, CongestionConfig::default());
        let plan = CongestionPlan::new(&model);
        let pp_none = plan.compile_path(&topo, &p, None);
        let pp_lm = plan.compile_path(&topo, &p, Some(CongestionKey::LastMile(77)));
        let l = p.links[0];
        let off = topo.atlas.city(topo.link(l).city).region.utc_offset_hours();
        let probe = plan.probe(CongestionKey::Link(l), off);

        let mut offsets = OffsetTable::new();
        let routes: Vec<(&PathPlan, Option<&UtilProbe>)> =
            vec![(&pp_none, None), (&pp_lm, Some(&probe))];
        let batch = PathPlanBatch::from_route_plans(&routes, &mut offsets);
        assert_eq!(batch.routes(), 2);

        let times: Vec<SimTime> = (0..200).map(|i| SimTime::from_minutes(i as f64 * 71.3)).collect();
        let table = DiurnalTable::build(&times, &offsets);
        for (wi, &t) in times.iter().enumerate() {
            let row = table.row(wi);
            assert_eq!(batch.det_rtt_ms(0, t, row).to_bits(), pp_none.rtt_ms(t).to_bits(), "A wi={wi}");
            assert_eq!(batch.det_rtt_ms(1, t, row).to_bits(), pp_lm.rtt_ms(t).to_bits(), "B wi={wi}");
            assert_eq!(batch.det_rtt_ms_at(0, t).to_bits(), pp_none.rtt_ms(t).to_bits(), "C wi={wi}");
            assert_eq!(batch.det_rtt_ms_at(1, t).to_bits(), pp_lm.rtt_ms(t).to_bits(), "D wi={wi}");
            assert_eq!(
                batch.probe_util(1, t, row).to_bits(),
                probe.utilization(t).to_bits(),
                "E wi={wi}"
            );
        }
    }

    #[test]
    fn plan_has_expected_term_count() {
        let (topo, p) = world();
        let model = CongestionModel::new(5, CongestionConfig::default());
        let plan = CongestionPlan::new(&model);
        let without = plan.compile_path(&topo, &p, None);
        let with = plan.compile_path(&topo, &p, Some(CongestionKey::LastMile(1)));
        assert_eq!(without.term_count(), p.links.len() + 1);
        assert_eq!(with.term_count(), p.links.len() + 2);
        assert!(with.base_rtt_ms() > 0.0);
    }
}
