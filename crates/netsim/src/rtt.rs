//! RTT assembly: propagation + queueing + last mile + measurement noise.
//!
//! An RTT sample over a realized path at time `t` is
//!
//! ```text
//! rtt(t) = 2·propagation + Σ_links queue(link, t) + queue(metro(dst), t)
//!          + queue(lastmile, t) + per-hop router cost + access delay + noise
//! ```
//!
//! Queueing terms are counted once per entity (bottleneck queues form in the
//! congested direction; we don't model direction asymmetry). TCP's MinRTT
//! over a session takes the minimum of several samples, which strips most of
//! the noise but none of the standing queueing — matching how the §3.1
//! dataset (TCP MinRTT) still sees congestion.

use crate::congestion::{CongestionKey, CongestionModel};
use crate::path::RealizedPath;
use crate::time::SimTime;
use bb_topology::Topology;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fixed per-AS-boundary router/processing cost, ms (both directions).
pub const PER_HOP_MS: f64 = 0.25;

/// Client access (DSL/cable/wireless serialization) baseline RTT cost, ms.
pub const ACCESS_BASE_MS: f64 = 2.0;

/// Knobs for RTT sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RttModel {
    /// Log-normal jitter sigma (per sample).
    pub jitter_sigma: f64,
    /// Median of the jitter distribution, ms.
    pub jitter_median_ms: f64,
}

impl Default for RttModel {
    fn default() -> Self {
        Self {
            jitter_sigma: 0.8,
            jitter_median_ms: 1.0,
        }
    }
}

/// Deterministic part of a path's RTT at time `t` (no jitter), given the
/// client's last-mile congestion key.
pub fn path_rtt_ms(
    topo: &Topology,
    model: &CongestionModel,
    path: &RealizedPath,
    lastmile: Option<CongestionKey>,
    t: SimTime,
) -> f64 {
    let mut rtt = path_base_rtt_ms(topo, path);

    // Interconnect queueing.
    for &l in &path.links {
        let city = topo.link(l).city;
        let offset = topo.atlas.city(city).region.utc_offset_hours();
        rtt += model.queueing_delay_ms(CongestionKey::Link(l), offset, t);
    }
    // Destination metro queueing (shared by all routes ending there).
    let final_city = path.final_city();
    let offset = topo.atlas.city(final_city).region.utc_offset_hours();
    rtt += model.queueing_delay_ms(CongestionKey::Metro(final_city), offset, t);
    // Last mile (shared by all routes to this client prefix).
    if let Some(lm) = lastmile {
        rtt += model.queueing_delay_ms(lm, offset, t);
    }
    rtt
}

/// Congestion-free floor of a path's RTT: propagation + hop costs + access.
pub fn path_base_rtt_ms(topo: &Topology, path: &RealizedPath) -> f64 {
    2.0 * path.propagation_ms(topo) + PER_HOP_MS * path.hop_count() as f64 + ACCESS_BASE_MS
}

/// TCP MinRTT over `samples` probes: deterministic RTT plus the minimum of
/// `samples` log-normal jitter draws.
pub fn sample_min_rtt(
    deterministic_rtt_ms: f64,
    rtt_model: &RttModel,
    samples: usize,
    rng: &mut impl Rng,
) -> f64 {
    assert!(samples >= 1);
    if rtt_model.jitter_sigma >= 0.0 && rtt_model.jitter_median_ms >= 0.0 {
        // x ↦ median · exp(sigma · x) is monotone for sigma, median ≥ 0, so
        // the minimum jitter is the jitter of the minimum normal draw: one
        // exp per session instead of one per sample, same bits.
        let mut min_z = f64::INFINITY;
        for _ in 0..samples {
            min_z = min_z.min(normal_draw(rng));
        }
        let min_jitter = rtt_model.jitter_median_ms * (rtt_model.jitter_sigma * min_z).exp();
        return deterministic_rtt_ms + min_jitter;
    }
    let mut min_jitter = f64::INFINITY;
    for _ in 0..samples {
        let z = normal_draw(rng);
        let jitter = rtt_model.jitter_median_ms * (rtt_model.jitter_sigma * z).exp();
        min_jitter = min_jitter.min(jitter);
    }
    deterministic_rtt_ms + min_jitter
}

/// One standard-normal draw; Box-Muller from two uniforms keeps us off
/// rand_distr.
#[inline]
fn normal_draw(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Reused buffers for [`batch_session_min_z`]: the Box-Muller radius and
/// angle lanes of one batch. Hoisted out of the window loop by callers so
/// the hot path allocates nothing.
#[derive(Debug, Default)]
pub struct JitterScratch {
    /// `u1` on fill, replaced in place by the radius `√(−2·ln u1)`.
    r: Vec<f64>,
    /// The raw `u2` uniforms (angle lane).
    u2: Vec<f64>,
}

/// Batched session sampling: draw `sessions × samples_per_session` standard
/// normals from `rng` — in exactly the stream order of `sessions` repeated
/// [`sample_min_rtt`] calls — and write each session's minimum deviate into
/// `out_min_z`. Returns the number of `cos` evaluations skipped.
///
/// The structure-of-arrays pass splits Box-Muller into lanes: one pass
/// draws the uniforms (two `next_u64` per deviate, same consumption as the
/// scalar path), one pass folds the radius lane `√(−2·ln u1)`, and the
/// min-reduce pass evaluates the angle `cos(τ·u2)` only when it can affect
/// the session minimum: since `z = r·cos(·) ≥ −r`, a deviate with
/// `−r > min` so far can only land strictly above the running minimum, so
/// skipping its `cos` leaves the fold bit-identical (strict inequality —
/// ties still evaluate and fold through the same `f64::min`).
pub fn batch_session_min_z(
    rng: &mut impl Rng,
    sessions: usize,
    samples_per_session: usize,
    scratch: &mut JitterScratch,
    out_min_z: &mut Vec<f64>,
) -> usize {
    let n = sessions * samples_per_session;
    scratch.r.clear();
    scratch.u2.clear();
    scratch.r.reserve(n);
    scratch.u2.reserve(n);
    for _ in 0..n {
        scratch.r.push(rng.gen_range(f64::EPSILON..1.0));
        scratch.u2.push(rng.gen::<f64>());
    }
    for u1 in scratch.r.iter_mut() {
        *u1 = (-2.0 * u1.ln()).sqrt();
    }
    let mut skipped = 0usize;
    out_min_z.clear();
    out_min_z.reserve(sessions);
    for s in 0..sessions {
        let mut min_z = f64::INFINITY;
        for i in s * samples_per_session..(s + 1) * samples_per_session {
            let r = scratch.r[i];
            if -r > min_z {
                skipped += 1;
                continue;
            }
            let z = r * (std::f64::consts::TAU * scratch.u2[i]).cos();
            min_z = min_z.min(z);
        }
        out_min_z.push(min_z);
    }
    skipped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::CongestionConfig;
    use crate::path::{realize_path, RealizeSpec};
    use bb_bgp::{compute_routes, Announcement};
    use bb_topology::{generate, AsClass, TopologyConfig, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (Topology, RealizedPath) {
        let topo = generate(&TopologyConfig::small(17));
        let eye = topo.ases_of_class(AsClass::Eyeball).next().unwrap();
        let origin = eye.id;
        let dst_city = eye.footprint[0];
        let table = compute_routes(&topo, &Announcement::full(&topo, origin));
        let src = topo
            .ases()
            .iter()
            .find(|a| a.id != origin && table.as_path(a.id).is_some_and(|p| p.len() >= 3))
            .expect("some multi-hop source");
        let path = table.as_path(src.id).unwrap();
        let spec = RealizeSpec {
            as_path: &path,
            src_city: src.footprint[0],
            dst_city: Some(dst_city),
            first_link: None,
            final_entry_links: None,
        };
        let p = realize_path(&topo, &spec);
        (topo, p)
    }

    #[test]
    fn base_rtt_includes_floor_terms() {
        let (topo, p) = world();
        let base = path_base_rtt_ms(&topo, &p);
        assert!(base >= ACCESS_BASE_MS + PER_HOP_MS * p.hop_count() as f64);
        assert!(base >= 2.0 * p.propagation_ms(&topo));
    }

    #[test]
    fn congestion_only_adds() {
        let (topo, p) = world();
        let model = CongestionModel::new(1, CongestionConfig::default());
        let base = path_base_rtt_ms(&topo, &p);
        for h in [0.0, 6.0, 12.0, 20.0] {
            let rtt = path_rtt_ms(&topo, &model, &p, Some(CongestionKey::LastMile(9)), SimTime::from_hours(h));
            assert!(rtt >= base, "rtt {rtt} < base {base}");
        }
    }

    #[test]
    fn lastmile_key_shifts_rtt() {
        let (topo, p) = world();
        let model = CongestionModel::new(1, CongestionConfig::default());
        let t = SimTime::from_hours(20.0);
        let a = path_rtt_ms(&topo, &model, &p, Some(CongestionKey::LastMile(1)), t);
        let b = path_rtt_ms(&topo, &model, &p, None, t);
        assert!(a > b);
    }

    #[test]
    fn min_rtt_decreases_with_more_samples() {
        let rm = RttModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        let avg = |n: usize, rng: &mut StdRng| {
            (0..200)
                .map(|_| sample_min_rtt(10.0, &rm, n, rng))
                .sum::<f64>()
                / 200.0
        };
        let one = avg(1, &mut rng);
        let ten = avg(10, &mut rng);
        assert!(ten < one, "min of 10 samples {ten} must beat 1 sample {one}");
        assert!(ten >= 10.0, "jitter is non-negative");
    }

    #[test]
    fn min_rtt_never_below_deterministic() {
        let rm = RttModel::default();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            assert!(sample_min_rtt(42.0, &rm, 5, &mut rng) >= 42.0);
        }
    }

    #[test]
    fn batch_min_z_matches_scalar_sample_min_rtt() {
        let rm = RttModel::default();
        let mut scratch = JitterScratch::default();
        let mut min_z = Vec::new();
        for (sessions, samples) in [(1, 1), (3, 5), (7, 5), (8, 4), (5, 1)] {
            for seed in 0..50u64 {
                let mut scalar_rng = StdRng::seed_from_u64(seed);
                let scalar: Vec<f64> = (0..sessions)
                    .map(|_| sample_min_rtt(10.0, &rm, samples, &mut scalar_rng))
                    .collect();
                let mut batch_rng = StdRng::seed_from_u64(seed);
                batch_session_min_z(&mut batch_rng, sessions, samples, &mut scratch, &mut min_z);
                assert_eq!(min_z.len(), sessions);
                for (s, &z) in scalar.iter().zip(&min_z) {
                    let batch_v = 10.0 + rm.jitter_median_ms * (rm.jitter_sigma * z).exp();
                    assert_eq!(s.to_bits(), batch_v.to_bits(), "seed {seed}");
                }
                // Same stream position afterwards: the batch consumed
                // exactly the scalar path's draws.
                use crate::rtt::tests::next_of;
                assert_eq!(next_of(&mut scalar_rng), next_of(&mut batch_rng));
            }
        }
    }

    pub(crate) fn next_of(rng: &mut StdRng) -> u64 {
        use rand::RngCore;
        rng.next_u64()
    }

    #[test]
    fn deterministic_rtt_same_inputs_same_output() {
        let (topo, p) = world();
        let m1 = CongestionModel::new(3, CongestionConfig::default());
        let m2 = CongestionModel::new(3, CongestionConfig::default());
        let t = SimTime::from_hours(13.0);
        let k = Some(CongestionKey::LastMile(2));
        assert_eq!(
            path_rtt_ms(&topo, &m1, &p, k, t),
            path_rtt_ms(&topo, &m2, &p, k, t)
        );
    }
}
