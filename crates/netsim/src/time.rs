//! Simulation time: minutes since the start of the run.
//!
//! The Facebook dataset of §3.1 aggregates measurements in 15-minute
//! windows over ten days; those constants live here.

use serde::{Deserialize, Serialize};

/// Length of one aggregation window, minutes (§3.1).
pub const WINDOW_MINUTES: f64 = 15.0;

/// A point in simulation time, in minutes from the epoch of the run.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimTime(pub f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    pub fn from_minutes(m: f64) -> Self {
        SimTime(m)
    }

    pub fn from_hours(h: f64) -> Self {
        SimTime(h * 60.0)
    }

    pub fn from_days(d: f64) -> Self {
        SimTime(d * 24.0 * 60.0)
    }

    pub fn minutes(&self) -> f64 {
        self.0
    }

    pub fn hours(&self) -> f64 {
        self.0 / 60.0
    }

    pub fn days(&self) -> f64 {
        self.0 / (24.0 * 60.0)
    }

    /// Hour-of-day in UTC, in [0, 24).
    pub fn utc_hour(&self) -> f64 {
        self.hours().rem_euclid(24.0)
    }

    /// Hour-of-day at a location `utc_offset_hours` east of UTC.
    pub fn local_hour(&self, utc_offset_hours: f64) -> f64 {
        (self.hours() + utc_offset_hours).rem_euclid(24.0)
    }

    /// Index of the aggregation window containing this time.
    pub fn window(&self) -> Window {
        Window((self.0 / WINDOW_MINUTES).floor() as u32)
    }
}

impl std::ops::Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, minutes: f64) -> SimTime {
        SimTime(self.0 + minutes)
    }
}

/// A 15-minute aggregation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Window(pub u32);

impl Window {
    /// Start of this window.
    pub fn start(&self) -> SimTime {
        SimTime(self.0 as f64 * WINDOW_MINUTES)
    }

    /// Midpoint of this window (used as the representative sample time).
    pub fn midpoint(&self) -> SimTime {
        SimTime((self.0 as f64 + 0.5) * WINDOW_MINUTES)
    }

    /// Windows covering `[0, horizon)`.
    pub fn over(horizon: SimTime) -> impl Iterator<Item = Window> {
        let n = (horizon.minutes() / WINDOW_MINUTES).ceil() as u32;
        (0..n).map(Window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_days(2.0);
        assert_eq!(t.minutes(), 2880.0);
        assert_eq!(t.hours(), 48.0);
        assert_eq!(t.days(), 2.0);
    }

    #[test]
    fn utc_hour_wraps() {
        assert_eq!(SimTime::from_hours(25.0).utc_hour(), 1.0);
        assert_eq!(SimTime::from_hours(24.0).utc_hour(), 0.0);
    }

    #[test]
    fn local_hour_applies_offset() {
        let t = SimTime::from_hours(23.0);
        assert_eq!(t.local_hour(2.0), 1.0);
        assert_eq!(t.local_hour(-1.0), 22.0);
        assert_eq!(t.local_hour(5.5), 4.5);
    }

    #[test]
    fn window_indexing() {
        assert_eq!(SimTime::from_minutes(0.0).window(), Window(0));
        assert_eq!(SimTime::from_minutes(14.9).window(), Window(0));
        assert_eq!(SimTime::from_minutes(15.0).window(), Window(1));
        assert_eq!(Window(2).start().minutes(), 30.0);
        assert_eq!(Window(2).midpoint().minutes(), 37.5);
    }

    #[test]
    fn windows_over_horizon() {
        let ws: Vec<Window> = Window::over(SimTime::from_hours(1.0)).collect();
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0], Window(0));
        assert_eq!(ws[3], Window(3));
    }

    #[test]
    fn ten_days_is_960_windows() {
        // The Facebook study spans ten days of 15-minute windows.
        let ws = Window::over(SimTime::from_days(10.0)).count();
        assert_eq!(ws, 960);
    }
}
