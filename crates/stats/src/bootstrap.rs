//! Bootstrap confidence intervals.
//!
//! Figure 1's shaded region is "the distribution of the lower and upper
//! bounds of the confidence intervals around the performance difference".
//! We compute per-group CIs for the median by the percentile bootstrap,
//! with an explicit seed so the whole figure is reproducible.

use crate::quantile::{median, quantile_sorted};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    pub lower: f64,
    pub point: f64,
    pub upper: f64,
    /// Nominal coverage, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lower..=self.upper).contains(&x)
    }
}

/// Percentile-bootstrap CI for the median of `values`.
///
/// `resamples` controls the bootstrap replication count (the paper's scale
/// would use thousands; 200 is plenty for figure shape). Returns `None` on
/// empty input. For a single sample the interval is degenerate.
pub fn bootstrap_median_ci(
    values: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfidenceInterval> {
    let point = median(values)?;
    if values.len() == 1 {
        return Some(ConfidenceInterval {
            lower: point,
            point,
            upper: point,
            level,
        });
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut medians = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; values.len()];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = values[rng.gen_range(0..values.len())];
        }
        buf.sort_by(|a, b| a.total_cmp(b));
        medians.push(quantile_sorted(&buf, 0.5));
    }
    medians.sort_by(|a, b| a.total_cmp(b));

    let alpha = (1.0 - level.clamp(0.0, 1.0)) / 2.0;
    Some(ConfidenceInterval {
        lower: quantile_sorted(&medians, alpha),
        point,
        upper: quantile_sorted(&medians, 1.0 - alpha),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        assert!(bootstrap_median_ci(&[], 0.95, 100, 1).is_none());
    }

    #[test]
    fn single_sample_is_degenerate() {
        let ci = bootstrap_median_ci(&[7.0], 0.95, 100, 1).unwrap();
        assert_eq!(ci.lower, 7.0);
        assert_eq!(ci.upper, 7.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64) * 0.1).collect();
        let ci = bootstrap_median_ci(&data, 0.95, 300, 42).unwrap();
        assert!(ci.lower <= ci.point);
        assert!(ci.point <= ci.upper);
        assert!(ci.contains(ci.point));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let data: Vec<f64> = (0..30).map(|i| ((i * 13) % 17) as f64).collect();
        let a = bootstrap_median_ci(&data, 0.95, 200, 7).unwrap();
        let b = bootstrap_median_ci(&data, 0.95, 200, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_data_tighter_interval() {
        // Same underlying distribution; 10x the samples should shrink the CI.
        let small: Vec<f64> = (0..20).map(|i| ((i * 7919) % 100) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| ((i * 7919) % 100) as f64).collect();
        let ci_s = bootstrap_median_ci(&small, 0.95, 300, 3).unwrap();
        let ci_l = bootstrap_median_ci(&large, 0.95, 300, 3).unwrap();
        assert!(
            ci_l.width() < ci_s.width(),
            "large {} vs small {}",
            ci_l.width(),
            ci_s.width()
        );
    }

    #[test]
    fn wider_level_wider_interval() {
        let data: Vec<f64> = (0..40).map(|i| ((i * 31) % 23) as f64).collect();
        let ci_90 = bootstrap_median_ci(&data, 0.90, 400, 5).unwrap();
        let ci_99 = bootstrap_median_ci(&data, 0.99, 400, 5).unwrap();
        assert!(ci_99.width() >= ci_90.width());
    }
}
