//! Bootstrap confidence intervals.
//!
//! Figure 1's shaded region is "the distribution of the lower and upper
//! bounds of the confidence intervals around the performance difference".
//! We compute per-group CIs for the median by the percentile bootstrap,
//! with an explicit seed so the whole figure is reproducible.

use crate::quantile::{median, quantile_sorted};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Division-free `n % d` for a loop-invariant divisor (Lemire's fastmod):
/// `c = ⌊2¹²⁸/d⌋ + 1`, then `n % d = ⌊(c·n mod 2¹²⁸) · d / 2¹²⁸⌋`. Exact
/// for every `n` and `d > 0`, so the result matches the hardware remainder
/// bit-for-bit at a fraction of the latency.
struct FastRem {
    d: u64,
    c: u128,
}

impl FastRem {
    fn new(d: u64) -> Self {
        assert!(d > 0);
        // For d = 1 the +1 wraps c to 0, which still yields rem ≡ 0: correct.
        Self {
            d,
            c: (u128::MAX / d as u128).wrapping_add(1),
        }
    }

    #[inline]
    fn rem(&self, n: u64) -> u64 {
        let low = self.c.wrapping_mul(n as u128);
        // High 64 bits of the 192-bit product `low · d`, i.e.
        // ⌊low · d / 2¹²⁸⌋ (d < 2⁶⁴ keeps every partial sum in u128).
        let hi = low >> 64;
        let lo = low & u64::MAX as u128;
        let d = self.d as u128;
        ((hi * d + ((lo * d) >> 64)) >> 64) as u64
    }
}

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    pub lower: f64,
    pub point: f64,
    pub upper: f64,
    /// Nominal coverage, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lower..=self.upper).contains(&x)
    }
}

/// Percentile-bootstrap CI for the median of `values`.
///
/// `resamples` controls the bootstrap replication count (the paper's scale
/// would use thousands; 200 is plenty for figure shape). Returns `None` on
/// empty input. For a single sample the interval is degenerate.
pub fn bootstrap_median_ci(
    values: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfidenceInterval> {
    let point = median(values)?;
    if values.len() == 1 {
        return Some(ConfidenceInterval {
            lower: point,
            point,
            upper: point,
            level,
        });
    }

    SCRATCH.with_borrow_mut(|scratch| {
        let BootstrapScratch { raw, buf, medians } = scratch;
        let mut rng = StdRng::seed_from_u64(seed);
        // One batched pass over the generator: selection consumes no
        // randomness, so front-loading every draw leaves the stream order —
        // and therefore the resampled indices — exactly as the interleaved
        // draw-then-select loop produced them.
        let n = resamples * values.len();
        raw.clear();
        raw.reserve(n);
        for _ in 0..n {
            raw.push(rng.next_u64());
        }
        // `gen_range(0..len)` is `next_u64() % len`; the divisor is loop-
        // invariant, so hoist the division out of the ~len × resamples
        // draws.
        let index = FastRem::new(values.len() as u64);
        buf.resize(values.len(), 0.0);
        medians.clear();
        medians.reserve(resamples);
        for r in 0..resamples {
            let draws = &raw[r * values.len()..(r + 1) * values.len()];
            for (slot, &bits) in buf.iter_mut().zip(draws) {
                *slot = values[index.rem(bits) as usize];
            }
            // O(n) selection; bit-identical to sort + quantile_sorted, and
            // buf is refilled next iteration so the partial reorder is
            // harmless.
            medians.push(crate::quantile_select(buf, 0.5));
        }
        medians.sort_by(|a, b| a.total_cmp(b));

        let alpha = (1.0 - level.clamp(0.0, 1.0)) / 2.0;
        Some(ConfidenceInterval {
            lower: quantile_sorted(medians, alpha),
            point,
            upper: quantile_sorted(medians, 1.0 - alpha),
            level,
        })
    })
}

/// Reused bootstrap buffers, one set per thread: the egress study runs one
/// `bootstrap_median_ci` per ⟨PoP, prefix⟩ group (hundreds to thousands per
/// campaign), and the three buffers would otherwise be reallocated per
/// group.
struct BootstrapScratch {
    /// Raw generator output, one `u64` per resampled index.
    raw: Vec<u64>,
    /// One resample of `values`.
    buf: Vec<f64>,
    /// The bootstrap replicate medians.
    medians: Vec<f64>,
}

thread_local! {
    static SCRATCH: std::cell::RefCell<BootstrapScratch> =
        std::cell::RefCell::new(BootstrapScratch {
            raw: Vec::new(),
            buf: Vec::new(),
            medians: Vec::new(),
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_rem_matches_hardware_remainder() {
        let divisors = [1u64, 2, 3, 7, 240, 241, 1000, u32::MAX as u64, u64::MAX];
        let mut probes: Vec<u64> = vec![0, 1, 2, 239, 240, 241, u64::MAX, u64::MAX - 1];
        // Deterministic pseudo-random probes (splitmix64 walk).
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(0xbf58476d1ce4e5b9).rotate_left(31);
            probes.push(x);
        }
        for &d in &divisors {
            let f = FastRem::new(d);
            for &n in &probes {
                assert_eq!(f.rem(n), n % d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn empty_returns_none() {
        assert!(bootstrap_median_ci(&[], 0.95, 100, 1).is_none());
    }

    #[test]
    fn single_sample_is_degenerate() {
        let ci = bootstrap_median_ci(&[7.0], 0.95, 100, 1).unwrap();
        assert_eq!(ci.lower, 7.0);
        assert_eq!(ci.upper, 7.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64) * 0.1).collect();
        let ci = bootstrap_median_ci(&data, 0.95, 300, 42).unwrap();
        assert!(ci.lower <= ci.point);
        assert!(ci.point <= ci.upper);
        assert!(ci.contains(ci.point));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let data: Vec<f64> = (0..30).map(|i| ((i * 13) % 17) as f64).collect();
        let a = bootstrap_median_ci(&data, 0.95, 200, 7).unwrap();
        let b = bootstrap_median_ci(&data, 0.95, 200, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_data_tighter_interval() {
        // Same underlying distribution; 10x the samples should shrink the CI.
        let small: Vec<f64> = (0..20).map(|i| ((i * 7919) % 100) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| ((i * 7919) % 100) as f64).collect();
        let ci_s = bootstrap_median_ci(&small, 0.95, 300, 3).unwrap();
        let ci_l = bootstrap_median_ci(&large, 0.95, 300, 3).unwrap();
        assert!(
            ci_l.width() < ci_s.width(),
            "large {} vs small {}",
            ci_l.width(),
            ci_s.width()
        );
    }

    #[test]
    fn wider_level_wider_interval() {
        let data: Vec<f64> = (0..40).map(|i| ((i * 31) % 23) as f64).collect();
        let ci_90 = bootstrap_median_ci(&data, 0.90, 400, 5).unwrap();
        let ci_99 = bootstrap_median_ci(&data, 0.99, 400, 5).unwrap();
        assert!(ci_99.width() >= ci_90.width());
    }
}
