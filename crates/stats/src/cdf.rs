//! Weighted empirical CDF / CCDF.

use serde::{Deserialize, Serialize};

/// A weighted empirical cumulative distribution function.
///
/// Built once from (value, weight) samples; queries are O(log n).
/// This is the exact object plotted in Figures 1, 2 and 4 of the paper
/// ("Cum. Fraction of Traffic" / "CDF of Weighted /24s" on the y-axis).
///
/// ```
/// use bb_stats::Cdf;
/// let cdf = Cdf::from_weighted(&[(1.0, 3.0), (5.0, 1.0)]).unwrap();
/// assert_eq!(cdf.fraction_leq(1.0), 0.75); // 3 of 4 units of weight
/// assert_eq!(cdf.median(), 1.0);
/// assert_eq!(cdf.value_at(0.9), 5.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted distinct sample values.
    values: Vec<f64>,
    /// Cumulative weight fraction at each value (last element is 1.0).
    cum_frac: Vec<f64>,
}

impl Cdf {
    /// Build from weighted samples. Non-positive weights are dropped.
    /// Returns `None` if no positive-weight samples remain.
    pub fn from_weighted(samples: &[(f64, f64)]) -> Option<Cdf> {
        let mut pairs: Vec<(f64, f64)> = samples.iter().copied().filter(|&(_, w)| w > 0.0).collect();
        if pairs.is_empty() {
            return None;
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();

        let mut values = Vec::with_capacity(pairs.len());
        let mut cum_frac = Vec::with_capacity(pairs.len());
        let mut cum = 0.0;
        let mut prev = 0.0;
        for &(v, w) in &pairs {
            cum += w;
            // Clamp every entry (not just the last) against floating-point
            // drift: a partial sum landing above `total` would otherwise
            // yield an intermediate fraction > 1.0, which turns
            // `fraction_geq`/`Ccdf::fraction_gt` negative. Also enforce
            // monotonicity so queries binary-searching `cum_frac` stay
            // well-defined under any summation order.
            let frac = (cum / total).min(1.0).max(prev);
            prev = frac;
            if values.last() == Some(&v) {
                *cum_frac.last_mut().unwrap() = frac;
            } else {
                values.push(v);
                cum_frac.push(frac);
            }
        }
        *cum_frac.last_mut().unwrap() = 1.0;
        Some(Cdf { values, cum_frac })
    }

    /// Build from unweighted samples.
    pub fn from_values(values: &[f64]) -> Option<Cdf> {
        let weighted: Vec<(f64, f64)> = values.iter().map(|&v| (v, 1.0)).collect();
        Cdf::from_weighted(&weighted)
    }

    /// P(X ≤ x): fraction of weight at or below `x`.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        match self.values.partition_point(|&v| v <= x) {
            0 => 0.0,
            i => self.cum_frac[i - 1],
        }
    }

    /// P(X ≥ x): fraction of weight at or above `x` (for CCDF-style reads).
    pub fn fraction_geq(&self, x: f64) -> f64 {
        match self.values.partition_point(|&v| v < x) {
            0 => 1.0,
            i => 1.0 - self.cum_frac[i - 1],
        }
    }

    /// Smallest value v with P(X ≤ v) ≥ p (the p-quantile).
    pub fn value_at(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let i = self.cum_frac.partition_point(|&c| c < p);
        self.values[i.min(self.values.len() - 1)]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.value_at(0.5)
    }

    /// The step points (value, cumulative fraction) for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values.iter().copied().zip(self.cum_frac.iter().copied())
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Min / max sample values.
    pub fn min(&self) -> f64 {
        self.values[0]
    }
    pub fn max(&self) -> f64 {
        *self.values.last().unwrap()
    }
}

/// A weighted empirical CCDF, P(X > x) — the form of Figure 3
/// ("CCDF of Requests").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ccdf {
    cdf: Cdf,
}

impl Ccdf {
    pub fn from_weighted(samples: &[(f64, f64)]) -> Option<Ccdf> {
        Cdf::from_weighted(samples).map(|cdf| Ccdf { cdf })
    }

    pub fn from_values(values: &[f64]) -> Option<Ccdf> {
        Cdf::from_values(values).map(|cdf| Ccdf { cdf })
    }

    /// P(X > x).
    pub fn fraction_gt(&self, x: f64) -> f64 {
        1.0 - self.cdf.fraction_leq(x)
    }

    /// The underlying CDF.
    pub fn cdf(&self) -> &Cdf {
        &self.cdf
    }

    /// Step points (value, 1 - cumulative fraction) for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.cdf.points().map(|(v, c)| (v, 1.0 - c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        assert!(Cdf::from_values(&[]).is_none());
        assert!(Cdf::from_weighted(&[(1.0, 0.0)]).is_none());
    }

    #[test]
    fn simple_unweighted_cdf() {
        let cdf = Cdf::from_values(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(cdf.fraction_leq(0.5), 0.0);
        assert_eq!(cdf.fraction_leq(1.0), 0.25);
        assert_eq!(cdf.fraction_leq(2.5), 0.5);
        assert_eq!(cdf.fraction_leq(4.0), 1.0);
        assert_eq!(cdf.fraction_leq(99.0), 1.0);
    }

    #[test]
    fn duplicate_values_merge() {
        let cdf = Cdf::from_values(&[1.0, 1.0, 2.0]).unwrap();
        assert_eq!(cdf.len(), 2);
        assert!((cdf.fraction_leq(1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weights_shift_mass() {
        let cdf = Cdf::from_weighted(&[(0.0, 9.0), (10.0, 1.0)]).unwrap();
        assert!((cdf.fraction_leq(0.0) - 0.9).abs() < 1e-12);
        assert_eq!(cdf.median(), 0.0);
    }

    #[test]
    fn value_at_is_inverse_of_fraction_leq() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 50.0).collect();
        let cdf = Cdf::from_values(&data).unwrap();
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let v = cdf.value_at(p);
            assert!(cdf.fraction_leq(v) >= p - 1e-12);
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 100) as f64).collect();
        let cdf = Cdf::from_values(&data).unwrap();
        let mut prev = 0.0;
        for (_, c) in cdf.points() {
            assert!(c >= prev);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccdf_complements_cdf() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ccdf = Ccdf::from_values(&data).unwrap();
        assert!((ccdf.fraction_gt(3.0) - 0.4).abs() < 1e-12);
        assert_eq!(ccdf.fraction_gt(5.0), 0.0);
        assert_eq!(ccdf.fraction_gt(0.0), 1.0);
    }

    #[test]
    fn fraction_geq_counts_equal_values() {
        let cdf = Cdf::from_values(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert!((cdf.fraction_geq(2.0) - 0.75).abs() < 1e-12);
        assert!((cdf.fraction_geq(2.1) - 0.25).abs() < 1e-12);
        assert_eq!(cdf.fraction_geq(0.0), 1.0);
    }

    #[test]
    fn min_max() {
        let cdf = Cdf::from_values(&[5.0, -2.0, 8.0]).unwrap();
        assert_eq!(cdf.min(), -2.0);
        assert_eq!(cdf.max(), 8.0);
    }
}
