//! Fixed-bin weighted histogram.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with uniform bins plus underflow/overflow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<f64>,
    underflow: f64,
    overflow: f64,
    total: f64,
}

impl Histogram {
    /// Create a histogram. Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "lo must be < hi");
        assert!(bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0.0; bins],
            underflow: 0.0,
            overflow: 0.0,
            total: 0.0,
        }
    }

    /// Add a weighted observation.
    pub fn add(&mut self, value: f64, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        self.total += weight;
        if value < self.lo {
            self.underflow += weight;
        } else if value >= self.hi {
            self.overflow += weight;
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += weight;
        }
    }

    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Weight in bin `i`.
    pub fn bin_weight(&self, i: usize) -> f64 {
        self.bins[i]
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    pub fn underflow(&self) -> f64 {
        self.underflow
    }

    pub fn overflow(&self) -> f64 {
        self.overflow
    }

    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Fraction of total weight in bin `i`.
    pub fn bin_fraction(&self, i: usize) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.bins[i] / self.total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5, 1.0);
        h.add(5.5, 2.0);
        h.add(9.99, 1.0);
        assert_eq!(h.bin_weight(0), 1.0);
        assert_eq!(h.bin_weight(5), 2.0);
        assert_eq!(h.bin_weight(9), 1.0);
        assert_eq!(h.total_weight(), 4.0);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-1.0, 1.0);
        h.add(1.0, 2.0); // hi is exclusive
        h.add(2.0, 3.0);
        assert_eq!(h.underflow(), 1.0);
        assert_eq!(h.overflow(), 5.0);
    }

    #[test]
    fn zero_weight_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.add(0.5, 0.0);
        h.add(0.5, -2.0);
        assert_eq!(h.total_weight(), 0.0);
        assert_eq!(h.bin_fraction(0), 0.0);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
