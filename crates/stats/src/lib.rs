//! # bb-stats — statistics substrate
//!
//! The paper's figures are all distributional: traffic-weighted CDFs
//! (Figs 1, 2, 4), a CCDF (Fig 3), per-group medians with confidence bands
//! (Figs 1, 5). This crate provides exactly those primitives:
//!
//! * weighted and unweighted quantiles ([`quantile`]),
//! * weighted CDF/CCDF construction ([`cdf`]),
//! * bootstrap confidence intervals ([`bootstrap`]) for the Fig 1 band,
//! * streaming summaries ([`summary`]), histograms ([`histogram`]),
//! * mergeable bounded-memory quantile sketches ([`sketch`]) for
//!   `repro serve`'s unbounded campaigns,
//! * ASCII rendering of figures ([`render`]) for the `repro` binary.
//!
//! Everything is deterministic: bootstrap takes an explicit seed.

pub mod bootstrap;
pub mod cdf;
pub mod histogram;
pub mod quantile;
pub mod render;
pub mod sketch;
pub mod summary;

pub use bootstrap::{bootstrap_median_ci, ConfidenceInterval};
pub use cdf::{Ccdf, Cdf};
pub use histogram::Histogram;
pub use quantile::{
    median, median_unsorted, min_finite, quantile, quantile_select, quantile_unsorted,
    weighted_median, weighted_quantile,
};
pub use sketch::QuantileSketch;
pub use summary::Summary;
