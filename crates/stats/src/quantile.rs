//! Quantiles, weighted and unweighted.
//!
//! The weighted variants implement the "fraction of traffic" semantics the
//! paper uses throughout §3.1: a sample's weight is its traffic volume, and
//! the q-quantile is the smallest value v such that samples ≤ v carry at
//! least a q-fraction of total weight.

/// Unweighted quantile with linear interpolation between order statistics.
///
/// `q` is clamped to [0, 1]. Returns `None` on empty input. NaNs are
/// rejected with a panic in debug builds and sorted last in release builds.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    debug_assert!(values.iter().all(|v| !v.is_nan()), "NaN in quantile input");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted slice (ascending). Panics on empty input.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median shortcut.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

std::thread_local! {
    static SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Quantile of an unsorted slice without the clone-and-full-sort pattern:
/// the input is copied into a reusable thread-local scratch buffer and the
/// order statistics bracketing the quantile position are found with O(n)
/// selection. Returns exactly the same value as `quantile` for the same
/// input.
pub fn quantile_unsorted(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    debug_assert!(values.iter().all(|v| !v.is_nan()), "NaN in quantile input");
    SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.extend_from_slice(values);
        Some(quantile_select(&mut buf, q))
    })
}

/// Median shortcut for `quantile_unsorted`.
pub fn median_unsorted(values: &[f64]) -> Option<f64> {
    quantile_unsorted(values, 0.5)
}

/// In-place selection quantile for callers that own a scratch buffer. The
/// slice is partially reordered. Panics on empty input.
///
/// Interpolation matches `quantile_sorted` bit-for-bit: `total_cmp` order,
/// linear interpolation at position `q * (n - 1)`.
pub fn quantile_select(buf: &mut [f64], q: f64) -> f64 {
    assert!(!buf.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (buf.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let (_, &mut lo_v, rest) = buf.select_nth_unstable_by(lo, |a, b| a.total_cmp(b));
    if lo == hi {
        return lo_v;
    }
    // hi == lo + 1, so sorted[hi] is the total_cmp-minimum of the right
    // partition left behind by the selection.
    let hi_v = rest
        .iter()
        .copied()
        .min_by(|a, b| a.total_cmp(b))
        .expect("hi < len implies a non-empty right partition");
    let frac = pos - lo as f64;
    lo_v * (1.0 - frac) + hi_v * frac
}

/// Weighted quantile: smallest value v such that the cumulative weight of
/// samples ≤ v reaches `q` of the total weight.
///
/// Items with non-positive weight are ignored. Returns `None` if no item has
/// positive weight.
///
/// ```
/// use bb_stats::weighted_quantile;
/// // One heavy sample dominates: the median follows the weight.
/// let samples = [(10.0, 1.0), (20.0, 8.0), (30.0, 1.0)];
/// assert_eq!(weighted_quantile(&samples, 0.5), Some(20.0));
/// assert_eq!(weighted_quantile(&[], 0.5), None);
/// ```
pub fn weighted_quantile(items: &[(f64, f64)], q: f64) -> Option<f64> {
    let mut pairs: Vec<(f64, f64)> = items.iter().copied().filter(|&(_, w)| w > 0.0).collect();
    if pairs.is_empty() {
        return None;
    }
    debug_assert!(
        pairs.iter().all(|(v, _)| !v.is_nan()),
        "NaN in weighted_quantile input"
    );
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
    let q = q.clamp(0.0, 1.0);
    let target = q * total;
    let mut cum = 0.0;
    for &(v, w) in &pairs {
        cum += w;
        if cum >= target {
            return Some(v);
        }
    }
    Some(pairs.last().unwrap().0)
}

/// Weighted median shortcut.
pub fn weighted_median(items: &[(f64, f64)]) -> Option<f64> {
    weighted_quantile(items, 0.5)
}

/// Minimum of the finite entries; `NaN` when none are finite.
///
/// The figure-feeding NaN policy in one place: degraded samples (`NaN`)
/// and sentinel infinities never make it into an aggregate. Callers fold
/// candidate RTTs through this and gate on `is_finite()` — the result is
/// either a real measured value or `NaN`, never `±inf`.
pub fn min_finite(values: impl IntoIterator<Item = f64>) -> f64 {
    values.into_iter().filter(|v| v.is_finite()).fold(
        f64::NAN,
        |acc, v| if acc.is_finite() && acc <= v { acc } else { v },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_return_none() {
        assert!(quantile(&[], 0.5).is_none());
        assert!(weighted_quantile(&[], 0.5).is_none());
        assert!(weighted_quantile(&[(1.0, 0.0)], 0.5).is_none());
    }

    #[test]
    fn single_value() {
        assert_eq!(quantile(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile(&[42.0], 0.5), Some(42.0));
        assert_eq!(quantile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn interpolation_between_order_statistics() {
        // 0.25 quantile of [0, 10]: position 0.25 -> 2.5
        let v = quantile(&[0.0, 10.0], 0.25).unwrap();
        assert!((v - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_extremes_are_min_max() {
        let data = [5.0, -3.0, 7.0, 1.0];
        assert_eq!(quantile(&data, 0.0), Some(-3.0));
        assert_eq!(quantile(&data, 1.0), Some(7.0));
    }

    #[test]
    fn q_is_clamped() {
        let data = [1.0, 2.0];
        assert_eq!(quantile(&data, -3.0), Some(1.0));
        assert_eq!(quantile(&data, 42.0), Some(2.0));
    }

    #[test]
    fn weighted_median_follows_weight_not_count() {
        // One heavy sample dominates many light ones.
        let items = [(100.0, 10.0), (1.0, 0.1), (2.0, 0.1), (3.0, 0.1)];
        assert_eq!(weighted_median(&items), Some(100.0));
    }

    #[test]
    fn weighted_matches_unweighted_for_equal_weights() {
        let values = [9.0, 1.0, 5.0, 3.0, 7.0];
        let items: Vec<(f64, f64)> = values.iter().map(|&v| (v, 1.0)).collect();
        // With step-function semantics the weighted median of 5 equal
        // weights is the 3rd order statistic.
        assert_eq!(weighted_median(&items), Some(5.0));
        assert_eq!(median(&values), Some(5.0));
    }

    #[test]
    fn weighted_quantile_is_monotone_in_q() {
        let items: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 1.0 + (i % 7) as f64)).collect();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = weighted_quantile(&items, q).unwrap();
            assert!(v >= prev, "q={q}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn selection_matches_sort_based_quantile() {
        // Deterministic pseudo-random data with duplicates and negatives.
        let mut x = 0x_dead_beef_u64;
        let mut values = Vec::new();
        for _ in 0..257 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            values.push(((x >> 33) % 1000) as f64 / 7.0 - 50.0);
        }
        for i in 0..=40 {
            let q = i as f64 / 40.0;
            assert_eq!(quantile_unsorted(&values, q), quantile(&values, q), "q={q}");
        }
        // Tiny inputs and edge quantiles.
        for n in 1..6 {
            let small = &values[..n];
            for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
                assert_eq!(quantile_unsorted(small, q), quantile(small, q));
            }
        }
        assert_eq!(median_unsorted(&values), median(&values));
        assert!(quantile_unsorted(&[], 0.5).is_none());
    }

    #[test]
    fn quantile_select_reuses_buffer_correctly() {
        let mut buf = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(quantile_select(&mut buf, 0.5), 3.0);
        // Buffer is reordered but still usable for another call.
        assert_eq!(quantile_select(&mut buf, 1.0), 5.0);
    }

    #[test]
    fn negative_weights_ignored() {
        let items = [(1.0, -5.0), (2.0, 1.0)];
        assert_eq!(weighted_median(&items), Some(2.0));
    }
}
