//! Quantiles, weighted and unweighted.
//!
//! The weighted variants implement the "fraction of traffic" semantics the
//! paper uses throughout §3.1: a sample's weight is its traffic volume, and
//! the q-quantile is the smallest value v such that samples ≤ v carry at
//! least a q-fraction of total weight.

/// Unweighted quantile with linear interpolation between order statistics.
///
/// `q` is clamped to [0, 1]. Returns `None` on empty input. NaNs are
/// rejected with a panic in debug builds and sorted last in release builds.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    debug_assert!(values.iter().all(|v| !v.is_nan()), "NaN in quantile input");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted slice (ascending). Panics on empty input.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median shortcut.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Weighted quantile: smallest value v such that the cumulative weight of
/// samples ≤ v reaches `q` of the total weight.
///
/// Items with non-positive weight are ignored. Returns `None` if no item has
/// positive weight.
///
/// ```
/// use bb_stats::weighted_quantile;
/// // One heavy sample dominates: the median follows the weight.
/// let samples = [(10.0, 1.0), (20.0, 8.0), (30.0, 1.0)];
/// assert_eq!(weighted_quantile(&samples, 0.5), Some(20.0));
/// assert_eq!(weighted_quantile(&[], 0.5), None);
/// ```
pub fn weighted_quantile(items: &[(f64, f64)], q: f64) -> Option<f64> {
    let mut pairs: Vec<(f64, f64)> = items.iter().copied().filter(|&(_, w)| w > 0.0).collect();
    if pairs.is_empty() {
        return None;
    }
    debug_assert!(
        pairs.iter().all(|(v, _)| !v.is_nan()),
        "NaN in weighted_quantile input"
    );
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
    let q = q.clamp(0.0, 1.0);
    let target = q * total;
    let mut cum = 0.0;
    for &(v, w) in &pairs {
        cum += w;
        if cum >= target {
            return Some(v);
        }
    }
    Some(pairs.last().unwrap().0)
}

/// Weighted median shortcut.
pub fn weighted_median(items: &[(f64, f64)]) -> Option<f64> {
    weighted_quantile(items, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_return_none() {
        assert!(quantile(&[], 0.5).is_none());
        assert!(weighted_quantile(&[], 0.5).is_none());
        assert!(weighted_quantile(&[(1.0, 0.0)], 0.5).is_none());
    }

    #[test]
    fn single_value() {
        assert_eq!(quantile(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile(&[42.0], 0.5), Some(42.0));
        assert_eq!(quantile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn interpolation_between_order_statistics() {
        // 0.25 quantile of [0, 10]: position 0.25 -> 2.5
        let v = quantile(&[0.0, 10.0], 0.25).unwrap();
        assert!((v - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_extremes_are_min_max() {
        let data = [5.0, -3.0, 7.0, 1.0];
        assert_eq!(quantile(&data, 0.0), Some(-3.0));
        assert_eq!(quantile(&data, 1.0), Some(7.0));
    }

    #[test]
    fn q_is_clamped() {
        let data = [1.0, 2.0];
        assert_eq!(quantile(&data, -3.0), Some(1.0));
        assert_eq!(quantile(&data, 42.0), Some(2.0));
    }

    #[test]
    fn weighted_median_follows_weight_not_count() {
        // One heavy sample dominates many light ones.
        let items = [(100.0, 10.0), (1.0, 0.1), (2.0, 0.1), (3.0, 0.1)];
        assert_eq!(weighted_median(&items), Some(100.0));
    }

    #[test]
    fn weighted_matches_unweighted_for_equal_weights() {
        let values = [9.0, 1.0, 5.0, 3.0, 7.0];
        let items: Vec<(f64, f64)> = values.iter().map(|&v| (v, 1.0)).collect();
        // With step-function semantics the weighted median of 5 equal
        // weights is the 3rd order statistic.
        assert_eq!(weighted_median(&items), Some(5.0));
        assert_eq!(median(&values), Some(5.0));
    }

    #[test]
    fn weighted_quantile_is_monotone_in_q() {
        let items: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 1.0 + (i % 7) as f64)).collect();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = weighted_quantile(&items, q).unwrap();
            assert!(v >= prev, "q={q}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn negative_weights_ignored() {
        let items = [(1.0, -5.0), (2.0, 1.0)];
        assert_eq!(weighted_median(&items), Some(2.0));
    }
}
