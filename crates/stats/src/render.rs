//! ASCII rendering of figures for the `repro` binary.
//!
//! The reproduction harness prints each paper figure as a fixed-size text
//! chart so results can be eyeballed in a terminal and diffed across runs.

use crate::cdf::{Ccdf, Cdf};

/// One named line on a chart.
pub struct Series<'a> {
    pub label: &'a str,
    /// (x, y) points, y in [0, 1] for distribution charts.
    pub points: Vec<(f64, f64)>,
}

/// Render one or more CDF-like series into a text chart.
///
/// `x_range` clips the x-axis (the paper clips Fig 1/2 to ±10 ms). The chart
/// is `width` columns by `height` rows of plotting area plus axes.
pub fn render_distributions(
    title: &str,
    x_label: &str,
    series: &[Series<'_>],
    x_range: (f64, f64),
    width: usize,
    height: usize,
) -> String {
    let (x_lo, x_hi) = x_range;
    assert!(x_hi > x_lo);
    let markers = ['*', '+', 'o', 'x', '#', '@'];

    // grid[row][col]; row 0 is the top (y = 1.0).
    let mut grid = vec![vec![' '; width]; height];

    for (si, s) in series.iter().enumerate() {
        let marker = markers[si % markers.len()];
        // For every column, find the series value at that x (step function:
        // last point with x <= column x, interpolating the staircase).
        let mut pts: Vec<(f64, f64)> = s.points.clone();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        if pts.is_empty() {
            continue;
        }
        for (col, cell_x) in (0..width).map(|c| {
            let frac = (c as f64 + 0.5) / width as f64;
            (c, x_lo + frac * (x_hi - x_lo))
        }) {
            let y = step_value(&pts, cell_x);
            let row = ((1.0 - y.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            let cell = &mut grid[row.min(height - 1)][col];
            // Later series overwrite blanks but not earlier series' marks,
            // so overlapping lines stay visible.
            if *cell == ' ' {
                *cell = marker;
            }
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (ri, row) in grid.iter().enumerate() {
        let y_tick = 1.0 - ri as f64 / (height - 1) as f64;
        if ri % 2 == 0 {
            out.push_str(&format!("{y_tick:5.2} |"));
        } else {
            out.push_str("      |");
        }
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let lo_lab = format!("{x_lo:.0}");
    let hi_lab = format!("{x_hi:.0}");
    let pad = width.saturating_sub(lo_lab.len() + hi_lab.len());
    out.push_str(&format!("       {lo_lab}{}{hi_lab}\n", " ".repeat(pad)));
    out.push_str(&format!("       {x_label}\n"));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("       [{}] {}\n", markers[si % markers.len()], s.label));
    }
    out
}

/// Value of a non-decreasing step function defined by sorted `pts` at `x`
/// (0 before the first point, last y after the last).
fn step_value(pts: &[(f64, f64)], x: f64) -> f64 {
    match pts.partition_point(|&(px, _)| px <= x) {
        0 => 0.0,
        i => pts[i - 1].1,
    }
}

/// Convenience: render a set of CDFs clipped to `x_range`.
pub fn render_cdfs(
    title: &str,
    x_label: &str,
    cdfs: &[(&str, &Cdf)],
    x_range: (f64, f64),
) -> String {
    let series: Vec<Series<'_>> = cdfs
        .iter()
        .map(|(label, cdf)| Series {
            label,
            points: cdf.points().collect(),
        })
        .collect();
    render_distributions(title, x_label, &series, x_range, 64, 17)
}

/// Convenience: render a set of CCDFs clipped to `x_range`.
pub fn render_ccdfs(
    title: &str,
    x_label: &str,
    ccdfs: &[(&str, &Ccdf)],
    x_range: (f64, f64),
) -> String {
    let series: Vec<Series<'_>> = ccdfs
        .iter()
        .map(|(label, ccdf)| Series {
            label,
            points: {
                // Prepend (x_lo, 1.0) so the staircase starts at the top.
                let mut pts = vec![(f64::NEG_INFINITY, 1.0)];
                pts.extend(ccdf.points());
                pts
            },
        })
        .collect();
    render_distributions(title, x_label, &series, x_range, 64, 17)
}

/// Render a two-column table with a numeric bar, e.g. Fig 5's per-country
/// medians.
pub fn render_bar_table(title: &str, rows: &[(String, f64)], unit: &str) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if rows.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let max_abs = rows
        .iter()
        .map(|(_, v)| v.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap().max(4);
    for (name, v) in rows {
        let bar_len = ((v.abs() / max_abs) * 24.0).round() as usize;
        let bar: String = std::iter::repeat_n(if *v >= 0.0 { '+' } else { '-' }, bar_len)
            .collect();
        out.push_str(&format!("  {name:<name_w$} {v:>8.1} {unit} {bar}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_value_semantics() {
        let pts = [(0.0, 0.25), (1.0, 0.5), (2.0, 1.0)];
        assert_eq!(step_value(&pts, -1.0), 0.0);
        assert_eq!(step_value(&pts, 0.0), 0.25);
        assert_eq!(step_value(&pts, 1.5), 0.5);
        assert_eq!(step_value(&pts, 99.0), 1.0);
    }

    #[test]
    fn render_contains_labels_and_markers() {
        let cdf = Cdf::from_values(&[1.0, 2.0, 3.0]).unwrap();
        let s = render_cdfs("Fig X", "diff (ms)", &[("bgp", &cdf)], (0.0, 5.0));
        assert!(s.contains("Fig X"));
        assert!(s.contains("diff (ms)"));
        assert!(s.contains("[*] bgp"));
        assert!(s.contains('*'));
    }

    #[test]
    fn render_two_series_uses_two_markers() {
        let a = Cdf::from_values(&[1.0]).unwrap();
        let b = Cdf::from_values(&[4.0]).unwrap();
        let s = render_cdfs("t", "x", &[("a", &a), ("b", &b)], (0.0, 5.0));
        assert!(s.contains("[*] a"));
        assert!(s.contains("[+] b"));
    }

    #[test]
    fn bar_table_renders_signs() {
        let rows = vec![("India".to_string(), -20.0), ("Japan".to_string(), 15.0)];
        let s = render_bar_table("Fig 5", &rows, "ms");
        assert!(s.contains("India"));
        assert!(s.contains("---"));
        assert!(s.contains("+++"));
    }

    #[test]
    fn empty_bar_table() {
        let s = render_bar_table("t", &[], "ms");
        assert!(s.contains("no data"));
    }
}
