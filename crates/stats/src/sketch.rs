//! Mergeable weighted-quantile sketches for streaming campaigns.
//!
//! `repro serve` advances measurement windows forever; retaining every
//! sample would grow without bound. A [`QuantileSketch`] summarizes a
//! weighted value stream in O(log range / ε) memory with a declared
//! relative-error guarantee: for any rank q, the reported quantile `s`
//! and the true weighted quantile `v` (the smallest value whose
//! cumulative weight reaches `q·total`, exactly `weighted_quantile`'s
//! convention) satisfy `|s − v| ≤ ε·|v|`.
//!
//! The layout is DDSketch-style logarithmic binning, with two properties
//! the batch pipeline's determinism contract demands and the stock
//! designs do not give:
//!
//! * **Integer bucket weights.** Weights are accumulated in fixed-point
//!   (2⁻²⁰ resolution), so merging is pure integer addition —
//!   associative and commutative *at the byte level*, not merely up to
//!   float rounding. Shard sketches combine byte-identically no matter
//!   the merge order.
//! * **Canonical encoding.** Buckets live in a `BTreeMap`, encode walks
//!   them in key order, and every float is serialized as raw IEEE bits.
//!   Equal sketch state ⇒ equal bytes, which is what lets snapshot
//!   epochs and audit comparisons diff sketches with `==`.
//!
//! Coarsening (the resource governor's degraded mode) halves the bucket
//! indices, squaring γ: memory halves, ε grows to `2ε/(1+ε²)` (< 2ε).
//! Merging sketches at different coarsening levels first coarsens the
//! finer one — deterministic, so degraded shards still merge
//! byte-identically.

use serde::Serialize;
use std::collections::BTreeMap;

/// Fixed-point weight resolution: weights are stored as multiples of
/// 2⁻²⁰ (≈ 1e-6). Integer arithmetic keeps merges exact.
const WEIGHT_SCALE: f64 = (1u64 << 20) as f64;

/// Serialization magic for [`QuantileSketch::encode`].
const MAGIC: &[u8; 8] = b"bbqs/v1\n";

/// A mergeable weighted-quantile sketch with bounded relative error.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct QuantileSketch {
    /// Coarsening level: ε at level L is `eps_at_level(base_eps_bits, L)`.
    level: u32,
    /// The *declared* base ε (level 0), as raw f64 bits so the struct
    /// stays `Eq` and the encoding stays canonical.
    base_eps_bits: u64,
    /// Positive-value buckets: index i covers `(γ^(i−1), γ^i]`.
    pos: BTreeMap<i32, u64>,
    /// Negative-value buckets, keyed by the index of `|v|`.
    neg: BTreeMap<i32, u64>,
    /// Weight at exactly zero.
    zero_w: u64,
    /// Number of `add` calls folded in (merged sketches sum these).
    count: u64,
    /// Smallest / largest value observed, as raw bits (quantiles clamp
    /// to this range). `f64::INFINITY.to_bits()` etc. when empty.
    min_bits: u64,
    max_bits: u64,
}

/// ε after `level` coarsenings of a base-ε sketch. Each coarsening maps
/// γ → γ², i.e. ε → 2ε/(1+ε²).
pub fn eps_at_level(base_eps: f64, level: u32) -> f64 {
    let mut eps = base_eps;
    for _ in 0..level {
        eps = 2.0 * eps / (1.0 + eps * eps);
    }
    eps
}

impl QuantileSketch {
    /// A fresh sketch with relative-error bound `eps ∈ (0, 1)`.
    pub fn new(eps: f64) -> Self {
        assert!(
            eps > 0.0 && eps < 1.0,
            "sketch eps must be in (0,1), got {eps}; eps = 0 means exact \
             (retained-sample) mode, which is not a sketch"
        );
        Self {
            level: 0,
            base_eps_bits: eps.to_bits(),
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            zero_w: 0,
            count: 0,
            min_bits: f64::INFINITY.to_bits(),
            max_bits: f64::NEG_INFINITY.to_bits(),
        }
    }

    /// The error bound currently in force (grows with coarsening).
    pub fn eps(&self) -> f64 {
        eps_at_level(f64::from_bits(self.base_eps_bits), self.level)
    }

    /// The declared level-0 ε this sketch was created with.
    pub fn base_eps(&self) -> f64 {
        f64::from_bits(self.base_eps_bits)
    }

    /// Coarsening level (0 = full declared resolution).
    pub fn level(&self) -> u32 {
        self.level
    }

    fn gamma(&self) -> f64 {
        let eps = self.eps();
        (1.0 + eps) / (1.0 - eps)
    }

    fn bucket_of(&self, v: f64) -> i32 {
        // Index i covers (γ^(i−1), γ^i]: i = ⌈ln v / ln γ⌉.
        (v.ln() / self.gamma().ln()).ceil() as i32
    }

    /// Representative value of bucket `i`: the midpoint `2γ^i/(γ+1)`,
    /// within ε of every value in the bucket.
    fn rep_of(&self, i: i32) -> f64 {
        let g = self.gamma();
        2.0 * g.powi(i) / (g + 1.0)
    }

    /// Fold in one value with weight `w` (non-finite values and
    /// non-positive weights are ignored, matching `weighted_quantile`).
    pub fn add(&mut self, v: f64, w: f64) {
        if !v.is_finite() || !(w > 0.0) {
            return;
        }
        let w_fp = (w * WEIGHT_SCALE).round() as u64;
        if w_fp == 0 {
            return;
        }
        if v > 0.0 {
            *self.pos.entry(self.bucket_of(v)).or_insert(0) += w_fp;
        } else if v < 0.0 {
            *self.neg.entry(self.bucket_of(-v)).or_insert(0) += w_fp;
        } else {
            self.zero_w += w_fp;
        }
        self.count += 1;
        if v < f64::from_bits(self.min_bits) {
            self.min_bits = v.to_bits();
        }
        if v > f64::from_bits(self.max_bits) {
            self.max_bits = v.to_bits();
        }
    }

    /// Values folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total weight folded in (fixed-point rounding included).
    pub fn total_weight(&self) -> f64 {
        let fp: u64 = self.pos.values().chain(self.neg.values()).sum::<u64>() + self.zero_w;
        fp as f64 / WEIGHT_SCALE
    }

    /// Resident size in bytes (counter-based accounting for the serve
    /// resource governor; map overhead estimated per entry).
    pub fn resident_bytes(&self) -> u64 {
        const FIXED: u64 = 64;
        const PER_BUCKET: u64 = 32; // key + weight + BTreeMap node share
        FIXED + PER_BUCKET * (self.pos.len() + self.neg.len()) as u64
    }

    /// Coarsen one level: halve the bucket indices (γ → γ²). Memory
    /// shrinks, ε grows to `2ε/(1+ε²)`. Deterministic: the same state
    /// always coarsens to the same state.
    pub fn coarsen(&mut self) {
        let fold = |m: &BTreeMap<i32, u64>| {
            let mut out: BTreeMap<i32, u64> = BTreeMap::new();
            for (&i, &w) in m {
                // ⌈i/2⌉ for either sign: (γ^(i−1), γ^i] ⊆ (Γ^(⌈i/2⌉−1), Γ^⌈i/2⌉]
                // with Γ = γ².
                *out.entry((i + 1).div_euclid(2)).or_insert(0) += w;
            }
            out
        };
        self.pos = fold(&self.pos);
        self.neg = fold(&self.neg);
        self.level += 1;
    }

    /// Merge `other` into `self`. Requires the same base ε; sketches at
    /// different coarsening levels are first coarsened to the coarser of
    /// the two. At equal levels the merge is pure integer addition —
    /// associative and commutative at the byte level.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.base_eps_bits, other.base_eps_bits,
            "cannot merge sketches with different declared eps"
        );
        let target = self.level.max(other.level);
        while self.level < target {
            self.coarsen();
        }
        let mut o;
        let other = if other.level < target {
            o = other.clone();
            while o.level < target {
                o.coarsen();
            }
            &o
        } else {
            other
        };
        for (&i, &w) in &other.pos {
            *self.pos.entry(i).or_insert(0) += w;
        }
        for (&i, &w) in &other.neg {
            *self.neg.entry(i).or_insert(0) += w;
        }
        self.zero_w += other.zero_w;
        self.count += other.count;
        if f64::from_bits(other.min_bits) < f64::from_bits(self.min_bits) {
            self.min_bits = other.min_bits;
        }
        if f64::from_bits(other.max_bits) > f64::from_bits(self.max_bits) {
            self.max_bits = other.max_bits;
        }
    }

    /// Weighted quantile estimate: the representative of the bucket
    /// containing the smallest value whose cumulative weight reaches
    /// `q·total` (the `weighted_quantile` convention), clamped to the
    /// observed [min, max]. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total: u64 = self.pos.values().chain(self.neg.values()).sum::<u64>() + self.zero_w;
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Integer threshold: smallest cum with cum ≥ q·total.
        let thresh = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        // Ascending value order: negatives (|v| descending), zero,
        // positives (ascending).
        for (&i, &w) in self.neg.iter().rev() {
            cum += w;
            if cum >= thresh {
                return Some(self.clamp(-self.rep_of(i)));
            }
        }
        cum += self.zero_w;
        if self.zero_w > 0 && cum >= thresh {
            return Some(self.clamp(0.0));
        }
        for (&i, &w) in &self.pos {
            cum += w;
            if cum >= thresh {
                return Some(self.clamp(self.rep_of(i)));
            }
        }
        // Rounding pushed the threshold past the last bucket: max value.
        Some(f64::from_bits(self.max_bits))
    }

    fn clamp(&self, v: f64) -> f64 {
        v.clamp(f64::from_bits(self.min_bits), f64::from_bits(self.max_bits))
    }

    /// Canonical byte encoding: magic, header ints, then buckets in key
    /// order. Equal state ⇒ equal bytes; `decode(encode(s)) == s`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 12 * (self.pos.len() + self.neg.len()));
        out.extend_from_slice(MAGIC);
        for v in [
            self.level as u64,
            self.base_eps_bits,
            self.zero_w,
            self.count,
            self.min_bits,
            self.max_bits,
            self.pos.len() as u64,
            self.neg.len() as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for m in [&self.pos, &self.neg] {
            for (&i, &w) in m {
                out.extend_from_slice(&i.to_le_bytes());
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Decode [`encode`](Self::encode)'s output. `None` on any structural
    /// mismatch (bad magic, short buffer, unsorted keys).
    pub fn decode(bytes: &[u8]) -> Option<QuantileSketch> {
        struct Cursor<'a> {
            rest: &'a [u8],
            pos: usize,
        }
        impl Cursor<'_> {
            fn u64(&mut self) -> Option<u64> {
                let chunk: [u8; 8] = self.rest.get(self.pos..self.pos + 8)?.try_into().ok()?;
                self.pos += 8;
                Some(u64::from_le_bytes(chunk))
            }
            fn i32(&mut self) -> Option<i32> {
                let chunk: [u8; 4] = self.rest.get(self.pos..self.pos + 4)?.try_into().ok()?;
                self.pos += 4;
                Some(i32::from_le_bytes(chunk))
            }
        }
        let mut c = Cursor {
            rest: bytes.strip_prefix(MAGIC.as_slice())?,
            pos: 0,
        };
        let level = c.u64()?;
        let base_eps_bits = c.u64()?;
        let zero_w = c.u64()?;
        let count = c.u64()?;
        let min_bits = c.u64()?;
        let max_bits = c.u64()?;
        let n_pos = c.u64()? as usize;
        let n_neg = c.u64()? as usize;
        let mut maps = [BTreeMap::new(), BTreeMap::new()];
        for (mi, n) in [(0usize, n_pos), (1, n_neg)] {
            let mut prev: Option<i32> = None;
            for _ in 0..n {
                let i = c.i32()?;
                let w = c.u64()?;
                if prev.is_some_and(|p| p >= i) {
                    return None; // not canonical: keys must strictly ascend
                }
                prev = Some(i);
                maps[mi].insert(i, w);
            }
        }
        if c.pos != c.rest.len() {
            return None;
        }
        let [pos_map, neg_map] = maps;
        Some(QuantileSketch {
            level: u32::try_from(level).ok()?,
            base_eps_bits,
            pos: pos_map,
            neg: neg_map,
            zero_w,
            count,
            min_bits,
            max_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::weighted_quantile;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn filled(seed: u64, n: usize, eps: f64) -> (QuantileSketch, Vec<(f64, f64)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sk = QuantileSketch::new(eps);
        let mut raw = Vec::with_capacity(n);
        for _ in 0..n {
            let v = (rng.gen::<f64>() * 200.0 - 20.0) * 1.5;
            let w = (rng.gen::<f64>() * 8.0).max(0.01);
            sk.add(v, w);
            raw.push((v, w));
        }
        (sk, raw)
    }

    #[test]
    fn quantile_within_declared_eps() {
        let (sk, raw) = filled(7, 4000, 0.02);
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let truth = weighted_quantile(&raw, q).unwrap();
            let est = sk.quantile(q).unwrap();
            assert!(
                (est - truth).abs() <= sk.eps() * truth.abs() + 1e-9,
                "q={q}: est {est} vs truth {truth} (eps {})",
                sk.eps()
            );
        }
    }

    #[test]
    fn merge_matches_single_stream_bytes() {
        let (whole, raw) = filled(11, 1000, 0.01);
        let mut parts: Vec<QuantileSketch> = Vec::new();
        for chunk in raw.chunks(137) {
            let mut sk = QuantileSketch::new(0.01);
            for &(v, w) in chunk {
                sk.add(v, w);
            }
            parts.push(sk);
        }
        let mut merged = QuantileSketch::new(0.01);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.encode(), whole.encode());
    }

    #[test]
    fn merge_is_order_independent_at_byte_level() {
        let (_, raw) = filled(23, 600, 0.05);
        let parts: Vec<QuantileSketch> = raw
            .chunks(100)
            .map(|c| {
                let mut sk = QuantileSketch::new(0.05);
                for &(v, w) in c {
                    sk.add(v, w);
                }
                sk
            })
            .collect();
        let mut fwd = QuantileSketch::new(0.05);
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = QuantileSketch::new(0.05);
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.encode(), rev.encode());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (sk, _) = filled(31, 500, 0.03);
        let bytes = sk.encode();
        let back = QuantileSketch::decode(&bytes).expect("roundtrip");
        assert_eq!(back, sk);
        assert_eq!(back.encode(), bytes);
        assert!(QuantileSketch::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(QuantileSketch::decode(b"nope").is_none());
    }

    #[test]
    fn coarsen_halves_resolution_and_keeps_bound() {
        let (mut sk, raw) = filled(43, 3000, 0.01);
        let before = sk.resident_bytes();
        sk.coarsen();
        assert!(sk.resident_bytes() < before);
        assert_eq!(sk.level(), 1);
        assert!(sk.eps() > 0.01 && sk.eps() < 0.021);
        let truth = weighted_quantile(&raw, 0.5).unwrap();
        let est = sk.quantile(0.5).unwrap();
        assert!((est - truth).abs() <= sk.eps() * truth.abs() + 1e-9);
    }

    #[test]
    fn cross_level_merge_is_deterministic() {
        let (a, _) = filled(5, 400, 0.02);
        let (mut b, _) = filled(6, 400, 0.02);
        b.coarsen();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.encode(), ba.encode());
        assert_eq!(ab.level(), 1);
    }

    #[test]
    fn nan_and_nonpositive_weights_ignored() {
        let mut sk = QuantileSketch::new(0.1);
        sk.add(f64::NAN, 1.0);
        sk.add(1.0, 0.0);
        sk.add(1.0, -3.0);
        sk.add(f64::INFINITY, 1.0);
        assert_eq!(sk.count(), 0);
        assert!(sk.quantile(0.5).is_none());
    }

    #[test]
    fn zero_and_negative_values_order_correctly() {
        let mut sk = QuantileSketch::new(0.01);
        for v in [-10.0, -1.0, 0.0, 1.0, 10.0] {
            sk.add(v, 1.0);
        }
        let lo = sk.quantile(0.0).unwrap();
        let hi = sk.quantile(1.0).unwrap();
        assert!(lo < 0.0 && (lo + 10.0).abs() <= 0.01 * 10.0 + 1e-9);
        assert!((hi - 10.0).abs() <= 0.01 * 10.0 + 1e-9);
        let mid = sk.quantile(0.5).unwrap();
        assert_eq!(mid, 0.0);
    }
}
