//! Streaming summary statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Incremental count/mean/variance/min/max, mergeable across shards.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Sample variance (n−1 denominator).
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.variance().is_none());
        assert!(s.min().is_none());
    }

    #[test]
    fn known_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // Population variance 4.0 → sample variance 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_combined_stream() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 17) % 31) as f64 * 0.5).collect();
        let (a, b) = data.split_at(37);
        let mut s1: Summary = a.iter().copied().collect();
        let s2: Summary = b.iter().copied().collect();
        s1.merge(&s2);
        let full: Summary = data.iter().copied().collect();
        assert_eq!(s1.count(), full.count());
        assert!((s1.mean().unwrap() - full.mean().unwrap()).abs() < 1e-9);
        assert!((s1.variance().unwrap() - full.variance().unwrap()).abs() < 1e-9);
        assert_eq!(s1.min(), full.min());
        assert_eq!(s1.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), before.mean());
    }

    #[test]
    fn single_value_has_no_variance() {
        let s: Summary = [3.0].into_iter().collect();
        assert!(s.variance().is_none());
        assert_eq!(s.mean(), Some(3.0));
    }
}
