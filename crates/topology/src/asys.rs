//! Autonomous systems: class, footprint, and intra-domain routing quality.

use crate::ids::AsId;
use bb_geo::{CityId, CountryIdx};
use serde::{Deserialize, Serialize};

/// Business class of an AS. Drives relationship generation and default
/// routing quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsClass {
    /// Global backbone; peers with all other tier-1s, sells to everyone.
    Tier1,
    /// Regional transit provider.
    Transit,
    /// Access/eyeball network hosting end users.
    Eyeball,
    /// Content/cloud provider (attached by `bb-cdn`).
    Content,
}

impl AsClass {
    pub fn name(&self) -> &'static str {
        match self {
            AsClass::Tier1 => "tier1",
            AsClass::Transit => "transit",
            AsClass::Eyeball => "eyeball",
            AsClass::Content => "content",
        }
    }
}

/// Where an AS hands traffic to the next AS when it has several
/// interconnections to choose from.
///
/// Hot-potato ("early exit") is the default economic behaviour BGP induces;
/// late exit means the AS carries traffic on its own backbone as far as
/// possible — the behaviour §3.3.2 attributes to tier-1s carrying
/// Google-bound traffic "the whole way" (possibly because Google pays for
/// high-end service).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitPolicy {
    /// Hand off at the interconnect nearest where traffic entered this AS.
    EarlyExit,
    /// Carry traffic internally to the interconnect nearest the destination.
    LateExit,
}

/// One autonomous system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsNode {
    pub id: AsId,
    pub class: AsClass,
    pub name: String,
    /// Cities where this AS has routers (interconnects can only be placed
    /// in cities both endpoints have in their footprint).
    pub footprint: Vec<CityId>,
    /// Intra-domain handoff behaviour.
    pub exit_policy: ExitPolicy,
    /// Multiplier over great-circle distance for segments carried inside
    /// this AS (backbone quality: tier-1s ≈ 1.1–1.3, small eyeballs worse).
    pub intra_inflation: f64,
    /// For eyeballs: the country whose users this AS serves.
    pub home_country: Option<CountryIdx>,
    /// For eyeballs: share of the home country's users on this network.
    pub user_share: f64,
    /// Probability that this AS's hand-off choice actually follows its exit
    /// policy's geographic intent. Real networks pick exits by IGP metrics,
    /// route-reflector visibility, and configuration accidents that only
    /// loosely track geography — the documented driver of anycast
    /// misdirection (Li et al., SIGCOMM '18). 1.0 = perfectly geographic.
    pub exit_fidelity: f64,
}

impl AsNode {
    /// Whether the AS has presence in `city`.
    pub fn present_in(&self, city: CityId) -> bool {
        self.footprint.contains(&city)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names() {
        assert_eq!(AsClass::Tier1.name(), "tier1");
        assert_eq!(AsClass::Content.name(), "content");
    }

    #[test]
    fn present_in_checks_footprint() {
        let node = AsNode {
            id: AsId(1),
            class: AsClass::Eyeball,
            name: "eye".into(),
            footprint: vec![CityId(3), CityId(5)],
            exit_policy: ExitPolicy::EarlyExit,
            intra_inflation: 1.4,
            home_country: Some(0),
            user_share: 1.0,
            exit_fidelity: 1.0,
        };
        assert!(node.present_in(CityId(3)));
        assert!(!node.present_in(CityId(4)));
    }
}
