//! CAIDA-style AS-relationship snapshot ingestion.
//!
//! Second topology backend: instead of generating a synthetic Internet,
//! build a [`Topology`] from a CAIDA `as-rel` serial-1 snapshot. Each
//! non-comment line is `<a>|<b>|<rel>` where `rel` is `-1` (a is b's
//! provider) or `0` (a and b are peers). The builder runs through the same
//! `Topology::add_as` / `add_interconnect` construction path as the
//! generator, so downstream code (propagation, caching, realization,
//! audits) sees no difference between generated and ingested worlds — and
//! the content fingerprint keys the route cache identically for two loads
//! of the same snapshot.
//!
//! Geography is not part of the snapshot, so the builder synthesizes it
//! deterministically from `(seed, asn)`: every AS gets a home city from the
//! atlas, links are placed in the customer-side home city (peer links in
//! the lower-ASN side's), and footprints are extended on demand.

use crate::asys::{AsClass, ExitPolicy};
use crate::graph::Topology;
use crate::ids::AsId;
use crate::link::{BusinessRel, LinkKind};
use crate::validate::validate;
use bb_geo::atlas::AtlasConfig;
use bb_geo::Atlas;

/// Relationship encoded on one snapshot line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaidaRel {
    /// `a|b|-1`: `a` is the provider of `b`.
    ProviderCustomer,
    /// `a|b|0`: `a` and `b` peer (stored with `a < b`).
    PeerPeer,
}

/// One parsed relationship edge. For [`CaidaRel::ProviderCustomer`], `a` is
/// the provider and `b` the customer; for [`CaidaRel::PeerPeer`], `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaidaEdge {
    pub a: u32,
    pub b: u32,
    pub rel: CaidaRel,
}

/// Parsed snapshot: the ASN universe plus deduplicated edges in first-seen
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaidaGraph {
    /// All ASNs mentioned, sorted ascending.
    pub asns: Vec<u32>,
    /// Deduplicated edges in the order first seen.
    pub edges: Vec<CaidaEdge>,
}

/// Why a snapshot was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaidaError {
    /// A line failed to parse; `line` is 1-based.
    Syntax { line: usize, msg: String },
    /// The same AS pair appears with two different relationships.
    Conflict { line: usize, a: u32, b: u32 },
    /// The snapshot contains no edges at all.
    Empty,
    /// No provider-free AS exists to anchor the hierarchy (every AS buys
    /// transit from someone — a provider cycle, or a peers-only graph).
    NoCore,
    /// Reading the snapshot file failed.
    Io(String),
    /// The built topology failed structural validation.
    Invalid(String),
}

impl std::fmt::Display for CaidaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaidaError::Syntax { line, msg } => write!(f, "snapshot line {line}: {msg}"),
            CaidaError::Conflict { line, a, b } => write!(
                f,
                "snapshot line {line}: conflicting relationship for pair {a}|{b}"
            ),
            CaidaError::Empty => write!(f, "snapshot has no relationship lines"),
            CaidaError::NoCore => write!(
                f,
                "snapshot has no provider-free core AS to anchor the hierarchy"
            ),
            CaidaError::Io(e) => write!(f, "cannot read snapshot: {e}"),
            CaidaError::Invalid(e) => write!(f, "snapshot topology failed validation: {e}"),
        }
    }
}

impl std::error::Error for CaidaError {}

/// Parse a CAIDA `as-rel` snapshot. Rejects malformed lines (wrong field
/// count, non-numeric ASNs, unknown relationship codes, self-loops) and
/// conflicting duplicate pairs; identical duplicates are dropped.
pub fn parse_caida(text: &str) -> Result<CaidaGraph, CaidaError> {
    use std::collections::BTreeMap;
    let mut asns: Vec<u32> = Vec::new();
    let mut edges: Vec<CaidaEdge> = Vec::new();
    // Unordered pair -> canonical edge, for duplicate/conflict detection.
    let mut seen: BTreeMap<(u32, u32), CaidaEdge> = BTreeMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').collect();
        if fields.len() != 3 {
            return Err(CaidaError::Syntax {
                line,
                msg: format!("expected 3 '|'-separated fields, got {}", fields.len()),
            });
        }
        let a: u32 = fields[0].trim().parse().map_err(|_| CaidaError::Syntax {
            line,
            msg: format!("bad ASN {:?}", fields[0]),
        })?;
        let b: u32 = fields[1].trim().parse().map_err(|_| CaidaError::Syntax {
            line,
            msg: format!("bad ASN {:?}", fields[1]),
        })?;
        if a == b {
            return Err(CaidaError::Syntax {
                line,
                msg: format!("self-loop on AS{a}"),
            });
        }
        let edge = match fields[2].trim() {
            "-1" => CaidaEdge {
                a,
                b,
                rel: CaidaRel::ProviderCustomer,
            },
            "0" => CaidaEdge {
                a: a.min(b),
                b: a.max(b),
                rel: CaidaRel::PeerPeer,
            },
            other => {
                return Err(CaidaError::Syntax {
                    line,
                    msg: format!("unknown relationship code {other:?} (want -1 or 0)"),
                })
            }
        };
        let key = (a.min(b), a.max(b));
        match seen.get(&key) {
            Some(prev) if *prev == edge => continue, // identical duplicate
            Some(_) => return Err(CaidaError::Conflict { line, a, b }),
            None => {
                seen.insert(key, edge);
                asns.push(a);
                asns.push(b);
                edges.push(edge);
            }
        }
    }

    if edges.is_empty() {
        return Err(CaidaError::Empty);
    }
    asns.sort_unstable();
    asns.dedup();
    Ok(CaidaGraph { asns, edges })
}

/// Knobs for building a [`Topology`] from a snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotConfig {
    /// Seeds the synthetic geography (home cities, inflation factors).
    pub seed: u64,
    /// Atlas the ASes are placed into.
    pub atlas: AtlasConfig,
    /// Keep only the `max_ases` highest-degree ASes (ties broken by lower
    /// ASN) — a deterministic core-graph cut for fast tests.
    pub max_ases: Option<usize>,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        Self {
            seed: 0x_ca1d_a5ee,
            atlas: AtlasConfig::default(),
            max_ases: None,
        }
    }
}

/// SplitMix64: deterministic per-AS attribute derivation from `(seed, x)`.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed
        .wrapping_add(x.wrapping_mul(0x_9e37_79b9_7f4a_7c15))
        .wrapping_add(0x_9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0x_bf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x_94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to a fraction in `[lo, hi)`.
fn frac(h: u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * ((h >> 11) as f64 / (1u64 << 53) as f64)
}

/// Build a topology from snapshot text through the standard construction
/// path. Classification follows CAIDA convention: a provider-free AS with
/// customers is tier-1, any other AS with customers is transit, the rest
/// are eyeballs. Eyeballs with no provider at all (peer-only or isolated
/// after a `max_ases` cut) are repaired by attaching them to a
/// deterministically chosen tier-1.
pub fn build_from_snapshot(text: &str, cfg: &SnapshotConfig) -> Result<Topology, CaidaError> {
    let graph = parse_caida(text)?;

    // Degree per ASN (transit + peer edges alike).
    use std::collections::BTreeMap;
    let mut degree: BTreeMap<u32, usize> = graph.asns.iter().map(|&a| (a, 0)).collect();
    for e in &graph.edges {
        *degree.get_mut(&e.a).unwrap() += 1;
        *degree.get_mut(&e.b).unwrap() += 1;
    }

    // Optional deterministic core cut: highest degree first, lower ASN wins
    // ties, then restore ascending-ASN order for dense id assignment.
    let mut kept: Vec<u32> = graph.asns.clone();
    if let Some(max) = cfg.max_ases {
        if max < kept.len() {
            kept.sort_by_key(|&a| (std::cmp::Reverse(degree[&a]), a));
            kept.truncate(max.max(1));
            kept.sort_unstable();
        }
    }
    let index: BTreeMap<u32, usize> = kept.iter().enumerate().map(|(i, &a)| (a, i)).collect();
    let edges: Vec<CaidaEdge> = graph
        .edges
        .iter()
        .copied()
        .filter(|e| index.contains_key(&e.a) && index.contains_key(&e.b))
        .collect();

    // Provider/customer counts over the kept subgraph drive classification.
    let n = kept.len();
    let mut providers = vec![0usize; n];
    let mut customers = vec![0usize; n];
    for e in &edges {
        if e.rel == CaidaRel::ProviderCustomer {
            customers[index[&e.a]] += 1;
            providers[index[&e.b]] += 1;
        }
    }
    let class: Vec<AsClass> = (0..n)
        .map(|i| {
            if providers[i] == 0 && customers[i] > 0 {
                AsClass::Tier1
            } else if customers[i] > 0 {
                AsClass::Transit
            } else {
                AsClass::Eyeball
            }
        })
        .collect();
    if !class.contains(&AsClass::Tier1) {
        return Err(CaidaError::NoCore);
    }

    let atlas = Atlas::generate(&cfg.atlas);
    let n_cities = atlas.cities.len();
    // Home city per AS, deterministic in (seed, asn).
    let home: Vec<usize> = kept
        .iter()
        .map(|&asn| (mix(cfg.seed, asn as u64) % n_cities as u64) as usize)
        .collect();

    // Per-country Zipf user shares over that country's eyeballs, largest
    // share to the highest-degree (then lowest-ASN) network.
    let mut by_country: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        if class[i] == AsClass::Eyeball {
            by_country
                .entry(atlas.cities[home[i]].country)
                .or_default()
                .push(i);
        }
    }
    let mut share = vec![0.0f64; n];
    for members in by_country.values_mut() {
        members.sort_by_key(|&i| (std::cmp::Reverse(degree[&kept[i]]), kept[i]));
        let total: f64 = (1..=members.len()).map(|k| 1.0 / k as f64).sum();
        for (k, &i) in members.iter().enumerate() {
            share[i] = (1.0 / (k + 1) as f64) / total;
        }
    }

    let mut topo = Topology::new(atlas);
    let ids: Vec<AsId> = (0..n)
        .map(|i| {
            let asn = kept[i];
            let city = topo.atlas.cities[home[i]].id;
            let (lo, hi) = match class[i] {
                AsClass::Tier1 => (1.08, 1.22),
                AsClass::Transit => (1.15, 1.38),
                _ => (1.25, 1.6),
            };
            let inflation = frac(mix(cfg.seed ^ 0x1f1a, asn as u64), lo, hi);
            let home_country = (class[i] == AsClass::Eyeball).then(|| topo.atlas.city(city).country);
            topo.add_as(
                class[i],
                format!("as{asn}"),
                vec![city],
                ExitPolicy::EarlyExit,
                inflation,
                home_country,
                share[i],
            )
        })
        .collect();

    // Links: placed in the customer side's home city (peers: lower dense
    // id's), with the other endpoint's footprint extended to match.
    for e in &edges {
        let (ia, ib) = (index[&e.a], index[&e.b]);
        let (rel, kind, host) = match e.rel {
            CaidaRel::ProviderCustomer => (BusinessRel::ProviderOf, LinkKind::Transit, ib),
            CaidaRel::PeerPeer => (BusinessRel::Peer, LinkKind::PublicPeering, ia.min(ib)),
        };
        let city = topo.atlas.cities[home[host]].id;
        topo.extend_footprint(ids[ia], city);
        topo.extend_footprint(ids[ib], city);
        let capacity = match e.rel {
            CaidaRel::ProviderCustomer => 200.0,
            CaidaRel::PeerPeer => 100.0,
        };
        topo.add_interconnect(ids[ia], ids[ib], rel, kind, city, capacity);
    }

    // Repair pass: peer-only / isolated ASes buy transit from a
    // deterministically chosen tier-1 so the hierarchy stays connected.
    let tier1s: Vec<usize> = (0..n).filter(|&i| class[i] == AsClass::Tier1).collect();
    for i in 0..n {
        if class[i] == AsClass::Tier1 || providers[i] > 0 {
            continue;
        }
        let start = (mix(cfg.seed ^ 0x9e37, kept[i] as u64) % tier1s.len() as u64) as usize;
        let chosen = (0..tier1s.len())
            .map(|k| tier1s[(start + k) % tier1s.len()])
            .find(|&t| topo.relationship(ids[i], ids[t]).is_none());
        if let Some(t) = chosen {
            let city = topo.atlas.cities[home[i]].id;
            topo.extend_footprint(ids[t], city);
            topo.add_interconnect(
                ids[i],
                ids[t],
                BusinessRel::CustomerOf,
                LinkKind::Transit,
                city,
                50.0,
            );
        }
    }

    validate(&topo).map_err(|errs| {
        let msgs: Vec<String> = errs.iter().take(5).map(|e| e.to_string()).collect();
        CaidaError::Invalid(format!("{} error(s): {}", errs.len(), msgs.join("; ")))
    })?;
    Ok(topo)
}

/// Read and build a snapshot from a file on disk.
pub fn load_snapshot_file(
    path: &std::path::Path,
    cfg: &SnapshotConfig,
) -> Result<Topology, CaidaError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CaidaError::Io(format!("{}: {e}", path.display())))?;
    build_from_snapshot(&text, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = "\
# source: test fixture
# format: <provider-as>|<customer-as>|-1  /  <peer-as>|<peer-as>|0
1|2|-1
1|3|-1
2|3|0

2|4|-1
3|5|-1
4|5|0
";

    fn cfg(seed: u64) -> SnapshotConfig {
        SnapshotConfig {
            seed,
            atlas: AtlasConfig {
                seed: seed ^ 0x77,
                city_density: 0.3,
            },
            max_ases: None,
        }
    }

    #[test]
    fn parses_fixture_round_trip() {
        let g = parse_caida(SNAPSHOT).unwrap();
        assert_eq!(g.asns, vec![1, 2, 3, 4, 5]);
        assert_eq!(g.edges.len(), 6);
        assert_eq!(
            g.edges[0],
            CaidaEdge {
                a: 1,
                b: 2,
                rel: CaidaRel::ProviderCustomer
            }
        );
        // Peer edges are canonicalized a < b.
        assert!(g
            .edges
            .iter()
            .filter(|e| e.rel == CaidaRel::PeerPeer)
            .all(|e| e.a < e.b));
    }

    #[test]
    fn identical_duplicates_dropped_reversed_peer_too() {
        let g = parse_caida("1|2|-1\n1|2|-1\n2|3|0\n3|2|0\n").unwrap();
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn malformed_lines_rejected_with_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("1|2|-1\n1|2\n", 2, "expected 3"),
            ("x|2|-1\n", 1, "bad ASN"),
            ("1|y|-1\n", 1, "bad ASN"),
            ("1|2|7\n", 1, "unknown relationship"),
            ("1|1|0\n", 1, "self-loop"),
        ];
        for (text, want_line, want_msg) in cases {
            match parse_caida(text) {
                Err(CaidaError::Syntax { line, msg }) => {
                    assert_eq!(line, *want_line, "{text:?}");
                    assert!(msg.contains(want_msg), "{text:?} gave {msg:?}");
                }
                other => panic!("{text:?} gave {other:?}"),
            }
        }
        assert_eq!(
            parse_caida("1|2|-1\n2|1|-1\n"),
            Err(CaidaError::Conflict { line: 2, a: 2, b: 1 })
        );
        assert_eq!(parse_caida("# only comments\n"), Err(CaidaError::Empty));
    }

    #[test]
    fn builds_and_classifies_fixture() {
        let topo = build_from_snapshot(SNAPSHOT, &cfg(11)).unwrap();
        assert_eq!(topo.as_count(), 5);
        // Dense ids follow sorted ASNs: AS1 -> AsId(0), ...
        assert_eq!(topo.asys(AsId(0)).class, AsClass::Tier1);
        assert_eq!(topo.asys(AsId(1)).class, AsClass::Transit);
        assert_eq!(topo.asys(AsId(2)).class, AsClass::Transit);
        assert_eq!(topo.asys(AsId(3)).class, AsClass::Eyeball);
        assert_eq!(topo.asys(AsId(4)).class, AsClass::Eyeball);
        assert_eq!(topo.asys(AsId(0)).name, "as1");
        assert_eq!(topo.relationship(AsId(1), AsId(0)), Some(BusinessRel::CustomerOf));
        assert_eq!(topo.relationship(AsId(1), AsId(2)), Some(BusinessRel::Peer));
        // Eyeballs carry per-country Zipf user shares.
        assert!(topo.asys(AsId(3)).user_share > 0.0);
        assert!(topo.asys(AsId(3)).home_country.is_some());
    }

    #[test]
    fn same_snapshot_same_fingerprint() {
        let a = build_from_snapshot(SNAPSHOT, &cfg(11)).unwrap();
        let b = build_from_snapshot(SNAPSHOT, &cfg(11)).unwrap();
        assert_ne!(a.uid(), b.uid());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = build_from_snapshot(SNAPSHOT, &cfg(12)).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn peer_only_as_gets_repaired_with_transit() {
        // AS6 only peers with AS4 — the repair pass must attach it to the
        // tier-1 so validation passes.
        let text = format!("{SNAPSHOT}4|6|0\n");
        let topo = build_from_snapshot(&text, &cfg(3)).unwrap();
        assert_eq!(topo.as_count(), 6);
        let as6 = AsId(5);
        assert_eq!(topo.asys(as6).class, AsClass::Eyeball);
        assert!(!topo.providers_of(as6).is_empty());
    }

    #[test]
    fn max_ases_keeps_highest_degree_core() {
        let cfg = SnapshotConfig {
            max_ases: Some(3),
            ..cfg(5)
        };
        let topo = build_from_snapshot(SNAPSHOT, &cfg).unwrap();
        // Degrees: AS1:2 AS2:3 AS3:3 AS4:2 AS5:2 — keep 2,3 and tie-broken 1.
        assert_eq!(topo.as_count(), 3);
        assert_eq!(topo.asys(AsId(0)).name, "as1");
        assert_eq!(topo.asys(AsId(1)).name, "as2");
        assert_eq!(topo.asys(AsId(2)).name, "as3");
    }

    #[test]
    fn peers_only_snapshot_has_no_core() {
        assert_eq!(
            build_from_snapshot("1|2|0\n2|3|0\n", &cfg(1)).unwrap_err(),
            CaidaError::NoCore
        );
    }

    #[test]
    fn links_respect_footprints() {
        let topo = build_from_snapshot(SNAPSHOT, &cfg(21)).unwrap();
        for l in topo.links() {
            assert!(topo.asys(l.a).present_in(l.city));
            assert!(topo.asys(l.b).present_in(l.city));
        }
    }
}
