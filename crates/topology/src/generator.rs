//! Topology generator: tier-1 clique, regional transits, per-country
//! eyeballs.
//!
//! The generated graph is the substrate for all three studies. Content
//! provider ASes are *not* generated here — `bb-cdn` attaches them with the
//! peering policy each study calls for (PNIs into eyeballs for the Facebook
//! study, anycast announcement control for the Microsoft study, tier
//! selection for the Google study).

use crate::asys::{AsClass, ExitPolicy};
use crate::graph::Topology;
use crate::ids::AsId;
use crate::link::{BusinessRel, LinkKind};
use bb_geo::atlas::AtlasConfig;
use bb_geo::{Atlas, CityId, Region};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Knobs for topology generation. Defaults give a ~400-AS Internet that
/// runs Study A end-to-end in seconds; tests shrink it further.
#[derive(Debug, Clone, Serialize)]
pub struct TopologyConfig {
    pub seed: u64,
    pub atlas: AtlasConfig,
    /// Number of global tier-1 backbones (real Internet: ~15).
    pub n_tier1: usize,
    /// Regional transit providers per region.
    pub transits_per_region: usize,
    /// Multi-region wholesale carriers (Cogent/HE-style: not tier-1s, but
    /// footprints spanning two regions). Their odd interconnection
    /// geography is a real-world source of anycast misdirection (§3.2.1's
    /// "it is known to not always pick nearby servers").
    pub global_transits: usize,
    /// One eyeball AS per this many million users in a country.
    pub eyeball_users_per_as_m: f64,
    /// Cap on eyeball ASes per country.
    pub max_eyeballs_per_country: usize,
    /// Tier-1 exit policy (see `AsClass` docs; §3.3.2 discusses late exit).
    pub tier1_exit: ExitPolicy,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            seed: 0x_beef_cafe,
            atlas: AtlasConfig::default(),
            n_tier1: 12,
            transits_per_region: 5,
            global_transits: 6,
            eyeball_users_per_as_m: 25.0,
            max_eyeballs_per_country: 12,
            tier1_exit: ExitPolicy::EarlyExit,
        }
    }
}

impl TopologyConfig {
    /// A small topology for fast tests (~100 ASes).
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            atlas: AtlasConfig {
                seed: seed ^ 0x5a5a,
                city_density: 0.4,
            },
            n_tier1: 6,
            transits_per_region: 3,
            global_transits: 3,
            eyeball_users_per_as_m: 120.0,
            max_eyeballs_per_country: 3,
            tier1_exit: ExitPolicy::EarlyExit,
        }
    }
}

/// Generate the Internet.
pub fn generate(cfg: &TopologyConfig) -> Topology {
    let atlas = Atlas::generate(&cfg.atlas);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut topo = Topology::new(atlas);

    let tier1s = make_tier1s(&mut topo, &mut rng, cfg);
    mesh_tier1s(&mut topo, &mut rng, &tier1s);
    let (regional, global) = make_transits(&mut topo, &mut rng, cfg, &tier1s);
    let all_transits: Vec<AsId> = regional.iter().chain(&global).copied().collect();
    peer_transits(&mut topo, &mut rng, &all_transits);
    make_eyeballs(&mut topo, &mut rng, cfg, &regional, &global, &tier1s);

    topo
}

/// Tier-1 footprint: every colo hub plus main metros of large markets.
fn tier1_footprint(atlas: &Atlas) -> Vec<CityId> {
    let mut cities: Vec<CityId> = atlas.colo_hubs().map(|c| c.id).collect();
    for (ci, country) in atlas.countries.iter().enumerate() {
        if country.users_m >= 30.0 {
            cities.push(atlas.main_metro(ci).id);
        }
    }
    cities.sort();
    cities.dedup();
    cities
}

fn make_tier1s(topo: &mut Topology, rng: &mut StdRng, cfg: &TopologyConfig) -> Vec<AsId> {
    let footprint = tier1_footprint(&topo.atlas);
    (0..cfg.n_tier1)
        .map(|i| {
            let inflation = rng.gen_range(1.08..1.22);
            topo.add_as(
                AsClass::Tier1,
                format!("tier1-{i}"),
                footprint.clone(),
                cfg.tier1_exit,
                inflation,
                None,
                0.0,
            )
        })
        .collect()
}

/// Tier-1s peer pairwise at several shared hubs spread around the world.
fn mesh_tier1s(topo: &mut Topology, rng: &mut StdRng, tier1s: &[AsId]) {
    for (i, &a) in tier1s.iter().enumerate() {
        for &b in &tier1s[i + 1..] {
            let shared: Vec<CityId> = topo.asys(a).footprint.clone();
            let mut cities = shared;
            cities.shuffle(rng);
            for city in cities.into_iter().take(6) {
                topo.add_interconnect(a, b, BusinessRel::Peer, LinkKind::PrivatePeering, city, 10_000.0);
            }
        }
    }
}

/// Regional transit ASes: footprint covers most metros of the region,
/// customers of 2–3 tier-1s, inflation worse than tier-1s.
fn make_transits(
    topo: &mut Topology,
    rng: &mut StdRng,
    cfg: &TopologyConfig,
    tier1s: &[AsId],
) -> (Vec<AsId>, Vec<AsId>) {
    let mut transits = Vec::new();
    for region in Region::ALL {
        // Candidate cities: main metros + hubs of this region.
        let metros: Vec<CityId> = {
            let atlas = &topo.atlas;
            let mut v: Vec<CityId> = (0..atlas.countries.len())
                .filter(|&ci| atlas.countries[ci].region == region)
                .map(|ci| atlas.main_metro(ci).id)
                .collect();
            v.extend(
                atlas
                    .cities_in_region(region)
                    .filter(|c| c.colo_hub)
                    .map(|c| c.id),
            );
            v.sort();
            v.dedup();
            v
        };
        if metros.is_empty() {
            continue;
        }
        for t in 0..cfg.transits_per_region {
            // Each transit covers 60–100% of the region's metros.
            let mut cover = metros.clone();
            cover.shuffle(rng);
            let keep = ((cover.len() as f64) * rng.gen_range(0.6..1.0)).ceil() as usize;
            let mut footprint: Vec<CityId> = cover.into_iter().take(keep.max(1)).collect();
            footprint.sort();

            let inflation = rng.gen_range(1.15..1.38);
            let id = topo.add_as(
                AsClass::Transit,
                format!("transit-{}-{}", region.name().replace(' ', ""), t),
                footprint.clone(),
                ExitPolicy::EarlyExit,
                inflation,
                None,
                0.0,
            );

            // Buy transit from 2–3 tier-1s at up to two shared cities.
            let mut upstreams = tier1s.to_vec();
            upstreams.shuffle(rng);
            for &up in upstreams.iter().take(rng.gen_range(2..=3)) {
                let shared: Vec<CityId> = footprint
                    .iter()
                    .copied()
                    .filter(|&c| topo.asys(up).present_in(c))
                    .collect();
                for &city in shared.iter().take(2) {
                    topo.add_interconnect(
                        id,
                        up,
                        BusinessRel::CustomerOf,
                        LinkKind::Transit,
                        city,
                        rng.gen_range(500.0..2000.0),
                    );
                }
            }
            transits.push(id);
        }
    }

    // Multi-region wholesale carriers: big metros of two regions.
    let mut globals = Vec::new();
    for g in 0..cfg.global_transits {
        let mut regions = Region::ALL.to_vec();
        regions.shuffle(rng);
        let span = &regions[..2];
        let mut footprint: Vec<CityId> = Vec::new();
        for (ci, country) in topo.atlas.countries.iter().enumerate() {
            if span.contains(&country.region)
                && (country.users_m >= 30.0 || topo.atlas.main_metro(ci).colo_hub)
            {
                footprint.push(topo.atlas.main_metro(ci).id);
            }
        }
        footprint.sort();
        footprint.dedup();
        if footprint.len() < 2 {
            continue;
        }
        let inflation = rng.gen_range(1.18..1.4);
        let id = topo.add_as(
            AsClass::Transit,
            format!("gtransit-{g}"),
            footprint.clone(),
            ExitPolicy::EarlyExit,
            inflation,
            None,
            0.0,
        );
        let mut upstreams = tier1s.to_vec();
        upstreams.shuffle(rng);
        for &up in upstreams.iter().take(rng.gen_range(2..=3)) {
            let shared: Vec<CityId> = footprint
                .iter()
                .copied()
                .filter(|&c| topo.asys(up).present_in(c))
                .collect();
            for &city in shared.iter().take(3) {
                topo.add_interconnect(
                    id,
                    up,
                    BusinessRel::CustomerOf,
                    LinkKind::Transit,
                    city,
                    rng.gen_range(500.0..2000.0),
                );
            }
        }
        globals.push(id);
    }
    (transits, globals)
}

/// Transits peer with the other transits of their region at shared cities
/// (public exchanges), and occasionally across regions.
fn peer_transits(topo: &mut Topology, rng: &mut StdRng, transits: &[AsId]) {
    for (i, &a) in transits.iter().enumerate() {
        for &b in &transits[i + 1..] {
            let shared: Vec<CityId> = {
                let fa = &topo.asys(a).footprint;
                let fb = &topo.asys(b).footprint;
                fa.iter().copied().filter(|c| fb.contains(c)).collect()
            };
            if shared.is_empty() {
                continue;
            }
            let same_region =
                topo.atlas.city(shared[0]).region == topo.atlas.city(*topo.asys(a).footprint.first().unwrap()).region;
            let p = if same_region { 0.7 } else { 0.15 };
            if rng.gen_bool(p) {
                for &city in shared.iter().take(2) {
                    topo.add_interconnect(
                        a,
                        b,
                        BusinessRel::Peer,
                        LinkKind::PublicPeering,
                        city,
                        rng.gen_range(100.0..600.0),
                    );
                }
            }
        }
    }
}

/// Eyeball ASes: per-country access networks with Zipf user shares.
fn make_eyeballs(
    topo: &mut Topology,
    rng: &mut StdRng,
    cfg: &TopologyConfig,
    transits: &[AsId],
    global_transits: &[AsId],
    tier1s: &[AsId],
) {
    for ci in 0..topo.atlas.countries.len() {
        let country = topo.atlas.countries[ci].clone();
        let n = ((country.users_m / cfg.eyeball_users_per_as_m).ceil() as usize)
            .clamp(1, cfg.max_eyeballs_per_country);
        let shares = zipf_shares(n);
        let cities: Vec<CityId> = topo.atlas.cities_of(ci).iter().map(|c| c.id).collect();
        let main = cities[0];

        for (k, &share) in shares.iter().enumerate() {
            // The biggest eyeball covers the whole country; smaller ones a
            // shrinking subset (always including the main metro where their
            // transit interconnects live).
            let mut footprint: Vec<CityId> = if k == 0 {
                cities.clone()
            } else {
                let take = (cities.len() as f64 * (1.0 / (k as f64 + 1.0))).ceil() as usize;
                let mut rest: Vec<CityId> = cities[1..].to_vec();
                rest.shuffle(rng);
                let mut f = vec![main];
                f.extend(rest.into_iter().take(take.max(1)));
                f
            };
            footprint.sort();
            footprint.dedup();

            let inflation = rng.gen_range(1.25..1.6);
            let id = topo.add_as(
                AsClass::Eyeball,
                format!("eyeball-{}-{}", country.code, k),
                footprint,
                ExitPolicy::EarlyExit,
                inflation,
                Some(ci),
                share,
            );

            // Buy transit from 2–3 regional transits present at the main
            // metro (fall back to any transit sharing a city, then tier-1s).
            let mut candidates: Vec<AsId> = transits
                .iter()
                .copied()
                .filter(|&t| topo.asys(t).present_in(main))
                .collect();
            candidates.shuffle(rng);
            let mut chosen: Vec<AsId> = candidates.into_iter().take(rng.gen_range(2..=3)).collect();
            // Wholesale carriers are cheap: many access networks buy from
            // one in addition to (or instead of) regional transit.
            if rng.gen_bool(0.45) {
                let mut gl: Vec<AsId> = global_transits
                    .iter()
                    .copied()
                    .filter(|&g| topo.asys(g).present_in(main) && !chosen.contains(&g))
                    .collect();
                gl.shuffle(rng);
                if let Some(g) = gl.first() {
                    if chosen.len() >= 2 {
                        chosen.pop();
                    }
                    chosen.push(*g);
                }
            }
            if chosen.is_empty() {
                // Tiny markets: fall back to any tier-1 present in-country.
                chosen = tier1s
                    .iter()
                    .copied()
                    .filter(|&t| topo.asys(t).present_in(main))
                    .take(1)
                    .collect();
            }
            if chosen.is_empty() {
                // Still nothing local: the nearest same-region transit
                // builds out a PoP in this metro to win the customer.
                let metro_loc = topo.atlas.city(main).location;
                let nearest = transits
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let da = nearest_footprint_km(topo, a, metro_loc);
                        let db = nearest_footprint_km(topo, b, metro_loc);
                        da.total_cmp(&db)
                    })
                    .expect("at least one transit exists");
                topo.extend_footprint(nearest, main);
                chosen = vec![nearest];
            }
            let capacity = 20.0 + country.users_m * share * 10.0;
            for up in chosen {
                topo.add_interconnect(id, up, BusinessRel::CustomerOf, LinkKind::Transit, main, capacity);
            }

            // Large national eyeballs also buy from one tier-1 directly if
            // one is present locally.
            if share >= 0.3 {
                if let Some(&t1) = tier1s.iter().find(|&&t| topo.asys(t).present_in(main)) {
                    if topo.relationship(id, t1).is_none() {
                        topo.add_interconnect(id, t1, BusinessRel::CustomerOf, LinkKind::Transit, main, capacity);
                    }
                }
            }
        }
    }
}

/// Distance from `loc` to the closest footprint city of `asn`.
fn nearest_footprint_km(topo: &Topology, asn: AsId, loc: bb_geo::GeoPoint) -> f64 {
    topo.asys(asn)
        .footprint
        .iter()
        .map(|&c| topo.atlas.city(c).location.distance_km(&loc))
        .fold(f64::INFINITY, f64::min)
}

fn zipf_shares(n: usize) -> Vec<f64> {
    let raw: Vec<f64> = (1..=n).map(|k| 1.0 / k as f64).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|x| x / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn default_topology_validates() {
        let topo = generate(&TopologyConfig::default());
        validate(&topo).expect("default topology must validate");
        assert!(topo.as_count() > 200, "got {}", topo.as_count());
        assert!(topo.link_count() > 500, "got {}", topo.link_count());
    }

    #[test]
    fn small_topology_validates() {
        let topo = generate(&TopologyConfig::small(3));
        validate(&topo).expect("small topology must validate");
        assert!(topo.as_count() >= 50);
    }

    #[test]
    fn deterministic() {
        let a = generate(&TopologyConfig::small(9));
        let b = generate(&TopologyConfig::small(9));
        assert_eq!(a.as_count(), b.as_count());
        assert_eq!(a.link_count(), b.link_count());
        for (x, y) in a.links().iter().zip(b.links()) {
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
            assert_eq!(x.city, y.city);
        }
    }

    #[test]
    fn tier1s_form_full_peer_mesh() {
        let topo = generate(&TopologyConfig::small(5));
        let tier1s: Vec<AsId> = topo.ases_of_class(AsClass::Tier1).map(|a| a.id).collect();
        for (i, &a) in tier1s.iter().enumerate() {
            for &b in &tier1s[i + 1..] {
                assert_eq!(
                    topo.relationship(a, b),
                    Some(BusinessRel::Peer),
                    "{a} and {b} must peer"
                );
            }
        }
    }

    #[test]
    fn every_eyeball_has_a_provider() {
        let topo = generate(&TopologyConfig::default());
        for eye in topo.ases_of_class(AsClass::Eyeball) {
            assert!(
                !topo.providers_of(eye.id).is_empty(),
                "{} lacks providers",
                eye.name
            );
        }
    }

    #[test]
    fn eyeball_user_shares_sum_to_one_per_country() {
        let topo = generate(&TopologyConfig::default());
        for ci in 0..topo.atlas.countries.len() {
            let s: f64 = topo
                .ases_of_class(AsClass::Eyeball)
                .filter(|a| a.home_country == Some(ci))
                .map(|a| a.user_share)
                .sum();
            assert!((s - 1.0).abs() < 1e-9, "country {ci}: {s}");
        }
    }

    #[test]
    fn transits_have_tier1_upstreams() {
        let topo = generate(&TopologyConfig::default());
        for t in topo.ases_of_class(AsClass::Transit) {
            let ups = topo.providers_of(t.id);
            assert!(!ups.is_empty(), "{} lacks upstreams", t.name);
            for up in ups {
                assert_eq!(topo.asys(up).class, AsClass::Tier1);
            }
        }
    }

    #[test]
    fn links_respect_footprints() {
        let topo = generate(&TopologyConfig::default());
        for l in topo.links() {
            assert!(topo.asys(l.a).present_in(l.city));
            assert!(topo.asys(l.b).present_in(l.city));
        }
    }

    #[test]
    fn no_content_ases_generated() {
        let topo = generate(&TopologyConfig::default());
        assert_eq!(topo.ases_of_class(AsClass::Content).count(), 0);
    }
}
