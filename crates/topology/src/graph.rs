//! The topology graph: ASes + interconnects + adjacency indexes.

use crate::asys::{AsClass, AsNode, ExitPolicy};
use crate::ids::{AsId, InterconnectId};
use crate::link::{BusinessRel, Interconnect, LinkKind};
use bb_geo::{Atlas, CityId};
use std::collections::HashMap;

/// The full AS-level topology, including the geographic atlas it is
/// embedded in.
///
/// Mutation happens through [`Topology::add_as`] / [`Topology::add_interconnect`]
/// so the adjacency indexes stay consistent; everything else is read-only.
#[derive(Debug, Clone)]
pub struct Topology {
    pub atlas: Atlas,
    /// Process-unique identity; AsId/InterconnectId spaces are only
    /// meaningful within one topology, so caches keyed on those ids must
    /// also key on this.
    uid: u64,
    ases: Vec<AsNode>,
    links: Vec<Interconnect>,
    /// Per-AS list of (neighbor, link) pairs; one entry per interconnect.
    adj: Vec<Vec<(AsId, InterconnectId)>>,
    /// Business relationship per unordered AS pair, stored from the
    /// lower-id side's perspective.
    rels: HashMap<(AsId, AsId), BusinessRel>,
    /// FNV-1a fold of every mutation applied so far (see [`Topology::fingerprint`]).
    content_hash: u64,
}

impl Topology {
    pub fn new(atlas: Atlas) -> Self {
        Self {
            atlas,
            uid: next_uid(),
            ases: Vec::new(),
            links: Vec::new(),
            adj: Vec::new(),
            rels: HashMap::new(),
            content_hash: FNV_OFFSET,
        }
    }

    /// Process-unique topology identity, for keying external caches.
    /// Every mutation assigns a fresh uid, so two topologies sharing a uid
    /// are guaranteed to have identical routing-relevant content (a clone
    /// keeps the uid until it diverges).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Content fingerprint: an FNV-1a hash folded incrementally over every
    /// mutation (AS and interconnect attributes, fidelity overrides,
    /// footprint extensions), with floats contributing their IEEE-754 bits.
    ///
    /// Unlike [`Topology::uid`], two topologies built by the same
    /// construction sequence — e.g. the same CAIDA snapshot loaded twice,
    /// in this process or another — share a fingerprint, which is what
    /// lets the route cache serve loaded snapshots across rebuilds. The
    /// fingerprint is construction-order sensitive by design: it hashes
    /// the mutation log, not a canonicalized graph.
    pub fn fingerprint(&self) -> u64 {
        self.content_hash
    }

    fn fold_word(&mut self, w: u64) {
        let mut h = self.content_hash;
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.content_hash = h;
    }

    fn fold_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.content_hash;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.content_hash = h;
    }

    /// Add an AS; its `id` field is assigned here.
    #[allow(clippy::too_many_arguments)]
    pub fn add_as(
        &mut self,
        class: AsClass,
        name: impl Into<String>,
        footprint: Vec<CityId>,
        exit_policy: ExitPolicy,
        intra_inflation: f64,
        home_country: Option<usize>,
        user_share: f64,
    ) -> AsId {
        assert!(!footprint.is_empty(), "AS footprint must be non-empty");
        assert!(intra_inflation >= 1.0);
        self.uid = next_uid();
        let name = name.into();
        self.fold_word(0xA5); // mutation tag: add_as
        self.fold_word(class as u64);
        self.fold_bytes(name.as_bytes());
        self.fold_word(footprint.len() as u64);
        for &c in &footprint {
            self.fold_word(c.0 as u64);
        }
        self.fold_word(exit_policy as u64);
        self.fold_word(intra_inflation.to_bits());
        self.fold_word(home_country.map_or(u64::MAX, |c| c as u64));
        self.fold_word(user_share.to_bits());
        let id = AsId(self.ases.len() as u32);
        // Default exit fidelity by class; see `AsNode::exit_fidelity`.
        let exit_fidelity = match class {
            AsClass::Tier1 => 0.8,
            AsClass::Transit => 0.7,
            AsClass::Eyeball => 0.95,
            AsClass::Content => 1.0,
        };
        self.ases.push(AsNode {
            id,
            class,
            name: name.into(),
            footprint,
            exit_policy,
            intra_inflation,
            home_country,
            user_share,
            exit_fidelity,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Add an interconnect between `a` and `b` in `city`.
    ///
    /// `rel` is `a`'s relationship towards `b`. Panics if the pair already
    /// has a *different* relationship recorded (an AS pair has exactly one
    /// business relationship, possibly many physical interconnects), or if
    /// either endpoint lacks presence in `city`.
    pub fn add_interconnect(
        &mut self,
        a: AsId,
        b: AsId,
        rel: BusinessRel,
        kind: LinkKind,
        city: CityId,
        capacity_gbps: f64,
    ) -> InterconnectId {
        assert_ne!(a, b, "no self-links");
        self.uid = next_uid();
        self.fold_word(0xB7); // mutation tag: add_interconnect
        self.fold_word(a.0 as u64);
        self.fold_word(b.0 as u64);
        self.fold_word(rel as u64);
        self.fold_word(kind as u64);
        self.fold_word(city.0 as u64);
        self.fold_word(capacity_gbps.to_bits());
        assert!(
            self.ases[a.index()].present_in(city),
            "{} not present in {city}",
            self.ases[a.index()].name
        );
        assert!(
            self.ases[b.index()].present_in(city),
            "{} not present in {city}",
            self.ases[b.index()].name
        );

        let key = pair_key(a, b);
        let canonical = if key.0 == a { rel } else { rel.reversed() };
        if let Some(&existing) = self.rels.get(&key) {
            assert_eq!(
                existing, canonical,
                "conflicting relationship for {a}-{b}"
            );
        } else {
            self.rels.insert(key, canonical);
        }

        let id = InterconnectId(self.links.len() as u32);
        self.links.push(Interconnect {
            id,
            a,
            b,
            rel,
            kind,
            city,
            capacity_gbps,
        });
        self.adj[a.index()].push((b, id));
        self.adj[b.index()].push((a, id));
        id
    }

    /// Override an AS's exit fidelity (see `AsNode::exit_fidelity`).
    pub fn set_exit_fidelity(&mut self, asn: AsId, fidelity: f64) {
        assert!((0.0..=1.0).contains(&fidelity));
        self.uid = next_uid();
        self.fold_word(0xC1); // mutation tag: set_exit_fidelity
        self.fold_word(asn.0 as u64);
        self.fold_word(fidelity.to_bits());
        self.ases[asn.index()].exit_fidelity = fidelity;
    }

    /// Add `city` to an AS's footprint (idempotent). Used when an upstream
    /// builds out to reach a customer market.
    pub fn extend_footprint(&mut self, asn: AsId, city: CityId) {
        let fp = &mut self.ases[asn.index()].footprint;
        if !fp.contains(&city) {
            fp.push(city);
            fp.sort();
            self.uid = next_uid();
            self.fold_word(0xD3); // mutation tag: extend_footprint
            self.fold_word(asn.0 as u64);
            self.fold_word(city.0 as u64);
        }
    }

    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    pub fn asys(&self, id: AsId) -> &AsNode {
        &self.ases[id.index()]
    }

    pub fn link(&self, id: InterconnectId) -> &Interconnect {
        &self.links[id.index()]
    }

    pub fn ases(&self) -> &[AsNode] {
        &self.ases
    }

    pub fn links(&self) -> &[Interconnect] {
        &self.links
    }

    /// (neighbor, link) pairs of `asn`, one per interconnect.
    pub fn adjacency(&self, asn: AsId) -> &[(AsId, InterconnectId)] {
        &self.adj[asn.index()]
    }

    /// Distinct neighbor ASes of `asn`.
    pub fn neighbors(&self, asn: AsId) -> Vec<AsId> {
        let mut v: Vec<AsId> = self.adj[asn.index()].iter().map(|&(n, _)| n).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Relationship of `a` towards `b`, if they interconnect.
    pub fn relationship(&self, a: AsId, b: AsId) -> Option<BusinessRel> {
        let key = pair_key(a, b);
        self.rels.get(&key).map(|&r| if key.0 == a { r } else { r.reversed() })
    }

    /// All interconnects between `a` and `b`.
    pub fn links_between(&self, a: AsId, b: AsId) -> Vec<&Interconnect> {
        self.adj[a.index()]
            .iter()
            .filter(|&&(n, _)| n == b)
            .map(|&(_, l)| self.link(l))
            .collect()
    }

    /// Provider ASes of `asn` (those it buys transit from).
    pub fn providers_of(&self, asn: AsId) -> Vec<AsId> {
        self.rel_filtered(asn, BusinessRel::CustomerOf)
    }

    /// Customer ASes of `asn`.
    pub fn customers_of(&self, asn: AsId) -> Vec<AsId> {
        self.rel_filtered(asn, BusinessRel::ProviderOf)
    }

    /// Peers of `asn`.
    pub fn peers_of(&self, asn: AsId) -> Vec<AsId> {
        self.rel_filtered(asn, BusinessRel::Peer)
    }

    fn rel_filtered(&self, asn: AsId, rel: BusinessRel) -> Vec<AsId> {
        let mut v: Vec<AsId> = self
            .neighbors(asn)
            .into_iter()
            .filter(|&n| self.relationship(asn, n) == Some(rel))
            .collect();
        v.sort();
        v
    }

    /// ASes of a given class.
    pub fn ases_of_class(&self, class: AsClass) -> impl Iterator<Item = &AsNode> {
        self.ases.iter().filter(move |a| a.class == class)
    }

    /// Interconnect cities shared between `a` and `b` (where links exist).
    pub fn interconnect_cities(&self, a: AsId, b: AsId) -> Vec<CityId> {
        let mut v: Vec<CityId> = self.links_between(a, b).iter().map(|l| l.city).collect();
        v.sort();
        v.dedup();
        v
    }
}

const FNV_OFFSET: u64 = 0x_cbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn next_uid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_UID: AtomicU64 = AtomicU64::new(1);
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

fn pair_key(a: AsId, b: AsId) -> (AsId, AsId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_geo::atlas::AtlasConfig;

    fn tiny() -> Topology {
        let atlas = Atlas::generate(&AtlasConfig {
            seed: 1,
            city_density: 0.3,
        });
        let c0 = atlas.cities[0].id;
        let c1 = atlas.cities[1].id;
        let mut t = Topology::new(atlas);
        let t1 = t.add_as(AsClass::Tier1, "t1", vec![c0, c1], ExitPolicy::LateExit, 1.1, None, 0.0);
        let e1 = t.add_as(AsClass::Eyeball, "e1", vec![c0], ExitPolicy::EarlyExit, 1.4, Some(0), 1.0);
        t.add_interconnect(e1, t1, BusinessRel::CustomerOf, LinkKind::Transit, c0, 100.0);
        t
    }

    #[test]
    fn add_and_query() {
        let t = tiny();
        assert_eq!(t.as_count(), 2);
        assert_eq!(t.link_count(), 1);
        let (t1, e1) = (AsId(0), AsId(1));
        assert_eq!(t.relationship(e1, t1), Some(BusinessRel::CustomerOf));
        assert_eq!(t.relationship(t1, e1), Some(BusinessRel::ProviderOf));
        assert_eq!(t.providers_of(e1), vec![t1]);
        assert_eq!(t.customers_of(t1), vec![e1]);
        assert!(t.peers_of(e1).is_empty());
    }

    #[test]
    fn multiple_links_one_relationship() {
        let atlas = Atlas::generate(&AtlasConfig {
            seed: 1,
            city_density: 0.3,
        });
        let c0 = atlas.cities[0].id;
        let c1 = atlas.cities[1].id;
        let mut t = Topology::new(atlas);
        let a = t.add_as(AsClass::Tier1, "a", vec![c0, c1], ExitPolicy::LateExit, 1.1, None, 0.0);
        let b = t.add_as(AsClass::Tier1, "b", vec![c0, c1], ExitPolicy::LateExit, 1.1, None, 0.0);
        t.add_interconnect(a, b, BusinessRel::Peer, LinkKind::PublicPeering, c0, 100.0);
        t.add_interconnect(a, b, BusinessRel::Peer, LinkKind::PrivatePeering, c1, 200.0);
        assert_eq!(t.links_between(a, b).len(), 2);
        assert_eq!(t.interconnect_cities(a, b).len(), 2);
        assert_eq!(t.neighbors(a), vec![b]);
    }

    #[test]
    #[should_panic(expected = "conflicting relationship")]
    fn conflicting_relationship_panics() {
        let atlas = Atlas::generate(&AtlasConfig {
            seed: 1,
            city_density: 0.3,
        });
        let c0 = atlas.cities[0].id;
        let mut t = Topology::new(atlas);
        let a = t.add_as(AsClass::Tier1, "a", vec![c0], ExitPolicy::LateExit, 1.1, None, 0.0);
        let b = t.add_as(AsClass::Tier1, "b", vec![c0], ExitPolicy::LateExit, 1.1, None, 0.0);
        t.add_interconnect(a, b, BusinessRel::Peer, LinkKind::PublicPeering, c0, 1.0);
        t.add_interconnect(a, b, BusinessRel::CustomerOf, LinkKind::Transit, c0, 1.0);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn link_requires_presence() {
        let atlas = Atlas::generate(&AtlasConfig {
            seed: 1,
            city_density: 0.3,
        });
        let c0 = atlas.cities[0].id;
        let c1 = atlas.cities[1].id;
        let mut t = Topology::new(atlas);
        let a = t.add_as(AsClass::Tier1, "a", vec![c0], ExitPolicy::LateExit, 1.1, None, 0.0);
        let b = t.add_as(AsClass::Tier1, "b", vec![c0], ExitPolicy::LateExit, 1.1, None, 0.0);
        t.add_interconnect(a, b, BusinessRel::Peer, LinkKind::PublicPeering, c1, 1.0);
    }

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let a = tiny();
        let b = tiny();
        assert_ne!(a.uid(), b.uid(), "uids are process-unique");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "identical construction sequences share a fingerprint"
        );
        let mut c = a.clone();
        assert_eq!(c.fingerprint(), a.fingerprint(), "clone keeps content");
        c.set_exit_fidelity(AsId(0), 0.5);
        assert_ne!(c.fingerprint(), a.fingerprint(), "mutation changes it");
        let mut d = a.clone();
        d.extend_footprint(AsId(1), d.atlas.cities[1].id);
        assert_ne!(d.fingerprint(), a.fingerprint());
    }

    #[test]
    fn relationship_none_for_unconnected() {
        let t = tiny();
        // Only two ASes, connected; fabricate a query with same ids reversed
        // is covered above. Add a third unconnected AS.
        let mut t = t;
        let c0 = t.atlas.cities[0].id;
        let x = t.add_as(AsClass::Eyeball, "x", vec![c0], ExitPolicy::EarlyExit, 1.5, Some(0), 1.0);
        assert_eq!(t.relationship(x, AsId(0)), None);
        assert!(t.neighbors(x).is_empty());
    }
}
