//! Newtype identifiers for topology entities.

use serde::{Deserialize, Serialize};

/// Identifier of an autonomous system. Dense index into
/// [`crate::graph::Topology::ases`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl AsId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AsId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Identifier of one physical interconnection between two ASes in one city.
/// Dense index into [`crate::graph::Topology::links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InterconnectId(pub u32);

impl InterconnectId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for InterconnectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ix#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(AsId(7).to_string(), "AS7");
        assert_eq!(InterconnectId(3).to_string(), "ix#3");
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(AsId(2) < AsId(10));
    }
}
