//! # bb-topology — synthetic AS-level Internet topology
//!
//! Builds the world the paper's measurements happen in: autonomous systems
//! with business relationships (customer/provider, peer), typed
//! interconnections placed in specific cities (transit, private peering /
//! PNI, public peering at IXPs), and geographic footprints per AS.
//!
//! The generator produces the class structure the paper's arguments rest on:
//!
//! * a clique of **tier-1** backbones present at every major colo hub
//!   (late-exit capable, well-run WANs — §3.3.2's "single large provider"),
//! * regional **transit** ASes that buy from tier-1s and peer regionally,
//! * **eyeball** ASes per country that buy regional transit and host the
//!   client populations,
//! * room for **content provider** ASes to be attached afterwards by
//!   `bb-cdn` (PoPs, PNIs into eyeballs, IXP peering, transit).
//!
//! The topology is static over a simulation run; performance dynamics live
//! in `bb-netsim`.

pub mod asys;
pub mod caida;
pub mod generator;
pub mod graph;
pub mod ids;
pub mod link;
pub mod validate;

pub use asys::{AsClass, AsNode, ExitPolicy};
pub use caida::{
    build_from_snapshot, load_snapshot_file, parse_caida, CaidaError, CaidaGraph, SnapshotConfig,
};
pub use generator::{generate, TopologyConfig};
pub use graph::Topology;
pub use ids::{AsId, InterconnectId};
pub use link::{BusinessRel, Interconnect, LinkKind};
