//! Interconnections between ASes: business relationship + physical links.

use crate::ids::{AsId, InterconnectId};
use bb_geo::CityId;
use serde::{Deserialize, Serialize};

/// The business relationship between an ordered pair of ASes.
///
/// Stored once per AS pair; individual [`Interconnect`]s inherit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusinessRel {
    /// The first AS is a customer of the second (pays for transit).
    CustomerOf,
    /// The first AS is a provider of the second.
    ProviderOf,
    /// Settlement-free peers.
    Peer,
}

impl BusinessRel {
    /// The same relationship viewed from the other side.
    pub fn reversed(self) -> BusinessRel {
        match self {
            BusinessRel::CustomerOf => BusinessRel::ProviderOf,
            BusinessRel::ProviderOf => BusinessRel::CustomerOf,
            BusinessRel::Peer => BusinessRel::Peer,
        }
    }
}

/// Physical flavor of an interconnection. The paper's Figure 2 compares
/// routes by exactly these classes (peer vs transit; private vs public
/// exchange).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Paid transit link (customer side pays).
    Transit,
    /// Private network interconnect (PNI) with dedicated capacity.
    PrivatePeering,
    /// Port on a public Internet exchange.
    PublicPeering,
}

impl LinkKind {
    pub fn name(&self) -> &'static str {
        match self {
            LinkKind::Transit => "transit",
            LinkKind::PrivatePeering => "private-peering",
            LinkKind::PublicPeering => "public-peering",
        }
    }
}

/// One physical interconnection between two ASes in one city.
///
/// An AS pair may interconnect in many cities; each such point is a separate
/// `Interconnect` (that multiplicity is what makes hot-potato vs late-exit
/// choices meaningful).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Interconnect {
    pub id: InterconnectId,
    pub a: AsId,
    pub b: AsId,
    /// Relationship of `a` towards `b`.
    pub rel: BusinessRel,
    pub kind: LinkKind,
    pub city: CityId,
    /// Provisioned capacity, Gbps. Used by the congestion model and by the
    /// Edge-Fabric-style egress controller's overload checks.
    pub capacity_gbps: f64,
}

impl Interconnect {
    /// The other endpoint, given one endpoint.
    pub fn other(&self, asn: AsId) -> AsId {
        if asn == self.a {
            self.b
        } else {
            debug_assert_eq!(asn, self.b);
            self.a
        }
    }

    /// Relationship of `asn` towards the other endpoint.
    pub fn rel_of(&self, asn: AsId) -> BusinessRel {
        if asn == self.a {
            self.rel
        } else {
            debug_assert_eq!(asn, self.b);
            self.rel.reversed()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Interconnect {
        Interconnect {
            id: InterconnectId(0),
            a: AsId(1),
            b: AsId(2),
            rel: BusinessRel::CustomerOf,
            kind: LinkKind::Transit,
            city: CityId(0),
            capacity_gbps: 100.0,
        }
    }

    #[test]
    fn reversed_involution() {
        for r in [BusinessRel::CustomerOf, BusinessRel::ProviderOf, BusinessRel::Peer] {
            assert_eq!(r.reversed().reversed(), r);
        }
    }

    #[test]
    fn other_endpoint() {
        let l = link();
        assert_eq!(l.other(AsId(1)), AsId(2));
        assert_eq!(l.other(AsId(2)), AsId(1));
    }

    #[test]
    fn rel_of_each_side() {
        let l = link();
        assert_eq!(l.rel_of(AsId(1)), BusinessRel::CustomerOf);
        assert_eq!(l.rel_of(AsId(2)), BusinessRel::ProviderOf);
    }
}
