//! Structural validation of a topology.

use crate::asys::AsClass;
use crate::graph::Topology;
use crate::ids::AsId;
use std::collections::VecDeque;

/// A structural problem found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An AS cannot reach the tier-1 clique following provider links.
    Unreachable(AsId),
    /// An eyeball AS has no providers.
    NoProviders(AsId),
    /// The provider hierarchy contains a customer-provider cycle.
    ProviderCycle(AsId),
    /// There are no tier-1 ASes at all.
    NoTier1,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Unreachable(a) => write!(f, "{a} cannot reach the tier-1 clique"),
            TopologyError::NoProviders(a) => write!(f, "{a} has no providers"),
            TopologyError::ProviderCycle(a) => write!(f, "provider cycle through {a}"),
            TopologyError::NoTier1 => write!(f, "no tier-1 ASes"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Check structural invariants that routing correctness depends on:
///
/// 1. at least one tier-1 exists;
/// 2. every non-tier-1 AS reaches a tier-1 by walking provider links
///    (guarantees global reachability under valley-free routing);
/// 3. no customer→provider cycles;
/// 4. every eyeball has at least one provider.
pub fn validate(topo: &Topology) -> Result<(), Vec<TopologyError>> {
    let mut errors = Vec::new();

    let tier1s: Vec<AsId> = topo.ases_of_class(AsClass::Tier1).map(|a| a.id).collect();
    if tier1s.is_empty() {
        return Err(vec![TopologyError::NoTier1]);
    }

    // Reachability: BFS downward from tier-1s along provider→customer edges;
    // every AS must be visited.
    let mut reached = vec![false; topo.as_count()];
    let mut queue: VecDeque<AsId> = tier1s.iter().copied().collect();
    for &t in &tier1s {
        reached[t.index()] = true;
    }
    while let Some(asn) = queue.pop_front() {
        for cust in topo.customers_of(asn) {
            if !reached[cust.index()] {
                reached[cust.index()] = true;
                queue.push_back(cust);
            }
        }
    }
    for node in topo.ases() {
        if !reached[node.id.index()] {
            errors.push(TopologyError::Unreachable(node.id));
        }
    }

    // Eyeballs need providers.
    for eye in topo.ases_of_class(AsClass::Eyeball) {
        if topo.providers_of(eye.id).is_empty() {
            errors.push(TopologyError::NoProviders(eye.id));
        }
    }

    // Cycle detection on customer→provider edges (DFS coloring).
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; topo.as_count()];
    fn dfs(
        topo: &Topology,
        asn: AsId,
        color: &mut [Color],
        errors: &mut Vec<TopologyError>,
    ) {
        color[asn.index()] = Color::Gray;
        for prov in topo.providers_of(asn) {
            match color[prov.index()] {
                Color::White => dfs(topo, prov, color, errors),
                Color::Gray => errors.push(TopologyError::ProviderCycle(prov)),
                Color::Black => {}
            }
        }
        color[asn.index()] = Color::Black;
    }
    for node in topo.ases() {
        if color[node.id.index()] == Color::White {
            dfs(topo, node.id, &mut color, &mut errors);
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asys::ExitPolicy;
    use crate::link::{BusinessRel, LinkKind};
    use bb_geo::atlas::AtlasConfig;
    use bb_geo::Atlas;

    fn atlas() -> Atlas {
        Atlas::generate(&AtlasConfig {
            seed: 1,
            city_density: 0.3,
        })
    }

    #[test]
    fn empty_topology_fails_no_tier1() {
        let topo = Topology::new(atlas());
        assert_eq!(validate(&topo), Err(vec![TopologyError::NoTier1]));
    }

    #[test]
    fn isolated_eyeball_reported() {
        let a = atlas();
        let c0 = a.cities[0].id;
        let mut topo = Topology::new(a);
        topo.add_as(AsClass::Tier1, "t", vec![c0], ExitPolicy::EarlyExit, 1.1, None, 0.0);
        topo.add_as(AsClass::Eyeball, "e", vec![c0], ExitPolicy::EarlyExit, 1.4, Some(0), 1.0);
        let errs = validate(&topo).unwrap_err();
        assert!(errs.contains(&TopologyError::Unreachable(AsId(1))));
        assert!(errs.contains(&TopologyError::NoProviders(AsId(1))));
    }

    #[test]
    fn connected_hierarchy_passes() {
        let a = atlas();
        let c0 = a.cities[0].id;
        let mut topo = Topology::new(a);
        let t1 = topo.add_as(AsClass::Tier1, "t", vec![c0], ExitPolicy::EarlyExit, 1.1, None, 0.0);
        let tr = topo.add_as(AsClass::Transit, "tr", vec![c0], ExitPolicy::EarlyExit, 1.2, None, 0.0);
        let ey = topo.add_as(AsClass::Eyeball, "e", vec![c0], ExitPolicy::EarlyExit, 1.4, Some(0), 1.0);
        topo.add_interconnect(tr, t1, BusinessRel::CustomerOf, LinkKind::Transit, c0, 100.0);
        topo.add_interconnect(ey, tr, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
        assert!(validate(&topo).is_ok());
    }

    #[test]
    fn provider_cycle_detected() {
        // A 2-cycle is impossible (one relationship per pair), but a 3-cycle
        // x→y→z→x of customer-of edges is constructible and must be flagged.
        let a = atlas();
        let c0 = a.cities[0].id;
        let mut topo = Topology::new(a);
        let t1 = topo.add_as(AsClass::Tier1, "t", vec![c0], ExitPolicy::EarlyExit, 1.1, None, 0.0);
        let x = topo.add_as(AsClass::Transit, "x", vec![c0], ExitPolicy::EarlyExit, 1.2, None, 0.0);
        let y = topo.add_as(AsClass::Transit, "y", vec![c0], ExitPolicy::EarlyExit, 1.2, None, 0.0);
        let z = topo.add_as(AsClass::Transit, "z", vec![c0], ExitPolicy::EarlyExit, 1.2, None, 0.0);
        // Keep everything reachable from the tier-1 so only the cycle fires.
        topo.add_interconnect(x, t1, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
        topo.add_interconnect(x, y, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
        topo.add_interconnect(y, z, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
        topo.add_interconnect(z, x, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
        let errs = validate(&topo).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, TopologyError::ProviderCycle(_))));
    }

    #[test]
    #[should_panic(expected = "conflicting relationship")]
    fn conflicting_cycle_edges_panic_at_construction() {
        let a = atlas();
        let c0 = a.cities[0].id;
        let mut topo = Topology::new(a);
        let x = topo.add_as(AsClass::Transit, "x", vec![c0], ExitPolicy::EarlyExit, 1.2, None, 0.0);
        let y = topo.add_as(AsClass::Transit, "y", vec![c0], ExitPolicy::EarlyExit, 1.2, None, 0.0);
        topo.add_interconnect(x, y, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
        topo.add_interconnect(y, x, BusinessRel::CustomerOf, LinkKind::Transit, c0, 10.0);
    }
}
