//! Property-based tests of the topology generator across random seeds.

use bb_topology::validate::validate;
use bb_topology::{generate, AsClass, BusinessRel, TopologyConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated topology passes structural validation.
    #[test]
    fn generated_topologies_validate(seed in 0u64..100_000) {
        let topo = generate(&TopologyConfig::small(seed));
        prop_assert!(validate(&topo).is_ok());
    }

    /// Class structure invariants hold for any seed.
    #[test]
    fn class_structure(seed in 0u64..100_000) {
        let topo = generate(&TopologyConfig::small(seed));
        // Tier-1s never buy transit.
        for t1 in topo.ases_of_class(AsClass::Tier1) {
            prop_assert!(topo.providers_of(t1.id).is_empty(), "{} buys transit", t1.name);
        }
        // Eyeballs never sell transit.
        for eye in topo.ases_of_class(AsClass::Eyeball) {
            prop_assert!(
                topo.customers_of(eye.id).is_empty(),
                "{} has customers",
                eye.name
            );
        }
        // Transits buy only from tier-1s.
        for tr in topo.ases_of_class(AsClass::Transit) {
            for up in topo.providers_of(tr.id) {
                prop_assert_eq!(topo.asys(up).class, AsClass::Tier1);
            }
        }
    }

    /// Relationship symmetry: a's view of b reverses b's view of a.
    #[test]
    fn relationship_symmetry(seed in 0u64..100_000) {
        let topo = generate(&TopologyConfig::small(seed));
        for link in topo.links().iter().take(300) {
            let ab = topo.relationship(link.a, link.b).unwrap();
            let ba = topo.relationship(link.b, link.a).unwrap();
            prop_assert_eq!(ab.reversed(), ba);
        }
    }

    /// Interconnects always sit in cities both endpoints occupy, and peer
    /// capacity is positive.
    #[test]
    fn link_placement(seed in 0u64..100_000) {
        let topo = generate(&TopologyConfig::small(seed));
        for link in topo.links() {
            prop_assert!(topo.asys(link.a).present_in(link.city));
            prop_assert!(topo.asys(link.b).present_in(link.city));
            prop_assert!(link.capacity_gbps > 0.0);
        }
    }

    /// Tier-1 peering is a full mesh (clique property).
    #[test]
    fn tier1_clique(seed in 0u64..100_000) {
        let topo = generate(&TopologyConfig::small(seed));
        let tier1s: Vec<_> = topo.ases_of_class(AsClass::Tier1).map(|a| a.id).collect();
        for (i, &a) in tier1s.iter().enumerate() {
            for &b in &tier1s[i + 1..] {
                prop_assert_eq!(topo.relationship(a, b), Some(BusinessRel::Peer));
            }
        }
    }

    /// Exit fidelity defaults are in range for every AS.
    #[test]
    fn exit_fidelity_defaults(seed in 0u64..100_000) {
        let topo = generate(&TopologyConfig::small(seed));
        for node in topo.ases() {
            prop_assert!((0.0..=1.0).contains(&node.exit_fidelity));
            prop_assert!(node.intra_inflation >= 1.0);
        }
    }
}
