//! LDNS resolvers and the client→resolver sharing model.
//!
//! §3.2.1: "DNS redirection systems cannot see the IP address of the
//! requesting client, only of client's local resolver (LDNS), limiting
//! decisions to a per-LDNS granularity. EDNS Client Subnet was designed to
//! overcome this limitation, but its adoption by ISPs is virtually
//! non-existent (< 0.1% of ASes) outside of public resolvers."
//!
//! We model two resolver kinds: each eyeball AS runs its own resolver
//! (aggregating that AS's clients across *cities*), and one global public
//! resolver used by a configurable fraction of clients everywhere
//! (aggregating clients across the *world* — unless ECS is enabled for it,
//! which public resolvers do support).

use bb_topology::AsId;
use serde::{Deserialize, Serialize};

/// Dense identifier of a resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LdnsId(pub u32);

impl LdnsId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of resolver this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LdnsKind {
    /// The ISP resolver of one eyeball AS.
    Isp(AsId),
    /// A global public resolver (8.8.8.8-style).
    Public,
}

/// One LDNS resolver.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ldns {
    pub id: LdnsId,
    pub kind: LdnsKind,
    /// Whether this resolver sends EDNS Client Subnet. Public resolvers do;
    /// ISP resolvers essentially never do (§3.2.1).
    pub sends_ecs: bool,
}

impl Ldns {
    pub fn is_public(&self) -> bool {
        matches!(self.kind, LdnsKind::Public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_detection() {
        let p = Ldns {
            id: LdnsId(0),
            kind: LdnsKind::Public,
            sends_ecs: true,
        };
        let i = Ldns {
            id: LdnsId(1),
            kind: LdnsKind::Isp(AsId(3)),
            sends_ecs: false,
        };
        assert!(p.is_public());
        assert!(!i.is_public());
    }
}
