//! # bb-workload — client populations and traffic
//!
//! Converts the topology's eyeball ASes into the measurable units of the
//! paper's datasets:
//!
//! * **client prefixes** ([`prefix`], [`population`]) — a ⟨eyeball AS, city⟩
//!   pair with a traffic weight; Fig 1's ⟨PoP, prefix⟩ unit and Fig 4's
//!   weighted /24s both key on these,
//! * **LDNS resolvers** ([`ldns`]) — the resolver-sharing model behind
//!   §3.2.1's granularity limits: most clients use their ISP's resolver
//!   (which aggregates clients across cities), a fraction use a public
//!   resolver (which aggregates clients across the world), and EDNS
//!   client-subnet is essentially absent (< 0.1 % of ASes, per the paper),
//! * **diurnal traffic shaping** ([`traffic`]) for session volumes.

pub mod ldns;
pub mod population;
pub mod prefix;
pub mod traffic;

pub use ldns::{Ldns, LdnsId, LdnsKind};
pub use population::{generate_workload, Workload, WorkloadConfig};
pub use prefix::{ClientPrefix, PrefixId};
pub use traffic::diurnal_activity;
