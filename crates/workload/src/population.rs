//! Workload generation: prefixes, weights, resolver assignment.

use crate::ldns::{Ldns, LdnsId, LdnsKind};
use crate::prefix::{ClientPrefix, PrefixId};
use bb_geo::CityId;
use bb_topology::{AsClass, AsId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;

/// Workload generation knobs.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadConfig {
    pub seed: u64,
    /// Log-normal sigma of per-prefix activity (spread of traffic weights
    /// beyond raw user counts).
    pub activity_sigma: f64,
    /// Fraction of clients using the public resolver instead of their ISP's.
    pub public_resolver_fraction: f64,
    /// Fraction of ISP resolvers that send EDNS Client Subnet. §3.2.1:
    /// "its adoption by ISPs is virtually non-existent (< 0.1% of ASes)" —
    /// hence the default; the X-ECS sweep raises it.
    pub isp_ecs_fraction: f64,
    /// Access-rate range, Mbps.
    pub access_mbps: (f64, f64),
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 0x_90ad_5eed,
            activity_sigma: 0.6,
            public_resolver_fraction: 0.15,
            isp_ecs_fraction: 0.001,
            access_mbps: (20.0, 200.0),
        }
    }
}

/// Prefixes, resolvers, and the client→resolver split.
#[derive(Debug, Clone)]
pub struct Workload {
    pub prefixes: Vec<ClientPrefix>,
    pub ldns: Vec<Ldns>,
    /// Per prefix: (resolver, fraction of that prefix's clients) pairs;
    /// fractions sum to 1.
    pub prefix_ldns: Vec<Vec<(LdnsId, f64)>>,
}

impl Workload {
    pub fn prefix(&self, id: PrefixId) -> &ClientPrefix {
        &self.prefixes[id.index()]
    }

    /// Total traffic weight (≈ 1.0).
    pub fn total_weight(&self) -> f64 {
        self.prefixes.iter().map(|p| p.weight).sum()
    }

    /// Prefixes of one eyeball AS.
    pub fn prefixes_of(&self, asn: AsId) -> impl Iterator<Item = &ClientPrefix> {
        self.prefixes.iter().filter(move |p| p.asn == asn)
    }

    /// The resolvers of one prefix.
    pub fn resolvers_of(&self, id: PrefixId) -> &[(LdnsId, f64)] {
        &self.prefix_ldns[id.index()]
    }

    /// All prefixes using a resolver, with the client fraction each
    /// contributes (the resolver's catchment — what per-LDNS prediction
    /// aggregates over).
    pub fn clients_of_ldns(&self, ldns: LdnsId) -> Vec<(PrefixId, f64)> {
        let mut v = Vec::new();
        for (i, assignments) in self.prefix_ldns.iter().enumerate() {
            for &(l, frac) in assignments {
                if l == ldns {
                    let pid = PrefixId(i as u32);
                    v.push((pid, frac * self.prefixes[i].weight));
                }
            }
        }
        v
    }
}

/// Generate the workload from a topology's eyeball ASes.
///
/// Each ⟨eyeball AS, footprint city⟩ pair becomes one prefix. City user
/// mass is split among the eyeballs present in the city proportionally to
/// their national user share; traffic weight additionally gets a log-normal
/// activity factor and is normalized to sum to 1.
pub fn generate_workload(topo: &Topology, cfg: &WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Share of each city's users claimed by each eyeball present there.
    let mut city_total_share: HashMap<CityId, f64> = HashMap::new();
    for eye in topo.ases_of_class(AsClass::Eyeball) {
        for &city in &eye.footprint {
            *city_total_share.entry(city).or_insert(0.0) += eye.user_share;
        }
    }

    let mut prefixes = Vec::new();
    for eye in topo.ases_of_class(AsClass::Eyeball) {
        for &city in &eye.footprint {
            let city_users = topo.atlas.city_users_m(city);
            let denom = city_total_share[&city];
            let users_m = city_users * eye.user_share / denom;
            if users_m <= 0.0 {
                continue;
            }
            // Log-normal activity factor.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let activity = (cfg.activity_sigma * z).exp();
            let access = rng.gen_range(cfg.access_mbps.0..cfg.access_mbps.1);
            prefixes.push(ClientPrefix {
                id: PrefixId(prefixes.len() as u32),
                asn: eye.id,
                city,
                weight: users_m * activity, // normalized below
                users_m,
                access_mbps: access,
            });
        }
    }
    let total: f64 = prefixes.iter().map(|p| p.weight).sum();
    for p in &mut prefixes {
        p.weight /= total;
    }

    // Resolvers: one per eyeball AS + one public. ECS adoption is drawn
    // from a dedicated RNG stream so changing the fraction does not
    // perturb prefix generation.
    let mut ecs_rng = StdRng::seed_from_u64(cfg.seed ^ 0x_ec5);
    let mut ldns = Vec::new();
    let mut isp_ldns: HashMap<AsId, LdnsId> = HashMap::new();
    for eye in topo.ases_of_class(AsClass::Eyeball) {
        let id = LdnsId(ldns.len() as u32);
        ldns.push(Ldns {
            id,
            kind: LdnsKind::Isp(eye.id),
            sends_ecs: cfg.isp_ecs_fraction > 0.0 && ecs_rng.gen_bool(cfg.isp_ecs_fraction),
        });
        isp_ldns.insert(eye.id, id);
    }
    let public_id = LdnsId(ldns.len() as u32);
    ldns.push(Ldns {
        id: public_id,
        kind: LdnsKind::Public,
        sends_ecs: true,
    });

    let prefix_ldns = prefixes
        .iter()
        .map(|p| {
            let isp = isp_ldns[&p.asn];
            let pf = cfg.public_resolver_fraction;
            if pf > 0.0 {
                vec![(isp, 1.0 - pf), (public_id, pf)]
            } else {
                vec![(isp, 1.0)]
            }
        })
        .collect();

    Workload {
        prefixes,
        ldns,
        prefix_ldns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_topology::{generate, TopologyConfig};

    fn workload() -> (Topology, Workload) {
        let topo = generate(&TopologyConfig::small(23));
        let w = generate_workload(&topo, &WorkloadConfig::default());
        (topo, w)
    }

    #[test]
    fn weights_normalized() {
        let (_, w) = workload();
        assert!((w.total_weight() - 1.0).abs() < 1e-9);
        assert!(w.prefixes.iter().all(|p| p.weight > 0.0));
    }

    #[test]
    fn every_eyeball_has_prefixes() {
        let (topo, w) = workload();
        for eye in topo.ases_of_class(AsClass::Eyeball) {
            assert!(
                w.prefixes_of(eye.id).count() > 0,
                "{} must have prefixes",
                eye.name
            );
        }
    }

    #[test]
    fn prefix_cities_are_in_as_footprint() {
        let (topo, w) = workload();
        for p in &w.prefixes {
            assert!(topo.asys(p.asn).present_in(p.city));
        }
    }

    #[test]
    fn user_mass_conserved_per_city() {
        let (topo, w) = workload();
        // Users across prefixes of one city must equal city users (when any
        // eyeball covers the city).
        let mut per_city: HashMap<CityId, f64> = HashMap::new();
        for p in &w.prefixes {
            *per_city.entry(p.city).or_insert(0.0) += p.users_m;
        }
        for (&city, &users) in &per_city {
            let expect = topo.atlas.city_users_m(city);
            assert!(
                (users - expect).abs() < 1e-9,
                "city {city}: {users} vs {expect}"
            );
        }
    }

    #[test]
    fn resolver_fractions_sum_to_one() {
        let (_, w) = workload();
        for (i, a) in w.prefix_ldns.iter().enumerate() {
            let s: f64 = a.iter().map(|&(_, f)| f).sum();
            assert!((s - 1.0).abs() < 1e-12, "prefix {i}");
        }
    }

    #[test]
    fn isp_resolver_serves_only_its_as() {
        let (_, w) = workload();
        for l in &w.ldns {
            if let LdnsKind::Isp(asn) = l.kind {
                for (pid, _) in w.clients_of_ldns(l.id) {
                    assert_eq!(w.prefix(pid).asn, asn);
                }
            }
        }
    }

    #[test]
    fn public_resolver_serves_many_ases() {
        let (_, w) = workload();
        let public = w.ldns.iter().find(|l| l.is_public()).unwrap();
        let clients = w.clients_of_ldns(public.id);
        let ases: std::collections::HashSet<AsId> =
            clients.iter().map(|&(p, _)| w.prefix(p).asn).collect();
        assert!(ases.len() > 10, "public resolver must be widely used");
    }

    #[test]
    fn deterministic() {
        let topo = generate(&TopologyConfig::small(23));
        let a = generate_workload(&topo, &WorkloadConfig::default());
        let b = generate_workload(&topo, &WorkloadConfig::default());
        assert_eq!(a.prefixes.len(), b.prefixes.len());
        for (x, y) in a.prefixes.iter().zip(&b.prefixes) {
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn zero_public_fraction_gives_single_resolver() {
        let topo = generate(&TopologyConfig::small(23));
        let w = generate_workload(
            &topo,
            &WorkloadConfig {
                public_resolver_fraction: 0.0,
                ..Default::default()
            },
        );
        for a in &w.prefix_ldns {
            assert_eq!(a.len(), 1);
        }
    }
}
