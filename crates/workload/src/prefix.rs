//! Client prefixes: the unit of routing (BGP announces per prefix) and of
//! measurement aggregation (⟨PoP, prefix, route⟩ in §3.1).

use bb_geo::CityId;
use bb_topology::AsId;
use serde::{Deserialize, Serialize};

/// Dense identifier of a client prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PrefixId(pub u32);

impl PrefixId {
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Stable code for keying the last-mile congestion process.
    pub fn lastmile_code(self) -> u64 {
        0x_5a5a_0000_0000 | self.0 as u64
    }
}

impl std::fmt::Display for PrefixId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pfx#{}", self.0)
    }
}

/// One client prefix: users of one eyeball AS in one metro.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientPrefix {
    pub id: PrefixId,
    /// The eyeball AS announcing this prefix.
    pub asn: AsId,
    /// Metro where these clients sit.
    pub city: CityId,
    /// Share of global traffic volume (all prefixes sum to 1.0).
    pub weight: f64,
    /// Users represented, millions.
    pub users_m: f64,
    /// Modeled access line rate, Mbps (for goodput experiments).
    pub access_mbps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lastmile_codes_are_distinct() {
        assert_ne!(PrefixId(1).lastmile_code(), PrefixId(2).lastmile_code());
    }

    #[test]
    fn display() {
        assert_eq!(PrefixId(4).to_string(), "pfx#4");
    }
}
