//! Diurnal traffic shaping.

/// Relative traffic activity at a given local hour: evening-peaked, never
/// zero (the Internet sleeps lightly). Ranges over [0.3, 1.0].
pub fn diurnal_activity(local_hour: f64) -> f64 {
    let phase = (local_hour - 14.0) / 24.0 * std::f64::consts::TAU;
    0.65 + 0.35 * phase.sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_in_evening_troughs_in_morning() {
        assert!(diurnal_activity(20.0) > diurnal_activity(8.0));
        let peak = diurnal_activity(20.0);
        assert!((peak - 1.0).abs() < 1e-9);
        let trough = diurnal_activity(8.0);
        assert!((trough - 0.3).abs() < 1e-9);
    }

    #[test]
    fn always_positive_and_bounded() {
        for i in 0..96 {
            let h = i as f64 / 4.0;
            let a = diurnal_activity(h);
            assert!((0.3..=1.0).contains(&a), "hour {h}: {a}");
        }
    }
}
