//! Operating an anycast CDN: catchments, misdirection, grooming.
//!
//! ```sh
//! cargo run --release --example anycast_cdn
//! ```
//!
//! Deploys an anycast prefix from every PoP of a Microsoft-like CDN,
//! reports where clients actually land (catchment quality), then grooms a
//! deliberately mis-configured announcement the way a CDN operator would
//! (§3.2.2's "nurture").

use beating_bgp::cdn::AnycastDeployment;
use beating_bgp::core::ext::grooming;
use beating_bgp::core::{Scale, Scenario, ScenarioConfig};
use beating_bgp::netsim::path_base_rtt_ms;

fn main() {
    let scenario = Scenario::build(ScenarioConfig::microsoft(21, Scale::Test));
    let topo = &scenario.topo;
    let provider = &scenario.provider;
    let sites = provider.pops.clone();
    println!(
        "CDN: {} front-end sites, {} client prefixes",
        sites.len(),
        scenario.workload.prefixes.len()
    );

    // --- Catchment census under a clean full announcement. ---
    let dep = AnycastDeployment::deploy(topo, provider, &sites);
    let mut optimal = 0.0;
    let mut near = 0.0; // within 1000 km of the best site
    let mut far = 0.0;
    let mut total = 0.0;
    let mut worst: Option<(f64, String, String)> = None;
    for p in &scenario.workload.prefixes {
        let Some(svc) = dep.serve(topo, provider, p.asn, p.city) else {
            continue;
        };
        let nearest = provider.nearest_pop(topo, p.city);
        let miss_km = topo
            .atlas
            .city(svc.front_end)
            .location
            .distance_km(&topo.atlas.city(nearest).location);
        total += p.weight;
        if svc.front_end == nearest {
            optimal += p.weight;
        } else if miss_km < 1000.0 {
            near += p.weight;
        } else {
            far += p.weight;
            let rtt = path_base_rtt_ms(topo, &svc.path) + 2.0 * svc.wan_extra_ms;
            if worst.as_ref().is_none_or(|w| rtt > w.0) {
                worst = Some((
                    rtt,
                    topo.atlas.city(p.city).name.clone(),
                    topo.atlas.city(svc.front_end).name.clone(),
                ));
            }
        }
    }
    println!(
        "catchments: {:.1}% optimal site, {:.1}% near-optimal, {:.1}% misdirected >1000 km",
        optimal / total * 100.0,
        near / total * 100.0,
        far / total * 100.0
    );
    if let Some((rtt, client, site)) = worst {
        println!("worst misdirection: client {client} served from {site} at {rtt:.0} ms RTT");
    }

    // --- Grooming a sloppy announcement. ---
    println!("\ngrooming an ungroomed prefix (operator loop):");
    for step in grooming::run(&scenario, 42, 8) {
        println!("{}", step.render_row());
    }
    let plain = grooming::groomed_baseline(&scenario);
    println!("plain full announcement: {}", plain.render_row());
}
