//! Premium vs Standard cloud networking, per country (§2.3.3 / Figure 5).
//!
//! ```sh
//! cargo run --release --example cloud_tiers
//! ```
//!
//! Deploys a VM prefix in the US-Central data center on both tiers, probes
//! it from vantage points everywhere (Speedchecker-style), applies the
//! paper's vantage-point filter, and prints the per-country latency
//! comparison — including the India case where the public Internet beats
//! the private WAN.

use beating_bgp::core::study_tiers;
use beating_bgp::core::{Scale, Scenario, ScenarioConfig};
use beating_bgp::measure::ProbeConfig;

fn main() {
    let scenario = Scenario::build(ScenarioConfig::google(42, Scale::Test));
    println!(
        "cloud provider: {} edge PoPs, WAN of {} links",
        scenario.provider.pops.len(),
        scenario.provider.wan.links().len()
    );

    let cfg = ProbeConfig {
        rounds: 10,
        ..Default::default()
    };
    let study = study_tiers::run(&scenario, &cfg).expect("fault-free study succeeds");

    println!(
        "data center: {} | probes: {} | qualifying VPs (direct Premium, \
         indirect Standard): {}\n",
        scenario.topo.atlas.city(study.datacenter).name,
        study.probes.len(),
        study.fig5.qualifying_vps
    );
    println!("{}", study.fig5.render());

    // The §3.3.2 case study, called out explicitly.
    if let Some(india) = study.fig5.rows.iter().find(|r| r.code == "IN") {
        let verdict = if india.median_diff_ms < 0.0 {
            "the PUBLIC INTERNET beats the private WAN"
        } else {
            "the private WAN wins"
        };
        println!(
            "India check (§3.3.2): median diff {:+.1} ms — {verdict}.\n\
             (The WAN carries India traffic east via Singapore/Japan across \
             the Pacific,\n while one tier-1 carries the Standard-tier \
             traffic the whole way.)",
            india.median_diff_ms
        );
    }

    println!(
        "\n10 MB download, weighted median transfer-time difference \
         (standard − premium): {:+.2} s",
        study.goodput_diff_s
    );
}
