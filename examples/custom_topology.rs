//! Using the substrate directly: hand-build a tiny Internet, run BGP over
//! it, realize paths, and measure RTTs — no study harness involved.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```
//!
//! Builds the textbook scenario from §2.3.1 by hand: a content provider
//! with one PoP that reaches an eyeball AS via (a) a private interconnect,
//! (b) a public exchange through a regional transit, and (c) a tier-1
//! transit route, then compares the three routes' latencies under the
//! congestion model.

use beating_bgp::bgp::{compute_routes, provider_rib, Announcement};
use beating_bgp::geo::atlas::AtlasConfig;
use beating_bgp::geo::Atlas;
use beating_bgp::netsim::{
    path_rtt_ms, realize_path, CongestionConfig, CongestionKey, CongestionModel, RealizeSpec,
    SimTime,
};
use beating_bgp::topology::{AsClass, BusinessRel, ExitPolicy, LinkKind, Topology};

fn main() {
    // A real atlas for geography, but a hand-made AS graph.
    let atlas = Atlas::generate(&AtlasConfig::default());
    let frankfurt = atlas.nearest_city(beating_bgp::geo::GeoPoint::new(50.1, 8.7)).id;
    let warsaw = atlas.nearest_city(beating_bgp::geo::GeoPoint::new(52.2, 21.0)).id;
    let mut topo = Topology::new(atlas);

    let tier1 = topo.add_as(
        AsClass::Tier1,
        "tier1-backbone",
        vec![frankfurt, warsaw],
        ExitPolicy::EarlyExit,
        1.1,
        None,
        0.0,
    );
    let transit = topo.add_as(
        AsClass::Transit,
        "regional-transit",
        vec![frankfurt, warsaw],
        ExitPolicy::EarlyExit,
        1.25,
        None,
        0.0,
    );
    let eyeball = topo.add_as(
        AsClass::Eyeball,
        "eyeball-isp",
        vec![frankfurt, warsaw],
        ExitPolicy::EarlyExit,
        1.35,
        Some(0),
        1.0,
    );
    let provider = topo.add_as(
        AsClass::Content,
        "content-provider",
        vec![frankfurt],
        ExitPolicy::LateExit,
        1.1,
        None,
        0.0,
    );

    // Business fabric.
    topo.add_interconnect(transit, tier1, BusinessRel::CustomerOf, LinkKind::Transit, frankfurt, 1000.0);
    topo.add_interconnect(eyeball, transit, BusinessRel::CustomerOf, LinkKind::Transit, warsaw, 100.0);
    topo.add_interconnect(eyeball, tier1, BusinessRel::CustomerOf, LinkKind::Transit, frankfurt, 100.0);
    // The provider's three options at its Frankfurt PoP.
    topo.add_interconnect(provider, eyeball, BusinessRel::Peer, LinkKind::PrivatePeering, frankfurt, 80.0);
    topo.add_interconnect(provider, transit, BusinessRel::Peer, LinkKind::PublicPeering, frankfurt, 200.0);
    topo.add_interconnect(provider, tier1, BusinessRel::CustomerOf, LinkKind::Transit, frankfurt, 2000.0);

    // BGP: the eyeball announces a client prefix; what does the provider see?
    let table = compute_routes(&topo, &Announcement::full(&topo, eyeball));
    let ribs = provider_rib(&topo, provider, &table);
    let rib = &ribs[0];
    println!("provider RIB toward the client prefix (policy order):");
    for (i, route) in rib.routes.iter().enumerate() {
        println!(
            "  #{i} via {} [{}], AS-path length {}",
            topo.asys(route.neighbor).name,
            route.class.name(),
            route.total_len
        );
    }

    // Realize each route to a client in Warsaw and measure at two times.
    let congestion = CongestionModel::new(1, CongestionConfig::default());
    let client_city = warsaw;
    println!("\nroute RTTs to a Warsaw client (ms):");
    println!("{:<28}{:>10}{:>10}", "route", "03:00", "20:00");
    for route in &rib.routes {
        let mut as_path = vec![provider];
        if route.neighbor == eyeball {
            as_path.push(eyeball);
        } else {
            as_path.extend(table.as_path(route.neighbor).unwrap());
        }
        let spec = RealizeSpec {
            as_path: &as_path,
            src_city: rib.pop_city,
            dst_city: Some(client_city),
            first_link: Some(route.link),
            final_entry_links: None,
        };
        let path = realize_path(&topo, &spec);
        let lastmile = Some(CongestionKey::LastMile(1));
        let night = path_rtt_ms(&topo, &congestion, &path, lastmile, SimTime::from_hours(3.0));
        let evening = path_rtt_ms(&topo, &congestion, &path, lastmile, SimTime::from_hours(20.0));
        println!(
            "{:<28}{:>10.2}{:>10.2}",
            format!("via {}", topo.asys(route.neighbor).name),
            night,
            evening
        );
    }
    println!(
        "\nNote how all three options share the client's last mile: when that\n\
         congests in the evening, every route degrades together (§3.1.1)."
    );
}
