//! DNS redirection vs anycast (§3.2 / Figure 4), step by step.
//!
//! ```sh
//! cargo run --release --example dns_redirection
//! ```
//!
//! Runs the beacon campaign, trains the LDNS-granularity redirector on the
//! first half of the rounds, evaluates on the second half, and shows both
//! tails of Figure 4: clients the prediction helps and clients it hurts —
//! including *why* (resolver aggregation).

use beating_bgp::cdn::SiteChoice;
use beating_bgp::core::study_anycast;
use beating_bgp::core::{Scale, Scenario, ScenarioConfig};
use beating_bgp::measure::BeaconConfig;
use beating_bgp::workload::LdnsKind;

fn main() {
    let scenario = Scenario::build(ScenarioConfig::microsoft(5, Scale::Test));
    let cfg = BeaconConfig {
        rounds: 8,
        ..Default::default()
    };
    let study = study_anycast::run(&scenario, &cfg).expect("fault-free study succeeds");

    println!("{}", study.fig3.render());
    println!("{}", study.fig4.render());

    // Dissect the redirector's decisions.
    let workload = &scenario.workload;
    let mut isp_anycast = 0;
    let mut isp_unicast = 0;
    for ldns in &workload.ldns {
        if matches!(ldns.kind, LdnsKind::Isp(_)) {
            match study.redirector.resolve(workload, ldns.id, workload.prefixes[0].id) {
                SiteChoice::Anycast => isp_anycast += 1,
                SiteChoice::Unicast(_) => isp_unicast += 1,
            }
        }
    }
    println!(
        "redirector: {} ISP resolvers kept on anycast, {} redirected to a unicast site",
        isp_anycast, isp_unicast
    );

    // Show one aggregation casualty: a resolver serving clients in several
    // metros gets one answer for all of them.
    let casualty = workload.ldns.iter().find_map(|l| {
        let clients = workload.clients_of_ldns(l.id);
        let cities: std::collections::HashSet<_> = clients
            .iter()
            .map(|&(p, _)| workload.prefix(p).city)
            .collect();
        (cities.len() >= 3).then_some((l.id, cities.len(), clients.len()))
    });
    if let Some((ldns, cities, clients)) = casualty {
        println!(
            "resolver granularity (§3.2.1): resolver #{} answers for {clients} \
             prefixes across {cities} metros with a single decision — whatever \
             it picks is wrong for some of them.",
            ldns.0
        );
    }
}
