//! Edge-Fabric-style egress engineering at one PoP.
//!
//! ```sh
//! cargo run --release --example egress_engineering
//! ```
//!
//! Walks one ⟨PoP, prefix⟩ through a simulated day: every 15-minute window
//! the controller sees the measured medians and egress utilizations of the
//! top-3 BGP routes and decides whether to keep BGP's choice or detour —
//! the §2.3.1 control loop. Prints a timeline and a day-level summary of
//! how often (and why) the controller moved off BGP.

use beating_bgp::cdn::egress::{DetourReason, RouteWindowStats};
use beating_bgp::cdn::{EgressController, EgressDecision};
use beating_bgp::core::{Scale, Scenario, ScenarioConfig};
use beating_bgp::measure::{spray, SprayConfig};

fn main() {
    let scenario = Scenario::build(ScenarioConfig::facebook(7, Scale::Test));
    let cfg = SprayConfig {
        days: 1.0,
        window_stride: 1, // every window: a full day timeline
        ..Default::default()
    };
    let dataset = spray(
        &scenario.topo,
        &scenario.provider,
        &scenario.workload,
        &scenario.congestion,
        None,
        &cfg,
    );

    // Pick the ⟨PoP, prefix⟩ with the most route diversity and traffic.
    let target = dataset
        .targets
        .iter()
        .filter(|t| t.routes.len() >= 3)
        .max_by(|a, b| {
            let wa = scenario.workload.prefix(a.prefix).weight;
            let wb = scenario.workload.prefix(b.prefix).weight;
            wa.total_cmp(&wb)
        })
        .expect("some target with 3 routes");
    println!(
        "PoP {} serving {} (client AS {}): {} routes [{}]",
        scenario.topo.atlas.city(target.pop).name,
        target.prefix,
        scenario.topo.asys(target.client_as).name,
        target.routes.len(),
        target
            .routes
            .iter()
            .map(|r| r.class.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let controller = EgressController::default();
    let mut kept = 0;
    let mut perf = 0;
    let mut overload = 0;

    println!("\nwindow  preferred  best-alt   decision");
    for row in dataset
        .rows
        .iter()
        .filter(|r| r.pop == target.pop && r.prefix == target.prefix)
    {
        let stats: Vec<RouteWindowStats> = row
            .route_median_ms
            .iter()
            .zip(&row.route_util)
            .map(|(&m, &u)| RouteWindowStats {
                median_minrtt_ms: m,
                egress_utilization: u,
            })
            .collect();
        let decision = controller.decide(&stats);
        let best_alt = row.route_median_ms[1..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        match decision {
            EgressDecision::KeepBgp => kept += 1,
            EgressDecision::Detour {
                reason: DetourReason::Performance,
                ..
            } => perf += 1,
            EgressDecision::Detour {
                reason: DetourReason::Overload,
                ..
            } => overload += 1,
        }
        // Print only the interesting windows plus a sparse heartbeat.
        if !matches!(decision, EgressDecision::KeepBgp) || row.window.0 % 24 == 0 {
            println!(
                "{:>5}   {:>7.1}ms  {:>7.1}ms  {:?}",
                row.window.0, row.route_median_ms[0], best_alt, decision
            );
        }
    }

    let total = kept + perf + overload;
    println!(
        "\nday summary: kept BGP {kept}/{total} windows, performance detours {perf}, \
         overload detours {overload}"
    );
    println!(
        "(the paper's point: for most ⟨PoP, prefix⟩ pairs this table is \
         almost all 'KeepBgp')"
    );
}
