//! Quickstart: build a world, ask the paper's headline question.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small Facebook-like scenario, sprays sessions across each
//! PoP's top-3 BGP routes for a simulated day, and prints how much an
//! omniscient performance-aware controller could improve on BGP.

use beating_bgp::core::study_egress;
use beating_bgp::core::{Scale, Scenario, ScenarioConfig};
use beating_bgp::measure::SprayConfig;

fn main() {
    // 1. Build the world: topology + provider + client workload +
    //    congestion, all from one seed.
    let scenario = Scenario::build(ScenarioConfig::facebook(42, Scale::Test));
    println!(
        "world: {} ASes, {} interconnects, {} client prefixes, {} PoPs",
        scenario.topo.as_count(),
        scenario.topo.link_count(),
        scenario.workload.prefixes.len(),
        scenario.provider.pops.len()
    );

    // 2. Run the §3.1 measurement: spray sampled sessions across BGP's
    //    top-3 routes per ⟨PoP, prefix⟩, 15-minute windows.
    let cfg = SprayConfig {
        days: 2.0,
        window_stride: 4,
        ..Default::default()
    };
    let study = study_egress::run(&scenario, &cfg).expect("fault-free study succeeds");

    // 3. The paper's question: how often could we beat BGP?
    println!("{}", study.fig1.render());
    println!(
        "Takeaway: BGP's preferred route is within 1 ms of the best \
         alternate (or better)\nfor {:.1}% of traffic; only {:.1}% could be \
         improved by 5 ms or more.",
        study.fig1.frac_bgp_good * 100.0,
        study.fig1.frac_improvable_5ms * 100.0
    );
}
