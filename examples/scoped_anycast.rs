//! Announcement grooming with BGP communities and prepending (§3.2.2).
//!
//! ```sh
//! cargo run --release --example scoped_anycast
//! ```
//!
//! Shows the three grooming levers the paper names — withholding,
//! "prepending to a particular peer at a particular location", and
//! "adding a BGP community to control propagation" — and their effect on
//! reachability and catchments.

use beating_bgp::bgp::{compute_routes, Announcement, Scope};
use beating_bgp::cdn::AnycastDeployment;
use beating_bgp::core::{Scale, Scenario, ScenarioConfig};

fn main() {
    let scenario = Scenario::build(ScenarioConfig::microsoft(33, Scale::Test));
    let topo = &scenario.topo;
    let provider = &scenario.provider;
    let sites = provider.pops.clone();

    // Pick one busy site to experiment on.
    let site = *sites
        .iter()
        .max_by(|&&a, &&b| {
            let count = |c| {
                topo.adjacency(provider.asn)
                    .iter()
                    .filter(|&&(_, l)| topo.link(l).city == c)
                    .count()
            };
            count(a).cmp(&count(b))
        })
        .unwrap();
    println!(
        "experimenting on site {} ({} interconnects)\n",
        topo.atlas.city(site).name,
        topo.adjacency(provider.asn)
            .iter()
            .filter(|&&(_, l)| topo.link(l).city == site)
            .count()
    );

    // Catchment weight of a site under a given announcement.
    let catchment_weight = |ann: Announcement| -> (f64, usize) {
        let dep = AnycastDeployment::deploy_with(topo, provider, &sites, ann);
        let mut w = 0.0;
        let mut reach = 0;
        for p in &scenario.workload.prefixes {
            if let Some(svc) = dep.serve(topo, provider, p.asn, p.city) {
                reach += 1;
                if svc.front_end == site {
                    w += p.weight;
                }
            }
        }
        (w, reach)
    };

    let plain = Announcement::full(topo, provider.asn);

    let mut withheld = plain.clone();
    withheld.withhold_city(topo, site);

    let mut prepended = plain.clone();
    prepended.prepend_city(topo, site, 3);

    let mut scoped = plain.clone();
    scoped.no_export_city(topo, site);

    println!("{:<28}{:>14}{:>16}", "announcement", "site traffic", "clients served");
    for (label, ann) in [
        ("plain (announce all)", plain.clone()),
        ("withhold at site", withheld),
        ("prepend 3x at site", prepended),
        ("NO_EXPORT at site", scoped),
    ] {
        let (w, reach) = catchment_weight(ann);
        println!("{label:<28}{:>13.1}%{:>16}", w * 100.0, reach);
    }

    // NO_EXPORT semantics at the routing level: reach ends one AS away.
    let mut all_scoped = Announcement::empty(provider.asn);
    for &(_, l) in topo.adjacency(provider.asn) {
        all_scoped.offer_scoped(l, 0, Scope::NoExport);
    }
    let table = compute_routes(topo, &all_scoped);
    println!(
        "\nNO_EXPORT everywhere: only {} of {} ASes hold a route \
         (the provider's direct neighbors)",
        table.reachable_count() - 1,
        topo.as_count() - 1
    );
    println!(
        "\nTakeaway: communities give surgical control — NO_EXPORT keeps the\n\
         site serving its direct peers without attracting remote catchments,\n\
         where prepending only discourages and withholding removes entirely."
    );
}
